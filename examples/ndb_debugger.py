#!/usr/bin/env python
"""ndb — debugging the forwarding plane with TPPs (paper §2.3).

A leaf/spine fabric forwards a monitored flow.  Mid-run, a "fat-fingered"
operator installs a high-priority TCAM rule on the source leaf that
detours the flow through the wrong spine.  Black-box connectivity stays
green — packets still arrive — but the per-packet TPP traces catch the
divergence immediately and name the switch and the rule responsible.

Run:  python examples/ndb_debugger.py
"""

from collections import Counter

from repro import units
from repro.apps.ndb import NdbCollector, NdbTagger, PathVerifier
from repro.asic.tables import TcamRule
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import host_path, install_shortest_path_routes
from repro.net.topology import TopologyBuilder

# --- fabric: 2 spines, 4 leaves, 8 hosts ------------------------------------
builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC, delay_ns=2_000)
net = builder.fat_tree(k=2)
install_shortest_path_routes(net)
h0, h2 = net.host("h0"), net.host("h2")  # hosts on different leaves

# --- monitored flow: every packet wrapped in the trace TPP ------------------
sink = FlowSink(h2, 99)
collector = NdbCollector(h2)
tagger = NdbTagger(hops=5)
flow = Flow(h0, h2, h2.mac, 99, rate_bps=20 * units.MEGABITS_PER_SEC,
            packet_bytes=500)
tagger.attach(flow)

# --- controller intent -------------------------------------------------------
intended_path = host_path(net, "h0", "h2")
expected_switches = [net.switch(name).switch_id
                     for name in intended_path if name in net.switches]
current_entries = {}
for switch in net.switches.values():
    entry = switch.l2.entry_for(h2.mac)
    if entry is not None:
        current_entries[switch.switch_id] = (entry.entry_id, entry.version)
verifier = PathVerifier(expected_switches, current_entries)
print(f"controller intent: h0 -> {' -> '.join(intended_path[1:-1])} -> h2")

# --- the fat-finger event at t = 30 ms ---------------------------------------
leaf = net.switches[intended_path[1]]
wrong_spine = next(name for name in net.switches
                   if name.startswith("spine")
                   and name != intended_path[2])
wrong_port = next(local for local, peer, _ in net.adjacency()[leaf.name]
                  if peer == wrong_spine)


def fat_finger():
    leaf.install_tcam_rule(TcamRule(priority=99, out_port=wrong_port,
                                    dst_mac=h2.mac))
    print(f"t=30ms: operator installs a priority-99 TCAM rule on "
          f"{leaf.name} -> {wrong_spine} (oops)")


net.sim.schedule(units.milliseconds(30), fat_finger)

flow.start()
net.run(until_seconds=0.06)
flow.stop()

# --- what ndb saw -------------------------------------------------------------
print(f"\npackets delivered: {sink.packets_received} "
      f"(connectivity looks fine!)")
print(f"journeys reassembled from TPP traces: {len(collector.journeys)}")

paths_seen = Counter(tuple(j.switch_ids()) for j in collector.journeys)
for path, count in paths_seen.most_common():
    marker = "OK " if list(path) == expected_switches else "BAD"
    print(f"  [{marker}] path {list(path)}: {count} packets")

violations = verifier.verify(collector.journeys)
print(f"\nviolations detected: {len(violations)}")
by_kind = Counter(v.kind for v in violations)
for kind, count in by_kind.items():
    print(f"  {kind}: {count}")
first = next(v for v in violations if v.kind == "wrong-path")
print(f"\nfirst wrong-path packet: frame {first.frame_uid}: "
      f"{first.detail}")
rule_violation = next((v for v in violations if v.kind == "unknown-rule"),
                      None)
if rule_violation is not None:
    print(f"culprit rule seen in the dataplane on switch "
          f"{rule_violation.switch_id}: {rule_violation.detail}")
print("\nndb pinpointed the divergence from per-packet dataplane traces "
      "— no packet copies, no switch CPU involvement (§2.3).")
