; Hop-addressed path tracer: a fixed per-hop record of (switch ID,
; ingress clock, queue depth).  Hop mode gives every switch its own
; slot, so the layout is stable no matter how the probe is routed.
;
;   python -m repro.tools.tppasm lint examples/path_tracer.tpp --hops 4
;
.mode hop
.hops 4
.perhop 3
LOAD [Switch:SwitchID], [Packet:Hop[0]]
LOAD [Switch:ClockLo], [Packet:Hop[1]]
LOAD [Queue:QueueSize], [Packet:Hop[2]]
