#!/usr/bin/env python
"""Path characterization with arithmetic folding and scatter/gather.

Two techniques on top of the basic instruction set:

- MIN/MAX fold whole-path state into *one word* of packet memory
  (the narrowest link, the deepest queue), regardless of hop count;
- per-switch CEXEC-gated TPPs scatter a big collection task over several
  packets ("end-hosts can use multiple TPPs if a single packet is
  insufficient", §3.2) and gather the results.

Run:  python examples/network_inventory.py
"""

from repro import units
from repro.apps.pathprobe import PathBottleneckProbe, SwitchInventory
from repro.endhost.client import TPPEndpoint
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

# --- a path with a deliberate 100 Mb/s waist in the middle -----------------
net = Network(seed=0)
switches = [net.add_switch() for _ in range(4)]
rates = [units.GIGABITS_PER_SEC, 100 * units.MEGABITS_PER_SEC,
         400 * units.MEGABITS_PER_SEC]
for (left, right), rate in zip(zip(switches, switches[1:]), rates):
    net.link(left, right, rate)
h0, h1 = net.add_host(), net.add_host()
net.link(h0, switches[0], units.GIGABITS_PER_SEC)
net.link(h1, switches[-1], units.GIGABITS_PER_SEC)
install_shortest_path_routes(net)
h0.tpp = TPPEndpoint(h0)
h1.tpp = TPPEndpoint(h1)

# Populate some extra forwarding state so the inventory has texture.
from repro.asic.tables import TcamRule
net.switch("sw1").install_tcam_rule(
    TcamRule(priority=1, out_port=1, dst_port=53))
net.switch("sw2").install_tcam_rule(
    TcamRule(priority=1, out_port=1, dst_port=53))
net.switch("sw2").install_tcam_rule(
    TcamRule(priority=2, out_port=1, dst_port=123))

# --- one folded probe: two words describe the whole path -------------------
summaries = []
probe = PathBottleneckProbe(h0.tpp, h1.mac)
probe.probe(summaries.append)
net.run(until_seconds=0.01)
summary = summaries[0]
print("folded path probe (2 words of packet memory, 4 switches):")
print(f"  narrowest link on path : {summary.bottleneck_capacity_mbps} "
      f"Mb/s")
print(f"  deepest queue on path  : {summary.max_queue_bytes} bytes")

# --- scatter/gather: one CEXEC-gated TPP per switch -------------------------
reports = []
SwitchInventory(h0.tpp, h1.mac).collect(reports.append)
net.run(until_seconds=0.05)

print("\nswitch inventory (1 discovery TPP + 1 gated TPP per switch):")
print(f"{'switch':>8} {'L2':>4} {'TCAM':>8} {'pkts switched':>14} "
      f"{'TPPs run':>9}")
for switch_id, report in sorted(reports[0].items()):
    print(f"{switch_id:>8} {report.l2_entries:>4} "
          f"{report.tcam_entries:>8} {report.packets_switched:>14} "
          f"{report.tpps_executed:>9}")

print("\nThe MIN fold needs 8 bytes of packet memory for any path length;"
      "\na PUSH-per-hop survey of the same two statistics needs "
      "8 x hops bytes.")
