; CEXEC-gated register update (paper §2.3/§3.2, RCP*-style): the fence
; compares the switch ID against the target baked into the probe, so
; the trailing update runs only on the one switch it was aimed at.
; Assemble with --symbols Target=<switch id>.
;
;   python -m repro.tools.tppasm lint examples/guarded_update.tpp \
;       --symbols Target=7
;
.memory 2
.data 0 1500
CEXEC [Switch:SwitchID], 0xFFFFFFFF, $Target
CSTORE [Sram:Word0], [Packet:0], [Packet:1]
STORE [Link:Reg0], [Packet:0]
