#!/usr/bin/env python
"""Per-flow heavy hitters from switch scratch SRAM (paper §2.1, §3.2).

The micro-burst monitor (``microburst_monitor.py``) reads one counter
per queue: it can tell you *when* a queue filled, never *which flows*
filled it.  This example upgrades that pipeline to a heavy-hitter
sketch — count-min counters plus a CSTORE-claimed candidate table —
hosted in the same 1024-word scratch SRAM, updated by per-flow TPPs the
verifier certifies and the race table admits, and decoded on the end
host with explicit (ε, δ) error bounds.

Run:  python examples/sketch_heavy_hitters.py
"""

import random

from repro.analysis.sketch import HeavyHitterDecoder
from repro.apps.microburst import HeavyHitterMonitor
from repro.core.memory_map import MemoryMap
from repro.core.mmu import MMU
from repro.core.tcpu import TCPU
from repro.telemetry import (
    HeavyHitterLayout,
    build_heavy_hitter_update,
    disjoint_keys,
)

# --- a sketch block in the congested switch's scratch SRAM --------------
layout = HeavyHitterLayout(base_word=16, width=16, depth=3, n_slots=8)
print(f"layout: {layout.depth}x{layout.width} counters + "
      f"{layout.n_slots} claim slots = {layout.n_words} SRAM words")
print(f"bounds: overestimate <= {layout.epsilon:.3f}*N "
      f"with p >= {1 - layout.delta:.3f}")

memory_map = MemoryMap.standard()
mmu = MMU(memory_map)
monitor = HeavyHitterMonitor(mmu, layout)

# --- traffic: two elephants hidden in a crowd of mice -------------------
# The elephants open the burst (so their CSTOREs claim candidate slots
# first — exactly the protocol's first-match-wins semantics); the mice
# trickle in afterwards in random order.
rng = random.Random(2013)
truth = {0xA1: 140, 0xB7: 90}                          # the elephants
for key, packets in truth.items():
    monitor.observe(key, packets)
mice = {}
for _ in range(40):                                    # the mice
    key = rng.randrange(1, 5000)
    mice[key] = mice.get(key, 0) + rng.randrange(1, 4)
for key, packets in sorted(mice.items(), key=lambda kv: rng.random()):
    monitor.observe(key, packets)
    truth[key] = truth.get(key, 0) + packets
total = sum(truth.values())

# --- decode through probe TPPs ------------------------------------------
print(f"\nobserved {monitor.packets_observed} packets, "
      f"{len(truth)} flows, {monitor.race_conflicts} race diagnostics "
      "recorded (colliding counters are count-min's job, not a bug)")
print("top flows (estimate vs truth):")
for hitter in monitor.report(5):
    print(f"  key 0x{hitter.key:04X}: est {hitter.estimate:4d} "
          f"(true {truth[hitter.key]:4d}, "
          f"err <= {hitter.error_bound:.1f} "
          f"w.p. {hitter.confidence:.2f})")

elephants = {h.key for h in monitor.report(2)}
assert elephants == {0xA1, 0xB7}, elephants
for hitter in monitor.report():
    assert hitter.estimate >= truth[hitter.key]  # overestimate-only

# --- enforce-mode admission: provably disjoint updaters only ------------
# Under race_mode="enforce" the TCPU refuses any certificate that
# introduces a write-write race.  Keys whose counter cells are pairwise
# disjoint under the layout's hashes are admissible together; the next
# colliding key is refused — the race oracle, not a heuristic, decides.
fresh_map = MemoryMap.standard()
fresh_mmu = MMU(fresh_map)
layout.register(fresh_map)
layout.allocate(fresh_mmu, task_id=1)
strict = TCPU(fresh_mmu, max_instructions=7, race_mode="enforce")
fleet_keys = disjoint_keys(layout, range(1, 4096), 4)
for task, key in enumerate(fleet_keys, start=1):
    update = build_heavy_hitter_update(layout, key, task_id=task,
                                       memory_map=fresh_map)
    assert strict.trust(update.certificate), key
print(f"\nenforce mode admitted {len(fleet_keys)} disjoint updaters: "
      f"{fleet_keys}")
for key in range(1, 4096):
    if key in fleet_keys:
        continue
    update = build_heavy_hitter_update(layout, key, task_id=99,
                                       memory_map=fresh_map)
    if not strict.trust(update.certificate):
        print(f"colliding updater for key {key} refused "
              f"(certificates_refused={strict.certificates_refused})")
        break

# --- the decoder is just arithmetic over the image ----------------------
decoder = HeavyHitterDecoder(layout)
image = monitor.snapshot()
n_estimate = sum(image[w] for w in
                 range(layout.base_word, layout.base_word + layout.width))
assert n_estimate == total == monitor.packets_observed
print(f"\nrow-0 sum recovers the stream total: N = {n_estimate}")
print("candidate slots:",
      [hex(k) for k in decoder.candidates(image)][:8])
