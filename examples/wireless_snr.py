#!/usr/bin/env python
"""Sampling fast-changing wireless state (paper §2.3, "other possibilities").

"TPPs are not just limited to wired networks; they can also be used in
wireless networks where access points can annotate end-host packets with
channel SNR which changes very quickly."

An access point's downlink SNR follows a random walk updated every 100 µs.
A wired host probes ``[Link:SNR-MilliDb]`` every 500 µs through the same
LOAD/PUSH machinery used for queue sizes, and reconstructs the channel's
trajectory — visibility no control-plane poller could provide.

Run:  python examples/wireless_snr.py
"""

from repro import quickstart_network, units
from repro.analysis.reporting import ascii_plot
from repro.analysis.timeseries import TimeSeries
from repro.core import assemble
from repro.endhost.probes import PeriodicProber
from repro.net.wireless import WirelessChannel, attach_wireless_channel

# --- one "access point" (a switch whose client-facing port is wireless) ----
net = quickstart_network(n_switches=1)
access_point = net.switch("sw0")
h0, h1 = net.host("h0"), net.host("h1")  # h1 is the wireless client

channel = WirelessChannel(net.sim, net.rng.stream("channel"),
                          mean_snr_db=28.0, step_db=2.0,
                          update_interval_ns=units.microseconds(100))
downlink = [p for p in access_point.ports
            if p.link.name.endswith("h1")][0]
attach_wireless_channel(downlink, channel)
channel.start()

# --- end-host sampling via TPPs ---------------------------------------------
observed = TimeSeries("snr")
truth = TimeSeries("truth")


def on_result(result):
    observed.append(result.time_ns, result.word(0) / 1000.0)
    truth.append(result.time_ns, channel.current_snr_db)


prober = PeriodicProber(h0.tpp, assemble("PUSH [Link:SNR-MilliDb]"),
                        units.microseconds(500), on_result,
                        dst_mac=h1.mac)
prober.start(first_delay_ns=1)
net.run(until_seconds=0.05)

# --- report --------------------------------------------------------------------
print(ascii_plot(observed,
                 title="downlink SNR (dB) as sampled by end-host TPPs, "
                       "500 us probes over 50 ms",
                 width=70, height=12))
errors = [abs(o - t) for (_, o), (_, t) in zip(observed.samples(),
                                               truth.samples())]
print(f"\nsamples: {len(observed)}  "
      f"channel updates in the window: {channel.updates}")
print(f"mean |sample - live channel| = {sum(errors) / len(errors):.2f} dB "
      f"(skew is just the probe's flight time)")
print(f"observed range: {observed.min():.1f} .. {observed.max():.1f} dB")
print("\nThe same read-only TPP interface that exposes queue depths "
      "exposes any per-port state the ASIC tracks.")
