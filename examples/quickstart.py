#!/usr/bin/env python
"""Quickstart: your first tiny packet program.

Builds a three-switch network, writes a TPP in the paper's assembly
language, sends it from h0 to h1, and prints what it collected at every
hop — the Figure 1 experience in ~20 lines of user code.

Run:  python examples/quickstart.py
"""

from repro import quickstart_network
from repro.core import assemble
from repro.core.disassembler import format_tpp

# A linear network: h0 - sw0 - sw1 - sw2 - h1, with routes installed and
# a TPP endpoint on every host.
net = quickstart_network(n_switches=3)
h0, h1 = net.host("h0"), net.host("h1")

# The paper's first example program: one PUSH per statistic; every switch
# on the path appends its answers to the packet's stack.
program = assemble("""
    PUSH [Switch:SwitchID]
    PUSH [Queue:QueueSize]
    PUSH [Link:CapacityMbps]
""")

results = []
h0.tpp.send(program, dst_mac=h1.mac, on_response=results.append)

# The receiver echoes the fully executed TPP back; run the simulation
# until the response is home.
net.run(until_seconds=0.01)

result = results[0]
print(f"TPP executed on {result.hops()} switches "
      f"(fault: {result.fault.name})\n")
print(f"{'hop':>4} {'switch id':>10} {'queue bytes':>12} "
      f"{'link Mb/s':>10}")
for hop, (switch_id, queue_bytes, mbps) in enumerate(
        result.per_hop_words()):
    print(f"{hop:>4} {switch_id:>10} {queue_bytes:>12} {mbps:>10}")

print("\nRaw returned packet:")
print(format_tpp(result.tpp))
