#!/usr/bin/env python
"""Per-hop latency breakdown — "a detailed breakdown of queueing
latencies on all network hops" (paper §2.1), measured directly.

Each probe records every switch's clock and queue depth in hop-addressed
packet memory; differencing consecutive clocks attributes the packet's
latency segment by segment.  We congest exactly one link mid-run and
watch the breakdown finger it.

Run:  python examples/latency_breakdown.py
"""

from repro import quickstart_network, units
from repro.apps.latency import LatencyProfiler
from repro.endhost.flows import Flow, FlowSink

net = quickstart_network(n_switches=4,
                         rate_bps=100 * units.MEGABITS_PER_SEC,
                         delay_ns=20_000)
h0, h1 = net.host("h0"), net.host("h1")

profiler = LatencyProfiler(h0, h1.mac, interval_ns=units.milliseconds(2))

# Congest sw1 -> sw2 between t = 40 ms and t = 80 ms: two bursty senders
# hang off sw1 and overdrive the link.
for name in ("hx0", "hx1"):
    crosser = net.add_host(name)
    net.link(crosser, net.switch("sw1"), 100 * units.MEGABITS_PER_SEC,
             20_000)
from repro.net.routing import install_shortest_path_routes
install_shortest_path_routes(net)
FlowSink(h1, 99)
for name in ("hx0", "hx1"):
    cross = Flow(net.host(name), h1, h1.mac, 99,
                 rate_bps=100 * units.MEGABITS_PER_SEC, packet_bytes=1000)
    net.sim.schedule(units.milliseconds(40), cross.start)
    net.sim.schedule(units.milliseconds(80), cross.stop)

profiler.start(first_delay_ns=1)
net.run(until_seconds=0.3)

# --- report -------------------------------------------------------------
quiet = [p for p in profiler.profiles
         if p.received_at_ns < units.milliseconds(40)]
loaded = [p for p in profiler.profiles
          if units.milliseconds(45) < p.received_at_ns
          < units.milliseconds(85)]

print(f"{len(profiler.profiles)} probes; "
      f"{len(quiet)} before congestion, {len(loaded)} during\n")
print(f"{'segment':>16} {'quiet (us)':>12} {'congested (us)':>15}")
switch_ids = [hop.switch_id for hop in profiler.profiles[0].hops]
for position, switch_id in enumerate(switch_ids[1:], start=1):
    quiet_lat = sum(p.hops[position].segment_latency_ns
                    for p in quiet) / max(1, len(quiet)) / 1000
    loaded_lat = sum(p.hops[position].segment_latency_ns
                     for p in loaded) / max(1, len(loaded)) / 1000
    name = f"sw{switch_ids[position - 1] - 1} -> sw{switch_id - 1}"
    print(f"{name:>16} {quiet_lat:>12.1f} {loaded_lat:>15.1f}")

worst = max(loaded, key=lambda p: p.total_network_latency_ns())
blame = worst.worst_segment()
print(f"\nworst packet: {worst.total_network_latency_ns() / 1000:.0f} us "
      f"end to end; {blame.segment_latency_ns / 1000:.0f} us of it into "
      f"switch {blame.switch_id} (queue there: "
      f"{blame.queue_bytes / 1024:.0f} KiB)")
print("\nOne read-only TPP per probe — no per-switch polling, no clock "
      "sync protocol, the packet itself is the measurement.")
