#!/usr/bin/env python
"""Micro-burst monitoring (paper §2.1).

A datacenter-style incast: two 1 Gb/s senders fire sub-millisecond bursts
at a host behind a 100 Mb/s link.  An end-host probes the path every
100 µs with ``PUSH [Switch:SwitchID]; PUSH [Queue:QueueSize]`` and
characterizes every queue excursion — while a 1-second control-plane
poller watching the very same queue sees nothing.

Run:  python examples/microburst_monitor.py
"""

from repro import units
from repro.analysis.reporting import ascii_plot
from repro.apps.microburst import (
    BurstDetector,
    BurstyTrafficGenerator,
    CoarsePoller,
    TelemetryStream,
)
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

FAST = units.GIGABITS_PER_SEC
SLOW = 100 * units.MEGABITS_PER_SEC

# --- topology: h0 (monitor), h1/h3 (bursty) -> h2 behind a slow link ---
net = Network(seed=3)
switch = net.add_switch()
for name in ("h0", "h1", "h2", "h3"):
    host = net.add_host(name)
    net.link(host, switch, SLOW if name == "h2" else FAST, delay_ns=5_000)
install_shortest_path_routes(net)
h0, h2 = net.host("h0"), net.host("h2")

# --- bursty cross traffic -----------------------------------------------
FlowSink(h2, 99)
for index, name in enumerate(("h1", "h3")):
    flow = Flow(net.host(name), h2, h2.mac, 99, rate_bps=0,
                packet_bytes=1000)
    BurstyTrafficGenerator(
        flow, burst_rate_bps=FAST,
        on_mean_ns=units.microseconds(400),
        off_mean_ns=units.milliseconds(25),
        rng=net.rng.stream(f"burst{index}"),
    ).start()

# --- the two observers ----------------------------------------------------
stream = TelemetryStream(h0, h2.mac, interval_ns=units.microseconds(100))
TPPEndpoint(h2)
stream.start(first_delay_ns=1)

port_to_h2 = [p for p in switch.ports if p.link.name.endswith("h2")][0]
coarse = CoarsePoller(net.sim, port_to_h2, interval_ns=units.seconds(1))
coarse.start()

net.run(until_seconds=2.0)

# --- report ----------------------------------------------------------------
series = stream.series_for(switch.switch_id)
print(ascii_plot(series.resample_mean(units.milliseconds(2)),
                 title="queue occupancy at sw0 -> h2 (bytes, 2 ms bins, "
                       "seen via TPPs)",
                 width=70, height=12))

detector = BurstDetector(threshold_bytes=8_000)
bursts = detector.detect(series)
print(f"\nTPP telemetry: {len(series)} samples, "
      f"{len(bursts)} micro-bursts detected")
for burst in bursts[:8]:
    print(f"  t={burst.start_ns / 1e6:8.2f} ms  "
          f"duration={burst.duration_ns / 1e3:7.0f} us  "
          f"peak={burst.peak_bytes / 1024:5.1f} KiB")
if len(bursts) > 8:
    print(f"  ... and {len(bursts) - 8} more")

coarse_bursts = detector.detect(coarse.series)
print(f"\n1-second control-plane poller on the same queue: "
      f"{len(coarse.series)} samples, {len(coarse_bursts)} bursts seen")
print("=> per-RTT dataplane visibility is what makes micro-bursts "
      "observable at all (paper §2.1).")
