#!/usr/bin/env python
"""RCP* — congestion control from the end of the network (paper §2.2).

Reproduces the Figure 2 scenario: three flows arrive at t = 0, 4 and 8
seconds on a shared 10 Mb/s bottleneck.  Each flow runs the three-phase
RCP* loop (collect TPP / compute / CEXEC-targeted update TPP); the
switches only ever execute reads and writes.

Run:  python examples/rcp_fairness.py
"""

from repro import units
from repro.analysis.convergence import jain_fairness
from repro.analysis.reporting import ascii_plot
from repro.analysis.timeseries import TimeSeries
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder
from repro.sim.timers import PeriodicTimer

CAPACITY = 10 * units.MEGABITS_PER_SEC
DURATION_S = 12.0
STARTS_S = (0.0, 4.0, 8.0)

# --- network ---------------------------------------------------------------
builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                          delay_ns=units.milliseconds(1))
net = builder.dumbbell(n_pairs=3, bottleneck_bps=CAPACITY)
install_shortest_path_routes(net)
for switch in net.switches.values():
    switch.start_stats(interval_ns=units.milliseconds(5))

# --- control plane: allocate the RCP registers network-wide ----------------
agent = ControlPlaneAgent(list(net.switches.values()),
                          memory_map=MemoryMap.standard())
task = RCPStarTask(agent)

# --- three RCP* flows -------------------------------------------------------
flows = []
for index, start_s in enumerate(STARTS_S):
    flow = RCPStarFlow(task, index, net.host(f"h{index}"),
                       net.host(f"h{index + 3}"),
                       net.host(f"h{index + 3}").mac,
                       capacity_bps=CAPACITY, rtt_s=0.02, max_hops=3)
    flows.append(flow)
    if start_s == 0.0:
        flow.start()
    else:
        net.sim.schedule(units.seconds(start_s), flow.start)

# --- sample R(t)/C on the bottleneck ----------------------------------------
swL = net.switch("swL")
ratio = TimeSeries("R/C")
PeriodicTimer(net.sim, units.milliseconds(50),
              lambda: ratio.append(net.sim.now_ns,
                                   task.rate_register_bps(swL, 0)
                                   / CAPACITY)).start()

net.run(until_seconds=DURATION_S)

# --- report ------------------------------------------------------------------
print(ascii_plot(ratio, title="RCP*: bottleneck fair-share R(t)/C "
                              "(flows join at t=0, 4, 8 s)",
                 y_min=0.0, y_max=1.1, width=70, height=14))

goodputs = [flow.sink.goodput_bps(units.seconds(10), units.seconds(12))
            for flow in flows]
print("\nsteady state with 3 flows:")
for index, goodput in enumerate(goodputs):
    print(f"  flow {index}: {goodput / 1e6:5.2f} Mb/s "
          f"(ideal {CAPACITY / 3 / 1e6:.2f})")
print(f"  Jain fairness index: {jain_fairness(goodputs):.4f}")
print(f"  rate-register updates written via TPPs: "
      f"{sum(f.updates_sent for f in flows)}")
print("\nThe switches executed nothing but LOAD/PUSH/CSTORE/CEXEC/STORE —"
      "\nthe whole RCP control law lives in end-host userspace (§2.2).")
