; Canonical queue-size probe (paper §2.1): each switch on the path
; appends its ID and instantaneous output-queue occupancy.  Run through
; the static verifier with:
;
;   python -m repro.tools.tppasm lint examples/queue_probe.tpp --hops 4
;
.hops 4
PUSH [Switch:SwitchID]
PUSH [Queue:QueueSize]
