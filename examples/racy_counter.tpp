; Deliberately racy per-switch counter: read-modify-write on Sram:Word0
; with a plain STORE instead of the CSTORE claim protocol.  On its own
; the program verifies clean (tppasm lint passes) — the race only exists
; at the *fleet* level: deployed next to guarded_update.tpp (which
; claims Sram:Word0 via CSTORE) the unconditional STORE can overwrite
; the claim, and concurrent copies of any other Word0 writer lose
; increments.  Exercised by the racecheck CI step and the test suite as
; the canonical TPP021/TPP022 trigger:
;
;   python -m repro.tools.tppasm racecheck examples/racy_counter.tpp \
;       examples/guarded_update.tpp --symbols Target=7   # exit 1
;
.memory 1
.data 0 1
ADD [Packet:0], [Sram:Word0]
STORE [Sram:Word0], [Packet:0]
