#!/usr/bin/env python
"""Edge security in a multi-tenant network (paper §4).

"In multi-tenant or untrusted environments such as public cloud
datacenters, the ingress switches at the network edge can strip TPPs
injected by VMs."

One switch, four hosts: ``ops`` and ``collector`` (the operator's
monitoring boxes, trusted) and two tenants.  Tenant ports are marked
untrusted with the strip policy.  The operator's probes work; a tenant's
probes are silently removed while the tenant's *data* keeps flowing; SRAM
isolation stops a task from touching another task's registers even from
a trusted port.

Run:  python examples/multitenant_security.py
"""

from repro import units
from repro.control.agent import ControlPlaneAgent
from repro.control.security import EdgeTPPPolicy
from repro.core import assemble
from repro.core.exceptions import FaultCode
from repro.core.memory_map import MemoryMap
from repro.endhost.client import TPPEndpoint
from repro.net.packet import Datagram, RawPayload
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

net = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC).star(4)
install_shortest_path_routes(net)
ops, tenant_a, tenant_b, collector = (net.host(f"h{i}") for i in range(4))
switch = net.switch("sw0")
for host in (ops, tenant_a, tenant_b, collector):
    host.tpp = TPPEndpoint(host)

# --- edge policy: tenant-facing ports are untrusted --------------------------
policy = EdgeTPPPolicy(untrusted_action="strip")
adjacency = net.adjacency()["sw0"]
for local_port, peer, _ in adjacency:
    if peer in ("h1", "h2"):  # the tenants
        policy.mark_untrusted("sw0", local_port)
switch.tpp_policy = policy

# --- task isolation: monitoring owns SRAM words, tenants' tasks do not ------
agent = ControlPlaneAgent([switch], memory_map=MemoryMap.standard(),
                          enforce_isolation=True)
monitoring = agent.create_task("monitoring")
tenant_task = agent.create_task("tenant-app")
agent.allocate_sram("monitoring", "heartbeat")

# 1) The operator's probe executes normally.
ops_results = []
ops.tpp.send(assemble("PUSH [Queue:QueueSize]"), dst_mac=collector.mac,
             task_id=monitoring.task_id, on_response=ops_results.append)
net.run(until_seconds=0.01)
print(f"[ops]      probe executed on {ops_results[0].hops()} switch(es) "
      f"-> queue = {ops_results[0].word(0)} bytes")

# 2) A tenant's probe is stripped at the edge: no response ever returns.
tenant_results = []
tenant_a.tpp.send(assemble("PUSH [Queue:QueueSize]"), dst_mac=tenant_b.mac,
                  on_response=tenant_results.append)
net.run(until_seconds=0.02)
print(f"[tenant-a] probe responses: {len(tenant_results)} "
      f"(stripped at the edge: {switch.tpps_stripped})")

# 3) ... but the tenant's ordinary traffic is untouched.
delivered = []
tenant_b.on_udp_port(7, lambda d, f: delivered.append(d))
inner = Datagram(tenant_a.ip, tenant_b.ip, 5, 7, RawPayload(64))
executed_before = switch.tcpu.tpps_executed
tenant_a.tpp.send(assemble("PUSH [Queue:QueueSize]"),
                  dst_mac=tenant_b.mac, payload=inner)
net.run(until_seconds=0.03)
print(f"[tenant-a] TPP-wrapped data packet: payload delivered = "
      f"{len(delivered) == 1}, its TPP executed = "
      f"{switch.tcpu.tpps_executed > executed_before}")

# 4) SRAM isolation: a TPP carrying the tenant task id faults when it
#    touches the monitoring task's SRAM word (even from the trusted port).
fault_results = []
ops.tpp.send(assemble(".memory 1\nSTORE [Sram:Word0], [Packet:0]"),
             dst_mac=collector.mac, task_id=tenant_task.task_id,
             on_response=fault_results.append)
net.run(until_seconds=0.04)
fault = fault_results[0].fault
print(f"[isolation] foreign-task STORE to monitoring SRAM -> fault "
      f"{fault.name} (write blocked: "
      f"{switch.mmu.peek_sram(0) == 0})")

assert fault == FaultCode.SRAM_PROTECTION
print("\nEdge stripping + per-task SRAM domains give the operator the "
      "controls §4 calls for.")
