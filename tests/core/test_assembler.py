"""The TPP assembler: the paper's listings must compile."""

import pytest

from repro.core.assembler import assemble
from repro.core.exceptions import AssemblerError
from repro.core.isa import Opcode
from repro.core.tpp import AddressingMode


class TestPaperListings:
    def test_microburst_program(self):
        """§2.1: PUSH [Queue:QueueSize]."""
        program = assemble("PUSH [Queue:QueueSize]")
        assert program.instructions[0].opcode == Opcode.PUSH
        assert program.instructions[0].addr == 0xB000

    def test_rcp_collect_program(self):
        """§2.2 phase 1 (paper spells the queue as Link:QueueSize)."""
        program = assemble("""
            PUSH [Switch:SwitchID]
            PUSH [Link:QueueSize]
            PUSH [Link:RX-Utilization]
        """)
        assert len(program.instructions) == 3

    def test_rcp_update_program_with_symbols(self):
        """§2.2 phase 3: CEXEC + STORE with $symbol immediates."""
        program = assemble(
            """
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
            STORE [Link:Reg0], [Packet:0]
            """,
            symbols={"BottleneckSwitchID": 7})
        cexec = program.instructions[0]
        assert cexec.opcode == Opcode.CEXEC
        # mask and value are materialized in the literal pool
        words = [program.initial_memory[i:i + 4]
                 for i in range(0, len(program.initial_memory), 4)]
        pool_offset = cexec.offset * 4
        assert program.initial_memory[pool_offset:pool_offset + 4] == (
            0xFFFFFFFF).to_bytes(4, "big")
        assert program.initial_memory[pool_offset + 4:pool_offset + 8] == (
            7).to_bytes(4, "big")

    def test_ndb_program(self):
        """§2.3: the forwarding-plane debugger trace."""
        program = assemble("""
            PUSH [Switch:ID]
            PUSH [PacketMetadata:MatchedEntryID]
            PUSH [PacketMetadata:InputPort]
        """)
        assert len(program.instructions) == 3

    def test_hop_addressing_listing(self):
        """§3.2.2: LOAD [Switch:SwitchID], [Packet:hop[1]]."""
        program = assemble("""
            .mode hop
            LOAD [Switch:SwitchID], [Packet:Hop[1]]
        """)
        assert program.mode == AddressingMode.HOP
        assert program.instructions[0].offset == 1


class TestDirectives:
    def test_word_size(self):
        program = assemble(".word 8\nPUSH [Queue:QueueSize]")
        assert program.word_size == 8

    def test_bad_word_size_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 5")

    def test_hops_scales_stack_memory(self):
        two = assemble("PUSH [Queue:QueueSize]", hops=2)
        four = assemble("PUSH [Queue:QueueSize]", hops=4)
        assert len(four.initial_memory) == 2 * len(two.initial_memory)

    def test_memory_override(self):
        program = assemble(".memory 3\nPUSH [Queue:QueueSize]")
        assert program.memory_words == 3

    def test_data_initializes_word(self):
        program = assemble(".memory 2\n.data 1 0xAB")
        assert program.initial_memory[4:8] == (0xAB).to_bytes(4, "big")

    def test_data_with_symbol(self):
        program = assemble(".memory 1\n.data 0 $X", symbols={"X": 5})
        assert program.initial_memory[:4] == (5).to_bytes(4, "big")

    def test_data_outside_memory_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".memory 1\n.data 5 1")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1")

    def test_comments_ignored(self):
        program = assemble("""
            ; full line comment
            # hash comment
            PUSH [Queue:QueueSize]  ; trailing
        """)
        assert len(program.instructions) == 1


class TestMemorySizing:
    def test_stack_mode_perhop_is_push_count(self):
        program = assemble("""
            PUSH [Switch:SwitchID]
            PUSH [Queue:QueueSize]
        """)
        assert program.perhop_len_bytes == 8

    def test_stack_memory_covers_hops(self):
        program = assemble("PUSH [Queue:QueueSize]", hops=7)
        assert program.memory_words == 7

    def test_hop_mode_perhop_from_max_offset(self):
        program = assemble("""
            .mode hop
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
            LOAD [Queue:QueueSize], [Packet:Hop[2]]
        """, hops=4)
        assert program.perhop_len_bytes == 12
        assert program.memory_words == 3 * 4

    def test_perhop_override(self):
        program = assemble("""
            .mode hop
            .perhop 5
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
        """, hops=2)
        assert program.perhop_len_bytes == 20


class TestOperandErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("FROB [Queue:QueueSize]")

    def test_unknown_statistic(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH [Queue:Imaginary]")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError):
            assemble("CEXEC [Switch:SwitchID], 0xFF, $Missing")

    def test_wrong_arity(self):
        with pytest.raises(AssemblerError):
            assemble("PUSH [Queue:QueueSize], [Packet:0]")

    def test_load_needs_packet_operand(self):
        with pytest.raises(AssemblerError):
            assemble("LOAD [Switch:SwitchID], [Queue:QueueSize]")

    def test_cstore_mixed_operands_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("CSTORE [Sram:Word0], [Packet:0], 0x5")

    def test_cstore_nonconsecutive_packet_operands_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("CSTORE [Sram:Word0], [Packet:0], [Packet:2]")

    def test_packet_offset_too_large(self):
        with pytest.raises(AssemblerError):
            assemble("LOAD [Switch:SwitchID], [Packet:999]")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("PUSH [Queue:QueueSize]\nFROB x")
        assert "line 2" in str(excinfo.value)


class TestRawAddresses:
    def test_hex_address_operand(self):
        program = assemble("PUSH [0xB000]")
        assert program.instructions[0].addr == 0xB000

    def test_arithmetic_operands(self):
        program = assemble("ADD [Packet:2], [Queue:QueueSize]")
        instruction = program.instructions[0]
        assert instruction.opcode == Opcode.ADD
        assert instruction.offset == 2
        assert instruction.addr == 0xB000

    def test_min_accumulator(self):
        program = assemble("MIN [Packet:0], [Link:Reg0]")
        assert program.instructions[0].opcode == Opcode.MIN

    def test_nop(self):
        program = assemble("NOP")
        assert program.instructions[0].opcode == Opcode.NOP


class TestBuild:
    def test_build_copies_memory(self):
        program = assemble("PUSH [Queue:QueueSize]")
        one = program.build()
        two = program.build()
        one.write_word(0, 99)
        assert two.read_word(0) == 0

    def test_build_stamps_task_and_seq(self):
        program = assemble("PUSH [Queue:QueueSize]")
        tpp = program.build(task_id=5, seq=9)
        assert tpp.task_id == 5
        assert tpp.seq == 9

    def test_instruction_bytes_property(self):
        program = assemble("""
            PUSH [Queue:QueueSize]
            PUSH [Switch:SwitchID]
        """)
        assert program.instruction_bytes == 8
