"""TPP section: Figure 4's wire format and packet-memory semantics."""

import pytest

from repro.core.exceptions import FaultCode, TPPEncodingError
from repro.core.isa import Instruction, Opcode
from repro.core.tpp import (
    TPP_HEADER_BYTES,
    AddressingMode,
    TPPSection,
)


def make_tpp(**kwargs) -> TPPSection:
    defaults = dict(
        instructions=[Instruction(Opcode.PUSH, addr=0xB000)],
        memory=bytearray(16),
    )
    defaults.update(kwargs)
    return TPPSection(**defaults)


class TestConstruction:
    def test_header_is_12_bytes(self):
        assert TPP_HEADER_BYTES == 12

    def test_word_size_validated(self):
        with pytest.raises(TPPEncodingError):
            make_tpp(word_size=3)

    def test_memory_must_be_aligned(self):
        with pytest.raises(TPPEncodingError):
            make_tpp(memory=bytearray(7))

    def test_perhop_must_be_aligned(self):
        with pytest.raises(TPPEncodingError):
            make_tpp(perhop_len_bytes=6)

    def test_tpp_length(self):
        tpp = make_tpp(memory=bytearray(20))
        assert tpp.tpp_length_bytes == 12 + 4 + 20


class TestMemoryAccess:
    def test_word_round_trip(self):
        tpp = make_tpp()
        tpp.write_word(4, 0xDEADBEEF)
        assert tpp.read_word(4) == 0xDEADBEEF

    def test_write_masks_to_word_width(self):
        tpp = make_tpp()
        tpp.write_word(0, 0x1_0000_0001)
        assert tpp.read_word(0) == 1

    def test_negative_values_wrap_two_complement(self):
        tpp = make_tpp()
        tpp.write_word(0, -1)
        assert tpp.read_word(0) == 0xFFFF_FFFF

    def test_big_endian_layout(self):
        tpp = make_tpp()
        tpp.write_word(0, 0x01020304)
        assert bytes(tpp.memory[:4]) == b"\x01\x02\x03\x04"

    def test_eight_byte_words(self):
        tpp = make_tpp(word_size=8)
        tpp.write_word(0, 0x1122334455667788)
        assert tpp.read_word(0) == 0x1122334455667788

    def test_out_of_bounds_read_raises(self):
        tpp = make_tpp(memory=bytearray(8))
        with pytest.raises(IndexError):
            tpp.read_word(8)

    def test_straddling_end_raises(self):
        tpp = make_tpp(memory=bytearray(8))
        with pytest.raises(IndexError):
            tpp.read_word(6)

    def test_negative_offset_raises(self):
        with pytest.raises(IndexError):
            make_tpp().read_word(-4)

    def test_words_view(self):
        tpp = make_tpp(memory=bytearray(12))
        tpp.write_word(0, 1)
        tpp.write_word(4, 2)
        tpp.write_word(8, 3)
        assert tpp.words() == [1, 2, 3]


class TestFlags:
    def test_done_flag(self):
        tpp = make_tpp()
        assert not tpp.done
        tpp.mark_done()
        assert tpp.done

    def test_fault_recording(self):
        tpp = make_tpp()
        assert tpp.fault == FaultCode.NONE
        tpp.record_fault(FaultCode.STACK_OVERFLOW)
        assert tpp.fault == FaultCode.STACK_OVERFLOW

    def test_first_fault_wins(self):
        tpp = make_tpp()
        tpp.record_fault(FaultCode.STACK_OVERFLOW)
        tpp.record_fault(FaultCode.BAD_ADDRESS)
        assert tpp.fault == FaultCode.STACK_OVERFLOW


class TestHopsExecuted:
    def test_stack_mode_uses_sp(self):
        tpp = make_tpp(mode=AddressingMode.STACK, perhop_len_bytes=8)
        tpp.sp = 24
        assert tpp.hops_executed() == 3

    def test_hop_mode_uses_counter(self):
        tpp = make_tpp(mode=AddressingMode.HOP, perhop_len_bytes=8)
        tpp.hop = 4
        assert tpp.hops_executed() == 4

    def test_no_perhop_means_zero(self):
        tpp = make_tpp(mode=AddressingMode.STACK, perhop_len_bytes=0)
        tpp.sp = 12
        assert tpp.hops_executed() == 0


class TestWireFormat:
    def test_encode_decode_round_trip(self):
        tpp = make_tpp(mode=AddressingMode.HOP, perhop_len_bytes=8,
                       task_id=3, seq=42)
        tpp.hop = 2
        tpp.write_word(0, 0xAABBCCDD)
        decoded = TPPSection.decode(tpp.encode())
        assert decoded.instructions == tpp.instructions
        assert decoded.memory == tpp.memory
        assert decoded.mode == AddressingMode.HOP
        assert decoded.hop == 2
        assert decoded.perhop_len_bytes == 8
        assert decoded.task_id == 3
        assert decoded.seq == 42

    def test_encoded_length_matches_header_field(self):
        tpp = make_tpp()
        assert len(tpp.encode()) == tpp.tpp_length_bytes

    def test_decode_rejects_truncated(self):
        with pytest.raises(TPPEncodingError):
            TPPSection.decode(b"\x00" * 4)

    def test_decode_rejects_length_mismatch(self):
        raw = bytearray(make_tpp().encode())
        raw.append(0)  # one stray byte
        with pytest.raises(TPPEncodingError):
            TPPSection.decode(bytes(raw))

    def test_decode_rejects_bad_mode(self):
        raw = bytearray(make_tpp().encode())
        raw[4] = 9  # mode byte
        with pytest.raises(TPPEncodingError):
            TPPSection.decode(bytes(raw))

    def test_flags_survive_round_trip(self):
        tpp = make_tpp()
        tpp.record_fault(FaultCode.WRITE_PROTECTED)
        tpp.mark_done()
        decoded = TPPSection.decode(tpp.encode())
        assert decoded.fault == FaultCode.WRITE_PROTECTED
        assert decoded.done


class TestCopy:
    def test_copy_isolates_memory(self):
        tpp = make_tpp()
        clone = tpp.copy()
        clone.write_word(0, 7)
        assert tpp.read_word(0) == 0

    def test_copy_preserves_header_fields(self):
        tpp = make_tpp(mode=AddressingMode.ABSOLUTE, seq=9, task_id=2)
        clone = tpp.copy()
        assert clone.mode == AddressingMode.ABSOLUTE
        assert clone.seq == 9
        assert clone.task_id == 2
