"""Static verifier: every diagnostic code, paired against runtime faults.

The core contract under test: for every statically-decidable fault the
differential suite can trigger at runtime, the verifier must flag the
program *before injection* with a stable ``TPP0xx`` code whose predicted
:class:`FaultCode` matches what execution actually stamps.
"""

import pytest

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.exceptions import FaultCode
from repro.core.isa import Instruction, Opcode
from repro.core.memory_map import MemoryMap
from repro.core.mmu import MMU, ExecutionContext, SRAMRegion
from repro.core.tcpu import TCPU
from repro.core.tpp import AddressingMode
from repro.core.verifier import (
    DIAGNOSTIC_CODES,
    VerificationError,
    verify,
    verify_program,
    verify_section,
)

_MAP = MemoryMap.standard()


class FakeQueue:
    occupancy_bytes = 500


class FakePort:
    index = 0
    queue = FakeQueue()


def make_mmu():
    mmu = MMU(name="verif")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    return mmu


def make_ctx(task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000,
                            task_id=task_id)


def check(source, max_hops=None, max_instructions=5, task_id=0,
          sram_regions=None, **assemble_kwargs):
    program = assemble(source, **assemble_kwargs)
    return program.verify(memory_map=_MAP, max_hops=max_hops,
                          max_instructions=max_instructions,
                          task_id=task_id, sram_regions=sram_regions)


def codes(result):
    return [d.code for d in result.diagnostics]


def run_fault(source, hops=1, task_id=0, max_instructions=5,
              prepare=None):
    """Execute on a real (interpreter) TCPU; return the first fault."""
    program = assemble(source)
    mmu = make_mmu()
    if prepare is not None:
        prepare(mmu)
    tcpu = TCPU(mmu, max_instructions=max_instructions, compile=False)
    tpp = program.build(task_id=task_id)
    for _ in range(hops):
        report = tcpu.execute(tpp, make_ctx(task_id))
        if report.fault != FaultCode.NONE:
            return report.fault
    return FaultCode.NONE


class TestDiagnosticTable:
    def test_every_code_has_severity(self):
        for code, (severity, _) in DIAGNOSTIC_CODES.items():
            assert code.startswith("TPP")
            assert severity in ("error", "warning", "info")

    def test_error_codes_predict_faults(self):
        """Every error-severity code except TPP011 (a structural lint)
        maps to the runtime FaultCode it predicts."""
        for code, (severity, fault) in DIAGNOSTIC_CODES.items():
            if severity == "error" and code != "TPP011":
                assert fault is not None, code


class TestStaticVsRuntime:
    """Each statically-decidable fault: flagged pre-injection, and the
    predicted FaultCode equals what the interpreter stamps."""

    def pair(self, source, code, runtime_fault, max_hops=None, hops=1,
             max_instructions=5, prepare=None):
        result = check(source, max_hops=max_hops,
                       max_instructions=max_instructions)
        assert code in codes(result)
        diag = next(d for d in result.errors if d.code == code)
        assert diag.fault == runtime_fault
        assert runtime_fault in result.predicted_faults()
        assert run_fault(source, hops=hops, prepare=prepare,
                         max_instructions=max_instructions) == runtime_fault

    def test_tpp001_too_many_instructions(self):
        self.pair("\n".join(["NOP"] * 4), "TPP001",
                  FaultCode.TOO_MANY_INSTRUCTIONS, max_instructions=3)

    def test_tpp002_stack_overflow(self):
        # One word of stack, two hops: hop 1 has no room left.
        self.pair(".hops 1\nPUSH [Switch:SwitchID]", "TPP002",
                  FaultCode.STACK_OVERFLOW, max_hops=2, hops=2)

    def test_tpp003_stack_underflow(self):
        self.pair("POP [Sram:Word0]", "TPP003", FaultCode.STACK_UNDERFLOW)

    def test_tpp004_memory_bounds(self):
        self.pair(".mode absolute\n.memory 1\n"
                  "LOAD [Switch:SwitchID], [Packet:5]", "TPP004",
                  FaultCode.MEMORY_BOUNDS)

    def test_tpp005_unmapped_address(self):
        self.pair(".memory 1\nLOAD [0x0999], [Packet:0]", "TPP005",
                  FaultCode.BAD_ADDRESS)

    def test_tpp006_write_protected(self):
        self.pair("PUSH [Switch:SwitchID]\nPOP [Queue:QueueSize]",
                  "TPP006", FaultCode.WRITE_PROTECTED)

    def test_tpp007_sram_protection(self):
        source = "PUSH [Switch:SwitchID]\nPOP [Sram:Word0]"
        regions = [SRAMRegion(start_word=0, n_words=2, task_id=1)]
        result = check(source, task_id=2, sram_regions=regions)
        assert "TPP007" in codes(result)
        diag = next(d for d in result.errors if d.code == "TPP007")
        assert diag.fault == FaultCode.SRAM_PROTECTION

        def prepare(mmu):
            mmu.allocate_sram(0, 2, task_id=1)
            mmu.enforce_sram_protection = True

        assert run_fault(source, task_id=2,
                         prepare=prepare) == FaultCode.SRAM_PROTECTION

    def test_tpp007_own_region_is_clean(self):
        regions = [SRAMRegion(start_word=0, n_words=2, task_id=2)]
        result = check("PUSH [Switch:SwitchID]\nPOP [Sram:Word0]",
                       task_id=2, sram_regions=regions)
        assert "TPP007" not in codes(result)
        assert result.ok


class TestStackAnalysis:
    def test_clean_program_verifies(self):
        result = check("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]",
                       max_hops=1, hops=1)
        assert result.ok
        assert result.certificate is not None

    def test_overflow_reports_offending_hop(self):
        result = check(".hops 1\nPUSH [Switch:SwitchID]", max_hops=3)
        diag = next(d for d in result.errors if d.code == "TPP002")
        assert diag.hop == 1

    def test_push_pop_balance_is_hop_safe(self):
        # Balanced per hop: never grows, so any hop count is fine.
        result = check("PUSH [Queue:QueueSize]\nPOP [Sram:Word0]",
                       max_hops=100, hops=1)
        assert not result.errors

    def test_cexec_partial_suffix_counted(self):
        """A CEXEC can kill the pushes after it, so the worst-case
        per-hop delta must consider the prefix endings too: a program
        whose *full* body is balanced can still underflow when only the
        prefix before the CEXEC runs."""
        source = """
            POP [Sram:Word0]
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7
            PUSH [Queue:QueueSize]
        """
        result = check(source, max_hops=2, hops=2)
        assert "TPP003" in codes(result)

    def test_no_hop_budget_only_first_execution_errors(self):
        """Without a hop budget, only faults on the very first execution
        are errors; finite capacity is reported as info."""
        result = check(".hops 1\nPUSH [Switch:SwitchID]", max_hops=None,
                       hops=1)
        assert not result.errors
        budget = [d for d in result.diagnostics if d.code == "TPP009"]
        assert budget and "supports 1 hop" in budget[0].message


class TestHopModePrograms:
    def test_hop_relative_clean(self):
        result = check(".mode hop\n.hops 3\n"
                       "LOAD [Switch:SwitchID], [Packet:Hop[0]]",
                       max_hops=3)
        assert result.ok

    def test_hop_relative_overrun(self):
        # 3 hop slots but a 4-hop budget: the last hop runs off the end.
        result = check(".mode hop\n.hops 3\n"
                       "LOAD [Switch:SwitchID], [Packet:Hop[0]]",
                       max_hops=4)
        assert "TPP004" in codes(result)

    def test_tpp011_stack_ops_in_hop_mode(self):
        instructions = [Instruction(Opcode.PUSH, 0xB000, 0)]
        result = verify(instructions, mode=AddressingMode.HOP,
                        word_size=4, memory_len=8, perhop_len_bytes=4,
                        memory_map=_MAP)
        assert "TPP011" in [d.code for d in result.diagnostics]
        assert not result.ok

    def test_cstore_pair_read_is_absolute_even_in_hop_mode(self):
        # CSTORE's (offset, offset+1) pair is absolute: slot 1 needs
        # words 1 and 2, but only 2 words exist.
        instructions = [Instruction(Opcode.CSTORE, 0xD000, 1)]
        result = verify(instructions, mode=AddressingMode.HOP,
                        word_size=4, memory_len=8, perhop_len_bytes=4,
                        memory_map=_MAP)
        assert "TPP004" in [d.code for d in result.diagnostics]


class TestDeadCodeAnalysis:
    def test_tpp008_impossible_condition(self):
        # expected has bits outside mask: can never match.
        result = check("""
            CEXEC [Switch:SwitchID], 0x0F, 0xFF
            PUSH [Queue:QueueSize]
        """, max_hops=1, hops=1)
        dead = [d for d in result.diagnostics if d.code == "TPP008"]
        assert dead and dead[0].severity == "warning"
        assert result.ok  # lint only, never a rejection

    def test_tpp008_needs_following_instructions(self):
        result = check("CEXEC [Switch:SwitchID], 0x0F, 0xFF",
                       max_hops=1, hops=1)
        assert "TPP008" not in codes(result)

    def test_tpp010_constant_true(self):
        result = check("""
            CEXEC [Switch:SwitchID], 0, 0
            PUSH [Queue:QueueSize]
        """, max_hops=1, hops=1)
        assert "TPP010" in codes(result)

    def test_no_dead_code_claim_when_operands_written(self):
        """If the program itself writes the CEXEC's operand words, the
        initial-memory constant proof must not fire."""
        source = """
            .mode absolute
            LOAD [Switch:SwitchID], [Packet:0]
            CEXEC [Switch:SwitchID], 0x0F, 0xFF
            NOP
        """
        program = assemble(source)
        # The CEXEC mask/expected literals share the pool the LOAD
        # writes into only if offsets collide; build such a collision
        # directly to be explicit.
        result = verify_program(program, memory_map=_MAP)
        cexec = program.instructions[1]
        load = program.instructions[0]
        if load.offset == cexec.offset:  # operand overwritten
            assert "TPP008" not in codes(result)


class TestCertificate:
    def test_fields_pin_geometry(self):
        program = assemble("PUSH [Switch:SwitchID]", hops=2)
        result = verify_program(program, memory_map=_MAP)
        cert = result.certificate
        assert cert is not None
        tpp = program.build()
        assert cert.program_key == tpp.program_key
        assert cert.memory_len == len(tpp.memory)
        assert cert.perhop_len_bytes == tpp.perhop_len_bytes
        assert cert.n_instructions == 1
        assert not cert.has_cexec

    def test_guard_interval_stack(self):
        # 2 words of memory, 1 push/hop: only SP=0 or 4 can start safely.
        program = assemble("PUSH [Switch:SwitchID]", hops=2)
        cert = verify_program(program, memory_map=_MAP).certificate
        assert (cert.guard_lo, cert.guard_hi) == (0, 4)

    def test_guard_interval_hop_mode(self):
        program = assemble(".mode hop\n.hops 3\n"
                           "LOAD [Switch:SwitchID], [Packet:Hop[0]]")
        cert = verify_program(program, memory_map=_MAP).certificate
        assert (cert.guard_lo, cert.guard_hi) == (0, 2)

    def test_no_certificate_on_errors(self):
        result = check("POP [Sram:Word0]")
        assert result.certificate is None
        assert not result.ok

    def test_cexec_flagged_in_certificate(self):
        program = assemble("CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7\n"
                           "PUSH [Queue:QueueSize]", hops=1)
        cert = verify_program(program, memory_map=_MAP).certificate
        assert cert is not None and cert.has_cexec


class TestResultAPI:
    def test_raise_on_error(self):
        result = check("POP [Sram:Word0]")
        with pytest.raises(VerificationError) as excinfo:
            result.raise_on_error()
        assert "TPP003" in str(excinfo.value)
        assert excinfo.value.result is result

    def test_format_includes_source_lines(self):
        result = check("NOP\nPOP [Sram:Word0]")
        text = result.format("probe.tpp")
        assert "probe.tpp:2: TPP003 error:" in text
        assert "rejected: 1 error(s)" in text

    def test_to_dict_roundtrips_to_json(self):
        import json
        result = check("PUSH [Switch:SwitchID]", max_hops=1, hops=1)
        blob = json.loads(json.dumps(result.to_dict()))
        assert blob["ok"] is True
        assert blob["certificate"]["n_instructions"] == 1

    def test_verify_defaults_to_standard_map(self):
        # The memory map is network-wide (Table 2), so address
        # resolution runs even when the caller passes no map.
        result = verify([Instruction(Opcode.POP, 0x0999, 0)],
                        memory_len=8)
        assert "TPP003" in [d.code for d in result.diagnostics]
        assert "TPP005" in [d.code for d in result.diagnostics]


class TestEntryPoints:
    def test_assemble_verify_true_raises_on_bad_program(self):
        with pytest.raises(VerificationError):
            assemble("POP [Sram:Word0]", memory_map=_MAP, verify=True)

    def test_assemble_verify_true_passes_clean_program(self):
        program = assemble("PUSH [Switch:SwitchID]", memory_map=_MAP,
                           verify=True)
        assert program.n_instructions == 1

    def test_program_verify_memoizes_default_result(self):
        program = assemble("PUSH [Switch:SwitchID]")
        assert program.verify() is program.verify()

    def test_verify_section(self):
        program = assemble("PUSH [Switch:SwitchID]", hops=2)
        tpp = program.build()
        result = verify_section(tpp, memory_map=_MAP)
        assert result.ok
        assert result.certificate.program_key == tpp.program_key

    def test_verify_section_flags_corrupted_counter(self):
        program = assemble("PUSH [Switch:SwitchID]", hops=1)
        tpp = program.build()
        tpp.hop_or_sp = 999  # scrambled in flight
        result = verify_section(tpp, memory_map=_MAP)
        # Verification is static (program + geometry), so the section
        # still verifies — the *certificate guard* is what rejects the
        # counter at execution time.
        cert = result.certificate
        assert cert is not None
        assert not (cert.guard_lo <= tpp.hop_or_sp <= cert.guard_hi)
