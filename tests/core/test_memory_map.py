"""The unified virtual address space (§3.2.1, Table 2)."""

import pytest

from repro.core import memory_map as mm
from repro.errors import ConfigurationError


class TestStandardLayout:
    def test_paper_listing_names_resolve(self, memory_map):
        """Every mnemonic spelled in the paper's example programs works."""
        for name in (
            "Queue:QueueSize",
            "Switch:SwitchID",
            "Switch:ID",                       # §2.3 spelling
            "Link:QueueSize",                  # §2.2 spelling
            "Link:RX-Utilization",
            "PacketMetadata:MatchedEntryID",
            "PacketMetadata:InputPort",
        ):
            assert memory_map.resolve(name) is not None

    def test_case_insensitive(self, memory_map):
        assert (memory_map.resolve("queue:queuesize")
                == memory_map.resolve("Queue:QueueSize"))

    def test_namespace_bases(self, memory_map):
        assert memory_map.resolve("Switch:SwitchID") == 0x0000
        assert memory_map.resolve("PacketMetadata:InputPort") == 0xA000
        assert memory_map.resolve("Queue:QueueSize") == 0xB000
        assert memory_map.resolve("Link:RX-Utilization") == 0xC000
        assert memory_map.resolve("Sram:Word0") == mm.SRAM_BASE

    def test_unknown_name_raises(self, memory_map):
        with pytest.raises(KeyError):
            memory_map.resolve("Switch:Nonexistent")

    def test_table2_per_switch_stats(self, memory_map):
        """Table 2's per-switch examples exist."""
        memory_map.resolve("Switch:SwitchID")
        memory_map.resolve("Switch:L2TableVersion")  # flow table version [8]
        memory_map.resolve("Switch:L2TableEntries")

    def test_table2_per_port_stats(self, memory_map):
        memory_map.resolve("Link:RX-Utilization")
        memory_map.resolve("Link:BytesReceived")
        memory_map.resolve("Queue:BytesDropped")
        memory_map.resolve("Queue:BytesEnqueued")

    def test_table2_per_packet_stats(self, memory_map):
        memory_map.resolve("PacketMetadata:InputPort")
        memory_map.resolve("PacketMetadata:OutputPort")
        memory_map.resolve("PacketMetadata:MatchedEntryID")
        memory_map.resolve("PacketMetadata:AlternateRoutes")

    def test_writability(self, memory_map):
        assert not memory_map.is_writable(
            memory_map.resolve("Queue:QueueSize"))
        assert memory_map.is_writable(memory_map.resolve("Sram:Word0"))
        assert memory_map.is_writable(memory_map.resolve("Link:Reg0"))

    def test_name_of_round_trip(self, memory_map):
        vaddr = memory_map.resolve("Queue:QueueSize")
        assert memory_map.name_of(vaddr) == "Queue:QueueSize"

    def test_name_of_unmapped(self, memory_map):
        assert memory_map.name_of(0x9999) == "0x9999"


class TestDynamicSymbols:
    def test_register_symbol(self, memory_map):
        vaddr = memory_map.resolve("Link:Reg0")
        memory_map.register_symbol("Link:RCP-RateRegister", vaddr)
        assert memory_map.resolve("Link:RCP-RateRegister") == vaddr

    def test_symbol_must_point_at_writable(self, memory_map):
        with pytest.raises(ConfigurationError):
            memory_map.register_symbol(
                "Link:Evil", memory_map.resolve("Queue:QueueSize"))

    def test_symbol_must_point_at_mapped(self, memory_map):
        with pytest.raises(ConfigurationError):
            memory_map.register_symbol("Link:Nowhere", 0x9999)

    def test_unregister(self, memory_map):
        vaddr = memory_map.resolve("Sram:Word5")
        memory_map.register_symbol("My:Thing", vaddr)
        memory_map.unregister_symbol("My:Thing")
        with pytest.raises(KeyError):
            memory_map.resolve("My:Thing")


class TestRegistration:
    def test_duplicate_name_rejected(self, memory_map):
        with pytest.raises(ConfigurationError):
            memory_map.add(mm.StatDescriptor("Queue:QueueSize", 0x9000,
                                             False, "dup"))

    def test_duplicate_address_rejected(self, memory_map):
        with pytest.raises(ConfigurationError):
            memory_map.add(mm.StatDescriptor("Fresh:Name", 0xB000,
                                             False, "dup addr"))

    def test_alias_target_must_exist(self, memory_map):
        with pytest.raises(ConfigurationError):
            memory_map.alias("X:Y", "Does:NotExist")


class TestRegions:
    def test_region_of(self):
        assert mm.region_of(0x0001) == "Switch"
        assert mm.region_of(0xA001) == "PacketMetadata"
        assert mm.region_of(0xB001) == "Queue"
        assert mm.region_of(0xC001) == "Link"
        assert mm.region_of(mm.SRAM_BASE + 1) == "Sram"
        assert mm.region_of(0xF000) == "unmapped"

    def test_is_sram(self):
        assert mm.is_sram(mm.SRAM_BASE)
        assert mm.is_sram(mm.SRAM_END - 1)
        assert not mm.is_sram(mm.SRAM_END)

    def test_is_link_scratch(self):
        assert mm.is_link_scratch(mm.LINK_SCRATCH_BASE)
        assert not mm.is_link_scratch(
            mm.LINK_SCRATCH_BASE + mm.LINK_SCRATCH_SLOTS)
