"""Golden wire bytes: the TPP format is frozen.

These byte strings are the on-the-wire contract.  If any of them changes,
every deployed TCPU would misparse packets — so a failure here means a
(deliberate or accidental) wire-format break, not a bug in the test.
"""

from repro.core.assembler import assemble
from repro.core.isa import Instruction, Opcode


class TestGoldenInstructions:
    def test_push_queue_size(self):
        # opcode 0x03, vaddr 0xB000, offset 0
        assert Instruction(Opcode.PUSH, 0xB000).encode().hex() == \
            "03b00000"

    def test_load_switch_id_to_word_1(self):
        assert Instruction(Opcode.LOAD, 0x0000, 1).encode().hex() == \
            "01000001"

    def test_cstore(self):
        assert Instruction(Opcode.CSTORE, 0xD000, 4).encode().hex() == \
            "05d00004"

    def test_cexec(self):
        assert Instruction(Opcode.CEXEC, 0x0000, 2).encode().hex() == \
            "06000002"


class TestGoldenTPPSection:
    def test_microburst_probe_bytes(self):
        """The §2.1 one-liner, 3 hops of memory, fresh off the assembler."""
        program = assemble("PUSH [Queue:QueueSize]", hops=3)
        encoded = program.build().encode()
        assert encoded.hex() == (
            "001c"      # total TPP length: 28 bytes
            "000c"      # packet memory: 12 bytes
            "00"        # addressing mode: stack
            "04"        # word size: 4
            "0000"      # SP = 0
            "04"        # per-hop length: 4 bytes
            "00"        # flags
            "00"        # task id
            "00"        # seq
            "03b00000"  # PUSH [Queue:QueueSize]
            + "00" * 12  # zeroed packet memory
        )

    def test_header_fields_positions(self):
        program = assemble("PUSH [Queue:QueueSize]", hops=2)
        tpp = program.build(task_id=0xAB, seq=0xCD)
        raw = tpp.encode()
        assert raw[10] == 0xAB   # task id byte
        assert raw[11] == 0xCD   # seq byte

    def test_executed_probe_bytes_differ_only_where_expected(self):
        """After one simulated hop, only SP and one memory word change."""
        from repro import quickstart_network
        net = quickstart_network(n_switches=1)
        program = assemble("PUSH [Queue:QueueSize]", hops=1)
        before = program.build().encode()
        results = []
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac,
                                on_response=results.append)
        net.run(until_seconds=0.01)
        after = bytearray(results[0].tpp.encode())
        after[9] = 0  # clear the done flag for comparison
        # SP advanced from 0 to 4:
        assert after[6:8] == b"\x00\x04"
        after[6:8] = b"\x00\x00"
        # seq byte may differ; normalize.
        after[11] = before[11]
        # The only other change is the pushed word (memory word 0).
        assert bytes(after[:16]) == before[:16]
        assert len(after) == len(before)
