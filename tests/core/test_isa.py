"""Instruction encoding (4 bytes, as the paper requires)."""

import pytest

from repro.core.exceptions import TPPEncodingError
from repro.core.isa import (
    INSTRUCTION_BYTES,
    Instruction,
    Opcode,
    decode_program,
    encode_program,
)


class TestEncoding:
    def test_instruction_is_exactly_four_bytes(self):
        encoded = Instruction(Opcode.PUSH, addr=0xB000).encode()
        assert len(encoded) == 4

    def test_round_trip_all_opcodes(self):
        for opcode in Opcode:
            original = Instruction(opcode, addr=0x1234, offset=0x56)
            assert Instruction.decode(original.encode()) == original

    def test_known_bytes(self):
        encoded = Instruction(Opcode.PUSH, addr=0xB000, offset=0).encode()
        assert encoded == bytes([0x03, 0xB0, 0x00, 0x00])

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(TPPEncodingError):
            Instruction.decode(b"\x01\x02\x03")

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(TPPEncodingError):
            Instruction.decode(bytes([0xFF, 0, 0, 0]))

    def test_addr_out_of_range_rejected(self):
        with pytest.raises(TPPEncodingError):
            Instruction(Opcode.LOAD, addr=0x10000)

    def test_offset_out_of_range_rejected(self):
        with pytest.raises(TPPEncodingError):
            Instruction(Opcode.LOAD, addr=0, offset=256)

    def test_negative_addr_rejected(self):
        with pytest.raises(TPPEncodingError):
            Instruction(Opcode.LOAD, addr=-1)


class TestProgramEncoding:
    def test_program_round_trip(self):
        program = [
            Instruction(Opcode.PUSH, addr=0xB000),
            Instruction(Opcode.LOAD, addr=0x0000, offset=1),
            Instruction(Opcode.CEXEC, addr=0x0000, offset=4),
        ]
        assert decode_program(encode_program(program)) == program

    def test_program_size_is_4n(self):
        program = [Instruction(Opcode.NOP)] * 5
        assert len(encode_program(program)) == 5 * INSTRUCTION_BYTES

    def test_decode_rejects_partial_instruction(self):
        with pytest.raises(TPPEncodingError):
            decode_program(b"\x00" * 6)

    def test_empty_program(self):
        assert decode_program(b"") == []
        assert encode_program([]) == b""


class TestOpcodeProperties:
    def test_paper_table1_opcodes_present(self):
        # Table 1: LOAD, PUSH, STORE, POP, CSTORE, CEXEC.
        for name in ("LOAD", "PUSH", "STORE", "POP", "CSTORE", "CEXEC"):
            assert hasattr(Opcode, name)

    def test_opcode_values_stable(self):
        # Wire-stability: these values must never change.
        assert Opcode.NOP == 0x00
        assert Opcode.LOAD == 0x01
        assert Opcode.STORE == 0x02
        assert Opcode.PUSH == 0x03
        assert Opcode.POP == 0x04
        assert Opcode.CSTORE == 0x05
        assert Opcode.CEXEC == 0x06

    def test_instructions_are_immutable(self):
        instruction = Instruction(Opcode.NOP)
        with pytest.raises(AttributeError):
            instruction.addr = 5


class TestOpcodeValidation:
    """Regression: ``Instruction`` must validate its opcode at
    construction, not let an arbitrary int ride to the wire and explode
    only at decode time on the far side of the network."""

    def test_plain_int_opcode_coerced_to_enum(self):
        instruction = Instruction(0x03, 0xB000, 0)
        assert instruction.opcode is Opcode.PUSH
        assert instruction.encode() == Instruction(Opcode.PUSH,
                                                   0xB000, 0).encode()

    def test_unknown_int_opcode_rejected(self):
        with pytest.raises(TPPEncodingError):
            Instruction(0x99, 0, 0)

    def test_unknown_opcode_never_reaches_the_wire(self):
        with pytest.raises(TPPEncodingError):
            encode_program([Instruction(0xFE, 0, 0)])
