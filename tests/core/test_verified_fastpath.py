"""Differential proof: verified (check-elided) fast path ≡ interpreter.

Three-way equivalence for certified programs: a TCPU holding the
verifier's certificate (elided closures), a plain compiled TCPU, and the
reference interpreter must produce bit-identical observables — reports,
packet memory, flags, hop/SP counter, and the full wire encoding.  Also
covers the per-execution guard: sections whose geometry or counter fall
outside the certificate silently use the fully-checked closures and
fault exactly like the interpreter.
"""

import random

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.exceptions import FaultCode
from repro.core.memory_map import MemoryMap, SRAM_WORDS
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU
from repro.core.verifier import verify_program

_MAP = MemoryMap.standard()


class FakeQueue:
    def __init__(self, occupancy=500):
        self.occupancy_bytes = occupancy


class FakePort:
    def __init__(self, index=0):
        self.index = index
        self.queue = FakeQueue()


def make_mmu(clock=123456):
    mmu = MMU(name="vdiff")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7)
    mmu.bind_reader("Switch:ClockLo", lambda ctx: clock)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    return mmu


def make_ctx(task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000,
                            task_id=task_id)


def report_tuple(report):
    return (report.executed, report.skipped, report.fault,
            report.cexec_disabled_at, report.cycles,
            list(report.switch_writes))


def run_three_way(source, hops=1, task_id=0, max_instructions=5,
                  prepare=None, damage=None, **assemble_kwargs):
    """Run verified, plain-compiled, and interpreted; assert identical.

    Returns the verified run's ``(reports, tpp, mmu, tcpu)``.
    """
    program = assemble(source, **assemble_kwargs)
    result = verify_program(program, memory_map=_MAP,
                            max_instructions=max_instructions)
    results = []
    for flavour in ("verified", "compiled", "interp"):
        mmu = make_mmu()
        if prepare is not None:
            prepare(mmu)
        tcpu = TCPU(mmu, max_instructions=max_instructions,
                    compile=(flavour != "interp"))
        if flavour == "verified" and result.certificate is not None:
            tcpu.trust(result.certificate)
        tpp = program.build(task_id=task_id)
        if damage is not None:
            damage(tpp)
            tpp.invalidate_caches()
        reports = [tcpu.execute(tpp, make_ctx(task_id))
                   for _ in range(hops)]
        results.append((reports, tpp, mmu, tcpu))

    verified, compiled, interp = results
    for other in (compiled, interp):
        for hop, (fast, ref) in enumerate(zip(verified[0], other[0])):
            assert report_tuple(fast) == report_tuple(ref), f"hop {hop}"
        assert verified[1].flags == other[1].flags
        assert verified[1].hop_or_sp == other[1].hop_or_sp
        assert bytes(verified[1].memory) == bytes(other[1].memory)
        assert verified[1].encode() == other[1].encode()
        sram = [verified[2].peek_sram(i) for i in range(SRAM_WORDS)]
        assert sram == [other[2].peek_sram(i) for i in range(SRAM_WORDS)]
    return verified


class TestVerifiedEquivalence:
    def test_push_program(self):
        reports, _, _, tcpu = run_three_way(
            "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]", hops=1)
        assert tcpu.verified_executions == 1
        assert reports[0].executed == 2

    def test_pop_writeback(self):
        _, tpp, mmu, tcpu = run_three_way("""
            PUSH [Queue:QueueSize]
            POP [Sram:Word3]
        """)
        assert tcpu.verified_executions == 1
        assert mmu.peek_sram(3) == 500
        assert tpp.sp == 0

    def test_hop_relative_multihop(self):
        _, tpp, _, tcpu = run_three_way(
            ".mode hop\n.hops 3\n"
            "LOAD [Switch:SwitchID], [Packet:Hop[0]]", hops=3)
        # Guard is [0, 2]: all three hops run verified.
        assert tcpu.verified_executions == 3
        assert tpp.hop == 3

    def test_absolute_arithmetic(self):
        _, tpp, _, tcpu = run_three_way("""
            .data 0 41
            ADD [Packet:0], [Switch:SwitchID]
        """)
        assert tcpu.verified_executions == 1
        assert tpp.read_word(0) == 48

    def test_cstore(self):
        def prepare(mmu):
            mmu.poke_sram(0, 10)

        _, tpp, mmu, tcpu = run_three_way(
            "CSTORE [Sram:Word0], 10, 99", prepare=prepare)
        assert tcpu.verified_executions == 1
        assert mmu.peek_sram(0) == 99

    def test_cexec_uses_general_loop(self):
        reports, _, _, tcpu = run_three_way("""
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 8
            PUSH [Queue:QueueSize]
        """)
        assert tcpu.verified_executions == 1
        assert reports[0].cexec_disabled_at == 0
        assert reports[0].skipped == 1

    def test_word8(self):
        _, tpp, _, tcpu = run_three_way("""
            .word 8
            .data 0 1
            ADD [Packet:0], [Switch:ClockLo]
        """)
        assert tcpu.verified_executions == 1
        assert tpp.read_word(0) == 123457


class TestGuardFallback:
    """Outside the certificate's interval the checked closures run and
    fault exactly like the interpreter — proven by the same three-way
    equivalence, now on fault-producing inputs."""

    def test_hop_past_capacity_falls_back_and_faults(self):
        # Guard is [0, 0] (one word, one push/hop): hop 1 falls back
        # to checked closures and stamps STACK_OVERFLOW identically.
        reports, tpp, _, tcpu = run_three_way(
            ".hops 1\nPUSH [Switch:SwitchID]", hops=2)
        assert tcpu.verified_executions == 1
        assert reports[0].fault == FaultCode.NONE
        assert reports[1].fault == FaultCode.STACK_OVERFLOW
        assert tpp.fault == FaultCode.STACK_OVERFLOW

    def test_scrambled_counter_falls_back(self):
        def damage(tpp):
            tpp.hop_or_sp = 500

        _, _, _, tcpu = run_three_way(
            "PUSH [Switch:SwitchID]", damage=damage)
        assert tcpu.verified_executions == 0

    def test_truncated_memory_falls_back(self):
        def damage(tpp):
            del tpp.memory[:]

        reports, _, _, tcpu = run_three_way(
            "PUSH [Switch:SwitchID]", damage=damage)
        assert tcpu.verified_executions == 0
        assert reports[0].fault == FaultCode.STACK_OVERFLOW

    def test_unverified_program_never_elides(self):
        """No certificate: behavior is the plain compiled path."""
        mmu = make_mmu()
        tcpu = TCPU(mmu)
        program = assemble("POP [Sram:Word0]")
        tpp = program.build()
        report = tcpu.execute(tpp, make_ctx())
        assert tcpu.verified_executions == 0
        assert report.fault == FaultCode.STACK_UNDERFLOW

    def test_runtime_fault_inside_verified_loop(self):
        """Statically clean, dynamically faulting: the verified tight
        loop still stamps MMU faults (unbound statistic) identically."""
        program = assemble("PUSH [Switch:SwitchID]")
        result = verify_program(program, memory_map=_MAP)
        assert result.ok
        runs = []
        for compile_flag in (True, False):
            mmu = MMU(name="unbound")  # SwitchID is *not* bound
            tcpu = TCPU(mmu, compile=compile_flag)
            if compile_flag:
                tcpu.trust(result.certificate)
            tpp = program.build()
            runs.append((tcpu.execute(tpp, make_ctx()), tpp, tcpu))
        (fast_report, fast_tpp, fast_tcpu), (ref_report, ref_tpp, _) = runs
        assert fast_tcpu.verified_executions == 1
        assert report_tuple(fast_report) == report_tuple(ref_report)
        assert fast_report.fault == FaultCode.BAD_ADDRESS
        assert fast_tpp.encode() == ref_tpp.encode()


class TestTrustManagement:
    """Certificate lifecycle on the TCPU.  ``compile=True`` is forced:
    these tests target the compiled trust machinery and must hold even
    when the suite runs under ``REPRO_TPP_FASTPATH=0``."""

    def program_and_cert(self, source="PUSH [Switch:SwitchID]", **kwargs):
        program = assemble(source, **kwargs)
        return program, verify_program(
            program, memory_map=_MAP).certificate

    def test_trust_and_distrust(self):
        program, cert = self.program_and_cert()
        tcpu = TCPU(make_mmu(), compile=True)
        tcpu.trust(cert)
        assert tcpu.certificates == 1
        tpp = program.build()
        tcpu.execute(tpp, make_ctx())
        assert tcpu.verified_executions == 1
        tcpu.distrust(cert)
        assert tcpu.certificates == 0
        tpp = program.build()
        tcpu.execute(tpp, make_ctx())
        assert tcpu.verified_executions == 1  # unchanged

    def test_trust_is_idempotent(self):
        """Re-pushing the same certificate must not evict the warm
        compiled entry (admission policies push per arrival)."""
        program, cert = self.program_and_cert()
        tcpu = TCPU(make_mmu(), compile=True)
        tcpu.trust(cert)
        tpp = program.build()
        tcpu.execute(tpp, make_ctx())
        misses_after_first = tcpu.cache.stats()["misses"]
        for _ in range(5):
            tcpu.trust(cert)
            tpp = program.build()
            tcpu.execute(tpp, make_ctx())
        assert tcpu.verified_executions == 6
        assert tcpu.cache.stats()["misses"] == misses_after_first

    def test_certificate_survives_cache_eviction(self):
        program, cert = self.program_and_cert()
        tcpu = TCPU(make_mmu(), compile=True)
        tcpu.trust(cert)
        tpp = program.build()
        tcpu.execute(tpp, make_ctx())
        tcpu.cache.clear()
        tpp = program.build()
        tcpu.execute(tpp, make_ctx())
        assert tcpu.verified_executions == 2

    def test_switch_stats_expose_verified_counters(self):
        from repro import units
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import TopologyBuilder

        builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC)
        net = builder.star(n_hosts=2)
        install_shortest_path_routes(net)
        switch = next(iter(net.switches.values()))
        stats = switch.fastpath_stats()
        assert stats["certificates"] == 0
        assert stats["verified_executions"] == 0


class TestRandomizedVerifiedSweep:
    """Seeded fuzz: every program that *passes* verification must run
    bit-identically on the verified path across its whole hop budget."""

    TEMPLATES = [
        "PUSH [Switch:SwitchID]",
        "PUSH [Queue:QueueSize]",
        "PUSH [Switch:ClockLo]",
        "POP [Sram:Word{word}]",
        "LOAD [Switch:ClockLo], [Packet:{slot}]",
        "STORE [Sram:Word{word}], [Packet:{slot}]",
        "CSTORE [Sram:Word{word}], {imm}, {imm2}",
        "CEXEC [Switch:SwitchID], 0xFF, {imm}",
        "ADD [Packet:{slot}], [Switch:SwitchID]",
        "XOR [Packet:{slot}], [Switch:ClockLo]",
        "NOP",
    ]

    def test_random_verified_programs_agree(self):
        rng = random.Random(20260807)
        verified_runs = 0
        for _ in range(120):
            n = rng.randint(1, 5)
            lines = [f".mode {rng.choice(['stack', 'absolute'])}",
                     f".memory {rng.randint(0, 6)}"]
            for _ in range(n):
                template = rng.choice(self.TEMPLATES)
                lines.append(template.format(
                    word=rng.randint(0, 5),
                    slot=rng.randint(0, 7),
                    imm=rng.randint(0, 255),
                    imm2=rng.randint(0, 255),
                ))
            source = "\n".join(lines)
            hops = rng.randint(1, 3)
            program = assemble(source)
            if not verify_program(program, memory_map=_MAP,
                                  max_hops=hops).ok:
                continue
            _, _, _, tcpu = run_three_way(source, hops=hops)
            verified_runs += tcpu.verified_executions
        assert verified_runs > 50  # the sweep actually exercised elision


class TestCertificateStaleness:
    """MMU layout bumps must sweep the certificate table.

    A certificate pins address-resolution facts (TPP005) proven against
    the accessor bindings in force at verification time; a
    ``bind_reader`` re-binding silently changes those facts, so eliding
    checks under the old certificate would replay stale reads.
    Regression for the pre-sweep behaviour where only the compiled
    cache was invalidated and ``_verified`` survived the bump.
    """

    def _trusted(self, source="PUSH [Switch:ClockLo]"):
        program = assemble(source)
        cert = verify_program(program, memory_map=_MAP).certificate
        mmu = make_mmu(clock=5)
        tcpu = TCPU(mmu, compile=True)
        assert tcpu.trust(cert)
        return program, cert, mmu, tcpu

    def test_layout_bump_sweeps_certificate_table(self):
        program, cert, mmu, tcpu = self._trusted()
        tcpu.execute(program.build(), make_ctx())
        assert tcpu.verified_executions == 1
        mmu.bind_reader("Switch:ClockLo", lambda ctx: 42)
        assert tcpu.certificates == 0
        assert tcpu.certificates_swept == 1
        tcpu.execute(program.build(), make_ctx())
        assert tcpu.verified_executions == 1  # no stale elision

    def test_rebound_reader_value_observed_after_bump(self):
        """Executing after a re-bind must see the new binding — the
        stale-certificate TCPU and a fresh TCPU must agree bit for
        bit on the packet memory."""
        program, _, mmu, tcpu = self._trusted()
        tcpu.execute(program.build(), make_ctx())
        mmu.bind_reader("Switch:ClockLo", lambda ctx: 42)
        stale = program.build()
        tcpu.execute(stale, make_ctx())
        fresh = program.build()
        TCPU(mmu, compile=True).execute(fresh, make_ctx())
        assert bytes(stale.memory) == bytes(fresh.memory)

    def test_retrust_after_bump_restores_verified_path(self):
        program, cert, mmu, tcpu = self._trusted()
        mmu.bind_reader("Switch:ClockLo", lambda ctx: 42)
        assert tcpu.certificates == 0
        assert tcpu.trust(cert)
        assert tcpu.certificates == 1
        tcpu.execute(program.build(), make_ctx())
        assert tcpu.verified_executions == 1

    def test_layout_bump_resets_race_fleet(self):
        writer_a = assemble(".memory 1\nSTORE [Sram:Word0], [Packet:0]")
        writer_b = assemble(".memory 2\nSTORE [Sram:Word0], [Packet:1]")
        mmu = make_mmu()
        tcpu = TCPU(mmu, compile=True, race_mode="warn")
        for program in (writer_a, writer_b):
            cert = verify_program(program, memory_map=_MAP).certificate
            assert tcpu.trust(cert)
        assert len(tcpu.fleet) == 2
        assert any(d.code == "TPP020" for d in tcpu.race_conflicts)
        mmu.bind_reader("Switch:ClockLo", lambda ctx: 42)
        assert tcpu.certificates == 0  # triggers the sweep
        assert len(tcpu.fleet) == 0
        assert tcpu.certificates_swept == 2


class TestTrustRaceGating:
    """Fleet race policy at the ``TCPU.trust`` admission point."""

    def _certs(self):
        a = assemble(".memory 1\nSTORE [Sram:Word0], [Packet:0]")
        b = assemble(".memory 2\nSTORE [Sram:Word0], [Packet:1]")
        return (verify_program(a, memory_map=_MAP).certificate,
                verify_program(b, memory_map=_MAP).certificate)

    def test_invalid_race_mode_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            TCPU(make_mmu(), race_mode="paranoid")

    def test_warn_mode_trusts_and_records_conflicts(self):
        cert_a, cert_b = self._certs()
        tcpu = TCPU(make_mmu(), compile=True, race_mode="warn")
        assert tcpu.trust(cert_a)
        assert tcpu.trust(cert_b)
        assert tcpu.certificates == 2
        assert tcpu.certificates_refused == 0
        assert [d.code for d in tcpu.race_conflicts] == ["TPP020"]

    def test_enforce_mode_refuses_racing_certificate(self):
        cert_a, cert_b = self._certs()
        tcpu = TCPU(make_mmu(), compile=True, race_mode="enforce")
        assert tcpu.trust(cert_a)
        assert not tcpu.trust(cert_b)
        assert tcpu.certificates == 1
        assert tcpu.certificates_refused == 1
        assert len(tcpu.fleet) == 1
        # The incumbent keeps its slot and the word is freed on
        # distrust, after which the rival admits cleanly.
        tcpu.distrust(cert_a)
        assert tcpu.trust(cert_b)
        assert tcpu.certificates == 1

    def test_off_mode_skips_fleet_analysis(self):
        cert_a, cert_b = self._certs()
        tcpu = TCPU(make_mmu(), compile=True, race_mode="off")
        assert tcpu.trust(cert_a)
        assert tcpu.trust(cert_b)
        assert tcpu.certificates == 2
        assert tcpu.race_conflicts == []
        assert len(tcpu.fleet) == 0
