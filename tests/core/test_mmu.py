"""MMU translation, write protection, and SRAM isolation."""

import pytest

from repro.asic.metadata import PacketMetadata
from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.memory_map import LINK_SCRATCH_BASE, SRAM_BASE
from repro.core.mmu import MMU, ExecutionContext


class FakeQueue:
    occupancy_bytes = 123


class FakePort:
    def __init__(self, index=0):
        self.index = index
        self.queue = FakeQueue()


def make_ctx(port_index=0, task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(port_index),
                            time_ns=0, task_id=task_id)


class TestReaders:
    def test_bound_reader_resolves(self):
        mmu = MMU()
        mmu.bind_reader("Switch:SwitchID", lambda ctx: 7)
        vaddr = mmu.memory_map.resolve("Switch:SwitchID")
        assert mmu.read(vaddr, make_ctx()) == 7

    def test_bind_by_raw_address(self):
        mmu = MMU()
        mmu.bind_reader(0x0001, lambda ctx: 99)
        assert mmu.read(0x0001, make_ctx()) == 99

    def test_unbound_address_faults(self):
        mmu = MMU()
        with pytest.raises(TCPUFault) as excinfo:
            mmu.read(0xB000, make_ctx())
        assert excinfo.value.code == FaultCode.BAD_ADDRESS

    def test_reader_sees_context(self):
        mmu = MMU()
        mmu.bind_reader("Queue:QueueSize",
                        lambda ctx: ctx.queue.occupancy_bytes)
        vaddr = mmu.memory_map.resolve("Queue:QueueSize")
        assert mmu.read(vaddr, make_ctx()) == 123

    def test_write_to_reader_address_faults(self):
        mmu = MMU()
        mmu.bind_reader("Queue:QueueSize", lambda ctx: 0)
        vaddr = mmu.memory_map.resolve("Queue:QueueSize")
        with pytest.raises(TCPUFault) as excinfo:
            mmu.write(vaddr, 1, make_ctx())
        assert excinfo.value.code == FaultCode.WRITE_PROTECTED

    def test_write_to_unmapped_faults(self):
        mmu = MMU()
        with pytest.raises(TCPUFault) as excinfo:
            mmu.write(0x9999, 1, make_ctx())
        assert excinfo.value.code == FaultCode.BAD_ADDRESS


class TestSram:
    def test_read_write_round_trip(self):
        mmu = MMU()
        mmu.write(SRAM_BASE + 3, 42, make_ctx())
        assert mmu.read(SRAM_BASE + 3, make_ctx()) == 42

    def test_initially_zero(self):
        assert MMU().read(SRAM_BASE, make_ctx()) == 0

    def test_peek_poke(self):
        mmu = MMU()
        mmu.poke_sram(5, 77)
        assert mmu.peek_sram(5) == 77
        assert mmu.read(SRAM_BASE + 5, make_ctx()) == 77


class TestSramProtection:
    def test_no_enforcement_by_default(self):
        mmu = MMU()
        mmu.allocate_sram(0, 4, task_id=1)
        mmu.write(SRAM_BASE, 1, make_ctx(task_id=2))  # no fault

    def test_enforced_foreign_access_faults(self):
        mmu = MMU()
        mmu.enforce_sram_protection = True
        mmu.allocate_sram(0, 4, task_id=1)
        with pytest.raises(TCPUFault) as excinfo:
            mmu.write(SRAM_BASE, 1, make_ctx(task_id=2))
        assert excinfo.value.code == FaultCode.SRAM_PROTECTION

    def test_enforced_owner_access_ok(self):
        mmu = MMU()
        mmu.enforce_sram_protection = True
        mmu.allocate_sram(0, 4, task_id=1)
        mmu.write(SRAM_BASE + 1, 5, make_ctx(task_id=1))
        assert mmu.read(SRAM_BASE + 1, make_ctx(task_id=1)) == 5

    def test_unallocated_words_open(self):
        mmu = MMU()
        mmu.enforce_sram_protection = True
        mmu.allocate_sram(0, 4, task_id=1)
        mmu.write(SRAM_BASE + 10, 5, make_ctx(task_id=2))

    def test_overlapping_allocation_rejected(self):
        mmu = MMU()
        mmu.allocate_sram(0, 4, task_id=1)
        with pytest.raises(TCPUFault):
            mmu.allocate_sram(2, 4, task_id=2)

    def test_out_of_range_allocation_rejected(self):
        mmu = MMU()
        with pytest.raises(TCPUFault):
            mmu.allocate_sram(100000, 4, task_id=1)

    def test_release_zeroes_and_frees(self):
        mmu = MMU()
        mmu.allocate_sram(0, 2, task_id=1)
        mmu.poke_sram(0, 99)
        mmu.release_sram(1)
        assert mmu.peek_sram(0) == 0
        assert mmu.sram_owner(0) is None
        mmu.allocate_sram(0, 2, task_id=2)  # region reusable

    def test_sram_owner(self):
        mmu = MMU()
        mmu.allocate_sram(4, 2, task_id=9)
        assert mmu.sram_owner(4) == 9
        assert mmu.sram_owner(5) == 9
        assert mmu.sram_owner(6) is None


class TestLinkScratch:
    def test_per_port_isolation(self):
        mmu = MMU()
        vaddr = LINK_SCRATCH_BASE
        mmu.write(vaddr, 11, make_ctx(port_index=0))
        mmu.write(vaddr, 22, make_ctx(port_index=1))
        assert mmu.read(vaddr, make_ctx(port_index=0)) == 11
        assert mmu.read(vaddr, make_ctx(port_index=1)) == 22

    def test_peek_poke_by_port(self):
        mmu = MMU()
        mmu.poke_link_scratch(3, 0, 1234)
        assert mmu.peek_link_scratch(3, 0) == 1234
        assert mmu.read(LINK_SCRATCH_BASE, make_ctx(port_index=3)) == 1234

    def test_slots_independent(self):
        mmu = MMU()
        mmu.write(LINK_SCRATCH_BASE + 0, 1, make_ctx())
        mmu.write(LINK_SCRATCH_BASE + 1, 2, make_ctx())
        assert mmu.read(LINK_SCRATCH_BASE + 0, make_ctx()) == 1
        assert mmu.read(LINK_SCRATCH_BASE + 1, make_ctx()) == 2
