"""Relational abstract interpretation: domain facts vs ground truth.

Every static fact the relational layer produces is checked two ways:
once against the domain's own contract (the summary says what it
should), and once against the reference interpreter — a fact that
claims an instruction can never execute, a claim can never fire, or a
fleet is order-insensitive must match what actually happens when the
programs run.  The fleet-level claim-epoch refinement is additionally
held to the :func:`check_fleet` reference semantics from the
incremental :class:`FleetRaceTable`.
"""

import pytest

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.core.exceptions import FaultCode
from repro.core.mmu import MMU, ExecutionContext
from repro.core.racecheck import (
    FleetRaceTable,
    SwitchBinding,
    check_fleet,
    check_fleet_multiswitch,
    summarize_program,
)
from repro.core.relational import (
    FIRE_ENTRY,
    analyze_relations,
    claim_can_fire,
    reachable_values,
)
from repro.core.tcpu import TCPU
from repro.core.verifier import verify_program

_MAP = MemoryMap.standard()

# A statically-false fence (expected bits outside the mask) with a
# switch-writing instruction stranded behind it.
DEAD_FENCE = """.memory 2
LOAD [Switch:ClockLo], [Packet:0]
CEXEC [Switch:SwitchID], 0x0F, 0xF0
STORE [Sram:Word0], [Packet:0]
"""

# Claim pair on one word with disjoint claim epochs: a moves 0 -> 1,
# b moves 2 -> 3.  (The trailing NOP keeps the program keys distinct —
# the literal pool differs but the instruction stream alone would not.)
CLAIM_A = "CSTORE [Sram:Word0], 0, 1"
CLAIM_B = "CSTORE [Sram:Word0], 2, 3\nNOP"


class FakeQueue:
    occupancy_bytes = 500


class FakePort:
    index = 0
    queue = FakeQueue()


def make_ctx(task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000,
                            task_id=task_id)


def make_mmu(**poked):
    mmu = MMU(name="relational")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7)
    mmu.bind_reader("Switch:ClockLo", lambda ctx: 123456)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    for word, value in poked.items():
        mmu.poke_sram(int(word), value)
    return mmu


def relations_of(program, entry=0):
    return analyze_relations(
        program.instructions, mode=program.mode,
        word_size=program.word_size,
        memory_len=len(program.initial_memory),
        perhop_len_bytes=program.perhop_len_bytes,
        initial_memory=bytes(program.initial_memory),
        entry=entry, memory_map=_MAP)


class TestDomain:
    def test_const_cexec_yields_dead_suffix(self):
        rel = relations_of(assemble(DEAD_FENCE))
        assert rel.dead_suffix_at == 1
        # (index, word-ish, mask, expected) with expected & ~mask != 0.
        assert rel.const_cexecs
        index, _, mask, expected = rel.const_cexecs[0]
        assert index == 1 and expected & ~mask

    def test_reachable_fence_is_not_dead(self):
        rel = relations_of(assemble("""
            .memory 2
            CEXEC [Switch:SwitchID], 0x0F, 0x07
            STORE [Sram:Word0], [Packet:0]
        """))
        assert rel.dead_suffix_at is None

    def test_claim_effects_record_epochs(self):
        rel = relations_of(assemble(CLAIM_A))
        assert len(rel.claims) == 1
        claim = rel.claims[0]
        assert claim.word == 0
        assert claim.fire == FIRE_ENTRY
        assert claim.conds == ((("c", 0),))
        assert claim.srcs == ((("c", 1),))

    def test_entry_none_degrades_push_tracking(self):
        """Unpinned entry counters quantify PUSH over the whole guard
        interval: no slot is trackable, so no dead-suffix fact — a
        documented precision loss, never an unsound fact."""
        source = """.memory 3
            PUSH [Switch:SwitchID]
            CEXEC [Switch:SwitchID], 0x0F, 0xF0
            STORE [Sram:Word0], [Packet:0]
        """
        program = assemble(source, hops=1)
        pinned = relations_of(program, entry=0)
        unpinned = relations_of(program, entry=None)
        assert pinned.dead_suffix_at == 1
        assert unpinned.dead_suffix_at == 1 or \
            unpinned.dead_suffix_at is None
        # The CEXEC literals here are program constants independent of
        # the counter, so even the unpinned pass may keep the fact; a
        # PUSH landing *on* the literal pool must kill it.  Force the
        # collision: one word of declared memory, pool right after it.

    def test_summary_roundtrips_through_dict(self):
        rel = relations_of(assemble(DEAD_FENCE))
        blob = rel.to_dict()
        assert blob["dead_suffix_at"] == 1
        assert blob["const_cexecs"]

    def test_reachable_values_closes_over_claims(self):
        sa = summarize_program(assemble(CLAIM_A), task_id=0, name="a")
        reach = reachable_values([(sa, sa.relational)], {0: 0})
        # 0 is the initial value; 1 becomes reachable once a fires.
        assert reach[(0, 0)] == frozenset({0, 1})

    def test_reachable_values_floor_is_monotone(self):
        sa = summarize_program(assemble(CLAIM_A), task_id=0, name="a")
        floor = {(0, 0): frozenset({9})}
        reach = reachable_values([(sa, sa.relational)], {0: 0},
                                 floor=floor)
        assert reach[(0, 0)] >= frozenset({0, 1, 9})

    def test_claim_can_fire_respects_epochs(self):
        sb = summarize_program(assemble(CLAIM_B), task_id=0, name="b")
        claim = sb.relational.claims[0]
        mask = (1 << 32) - 1
        assert claim_can_fire(claim, 0, {(0, 0): frozenset({2})}, mask)
        assert not claim_can_fire(claim, 0,
                                  {(0, 0): frozenset({0, 1})}, mask)
        # Top (unknown value) must stay conservative.
        assert claim_can_fire(claim, 0, {(0, 0): None}, mask)


class TestVerifierTPP012:
    def test_dead_fence_program_diagnoses(self):
        result = verify_program(assemble(DEAD_FENCE), memory_map=_MAP,
                                max_instructions=8)
        by_code = {d.code: d for d in result.diagnostics}
        assert "TPP012" in by_code
        dead_write = by_code["TPP012"]
        assert dead_write.severity == "info"
        assert dead_write.instruction == 2
        assert "unreachable" in dead_write.message
        assert result.ok  # info-only: never a rejection

    def test_certificate_pins_relational_facts(self):
        result = verify_program(assemble(DEAD_FENCE), memory_map=_MAP,
                                max_instructions=8)
        cert = result.certificate
        assert cert is not None
        assert cert.sram_relational is not None
        assert cert.sram_relational.dead_suffix_at == 1
        blob = cert.to_dict()
        assert blob["sram_relational"]["dead_suffix_at"] == 1

    def test_live_program_gets_no_tpp012(self):
        result = verify_program(
            assemble(".memory 2\n"
                     "CEXEC [Switch:SwitchID], 0x0F, 0x07\n"
                     "STORE [Sram:Word0], [Packet:0]"),
            memory_map=_MAP, max_instructions=8)
        assert "TPP012" not in [d.code for d in result.diagnostics]

    def test_tpp012_matches_runtime(self):
        """Fault-for-fault: the write TPP012 names never executes."""
        program = assemble(DEAD_FENCE)
        mmu = make_mmu()
        sentinel = 0xDEAD
        mmu.poke_sram(0, sentinel)
        tcpu = TCPU(mmu, max_instructions=8, compile=False)
        section = program.build(task_id=0)
        report = tcpu.execute(section, make_ctx())
        assert report.fault == FaultCode.NONE
        assert report.cexec_disabled_at == 1
        assert report.executed == 2  # the disabling CEXEC counts
        assert report.skipped == 1   # exactly the diagnosed STORE
        assert mmu.peek_sram(0) == sentinel


class TestClaimEpochGroundTruth:
    """The fleet verdict under an SRAM binding vs what execution does."""

    def run_fleet(self, word0, order):
        a = assemble(CLAIM_A)
        b = assemble(CLAIM_B)
        mmu = make_mmu()
        mmu.poke_sram(0, word0)
        tcpu = TCPU(mmu, max_instructions=8, compile=False)
        sections = {"a": a.build(task_id=0), "b": b.build(task_id=0)}
        for name in order:
            report = tcpu.execute(sections[name], make_ctx())
            assert report.fault == FaultCode.NONE
        return (mmu.peek_sram(0), bytes(sections["a"].memory),
                bytes(sections["b"].memory))

    def summaries(self):
        return [summarize_program(assemble(CLAIM_A), 0, name="a"),
                summarize_program(assemble(CLAIM_B), 0, name="b")]

    def test_unbound_pair_is_claim_coordinated(self):
        report = check_fleet(self.summaries())
        assert [d.code for d in report.diagnostics] == ["TPP023"]

    def test_dead_epochs_downgrade_to_race_free(self):
        """word0=5 strands both claims: the static verdict is
        race-free, and indeed execution is order-insensitive."""
        report = check_fleet(self.summaries(), sram_values={0: 5})
        assert report.race_free
        assert self.run_fleet(5, "ab") == self.run_fleet(5, "ba")
        assert self.run_fleet(5, "ab")[0] == 5  # neither claim fired

    def test_live_epoch_keeps_order_sensitivity_visible(self):
        """word0=0 lets a fire; b's write-back observes 0 or 1
        depending on order — the surviving TPP021 is a true positive,
        so the refinement must NOT discharge it."""
        report = check_fleet(self.summaries(), sram_values={0: 0})
        assert [d.code for d in report.diagnostics] == ["TPP021"]
        ab, ba = self.run_fleet(0, "ab"), self.run_fleet(0, "ba")
        assert ab[0] == ba[0] == 1      # SRAM converges either way...
        assert ab[2] != ba[2]           # ...but b's packet memory tears


class TestMultiSwitch:
    def bindings(self):
        return [SwitchBinding("tor-1", sram_values={0: 0}),
                SwitchBinding("tor-2", sram_values={0: 5})]

    def summaries(self):
        return [summarize_program(assemble(CLAIM_A), 0, name="a"),
                summarize_program(assemble(CLAIM_B), 0, name="b")]

    def test_verdicts_diverge_per_switch(self):
        multi = check_fleet_multiswitch(self.summaries(),
                                        self.bindings())
        assert multi.ok                  # warnings only
        assert not multi.race_free       # tor-1 keeps TPP021
        assert multi.racy_switches == []
        codes = {name: [d.code for d in report.diagnostics]
                 for name, report in multi.switches.items()}
        assert codes == {"tor-1": ["TPP021"], "tor-2": []}

    def test_empty_bindings_fall_back_to_conservative(self):
        multi = check_fleet_multiswitch(self.summaries(), [])
        assert list(multi.switches) == ["*"]
        assert [d.code for d in multi.switches["*"].diagnostics] \
            == ["TPP023"]

    def test_duplicate_binding_names_rejected(self):
        with pytest.raises(ValueError):
            check_fleet_multiswitch(
                self.summaries(),
                [SwitchBinding("tor-1"), SwitchBinding("tor-1")])

    def test_matches_one_check_fleet_per_binding(self):
        summaries = self.summaries()
        multi = check_fleet_multiswitch(summaries, self.bindings())
        for binding in self.bindings():
            solo = check_fleet(summaries,
                               fence_values=binding.fence_values,
                               sram_values=binding.sram_values)
            got = multi.switches[binding.name]
            assert [d.to_dict() for d in got.diagnostics] \
                == [d.to_dict() for d in solo.diagnostics]

    def test_to_dict_shape(self):
        blob = check_fleet_multiswitch(self.summaries(),
                                       self.bindings()).to_dict()
        assert set(blob) == {"ok", "race_free", "racy_switches",
                             "switches"}
        assert set(blob["switches"]) == {"tor-1", "tor-2"}
        assert blob["switches"]["tor-2"]["race_free"] is True


class TestTableConformance:
    """Incremental table vs the from-scratch reference, with the
    claim-epoch refinement bound."""

    def summaries(self):
        return [summarize_program(assemble(CLAIM_A), 0, name="a"),
                summarize_program(assemble(CLAIM_B), 0, name="b")]

    def test_admit_only_matches_check_fleet(self):
        for image in ({0: 0}, {0: 5}, {0: 2}):
            summaries = self.summaries()
            table = FleetRaceTable(sram_values=image)
            for summary in summaries:
                table.admit(summary)
            reference = check_fleet(summaries, sram_values=image)
            assert [d.to_dict() for d in table.diagnostics()] \
                == [d.to_dict() for d in reference.diagnostics], image

    def test_admission_can_revive_a_discounted_claim(self):
        """b alone is inert under word0=0; admitting a writer that
        reaches b's epoch must resurrect b's claim fleet-wide."""
        summaries = self.summaries()
        writer = summarize_program(
            assemble(".memory 1\n"
                     "LOAD [Queue:QueueSize], [Packet:0]\n"
                     "STORE [Sram:Word0], [Packet:0]"),
            0, name="w")
        table = FleetRaceTable(sram_values={0: 0})
        table.admit(summaries[1])            # b: claim 2 -> 3, inert
        assert table.diagnostics() == []
        table.admit(writer)                  # word0 goes to top
        codes = {d.code for d in table.diagnostics()}
        assert "TPP022" in codes             # b's claim is live again
        reference = check_fleet([summaries[1], writer],
                                sram_values={0: 0})
        assert sorted(d.code for d in table.diagnostics()) \
            == sorted(d.code for d in reference.diagnostics)

    def test_revocation_stays_sound_but_conservative(self):
        """The reachable floor is history-monotone: revoking a never
        un-reaches the values it may have left in SRAM, so survivors'
        verdicts never get *less* conservative than the reference."""
        summaries = self.summaries()
        table = FleetRaceTable(sram_values={0: 0})
        for summary in summaries:
            table.admit(summary)
        table.revoke(summaries[0])
        survivors = table.diagnostics()
        reference = check_fleet([summaries[1]], sram_values={0: 0})
        assert {d.code for d in survivors} \
            >= {d.code for d in reference.diagnostics}
