"""TCPU execution semantics: Table 1's instructions plus faults/cycles."""


from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.exceptions import FaultCode
from repro.core.memory_map import SRAM_BASE
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU, PipelineModel, pipeline_cycles


class FakeQueue:
    def __init__(self, occupancy=500):
        self.occupancy_bytes = occupancy


class FakePort:
    def __init__(self, index=0):
        self.index = index
        self.queue = FakeQueue()


class Harness:
    """A one-switch TCPU with a few fake statistics bound."""

    def __init__(self, switch_id=7, max_instructions=5):
        self.mmu = MMU(name="fake")
        self.mmu.bind_reader("Switch:SwitchID", lambda ctx: switch_id)
        self.mmu.bind_reader("Queue:QueueSize",
                             lambda ctx: ctx.queue.occupancy_bytes)
        self.tcpu = TCPU(self.mmu, max_instructions=max_instructions)

    def run(self, tpp, task_id=None):
        ctx = ExecutionContext(metadata=PacketMetadata(),
                               egress_port=FakePort(), time_ns=1000)
        return self.tcpu.execute(tpp, ctx)


def build(source, **kwargs):
    return assemble(source, **kwargs).build()


class TestPushPop:
    def test_push_copies_switch_to_packet(self):
        harness = Harness()
        tpp = build("PUSH [Queue:QueueSize]")
        report = harness.run(tpp)
        assert report.ok
        assert tpp.read_word(0) == 500
        assert tpp.sp == 4

    def test_push_accumulates_across_hops(self):
        harness = Harness()
        tpp = build("PUSH [Queue:QueueSize]", hops=3)
        for _ in range(3):
            harness.run(tpp)
        assert tpp.words() == [500, 500, 500]
        assert tpp.hops_executed() == 3

    def test_push_overflow_faults(self):
        harness = Harness()
        tpp = build("PUSH [Queue:QueueSize]", hops=2)
        harness.run(tpp)
        harness.run(tpp)
        report = harness.run(tpp)  # third hop: no room
        assert report.fault == FaultCode.STACK_OVERFLOW
        assert tpp.fault == FaultCode.STACK_OVERFLOW

    def test_pop_copies_packet_to_switch(self):
        harness = Harness()
        tpp = build("""
            .memory 2
            .data 0 1234
            PUSH [Queue:QueueSize]
            POP [Sram:Word3]
        """)
        # PUSH writes queue size at word 0 then POP stores it back.
        report = harness.run(tpp)
        assert report.ok
        assert harness.mmu.peek_sram(3) == 500

    def test_pop_underflow_faults(self):
        harness = Harness()
        tpp = build("POP [Sram:Word0]")
        report = harness.run(tpp)
        assert report.fault == FaultCode.STACK_UNDERFLOW


class TestLoadStore:
    def test_load_absolute(self):
        harness = Harness()
        tpp = build("""
            .mode absolute
            LOAD [Switch:SwitchID], [Packet:1]
        """)
        harness.run(tpp)
        assert tpp.read_word(4) == 7

    def test_load_hop_mode_shifts_per_hop(self):
        """The paper's §3.2.2 example: PacketMemory[1] on hop one,
        PacketMemory[base*size+1] on hop two."""
        harness = Harness()
        tpp = build("""
            .mode hop
            .perhop 4
            LOAD [Switch:SwitchID], [Packet:Hop[1]]
        """, hops=2)
        harness.run(tpp)
        harness.run(tpp)
        assert tpp.read_word(1 * 4) == 7          # hop 0, offset 1
        assert tpp.read_word(4 * 4 + 1 * 4) == 7  # hop 1: base*size+1

    def test_store_writes_switch_memory(self):
        harness = Harness()
        tpp = build("""
            .memory 1
            .data 0 0xCAFE
            STORE [Sram:Word2], [Packet:0]
        """)
        report = harness.run(tpp)
        assert report.ok
        assert harness.mmu.peek_sram(2) == 0xCAFE
        assert report.switch_writes == [(SRAM_BASE + 2, 0xCAFE)]

    def test_store_to_readonly_faults(self):
        harness = Harness()
        tpp = build("""
            .memory 1
            STORE [Queue:QueueSize], [Packet:0]
        """)
        report = harness.run(tpp)
        assert report.fault == FaultCode.WRITE_PROTECTED

    def test_load_bad_address_faults(self):
        harness = Harness()
        tpp = build(".memory 1\nLOAD [0x0999], [Packet:0]")
        report = harness.run(tpp)
        assert report.fault == FaultCode.BAD_ADDRESS

    def test_fault_stops_execution(self):
        harness = Harness()
        tpp = build("""
            .memory 1
            LOAD [0x0999], [Packet:0]
            PUSH [Queue:QueueSize]
        """)
        report = harness.run(tpp)
        assert report.executed == 0  # the faulting instruction never retires
        assert tpp.sp == 0           # the PUSH after it never ran


class TestCStore:
    def test_cstore_succeeds_when_cond_matches(self):
        """CSTORE dst, cond, src stores src iff dst == cond (§3.2.3)."""
        harness = Harness()
        harness.mmu.poke_sram(0, 10)
        tpp = build("CSTORE [Sram:Word0], 10, 99")
        report = harness.run(tpp)
        assert report.ok
        assert harness.mmu.peek_sram(0) == 99

    def test_cstore_fails_when_cond_differs(self):
        harness = Harness()
        harness.mmu.poke_sram(0, 11)
        tpp = build("CSTORE [Sram:Word0], 10, 99")
        harness.run(tpp)
        assert harness.mmu.peek_sram(0) == 11  # unchanged

    def test_cstore_returns_old_value_in_packet(self):
        harness = Harness()
        harness.mmu.poke_sram(0, 123)
        program = assemble("CSTORE [Sram:Word0], 10, 99")
        tpp = program.build()
        cond_offset = program.instructions[0].offset * 4
        harness.run(tpp)
        assert tpp.read_word(cond_offset) == 123

    def test_cstore_linearizes_two_writers(self):
        """Second writer's conditional store loses the race."""
        harness = Harness()
        harness.mmu.poke_sram(0, 0)
        first = build("CSTORE [Sram:Word0], 0, 111")
        second = build("CSTORE [Sram:Word0], 0, 222")
        harness.run(first)
        harness.run(second)
        assert harness.mmu.peek_sram(0) == 111


class TestCExec:
    def test_cexec_enables_matching_switch(self):
        harness = Harness(switch_id=7)
        tpp = build("""
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7
            PUSH [Queue:QueueSize]
        """)
        report = harness.run(tpp)
        assert report.executed == 2
        assert tpp.sp == 4

    def test_cexec_disables_rest_on_mismatch(self):
        """All instructions after a failed CEXEC are skipped (§3.2.3)."""
        harness = Harness(switch_id=7)
        tpp = build("""
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 8
            PUSH [Queue:QueueSize]
            PUSH [Switch:SwitchID]
        """)
        report = harness.run(tpp)
        assert report.executed == 1
        assert report.skipped == 2
        assert report.cexec_disabled_at == 0
        assert tpp.sp == 0

    def test_cexec_mask_applies(self):
        harness = Harness(switch_id=0x17)
        tpp = build("""
            CEXEC [Switch:SwitchID], 0x0F, 0x07
            PUSH [Queue:QueueSize]
        """)
        report = harness.run(tpp)
        assert report.executed == 2  # 0x17 & 0x0F == 0x07

    def test_failed_cexec_is_not_a_fault(self):
        harness = Harness(switch_id=7)
        tpp = build("CEXEC [Switch:SwitchID], 0xFFFFFFFF, 8")
        report = harness.run(tpp)
        assert report.ok


class TestArithmetic:
    def test_add_accumulates(self):
        harness = Harness()
        tpp = build("""
            .memory 1
            ADD [Packet:0], [Queue:QueueSize]
        """, hops=1)
        harness.run(tpp)
        harness.run(tpp)
        assert tpp.read_word(0) == 1000  # 500 + 500

    def test_min_collects_path_minimum(self):
        harness = Harness()
        values = iter([300, 100, 200])
        harness.mmu.bind_reader(0x0100, lambda ctx: next(values))
        program = assemble("""
            .memory 1
            .data 0 0xFFFFFFFF
            MIN [Packet:0], [0x0100]
        """)
        tpp = program.build()
        for _ in range(3):
            harness.run(tpp)
        assert tpp.read_word(0) == 100

    def test_max(self):
        harness = Harness()
        values = iter([3, 9, 5])
        harness.mmu.bind_reader(0x0100, lambda ctx: next(values))
        tpp = build(".memory 1\nMAX [Packet:0], [0x0100]")
        for _ in range(3):
            harness.run(tpp)
        assert tpp.read_word(0) == 9

    def test_sub_wraps_unsigned(self):
        harness = Harness()
        harness.mmu.bind_reader(0x0100, lambda ctx: 1)
        tpp = build(".memory 1\nSUB [Packet:0], [0x0100]")
        harness.run(tpp)
        assert tpp.read_word(0) == 0xFFFF_FFFF

    def test_xor_and_or(self):
        harness = Harness()
        harness.mmu.bind_reader(0x0100, lambda ctx: 0b1010)
        tpp = build("""
            .memory 2
            .data 0 0b0110
            .data 1 0b0110
            XOR [Packet:0], [0x0100]
            OR [Packet:1], [0x0100]
        """)
        harness.run(tpp)
        assert tpp.read_word(0) == 0b1100
        assert tpp.read_word(4) == 0b1110


class TestLimitsAndFlags:
    def test_instruction_limit_enforced(self):
        harness = Harness(max_instructions=2)
        tpp = build("""
            PUSH [Queue:QueueSize]
            PUSH [Queue:QueueSize]
            PUSH [Queue:QueueSize]
        """)
        report = harness.run(tpp)
        assert report.fault == FaultCode.TOO_MANY_INSTRUCTIONS
        assert report.executed == 0

    def test_done_tpp_is_skipped(self):
        harness = Harness()
        tpp = build("PUSH [Queue:QueueSize]")
        tpp.mark_done()
        report = harness.run(tpp)
        assert report.executed == 0
        assert tpp.sp == 0

    def test_counters(self):
        harness = Harness()
        tpp = build("PUSH [Queue:QueueSize]", hops=2)
        harness.run(tpp)
        harness.run(tpp)
        assert harness.tcpu.tpps_executed == 2
        assert harness.tcpu.instructions_executed == 2

    def test_hop_counter_increments_in_hop_mode(self):
        harness = Harness()
        tpp = build("""
            .mode hop
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
        """, hops=3)
        assert tpp.hop == 0
        harness.run(tpp)
        assert tpp.hop == 1


class TestFaultedHopSlotPreserved:
    """Regression (§3.4): a faulting hop-addressed TPP must still consume
    its hop slot, so the next switch cannot overwrite the fault evidence.
    """

    @staticmethod
    def _faulty_harness(switch_id):
        """A switch whose MMU is missing the Queue:QueueSize statistic, so
        the program's second LOAD faults with BAD_ADDRESS mid-execution."""
        harness = Harness.__new__(Harness)
        harness.mmu = MMU(name="faulty")
        harness.mmu.bind_reader("Switch:SwitchID", lambda ctx: switch_id)
        harness.tcpu = TCPU(harness.mmu, max_instructions=5)
        return harness

    PROGRAM = """
        .mode hop
        .perhop 2
        LOAD [Switch:SwitchID], [Packet:Hop[0]]
        LOAD [Queue:QueueSize], [Packet:Hop[1]]
    """

    def test_fault_advances_hop(self):
        tpp = build(self.PROGRAM, hops=3)
        report = self._faulty_harness(1).run(tpp)
        assert report.fault == FaultCode.BAD_ADDRESS
        assert tpp.hop == 1  # the faulting switch consumed its slot

    def test_next_switch_does_not_overwrite_fault_evidence(self):
        tpp = build(self.PROGRAM, hops=3)
        good1, faulty, good2 = (Harness(switch_id=11),
                                self._faulty_harness(22),
                                Harness(switch_id=33))
        assert good1.run(tpp).ok
        assert faulty.run(tpp).fault == FaultCode.BAD_ADDRESS
        assert good2.run(tpp).ok

        perhop_words = 2
        slots = [tpp.read_word(hop * perhop_words * 4)
                 for hop in range(3)]
        # Hop 0: first switch.  Hop 1: the faulting switch's partial write
        # (its first LOAD landed before the fault) is preserved.  Hop 2:
        # the third switch wrote its own slot instead of overwriting.
        assert slots == [11, 22, 33]
        assert tpp.fault == FaultCode.BAD_ADDRESS
        assert tpp.hops_executed() == 3

    def test_too_many_instructions_also_consumes_slot(self):
        tpp = build("""
            .mode hop
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
        """, hops=2)
        harness = Harness(max_instructions=0)
        report = harness.run(tpp)
        assert report.fault == FaultCode.TOO_MANY_INSTRUCTIONS
        assert tpp.hop == 1

    def test_nop_program(self):
        harness = Harness()
        tpp = build("NOP")
        report = harness.run(tpp)
        assert report.ok and report.executed == 1


class TestCycleModel:
    def test_pipeline_cycles(self):
        # Latency 4, throughput 1/cycle.
        assert pipeline_cycles(0) == 0
        assert pipeline_cycles(1) == 4
        assert pipeline_cycles(5) == 8

    def test_report_cycles(self):
        harness = Harness()
        tpp = build("""
            PUSH [Queue:QueueSize]
            PUSH [Switch:SwitchID]
        """)
        report = harness.run(tpp)
        assert report.cycles == 5

    def test_five_instructions_fit_in_min_packet_tx_time(self):
        """§3.3: execution takes less than a packet's transmission time."""
        model = PipelineModel(clock_ghz=1.0)
        assert model.fits_in_transmission_time(5, packet_bytes=64,
                                               rate_gbps=10.0)

    def test_billion_packets_per_second(self):
        """§1 footnote 2: 64-port 10GbE ~ a billion 64B packets/s."""
        pps = PipelineModel.line_rate_packets_per_second(
            n_ports=64, rate_gbps=10.0, packet_bytes=64)
        assert 0.9e9 < pps < 1.1e9

    def test_cut_through_budget(self):
        """§3.3: 300 ns at 1 GHz is 300 cycles."""
        assert PipelineModel(1.0).cut_through_budget_cycles(300.0) == 300
