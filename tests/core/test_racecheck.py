"""Fleet-level SRAM race analysis: classification + incremental table.

Covers the pairwise classifier (one diagnostic per pair/word, severity
precedence, operand-order canonicalization, task isolation), the
certificate embedding of SRAM access sets, and — the conformance
satellite — that the incremental :class:`FleetRaceTable` matches a
from-scratch :func:`check_fleet` after *every* admit/revoke sequence
tested, including readmission of a previously-racy program after its
rival is revoked.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembler import assemble
from repro.core.isa import Instruction, Opcode
from repro.core.memory_map import MemoryMap, SRAM_BASE
from repro.core.racecheck import (
    RACE_CODES,
    FleetRaceTable,
    check_fleet,
    check_pair,
    summarize_certificate,
    summarize_instructions,
    summarize_program,
    summarize_section,
)
from repro.core.verifier import verify_program

_MAP = MemoryMap.standard()


def summary(name, *accesses, task_id=0):
    """Build a summary from (opcode, word) pairs, one instruction each."""
    instructions = [Instruction(opcode, SRAM_BASE + word, 0)
                    for opcode, word in accesses]
    return summarize_instructions(
        instructions, task_id=task_id, name=name,
        program_key=name.encode())


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestClassification:
    def test_write_write_is_tpp020(self):
        a = summary("a", (Opcode.STORE, 3))
        b = summary("b", (Opcode.STORE, 3))
        (d,) = check_pair(a, b)
        assert d.code == "TPP020"
        assert d.severity == "error"
        assert d.word == 3
        assert d.vaddr == SRAM_BASE + 3
        assert {d.program_a, d.program_b} == {"a", "b"}

    def test_pop_counts_as_plain_write(self):
        a = summary("a", (Opcode.POP, 5))
        b = summary("b", (Opcode.STORE, 5))
        assert codes(check_pair(a, b)) == ["TPP020"]

    def test_claim_vs_plain_write_is_tpp022(self):
        claimer = summary("claimer", (Opcode.CSTORE, 0))
        writer = summary("writer", (Opcode.STORE, 0))
        (d,) = check_pair(claimer, writer)
        assert d.code == "TPP022"
        assert d.severity == "error"
        assert "claim" in d.message

    def test_write_vs_read_is_tpp021(self):
        writer = summary("writer", (Opcode.STORE, 2))
        reader = summary("reader", (Opcode.PUSH, 2))
        (d,) = check_pair(writer, reader)
        assert d.code == "TPP021"
        assert d.severity == "warning"

    def test_arithmetic_and_load_count_as_reads(self):
        writer = summary("writer", (Opcode.STORE, 1))
        for opcode in (Opcode.ADD, Opcode.MIN, Opcode.XOR, Opcode.LOAD,
                       Opcode.CEXEC):
            reader = summary("reader", (opcode, 1))
            assert codes(check_pair(writer, reader)) == ["TPP021"]

    def test_claim_vs_read_is_tpp021(self):
        claimer = summary("claimer", (Opcode.CSTORE, 4))
        reader = summary("reader", (Opcode.LOAD, 4))
        assert codes(check_pair(claimer, reader)) == ["TPP021"]

    def test_claim_vs_claim_is_tpp023_info(self):
        a = summary("a", (Opcode.CSTORE, 0))
        b = summary("b", (Opcode.CSTORE, 0))
        (d,) = check_pair(a, b)
        assert d.code == "TPP023"
        assert d.severity == "info"

    def test_read_read_sharing_is_silent(self):
        a = summary("a", (Opcode.PUSH, 9))
        b = summary("b", (Opcode.LOAD, 9), (Opcode.ADD, 9))
        assert check_pair(a, b) == []

    def test_disjoint_words_are_silent(self):
        a = summary("a", (Opcode.STORE, 0))
        b = summary("b", (Opcode.STORE, 1))
        assert check_pair(a, b) == []

    def test_different_tasks_never_pair(self):
        a = summary("a", (Opcode.STORE, 0), task_id=1)
        b = summary("b", (Opcode.STORE, 0), task_id=2)
        assert check_pair(a, b) == []

    def test_one_diagnostic_per_pair_word_precedence(self):
        # b both reads and plain-writes word 0; a claims and reads it.
        # TPP022 (claim vs plain write) outranks TPP021/TPP023.
        a = summary("a", (Opcode.CSTORE, 0), (Opcode.LOAD, 0))
        b = summary("b", (Opcode.STORE, 0), (Opcode.PUSH, 0))
        assert codes(check_pair(a, b)) == ["TPP022"]

    def test_write_write_outranks_claim_violation(self):
        a = summary("a", (Opcode.STORE, 0), (Opcode.CSTORE, 0))
        b = summary("b", (Opcode.STORE, 0))
        assert codes(check_pair(a, b)) == ["TPP020"]

    def test_operand_order_is_canonical(self):
        a = summary("a", (Opcode.CSTORE, 0), (Opcode.STORE, 1))
        b = summary("b", (Opcode.STORE, 0), (Opcode.PUSH, 1))
        forward = [d.to_dict() for d in check_pair(a, b)]
        backward = [d.to_dict() for d in check_pair(b, a)]
        assert forward == backward
        assert codes(check_pair(a, b)) == ["TPP022", "TPP021"]

    def test_multi_word_pair_emits_one_diag_per_word(self):
        a = summary("a", (Opcode.STORE, 0), (Opcode.STORE, 1),
                    (Opcode.STORE, 2))
        b = summary("b", (Opcode.STORE, 0), (Opcode.PUSH, 1))
        assert codes(check_pair(a, b)) == ["TPP020", "TPP021"]

    def test_instruction_indices_are_reported(self):
        instructions = [
            Instruction(Opcode.NOP, 0, 0),
            Instruction(Opcode.STORE, SRAM_BASE + 0, 0),
            Instruction(Opcode.STORE, SRAM_BASE + 0, 1),
        ]
        a = summarize_instructions(instructions, name="a",
                                   program_key=b"a")
        b = summary("b", (Opcode.STORE, 0))
        (d,) = check_pair(a, b)
        indices = {d.program_a: d.instructions_a,
                   d.program_b: d.instructions_b}
        assert indices["a"] == (1, 2)
        assert indices["b"] == (0,)

    def test_severity_table_is_stable(self):
        assert RACE_CODES == {"TPP020": "error", "TPP021": "warning",
                              "TPP022": "error", "TPP023": "info"}


class TestSummaries:
    SOURCE = """
        .memory 2
        .data 0 1
        ADD [Packet:0], [Sram:Word2]
        STORE [Sram:Word2], [Packet:0]
        CSTORE [Sram:Word5], 10, 99
    """

    def test_program_section_certificate_agree(self):
        program = assemble(self.SOURCE)
        from_program = summarize_program(program, task_id=3)
        from_section = summarize_section(program.build(task_id=3))
        result = verify_program(program, memory_map=_MAP, task_id=3)
        assert result.ok
        from_cert = summarize_certificate(result.certificate)
        for s in (from_program, from_section, from_cert):
            assert s.task_id == 3
            assert s.reads == {2: (0,)}
            assert s.writes == {2: (1,)}
            assert s.claims == {5: (2,)}
            assert s.words == {2, 5}
            assert s.touches_sram
        assert (from_program.program_key == from_section.program_key
                == from_cert.program_key)

    def test_certificate_embeds_access_sets(self):
        program = assemble(self.SOURCE)
        certificate = verify_program(
            program, memory_map=_MAP, task_id=3).certificate
        assert certificate.task_id == 3
        assert certificate.sram_reads == ((2, 0),)
        assert certificate.sram_writes == ((2, 1),)
        assert certificate.sram_claims == ((5, 2),)
        blob = certificate.to_dict()
        assert blob["task_id"] == 3
        assert blob["sram_claims"] == [[5, 2]]

    def test_sram_free_program_has_empty_sets(self):
        program = assemble("PUSH [Queue:QueueSize]")
        certificate = verify_program(
            program, memory_map=_MAP).certificate
        assert certificate.sram_reads == ()
        assert certificate.sram_writes == ()
        assert certificate.sram_claims == ()
        assert not summarize_program(program).touches_sram

    def test_summary_to_dict(self):
        blob = summary("a", (Opcode.STORE, 1), (Opcode.PUSH, 2)).to_dict()
        assert blob["writes"] == {"1": [0]}
        assert blob["reads"] == {"2": [1]}
        assert blob["claims"] == {}


class TestFleetReport:
    def test_race_free_fleet(self):
        report = check_fleet([summary("a", (Opcode.STORE, 0)),
                              summary("b", (Opcode.STORE, 1)),
                              summary("c", (Opcode.PUSH, 0),
                                      (Opcode.PUSH, 1))])
        assert report.pairs_checked == 3
        assert not report.race_free  # c reads both written words
        assert report.ok
        assert report.by_code() == {"TPP021": 2}

    def test_fully_disjoint_fleet_is_race_free(self):
        report = check_fleet([summary("a", (Opcode.STORE, 0)),
                              summary("b", (Opcode.STORE, 1))])
        assert report.race_free
        assert report.ok
        assert "race-free" in report.format()

    def test_racy_fleet_report(self):
        report = check_fleet([summary("a", (Opcode.STORE, 0)),
                              summary("b", (Opcode.STORE, 0)),
                              summary("c", (Opcode.CSTORE, 0))])
        assert not report.ok
        assert report.by_code() == {"TPP020": 1, "TPP022": 2}
        blob = report.to_dict()
        assert blob["ok"] is False
        assert blob["race_free"] is False
        assert len(blob["diagnostics"]) == 3
        assert "racy" in report.format()

    def test_diagnostics_sorted_canonically(self):
        report = check_fleet([summary("b", (Opcode.STORE, 1)),
                              summary("a", (Opcode.STORE, 1)),
                              summary("c", (Opcode.STORE, 0),
                                      (Opcode.STORE, 1))])
        ordering = [(d.word, d.code, d.program_a, d.program_b)
                    for d in report.diagnostics]
        assert ordering == sorted(ordering)


def pool(task_spread=False):
    """A pool of overlapping summaries the table tests draw from."""
    task = (lambda i: i % 2) if task_spread else (lambda i: 0)
    specs = [
        ("w0", [(Opcode.STORE, 0)]),
        ("w0b", [(Opcode.STORE, 0)]),
        ("c0", [(Opcode.CSTORE, 0)]),
        ("r0w1", [(Opcode.PUSH, 0), (Opcode.STORE, 1)]),
        ("w1", [(Opcode.STORE, 1)]),
        ("c2", [(Opcode.CSTORE, 2)]),
        ("r2", [(Opcode.LOAD, 2)]),
        ("quiet", [(Opcode.STORE, 9)]),
        ("mixed", [(Opcode.CSTORE, 1), (Opcode.ADD, 2),
                   (Opcode.STORE, 3)]),
    ]
    return [summary(name, *accesses, task_id=task(i))
            for i, (name, accesses) in enumerate(specs)]


def assert_conformant(table, members):
    """The incremental invariant: table report == from-scratch pass."""
    scratch = check_fleet(members)
    report = table.report()
    assert sorted(s.name for s in table.members) == sorted(
        s.name for s in members)
    assert ([d.to_dict() for d in report.diagnostics]
            == [d.to_dict() for d in scratch.diagnostics])
    assert report.ok == scratch.ok
    assert report.race_free == scratch.race_free


class TestFleetRaceTable:
    def test_admit_returns_introduced_diagnostics(self):
        table = FleetRaceTable()
        a, b = summary("a", (Opcode.STORE, 0)), summary(
            "b", (Opcode.STORE, 0))
        assert table.admit(a) == []
        assert codes(table.admit(b)) == ["TPP020"]
        assert len(table) == 2
        assert table.racy_admissions == 1

    def test_admit_is_idempotent(self):
        table = FleetRaceTable()
        a = summary("a", (Opcode.STORE, 0))
        b = summary("b", (Opcode.STORE, 0))
        table.admit(a)
        first = table.admit(b)
        checks = table.pair_checks
        again = table.admit(b)
        assert ([d.to_dict() for d in again]
                == [d.to_dict() for d in first])
        assert table.pair_checks == checks  # no re-analysis
        assert len(table) == 2

    def test_only_word_sharing_pairs_are_checked(self):
        table = FleetRaceTable()
        for i in range(6):
            table.admit(summary(f"p{i}", (Opcode.STORE, i)))
        assert table.pair_checks == 0  # fully disjoint fleet
        table.admit(summary("clash", (Opcode.PUSH, 2)))
        assert table.pair_checks == 1

    def test_revoke_clears_diagnostics(self):
        table = FleetRaceTable()
        a, b = summary("a", (Opcode.STORE, 0)), summary(
            "b", (Opcode.STORE, 0))
        table.admit(a)
        table.admit(b)
        assert table.revoke(a)
        assert table.diagnostics() == []
        assert_conformant(table, [b])
        assert not table.revoke(a)  # already gone

    def test_revoke_accepts_certificate_like_objects(self):
        program = assemble("STORE [Sram:Word0], [Packet:0]\n.memory 1")
        certificate = verify_program(
            program, memory_map=_MAP).certificate
        table = FleetRaceTable()
        table.admit(summarize_certificate(certificate))
        assert table.revoke(certificate)
        assert len(table) == 0

    def test_readmission_after_rival_revoked(self):
        table = FleetRaceTable()
        rival = summary("rival", (Opcode.STORE, 0))
        racy = summary("racy", (Opcode.STORE, 0))
        table.admit(rival)
        assert codes(table.admit(racy)) == ["TPP020"]
        table.revoke(racy)
        table.revoke(rival)
        # With the rival gone, the same program admits cleanly.
        assert table.admit(racy) == []
        assert_conformant(table, [racy])

    def test_diagnostics_for_member(self):
        table = FleetRaceTable()
        a = summary("a", (Opcode.STORE, 0), (Opcode.STORE, 5))
        b = summary("b", (Opcode.STORE, 0))
        c = summary("c", (Opcode.PUSH, 5))
        for s in (a, b, c):
            table.admit(s)
        assert codes(table.diagnostics_for(b)) == ["TPP020"]
        assert codes(table.diagnostics_for(a)) == ["TPP020", "TPP021"]

    def test_cross_task_members_never_interact(self):
        table = FleetRaceTable()
        table.admit(summary("t1", (Opcode.STORE, 0), task_id=1))
        assert table.admit(summary("t2", (Opcode.STORE, 0),
                                   task_id=2)) == []
        assert table.diagnostics() == []
        assert table.pair_checks == 0  # word index is per-task

    @pytest.mark.parametrize("seed", range(12))
    def test_conformance_random_sequences(self, seed):
        """Incremental == from-scratch after every admit/revoke."""
        rng = random.Random(seed)
        candidates = pool(task_spread=(seed % 3 == 0))
        table = FleetRaceTable()
        members = []
        for _ in range(40):
            if members and rng.random() < 0.4:
                victim = rng.choice(members)
                members.remove(victim)
                assert table.revoke(victim)
            else:
                newcomer = rng.choice(candidates)
                if newcomer not in members:
                    members.append(newcomer)
                table.admit(newcomer)
            assert_conformant(table, members)
        full = len(members) * (len(members) - 1) // 2
        assert table.report().pairs_checked == full

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=8)),
        min_size=1, max_size=30))
    def test_conformance_property(self, ops):
        candidates = pool()
        table = FleetRaceTable()
        members = []
        for is_revoke, index in ops:
            candidate = candidates[index]
            if is_revoke:
                expected = candidate in members
                assert table.revoke(candidate) == expected
                if expected:
                    members.remove(candidate)
            else:
                if candidate not in members:
                    members.append(candidate)
                table.admit(candidate)
        assert_conformant(table, members)
