"""8-byte-word TPPs end to end (§3.3's "8-byte values" sizing)."""

import pytest

from repro import quickstart_network
from repro.core.assembler import assemble


@pytest.fixture
def busy_net():
    """A network that has moved more than 2^32 ... bytes is too slow to
    simulate, so instead: a network whose clock exceeds 2^32 ns, which
    32-bit reads would truncate."""
    net = quickstart_network(n_switches=2)
    # Jump the clock past the 32-bit nanosecond wrap (~4.29 s).
    net.sim.run(until_ns=5_000_000_000)
    return net


class TestWideWords:
    def test_clock_truncates_in_32bit_reads(self, busy_net):
        net = busy_net
        results = []
        program = assemble("PUSH [Switch:ClockLo]")
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac,
                                on_response=results.append)
        net.run(until_seconds=net.sim.now_seconds + 0.01)
        low_word = results[0].per_hop_words()[0][0]
        assert low_word < 1 << 32
        assert low_word != net.sim.now_ns  # truncated: high bits lost

    def test_hi_lo_pair_recovers_full_clock(self, busy_net):
        net = busy_net
        results = []
        program = assemble("PUSH [Switch:ClockLo]\nPUSH [Switch:ClockHi]")
        send_time = net.sim.now_ns
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac,
                                on_response=results.append)
        net.run(until_seconds=net.sim.now_seconds + 0.01)
        lo, hi = results[0].per_hop_words()[0]
        clock = (hi << 32) | lo
        assert clock > 5_000_000_000
        assert abs(clock - send_time) < 10_000_000

    def test_8byte_words_drop_the_pair_dance(self, busy_net):
        """With .word 8 a single PUSH would still read the 32-bit lo
        register; but packet arithmetic and memory are 64-bit wide, so a
        program can combine them in-packet."""
        net = busy_net
        results = []
        # hi and lo each land in their own 8-byte word.
        program = assemble("""
            .word 8
            PUSH [Switch:ClockHi]
            PUSH [Switch:ClockLo]
        """)
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac,
                                on_response=results.append)
        net.run(until_seconds=net.sim.now_seconds + 0.01)
        hi, lo = results[0].per_hop_words()[0]
        assert (hi << 32 | lo) > 5_000_000_000

    def test_word8_memory_sizing(self):
        program = assemble(".word 8\nPUSH [Queue:QueueSize]", hops=4)
        assert program.word_size == 8
        assert program.perhop_len_bytes == 8
        assert program.memory_bytes == 32

    def test_word8_wire_round_trip(self):
        from repro.core.tpp import TPPSection
        program = assemble(".word 8\nPUSH [Queue:QueueSize]", hops=2)
        tpp = program.build()
        tpp.write_word(0, 0x1234_5678_9ABC_DEF0)
        decoded = TPPSection.decode(tpp.encode())
        assert decoded.read_word(0) == 0x1234_5678_9ABC_DEF0

    def test_word8_arithmetic_no_32bit_wrap(self, busy_net):
        """ADD of two large values wraps at 2^64, not 2^32."""
        net = busy_net
        results = []
        program = assemble(
            """
            .word 8
            .memory 1
            .data 0 $Big
            ADD [Packet:0], [Switch:ClockLo]
            """,
            symbols={"Big": (1 << 33)})
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac,
                                on_response=results.append)
        net.run(until_seconds=net.sim.now_seconds + 0.01)
        value = results[0].word(0)
        assert value > (1 << 33)  # no truncation at 2^32
