"""Disassembler round trips."""

from repro.core.assembler import assemble
from repro.core.disassembler import (
    disassemble,
    disassemble_instruction,
    format_tpp,
)
from repro.core.isa import Instruction, Opcode


class TestDisassemble:
    def test_push_uses_mnemonic(self):
        text = disassemble_instruction(Instruction(Opcode.PUSH, addr=0xB000))
        assert text == "PUSH [Queue:QueueSize]"

    def test_load_shows_both_operands(self):
        text = disassemble_instruction(
            Instruction(Opcode.LOAD, addr=0x0000, offset=1))
        assert text == "LOAD [Switch:SwitchID], [Packet:1]"

    def test_unmapped_address_is_hex(self):
        text = disassemble_instruction(Instruction(Opcode.PUSH, addr=0x0999))
        assert "0x0999" in text

    def test_cexec_shows_operand_pair(self):
        text = disassemble_instruction(
            Instruction(Opcode.CEXEC, addr=0x0000, offset=4))
        assert "[Packet:4], [Packet:5]" in text

    def test_round_trip_through_assembler(self):
        source = """
            PUSH [Switch:SwitchID]
            PUSH [Queue:QueueSize]
            LOAD [Switch:SwitchID], [Packet:3]
        """
        program = assemble(source)
        text = disassemble(program.instructions)
        reassembled = assemble(text, hops=8)
        assert reassembled.instructions == program.instructions

    def test_arithmetic_round_trip(self):
        program = assemble(".memory 1\nMIN [Packet:0], [Queue:QueueSize]")
        text = disassemble(program.instructions)
        assert assemble(text).instructions == program.instructions

    def test_nop(self):
        assert disassemble_instruction(Instruction(Opcode.NOP)) == "NOP"


class TestFormatTPP:
    def test_dump_contains_code_and_memory(self):
        program = assemble("PUSH [Queue:QueueSize]", hops=2)
        tpp = program.build()
        tpp.write_word(0, 0xAB)
        dump = format_tpp(tpp)
        assert "PUSH [Queue:QueueSize]" in dump
        assert "0x000000ab" in dump
        assert "mode=STACK" in dump
