"""Program cache, pre-resolved accessors, and fast-path plumbing.

The differential suite (``test_fastpath_differential.py``) proves the
compiled closures compute the same thing as the interpreter; this file
covers the machinery around them: LRU bookkeeping, fingerprint keying,
invalidation on MMU layout changes and in-flight corruption, and the
counter surfaces (switch stats, trace record, report table).
"""

import pytest

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.fastpath import DEFAULT_PROGRAM_CACHE_CAPACITY, ProgramCache
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU


class FakeQueue:
    occupancy_bytes = 500


class FakePort:
    index = 0
    queue = FakeQueue()


def make_mmu(switch_id=7):
    mmu = MMU(name="fake")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: switch_id)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    return mmu


def make_ctx():
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000)


class TestProgramCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProgramCache(0)

    def test_hit_miss_counting(self):
        cache = ProgramCache(4)
        assert cache.get(b"a") is None
        cache.put(b"a", ("steps-a",))
        assert cache.get(b"a") == ("steps-a",)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_past_capacity(self):
        cache = ProgramCache(2)
        cache.put(b"a", (1,))
        cache.put(b"b", (2,))
        cache.get(b"a")          # refresh a: b is now the LRU
        cache.put(b"c", (3,))    # evicts b
        assert b"a" in cache and b"c" in cache
        assert b"b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_clear_counts_invalidations(self):
        cache = ProgramCache(2)
        cache.put(b"a", (1,))
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_same_length_different_bytes_are_distinct(self):
        """Fingerprint collision safety: equal-length programs with
        different instruction bytes must occupy distinct entries."""
        first = assemble("PUSH [Switch:SwitchID]").build()
        second = assemble("PUSH [Queue:QueueSize]").build()
        assert len(first.program_key) == len(second.program_key)
        assert first.program_key != second.program_key
        cache = ProgramCache(4)
        cache.put(first.program_key, ("first",))
        cache.put(second.program_key, ("second",))
        assert cache.get(first.program_key) == ("first",)
        assert cache.get(second.program_key) == ("second",)


class TestProgramKey:
    def test_key_covers_mode_and_word_size(self):
        base = assemble("LOAD [Switch:SwitchID], [Packet:0]").build()
        absolute = assemble(
            ".mode absolute\nLOAD [Switch:SwitchID], [Packet:0]").build()
        wide = assemble(
            ".word 8\nLOAD [Switch:SwitchID], [Packet:0]").build()
        keys = {base.program_key, absolute.program_key, wide.program_key}
        assert len(keys) == 3

    def test_key_is_memoized_and_invalidated(self):
        tpp = assemble("PUSH [Switch:SwitchID]").build()
        key = tpp.program_key
        assert tpp.program_key is key  # memoized, not recomputed
        tpp.invalidate_caches()
        assert tpp.program_key == key  # recomputed to the same bytes
        assert tpp._program_key is not None


class TestTCPUCache:
    def test_cache_warm_after_first_execution(self):
        tcpu = TCPU(make_mmu(), compile=True)
        program = assemble("PUSH [Switch:SwitchID]")
        for _ in range(3):
            report = tcpu.execute(program.build(), make_ctx())
            assert report.ok
        stats = tcpu.cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1

    def test_eviction_when_many_programs(self):
        tcpu = TCPU(make_mmu(), compile=True, cache_capacity=2)
        sources = ["PUSH [Switch:SwitchID]",
                   "PUSH [Queue:QueueSize]",
                   "LOAD [Switch:SwitchID], [Packet:0]"]
        for source in sources:
            assert tcpu.execute(assemble(source).build(), make_ctx()).ok
        stats = tcpu.cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        # The evicted (oldest) program recompiles and still runs.
        assert tcpu.execute(assemble(sources[0]).build(), make_ctx()).ok

    def test_bind_reader_invalidates_compiled_programs(self):
        """Re-binding a statistic must not leave closures holding the old
        accessor: the next execution observes the new value."""
        mmu = make_mmu(switch_id=7)
        tcpu = TCPU(mmu, compile=True)
        program = assemble("PUSH [Switch:SwitchID]")
        tpp = program.build()
        assert tcpu.execute(tpp, make_ctx()).ok
        assert tpp.read_word(0) == 7

        version = mmu.layout_version
        mmu.bind_reader("Switch:SwitchID", lambda ctx: 42)
        assert mmu.layout_version > version

        tpp = program.build()
        assert tcpu.execute(tpp, make_ctx()).ok
        assert tpp.read_word(0) == 42
        assert tcpu.cache.invalidations >= 1

    def test_compile_false_forces_interpreter(self):
        tcpu = TCPU(make_mmu(), compile=False)
        assert not tcpu.compile_enabled
        report = tcpu.execute(assemble("PUSH [Switch:SwitchID]").build(),
                              make_ctx())
        assert report.ok
        assert tcpu.cache.stats()["misses"] == 0

    def test_env_var_disables_fastpath(self, monkeypatch):
        monkeypatch.setenv("REPRO_TPP_FASTPATH", "0")
        assert not TCPU(make_mmu()).compile_enabled
        # An explicit compile= argument still wins over the environment.
        assert TCPU(make_mmu(), compile=True).compile_enabled
        monkeypatch.setenv("REPRO_TPP_FASTPATH", "1")
        assert TCPU(make_mmu()).compile_enabled

    def test_default_capacity(self):
        tcpu = TCPU(make_mmu())
        assert tcpu.cache.capacity == DEFAULT_PROGRAM_CACHE_CAPACITY


class TestWireCacheConsistency:
    def test_encode_reflects_compiled_writes(self):
        """The wire cache must be dropped when compiled closures write
        packet memory: serialize-after-execute sees the new bytes."""
        tcpu = TCPU(make_mmu(), compile=True)
        program = assemble("PUSH [Switch:SwitchID]")
        tpp = program.build()
        before = tpp.encode()  # populates the wire cache
        assert tcpu.execute(tpp, make_ctx()).ok
        after = tpp.encode()
        assert after != before
        assert tpp.read_word(0) == 7

    def test_encode_cached_when_nothing_written(self):
        tpp = assemble("PUSH [Switch:SwitchID]").build()
        assert tpp.encode() == tpp.encode()
        assert tpp._wire_cache is not None
