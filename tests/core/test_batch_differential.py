"""Differential proof: batched execution ≡ reference interpreter.

Every case runs the same batch of same-program sections twice — once
through :meth:`TCPU.execute_batch` on a compiled TCPU and once
packet-at-a-time through a ``compile=False`` interpreter — against two
independent, identically-prepared MMUs, then asserts bit-identity of
reports, section state (flags, hop/SP, memory bytes, wire encoding) and
switch-side state (SRAM, link scratch).  Batch sizes 1, 2 and 32 are
swept so the degenerate, pair and full-burst shapes all stay honest.

Programs with a verifier certificate and only batch-stable reads go
through the vectorized numpy lane (asserted explicitly below); writes,
CEXEC, unstable reads, non-uniform batches and mid-kernel faults take
the packet-at-a-time safe lane — the differential assertions are the
same either way.
"""

import random

import pytest

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.batch import HAVE_NUMPY, BatchArena
from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.memory_map import SRAM_WORDS, MemoryMap
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU, pipeline_cycles
from repro.core.verifier import verify_program

SIZES = (1, 2, 32)


class FakeQueue:
    def __init__(self, occupancy=500):
        self.occupancy_bytes = occupancy


class FakePort:
    def __init__(self, index=0):
        self.index = index
        self.queue = FakeQueue()


def make_mmu(clock=123456, stable=True):
    """Bound statistics, batch-stable by default (as the switch binds
    them) so certified read-only programs qualify for the vector lane."""
    mmu = MMU(name="batchdiff")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7, batch_stable=stable)
    mmu.bind_reader("Switch:ClockLo", lambda ctx: clock, batch_stable=stable)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes,
                    batch_stable=stable)
    return mmu


def make_ctx(task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000,
                            task_id=task_id)


def report_tuple(report):
    return (report.executed, report.skipped, report.fault,
            report.cexec_disabled_at, report.cycles,
            list(report.switch_writes))


def certificate_for(program, max_instructions):
    """A verifier certificate when the program earns one, else None."""
    try:
        result = verify_program(program, memory_map=MemoryMap.standard(),
                                max_instructions=max_instructions)
        return result.raise_on_error().certificate
    except Exception:
        return None


def run_batch_vs_interpreter(source, sizes=SIZES, hops=1, task_ids=None,
                             max_instructions=5, prepare=None, damage=None,
                             shared_ctx=False, stable=True,
                             **assemble_kwargs):
    """Assert batched ≡ interpreter for every batch size; return the
    per-size ``(batched_side, reference_side)`` tuples, where each side
    is ``(reports_per_hop, sections, mmu, tcpu)``.

    ``damage(section, index)`` mangles individual sections before the
    first hop (mid-batch corruption); ``task_ids`` sets per-section task
    ids (SRAM protection domains); ``shared_ctx`` aliases one context
    across the whole batch (the switch's warm steady state).
    """
    program = assemble(source, **assemble_kwargs)
    certificate = certificate_for(program, max_instructions)
    out = []
    for n in sizes:
        tasks = list(task_ids) if task_ids is not None else [0] * n
        assert len(tasks) == n, "task_ids must match the batch size"
        sides = []
        for batched in (True, False):
            mmu = make_mmu(stable=stable)
            if prepare is not None:
                prepare(mmu)
            # Explicit flags so the suite still exercises the real batch
            # engine under the REPRO_TPP_BATCH=0 / _FASTPATH=0 env
            # opt-outs (which have their own dedicated tests).
            tcpu = TCPU(mmu, max_instructions=max_instructions,
                        compile=batched, batch=True)
            if certificate is not None:
                tcpu.trust(certificate)
            sections = [program.build(task_id=t) for t in tasks]
            if damage is not None:
                for index, section in enumerate(sections):
                    damage(section, index)
                    section.invalidate_caches()
            reports_per_hop = []
            for _ in range(hops):
                if shared_ctx:
                    ctx = make_ctx(tasks[0])
                    ctxs = [ctx] * n
                else:
                    ctxs = [make_ctx(t) for t in tasks]
                if batched:
                    reports_per_hop.append(
                        tcpu.execute_batch(sections, ctxs))
                else:
                    reports_per_hop.append(
                        [tcpu.execute(s, c)
                         for s, c in zip(sections, ctxs)])
            sides.append((reports_per_hop, sections, mmu, tcpu))

        (b_reports, b_sections, b_mmu, _) = sides[0]
        (r_reports, r_sections, r_mmu, _) = sides[1]
        for hop in range(hops):
            for index, (fast, ref) in enumerate(zip(b_reports[hop],
                                                    r_reports[hop])):
                assert report_tuple(fast) == report_tuple(ref), \
                    f"size {n}, hop {hop}, packet {index}"
                assert fast.cycles == pipeline_cycles(fast.executed)
        for index, (fast, ref) in enumerate(zip(b_sections, r_sections)):
            assert fast.flags == ref.flags, f"size {n}, packet {index}"
            assert fast.hop_or_sp == ref.hop_or_sp
            assert bytes(fast.memory) == bytes(ref.memory)
            assert fast.encode() == ref.encode()
        sram = [b_mmu.peek_sram(i) for i in range(SRAM_WORDS)]
        assert sram == [r_mmu.peek_sram(i) for i in range(SRAM_WORDS)]
        assert ([b_mmu.peek_link_scratch(0, s) for s in range(4)]
                == [r_mmu.peek_link_scratch(0, s) for s in range(4)])
        out.append(tuple(sides))
    return out


class TestOpcodes:
    def test_nop(self):
        run_batch_vs_interpreter("NOP")

    def test_push(self):
        run_batch_vs_interpreter("PUSH [Switch:SwitchID]")

    def test_push_pop_roundtrip(self):
        results = run_batch_vs_interpreter("""
            PUSH [Queue:QueueSize]
            POP [Sram:Word3]
        """)
        (_, _, mmu, _), _ = results[-1]
        assert mmu.peek_sram(3) == 500

    def test_load_hop_relative_multihop(self):
        run_batch_vs_interpreter(
            ".mode hop\n.hops 3\n"
            "LOAD [Switch:SwitchID], [Packet:Hop[0]]", hops=3)

    def test_load_absolute(self):
        run_batch_vs_interpreter(".mode absolute\n.memory 2\n"
                                 "LOAD [Switch:ClockLo], [Packet:1]")

    def test_store(self):
        results = run_batch_vs_interpreter("""
            .data 0 0xCAFE
            STORE [Sram:Word2], [Packet:0]
        """)
        (_, _, mmu, _), _ = results[0]
        assert mmu.peek_sram(2) == 0xCAFE

    def test_cstore(self):
        def seed(mmu):
            mmu.poke_sram(0, 10)

        run_batch_vs_interpreter("CSTORE [Sram:Word0], 10, 99",
                                 prepare=seed)

    def test_cexec(self):
        run_batch_vs_interpreter("""
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 8
            PUSH [Queue:QueueSize]
        """)

    @pytest.mark.parametrize("op", ["ADD", "SUB", "AND", "OR", "XOR",
                                    "MIN", "MAX"])
    def test_arithmetic(self, op):
        run_batch_vs_interpreter(f"""
            .data 0 41
            {op} [Packet:{{0}}], [Switch:SwitchID]
        """.format(0))

    def test_arithmetic_wraps_identically(self):
        results = run_batch_vs_interpreter("""
            .data 0 3
            SUB [Packet:0], [Switch:SwitchID]
        """)
        (_, sections, _, _), _ = results[-1]
        assert sections[0].read_word(0) == (3 - 7) & 0xFFFFFFFF


class TestLaneSelection:
    """The fast lane must actually engage — and must not over-engage."""

    @pytest.mark.skipif(not HAVE_NUMPY, reason="vector lane needs numpy")
    def test_certified_read_only_program_vectorizes(self):
        results = run_batch_vs_interpreter("""
            PUSH [Switch:SwitchID]
            PUSH [Queue:QueueSize]
        """)
        for (_, _, _, tcpu), _ in results:
            assert tcpu.vector_batches == 1
            assert tcpu.batch_fallbacks == 0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="vector lane needs numpy")
    def test_private_scatter_write_vectorizes(self):
        # A certified store of per-packet data to a word the program
        # never reads back is a last-writer-wins scatter: write lane.
        results = run_batch_vs_interpreter("""
            PUSH [Switch:SwitchID]
            POP [Sram:Word0]
        """)
        for (_, _, _, tcpu), _ in results:
            assert tcpu.vector_batches == 1
            assert tcpu.vector_write_batches == 1
            assert tcpu.batch_fallbacks == 0

    def test_non_additive_rmw_takes_the_safe_lane(self):
        # XOR is not an additive chain: the read-modify-write of Word0
        # has no vectorizable dataflow class, the batch demotes.
        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            LOAD [Sram:Word0], [Packet:0]
            XOR [Packet:0], [Switch:SwitchID]
            STORE [Sram:Word0], [Packet:0]
        """)
        for (_, _, _, tcpu), _ in results:
            assert tcpu.vector_batches == 0
            if HAVE_NUMPY:
                assert tcpu.batch_demotions.get("write_dataflow", 0) >= 1

    def test_unstable_readers_take_the_safe_lane(self):
        results = run_batch_vs_interpreter("PUSH [Switch:SwitchID]",
                                           stable=False)
        for (_, _, _, tcpu), _ in results:
            assert tcpu.vector_batches == 0

    def test_uncertified_program_takes_the_safe_lane(self):
        # An unmapped read can never earn a certificate; the batch must
        # still fault identically to the interpreter, packet by packet.
        results = run_batch_vs_interpreter(
            ".memory 1\nLOAD [0x0999], [Packet:0]")
        for (b_reports, _, _, tcpu), _ in results:
            assert tcpu.vector_batches == 0
            assert all(r.fault == FaultCode.BAD_ADDRESS
                       for r in b_reports[0])

    @pytest.mark.skipif(not HAVE_NUMPY, reason="vector lane needs numpy")
    def test_non_uniform_hop_counters_take_the_safe_lane(self):
        def advance_one(section, index):
            if index == 1:
                section.hop_or_sp += 4

        results = run_batch_vs_interpreter("PUSH [Switch:SwitchID]",
                                           sizes=(2,), damage=advance_one)
        (_, _, _, tcpu), _ = results[0]
        assert tcpu.vector_batches == 0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="vector lane needs numpy")
    def test_shared_context_batch_is_identical(self):
        results = run_batch_vs_interpreter("""
            PUSH [Switch:SwitchID]
            PUSH [Queue:QueueSize]
        """, shared_ctx=True)
        for (_, _, _, tcpu), _ in results:
            assert tcpu.vector_batches == 1


class TestFaults:
    def test_bad_address_read(self):
        run_batch_vs_interpreter(".memory 1\nLOAD [0x0999], [Packet:0]")

    def test_write_protected(self):
        results = run_batch_vs_interpreter("""
            PUSH [Switch:SwitchID]
            POP [Queue:QueueSize]
        """)
        assert results[0][0][0][0][0].fault == FaultCode.WRITE_PROTECTED

    def test_memory_bounds(self):
        run_batch_vs_interpreter(".mode absolute\n.memory 1\n"
                                 "LOAD [Switch:SwitchID], [Packet:5]")

    def test_stack_overflow_on_second_hop(self):
        results = run_batch_vs_interpreter(
            ".hops 1\nPUSH [Switch:SwitchID]", hops=2)
        (b_reports, _, _, _), _ = results[-1]
        assert all(r.fault == FaultCode.STACK_OVERFLOW
                   for r in b_reports[1])

    def test_stack_underflow(self):
        run_batch_vs_interpreter("POP [Sram:Word0]")

    def test_too_many_instructions(self):
        results = run_batch_vs_interpreter("\n".join(["NOP"] * 4),
                                           max_instructions=3)
        (b_reports, _, _, _), _ = results[-1]
        assert all(r.fault == FaultCode.TOO_MANY_INSTRUCTIONS
                   for r in b_reports[0])

    def test_sram_protection_mid_batch(self):
        """Mixed task ids: only the intruding packets fault."""
        def prepare(mmu):
            mmu.allocate_sram(0, 2, task_id=1)
            mmu.enforce_sram_protection = True

        results = run_batch_vs_interpreter("""
            PUSH [Switch:SwitchID]
            POP [Sram:Word0]
        """, sizes=(4,), task_ids=[1, 2, 1, 2], prepare=prepare)
        (b_reports, _, _, _), _ = results[0]
        faults = [r.fault for r in b_reports[0]]
        assert faults == [FaultCode.NONE, FaultCode.SRAM_PROTECTION,
                          FaultCode.NONE, FaultCode.SRAM_PROTECTION]

    def test_mid_batch_corrupted_section(self):
        """One truncated section inside an otherwise healthy batch."""
        def truncate_one(section, index):
            if index == 1:
                del section.memory[:]

        results = run_batch_vs_interpreter(
            ".mode hop\n.hops 2\n"
            "LOAD [Switch:SwitchID], [Packet:Hop[0]]",
            sizes=(3,), damage=truncate_one)
        (b_reports, _, _, _), _ = results[0]
        faults = [r.fault for r in b_reports[0]]
        assert faults == [FaultCode.NONE, FaultCode.MEMORY_BOUNDS,
                          FaultCode.NONE]

    def test_scrambled_hop_counter_mid_batch(self):
        def scramble_one(section, index):
            if index == 0:
                section.hop_or_sp ^= 1 << 9

        run_batch_vs_interpreter(
            ".mode hop\n.hops 2\n"
            "LOAD [Switch:SwitchID], [Packet:Hop[0]]",
            sizes=(2,), damage=scramble_one)


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector lane needs numpy")
class TestVectorLaneFaultRecovery:
    """A mid-kernel MMU fault must rewind and replay bit-identically."""

    def _flaky_mmu(self, stable=True):
        mmu = MMU(name="flaky")
        mmu.bind_reader("Switch:SwitchID", lambda ctx: 7,
                        batch_stable=stable)

        def flaky(ctx):
            if ctx.task_id == 2:
                raise TCPUFault(FaultCode.BAD_ADDRESS,
                                "statistic unbound for task 2")
            return 11

        mmu.bind_reader("Switch:ClockLo", flaky, batch_stable=stable)
        return mmu

    def test_fault_mid_kernel_falls_back_bit_identically(self):
        source = """
            PUSH [Switch:SwitchID]
            PUSH [Switch:ClockLo]
        """
        program = assemble(source)
        certificate = certificate_for(program, 5)
        assert certificate is not None
        task_ids = [1, 1, 2, 1]

        sides = []
        for batched in (True, False):
            tcpu = TCPU(self._flaky_mmu(), compile=batched, batch=True)
            tcpu.trust(certificate)
            sections = [program.build(task_id=t) for t in task_ids]
            ctxs = [make_ctx(t) for t in task_ids]
            if batched:
                reports = tcpu.execute_batch(sections, ctxs)
            else:
                reports = [tcpu.execute(s, c)
                           for s, c in zip(sections, ctxs)]
            sides.append((reports, sections, tcpu))

        (b_reports, b_sections, b_tcpu), (r_reports, r_sections, _) = sides
        # The kernel started (first column written), hit the fault on
        # packet 2, rewound, and replayed through the safe lane.
        assert b_tcpu.batch_fallbacks == 1
        assert b_tcpu.vector_batches == 0
        for fast, ref in zip(b_reports, r_reports):
            assert report_tuple(fast) == report_tuple(ref)
        assert [r.fault for r in b_reports] == [
            FaultCode.NONE, FaultCode.NONE, FaultCode.BAD_ADDRESS,
            FaultCode.NONE]
        for fast, ref in zip(b_sections, r_sections):
            assert bytes(fast.memory) == bytes(ref.memory)
            assert fast.encode() == ref.encode()


class TestMultiCEXEC:
    """First-occurrence ``cexec_disabled_at`` on every execution path."""

    PASS = "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7"
    FAIL = "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 8"
    TAIL = "PUSH [Queue:QueueSize]"

    def _all_paths(self, source, max_instructions=5):
        """Reports from interpreter, checked fast path, and batch."""
        program = assemble(source)
        reports = {}
        for name, compile_flag in (("interp", False), ("fastpath", True)):
            tcpu = TCPU(make_mmu(), max_instructions=max_instructions,
                        compile=compile_flag)
            reports[name] = tcpu.execute(program.build(), make_ctx())
        tcpu = TCPU(make_mmu(), max_instructions=max_instructions,
                    compile=True, batch=True)
        reports["batch"] = tcpu.execute_batch(
            [program.build(), program.build()],
            [make_ctx(), make_ctx()])[0]
        return reports

    def test_pass_then_fail_records_second_index(self):
        source = "\n".join([self.PASS, self.FAIL, self.TAIL])
        for name, report in self._all_paths(source).items():
            assert report.cexec_disabled_at == 1, name
            assert report.executed == 2, name
            assert report.skipped == 1, name

    def test_fail_then_fail_records_first_index(self):
        source = "\n".join([self.FAIL, self.FAIL, self.TAIL])
        for name, report in self._all_paths(source).items():
            assert report.cexec_disabled_at == 0, name
            assert report.executed == 1, name
            assert report.skipped == 2, name

    def test_all_pass_records_none(self):
        source = "\n".join([self.PASS, self.PASS, self.TAIL])
        for name, report in self._all_paths(source).items():
            assert report.cexec_disabled_at is None, name
            assert report.skipped == 0, name

    def test_differential_multi_cexec(self):
        run_batch_vs_interpreter(
            "\n".join([self.PASS, self.FAIL, self.TAIL]))
        run_batch_vs_interpreter(
            "\n".join([self.FAIL, self.PASS, self.TAIL]))


class TestWideWords:
    def test_word8_push(self):
        run_batch_vs_interpreter(".word 8\nPUSH [Switch:ClockLo]")

    def test_word8_arithmetic(self):
        results = run_batch_vs_interpreter("""
            .word 8
            .data 0 1
            ADD [Packet:0], [Switch:ClockLo]
        """)
        (_, sections, _, _), _ = results[-1]
        assert sections[0].read_word(0) == 123457


class TestBatchMechanics:
    def test_length_mismatch_raises(self):
        tcpu = TCPU(make_mmu())
        with pytest.raises(ValueError):
            tcpu.execute_batch([], [make_ctx()])

    def test_empty_batch(self):
        assert TCPU(make_mmu()).execute_batch([], []) == []

    def test_mixed_program_keys_degrade_to_scalar(self):
        """A caller bug (mixed programs in one batch) must not corrupt
        anything: every section still executes its own program."""
        a = assemble("PUSH [Switch:SwitchID]").build()
        b = assemble("PUSH [Queue:QueueSize]").build()
        tcpu = TCPU(make_mmu())
        reports = tcpu.execute_batch([a, b], [make_ctx(), make_ctx()])
        assert [r.executed for r in reports] == [1, 1]
        assert a.read_word(0) == 7
        assert b.read_word(0) == 500

    def test_batch_opt_out_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TPP_BATCH", "0")
        tcpu = TCPU(make_mmu())
        assert tcpu.batch_enabled is False
        program = assemble("PUSH [Switch:SwitchID]")
        sections = [program.build() for _ in range(3)]
        reports = tcpu.execute_batch(sections,
                                     [make_ctx() for _ in range(3)])
        # Degenerates to the scalar loop: no batch accounting at all.
        assert tcpu.batches_executed == 0
        assert [r.executed for r in reports] == [1, 1, 1]
        assert all(s.read_word(0) == 7 for s in sections)

    def test_batch_ctor_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TPP_BATCH", "0")
        assert TCPU(make_mmu(), batch=True).batch_enabled is True
        monkeypatch.delenv("REPRO_TPP_BATCH")
        assert TCPU(make_mmu(), batch=False).batch_enabled is False


@pytest.mark.skipif(not HAVE_NUMPY, reason="arena needs numpy")
class TestBatchArena:
    def test_adopt_aliases_rows(self):
        sections = [assemble(".memory 1\n.data 0 1\nNOP").build()
                    for _ in range(2)]
        arena = BatchArena(sections)
        arena.matrix[0, 0] = 0xAB
        assert sections[0].memory[0] == 0xAB
        sections[1].memory[0] = 0xCD
        assert arena.matrix[1, 0] == 0xCD

    def test_release_restores_bytearrays(self):
        sections = [assemble(".memory 1\n.data 0 7\nNOP").build()]
        before = bytes(sections[0].memory)
        arena = BatchArena(sections)
        arena.release()
        assert isinstance(sections[0].memory, bytearray)
        assert bytes(sections[0].memory) == before
        # A released section survives the corruption injector's resize.
        del sections[0].memory[:]

    def test_mismatched_lengths_rejected(self):
        a = assemble(".memory 1\nNOP").build()
        b = assemble(".memory 2\nNOP").build()
        with pytest.raises(ValueError):
            BatchArena([a, b])

    def test_resident_arena_across_executions(self):
        program = assemble("PUSH [Switch:SwitchID]")
        certificate = certificate_for(program, 5)
        tcpu = TCPU(make_mmu(), compile=True, batch=True)
        tcpu.trust(certificate)
        sections = [program.build() for _ in range(4)]
        h0 = sections[0].hop_or_sp
        arena = BatchArena(sections)
        ctxs = [make_ctx() for _ in range(4)]
        for _ in range(3):
            for section in sections:
                section.hop_or_sp = h0
            reports = tcpu.execute_batch(sections, ctxs, arena=arena)
            assert all(r.ok for r in reports)
        assert tcpu.vector_batches == 3
        assert all(s.read_word(0) == 7 for s in sections)


class TestNumpySRAM:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
    def test_numpy_sram_preserves_contents_and_semantics(self):
        mmu = make_mmu()
        mmu.poke_sram(0, 0xDEADBEEF)
        assert mmu.use_numpy_sram() is True
        assert mmu.peek_sram(0) == 0xDEADBEEF
        mmu.poke_sram(1, 2 ** 64 - 1)
        assert mmu.peek_sram(1) == 2 ** 64 - 1
        assert mmu.use_numpy_sram() is True  # idempotent

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
    def test_differential_with_numpy_sram(self):
        def prepare(mmu):
            mmu.poke_sram(2, 41)
            mmu.use_numpy_sram()

        results = run_batch_vs_interpreter("""
            PUSH [Queue:QueueSize]
            POP [Sram:Word2]
        """, prepare=prepare)
        (_, _, mmu, _), _ = results[0]
        assert mmu.peek_sram(2) == 500


class TestWriteLanes:
    """Write-capable vector lanes: batched ≡ interpreter with SRAM
    mutation in flight, across all three dataflow classes."""

    def test_accumulate_counter(self):
        # The canonical per-switch counter: every packet adds its own
        # delta to Word7 — sequential order reproduced by prefix-scan,
        # so every packet also *observes* a distinct intermediate value.
        def seed(mmu):
            mmu.poke_sram(7, 100)

        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            .data 0 1
            ADD [Packet:0], [Sram:Word7]
            STORE [Sram:Word7], [Packet:0]
        """, prepare=seed)
        for n, ((_, sections, mmu, tcpu), _) in zip(SIZES, results):
            assert mmu.peek_sram(7) == 100 + n
            # Packet i saw the counter after i predecessors bumped it.
            assert [s.read_word(0) for s in sections] == \
                [100 + i + 1 for i in range(n)]
            if HAVE_NUMPY:
                assert tcpu.vector_batches == 1
                assert tcpu.vector_write_batches == 1
                assert tcpu.vector_write_tpps == n

    def test_accumulate_load_chain(self):
        # LOAD w; ADD delta; STORE w — the read side of the chain.
        def seed(mmu):
            mmu.poke_sram(2, 9)

        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            LOAD [Sram:Word2], [Packet:0]
            ADD [Packet:0], [Switch:SwitchID]
            STORE [Sram:Word2], [Packet:0]
        """, prepare=seed)
        for n, ((_, _, mmu, _), _) in zip(SIZES, results):
            assert mmu.peek_sram(2) == 9 + 7 * n

    def test_accumulate_wraps_identically(self):
        # Start the counter near the word boundary so the prefix scan
        # must wrap mod 2^32 exactly like the scalar packing does.
        def seed(mmu):
            mmu.poke_sram(1, 0xFFFFFFF0)

        run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            .data 0 3
            ADD [Packet:0], [Sram:Word1]
            STORE [Sram:Word1], [Packet:0]
        """, prepare=seed)

    def test_accumulate_oversized_control_plane_seed(self):
        # A control-plane poke can exceed the 32-bit word; the scalar
        # path masks at LOAD time and the kernel must agree.
        def seed(mmu):
            mmu.poke_sram(3, (1 << 40) | 5)

        run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            .data 0 2
            ADD [Packet:0], [Sram:Word3]
            STORE [Sram:Word3], [Packet:0]
        """, prepare=seed)

    def test_accumulate_stack_identity(self):
        # PUSH w; POP w is a delta-zero additive chain (sp family).
        def seed(mmu):
            mmu.poke_sram(4, 77)

        results = run_batch_vs_interpreter("""
            PUSH [Sram:Word4]
            POP [Sram:Word4]
        """, prepare=seed)
        (_, _, mmu, _), _ = results[-1]
        assert mmu.peek_sram(4) == 77

    def test_accumulate_hop_mode_multihop(self):
        def seed(mmu):
            mmu.poke_sram(5, 40)

        run_batch_vs_interpreter("""
            .mode hop
            .hops 3
            .perhop 1
            LOAD [Sram:Word5], [Packet:Hop[0]]
            ADD [Packet:Hop[0]], [Switch:SwitchID]
            STORE [Sram:Word5], [Packet:Hop[0]]
        """, hops=3, prepare=seed)

    def test_accumulate_word8(self):
        def seed(mmu):
            mmu.poke_sram(6, 2 ** 40)

        run_batch_vs_interpreter("""
            .word 8
            .mode absolute
            .memory 1
            .data 0 1
            ADD [Packet:0], [Sram:Word6]
            STORE [Sram:Word6], [Packet:0]
        """, prepare=seed)

    def test_claim_first_match_wins(self):
        # Every packet offers its own id for an all-zero word: exactly
        # the first one in arrival order may win (paper §claim).
        def seed(mmu):
            mmu.poke_sram(0, 0)

        def stamp(section, index):
            section.write_word(0, 0)            # cond: expect unclaimed
            section.write_word(4, 1000 + index)  # src: my claim


        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 2
            CSTORE [Sram:Word0], [Packet:0], [Packet:1]
        """, prepare=seed, damage=stamp)
        for n, ((b_reports, _, mmu, tcpu), _) in zip(SIZES, results):
            assert mmu.peek_sram(0) == 1000
            wins = [r.switch_writes for r in b_reports[0]]
            assert wins[0] == [(mmu.memory_map.resolve("Sram:Word0"),
                                1000)]
            assert all(w == [] for w in wins[1:])
            if HAVE_NUMPY:
                assert tcpu.vector_write_batches == 1

    def test_claim_chained_wins(self):
        # Packet i expects value i and claims i+1: sequential chaining
        # means *every* packet wins — the exact-integer replay must not
        # stop at the first match.
        def stamp(section, index):
            section.write_word(0, index)
            section.write_word(4, index + 1)

        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 2
            CSTORE [Sram:Word0], [Packet:0], [Packet:1]
        """, damage=stamp)
        for n, ((b_reports, _, mmu, _), _) in zip(SIZES, results):
            assert mmu.peek_sram(0) == n
            assert all(len(r.switch_writes) == 1 for r in b_reports[0])

    def test_claim_unclaimed_leaves_oversized_seed_intact(self):
        # No packet matches: the scalar path never writes the word, so
        # an oversized control-plane seed must survive bit-exactly.
        def seed(mmu):
            mmu.poke_sram(0, (1 << 50) | 3)

        def stamp(section, index):
            section.write_word(0, 1)
            section.write_word(4, 9)

        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 2
            CSTORE [Sram:Word0], [Packet:0], [Packet:1]
        """, prepare=seed, damage=stamp)
        (_, _, mmu, _), _ = results[-1]
        assert mmu.peek_sram(0) == (1 << 50) | 3

    def test_private_scatter_last_writer_wins(self):
        def stamp(section, index):
            section.write_word(0, 500 + index)

        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            STORE [Sram:Word9], [Packet:0]
        """, damage=stamp)
        for n, ((_, _, mmu, _), _) in zip(SIZES, results):
            assert mmu.peek_sram(9) == 500 + n - 1

    def test_two_independent_accumulators(self):
        def seed(mmu):
            mmu.poke_sram(0, 10)
            mmu.poke_sram(1, 20)

        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 2
            .data 0 1
            .data 1 2
            ADD [Packet:0], [Sram:Word0]
            STORE [Sram:Word0], [Packet:0]
            ADD [Packet:1], [Sram:Word1]
            STORE [Sram:Word1], [Packet:1]
        """, prepare=seed)
        for n, ((_, _, mmu, _), _) in zip(SIZES, results):
            assert mmu.peek_sram(0) == 10 + n
            assert mmu.peek_sram(1) == 20 + 2 * n

    def test_accumulate_under_sram_protection(self):
        # Uniform owner task: the write lane's protection precheck
        # passes and the vectorized result must still be identical.
        def prepare(mmu):
            mmu.allocate_sram(0, 2, task_id=3)
            mmu.enforce_sram_protection = True
            mmu.poke_sram(1, 6)

        results = run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            .data 0 1
            ADD [Packet:0], [Sram:Word1]
            STORE [Sram:Word1], [Packet:0]
        """, sizes=(4,), task_ids=[3, 3, 3, 3], prepare=prepare)
        (_, _, mmu, tcpu), _ = results[0]
        assert mmu.peek_sram(1) == 10
        if HAVE_NUMPY:
            assert tcpu.vector_write_batches == 1

    def test_foreign_task_write_demotes_and_faults(self):
        # Uniform *intruder* task: precheck demotes to the safe lane,
        # which reproduces the per-packet protection faults.
        def prepare(mmu):
            mmu.allocate_sram(0, 2, task_id=3)
            mmu.enforce_sram_protection = True

        results = run_batch_vs_interpreter("""
            PUSH [Switch:SwitchID]
            POP [Sram:Word0]
        """, sizes=(4,), task_ids=[5, 5, 5, 5], prepare=prepare)
        (b_reports, _, _, tcpu), _ = results[0]
        assert all(r.fault == FaultCode.SRAM_PROTECTION
                   for r in b_reports[0])
        assert tcpu.vector_write_batches == 0
        if HAVE_NUMPY:
            assert tcpu.batch_demotions.get("sram_protection", 0) == 1

    def test_private_scatter_with_numpy_sram(self):
        def prepare(mmu):
            mmu.use_numpy_sram()

        run_batch_vs_interpreter("""
            PUSH [Queue:QueueSize]
            POP [Sram:Word2]
        """, prepare=prepare)

    def test_accumulate_with_numpy_sram(self):
        def prepare(mmu):
            mmu.poke_sram(8, 3)
            mmu.use_numpy_sram()

        run_batch_vs_interpreter("""
            .mode absolute
            .memory 1
            .data 0 5
            ADD [Packet:0], [Sram:Word8]
            STORE [Sram:Word8], [Packet:0]
        """, prepare=prepare)


class TestRawOperandArithmetic:
    """The scalar path applies MIN/MAX to the *raw* operand and masks
    afterwards; the kernel must not pre-mask (regression: it used to)."""

    def _rebind(self, value):
        def prepare(mmu):
            mmu.bind_reader("Switch:ClockLo", lambda ctx: value,
                            batch_stable=True)
        return prepare

    @pytest.mark.parametrize("op", ["MIN", "MAX", "ADD", "SUB", "AND",
                                    "OR", "XOR"])
    @pytest.mark.parametrize("raw", [-3, 2 ** 40, (1 << 32) + 6])
    def test_out_of_range_operand(self, op, raw):
        run_batch_vs_interpreter(f"""
            .data 0 41
            {op} [Packet:0], [Switch:ClockLo]
        """, prepare=self._rebind(raw), shared_ctx=True)

    @pytest.mark.parametrize("raw", [-1, 2 ** 33])
    def test_out_of_range_operand_distinct_ctxs(self, raw):
        # The non-shared-context element-wise path.
        run_batch_vs_interpreter("""
            .data 0 41
            MIN [Packet:0], [Switch:ClockLo]
            MAX [Packet:0], [Switch:ClockLo]
        """, prepare=self._rebind(raw), shared_ctx=False)


class TestRandomizedSweep:
    """Seeded fuzz across batch sizes: batched ≡ interpreter, always."""

    TEMPLATES = [
        "PUSH [Switch:SwitchID]",
        "PUSH [Queue:QueueSize]",
        "PUSH [Switch:ClockLo]",
        "POP [Sram:Word{word}]",
        "POP [Queue:QueueSize]",
        "LOAD [Switch:ClockLo], [Packet:{slot}]",
        "LOAD [0x0999], [Packet:{slot}]",
        "STORE [Sram:Word{word}], [Packet:{slot}]",
        "CSTORE [Sram:Word{word}], {imm}, {imm2}",
        "CEXEC [Switch:SwitchID], 0xFF, {imm}",
        "ADD [Packet:{slot}], [Switch:SwitchID]",
        "SUB [Packet:{slot}], [Queue:QueueSize]",
        "XOR [Packet:{slot}], [Switch:ClockLo]",
        "MIN [Packet:{slot}], [Switch:SwitchID]",
        "NOP",
    ]

    def test_random_programs_agree(self):
        rng = random.Random(20260808)
        for _ in range(60):
            n = rng.randint(1, 5)
            memory_words = rng.randint(0, 6)
            lines = [f".mode {rng.choice(['stack', 'absolute'])}",
                     f".memory {memory_words}"]
            for _ in range(n):
                template = rng.choice(self.TEMPLATES)
                lines.append(template.format(
                    word=rng.randint(0, 5),
                    slot=rng.randint(0, 7),
                    imm=rng.randint(0, 255),
                    imm2=rng.randint(0, 255),
                ))
            run_batch_vs_interpreter("\n".join(lines),
                                     sizes=(1, 2, 32),
                                     hops=rng.randint(1, 2))

    def test_random_write_programs_agree(self):
        """Write-biased fuzz: every program bears at least one SRAM
        write, sweeping all three dataflow classes plus the mixed
        demotions, with seeded SRAM contents and per-packet data."""
        rng = random.Random(0xACC)
        write_templates = [
            "STORE [Sram:Word{word}], [Packet:{slot}]",
            "CSTORE [Sram:Word{word}], [Packet:{slot}], [Packet:{slot1}]",
            "ADD [Packet:{slot}], [Sram:Word{word}]",
            "LOAD [Sram:Word{word}], [Packet:{slot}]",
            "ADD [Packet:{slot}], [Switch:SwitchID]",
            "SUB [Packet:{slot}], [Sram:Word{word}]",
            "XOR [Packet:{slot}], [Sram:Word{word}]",
            "LOAD [Switch:ClockLo], [Packet:{slot}]",
            "STORE [Sram:Word{word2}], [Packet:{slot}]",
            "MIN [Packet:{slot}], [Queue:QueueSize]",
        ]
        for round_index in range(110):
            memory_words = rng.randint(2, 6)
            lines = [".mode absolute", f".memory {memory_words}"]
            for w in range(memory_words):
                if rng.random() < 0.5:
                    lines.append(f".data {w} {rng.randint(0, 9)}")
            n = rng.randint(1, 4)
            has_write = False
            for _ in range(n):
                template = rng.choice(write_templates)
                has_write |= template.startswith(("STORE", "CSTORE"))
                # CSTORE's cond/src packet operands must be consecutive.
                slot = rng.randint(0, memory_words - 2)
                lines.append(template.format(
                    word=rng.randint(0, 3),
                    word2=rng.randint(0, 3),
                    slot=slot,
                    slot1=slot + 1,
                ))
            if not has_write:
                lines.append(
                    f"STORE [Sram:Word{rng.randint(0, 3)}], [Packet:0]")
            # Pre-drawn so both differential sides see identical state
            # (prepare/damage run once per side).
            sram_seed = [rng.randint(0, 2 ** 33) for _ in range(4)]
            base = rng.randint(0, 2 ** 32)

            def seed(mmu, values=sram_seed):
                for w, value in enumerate(values):
                    mmu.poke_sram(w, value)

            def scatter(section, index, base=base):
                for w in range(len(section.memory) // 4):
                    if (base >> w) & 1:
                        section.write_word(
                            w * 4, (base + index * 1009 + w * 131)
                            & 0xFFFFFFFF)

            run_batch_vs_interpreter(
                "\n".join(lines), sizes=(1, 2, 32),
                prepare=seed, damage=scatter,
                shared_ctx=bool(round_index % 2))

    def test_random_write_stack_programs_agree(self):
        rng = random.Random(0x5Ac)
        stack_templates = [
            "PUSH [Sram:Word{word}]",
            "PUSH [Switch:SwitchID]",
            "PUSH [Queue:QueueSize]",
            "POP [Sram:Word{word}]",
            "POP [Sram:Word{word2}]",
        ]
        for _ in range(60):
            lines = []
            for _ in range(rng.randint(1, 4)):
                lines.append(rng.choice(stack_templates).format(
                    word=rng.randint(0, 2), word2=rng.randint(0, 2)))
            lines.append(f"POP [Sram:Word{rng.randint(0, 2)}]"
                         if not any("POP" in li for li in lines) else "NOP")
            sram_seed = [rng.randint(0, 255) for _ in range(3)]

            def seed(mmu, values=sram_seed):
                for w, value in enumerate(values):
                    mmu.poke_sram(w, value)

            run_batch_vs_interpreter("\n".join(lines), sizes=(1, 2, 32),
                                     prepare=seed)

    def test_random_hop_write_programs_agree(self):
        rng = random.Random(0xA0)
        hop_templates = [
            "LOAD [Sram:Word{word}], [Packet:Hop[{slot}]]",
            "ADD [Packet:Hop[{slot}]], [Sram:Word{word}]",
            "ADD [Packet:Hop[{slot}]], [Switch:SwitchID]",
            "STORE [Sram:Word{word}], [Packet:Hop[{slot}]]",
            "STORE [Sram:Word{word2}], [Packet:Hop[{slot}]]",
        ]
        for _ in range(40):
            hops = rng.randint(1, 3)
            perhop = rng.randint(1, 3)
            lines = [".mode hop", f".hops {hops}", f".perhop {perhop}"]
            for _ in range(rng.randint(1, 4)):
                lines.append(rng.choice(hop_templates).format(
                    slot=rng.randint(0, perhop - 1),
                    word=rng.randint(0, 2), word2=rng.randint(0, 2)))
            sram_seed = [rng.randint(0, 2 ** 20) for _ in range(3)]

            def seed(mmu, values=sram_seed):
                for w, value in enumerate(values):
                    mmu.poke_sram(w, value)

            run_batch_vs_interpreter("\n".join(lines), sizes=(1, 2, 32),
                                     prepare=seed, hops=hops + 1)

    def test_random_hop_programs_agree(self):
        rng = random.Random(78)
        hop_templates = [
            "LOAD [Switch:ClockLo], [Packet:Hop[{slot}]]",
            "LOAD [Queue:QueueSize], [Packet:Hop[{slot}]]",
            "ADD [Packet:Hop[{slot}]], [Switch:SwitchID]",
            "STORE [Sram:Word{word}], [Packet:Hop[{slot}]]",
        ]
        for _ in range(30):
            hops = rng.randint(1, 4)
            perhop = rng.randint(1, 3)
            lines = [".mode hop", f".hops {hops}", f".perhop {perhop}"]
            for _ in range(rng.randint(1, 3)):
                lines.append(rng.choice(hop_templates).format(
                    slot=rng.randint(0, perhop), word=rng.randint(0, 3)))
            run_batch_vs_interpreter("\n".join(lines), sizes=(1, 2, 32),
                                     hops=hops + 1)


class TestSketchDifferential:
    """Generated sketch update programs through the differential rig:
    accumulate columns vectorize, CSTORE claims vectorize, MAX-RMW
    register updates demote — and every lane stays bit-identical to
    the interpreter at sizes 1/2/32."""

    def _hh_layout(self):
        from repro.telemetry import HeavyHitterLayout
        return HeavyHitterLayout(base_word=0, width=8, depth=2,
                                 n_slots=2)

    def test_count_min_update_rides_the_write_lane(self):
        from repro.telemetry import build_count_min_update
        layout = self._hh_layout().countmin
        update = build_count_min_update(layout, key=42, delta=3)
        results = run_batch_vs_interpreter(update.source)
        for n, ((_, _, mmu, tcpu), _) in zip(SIZES, results):
            # n packets, delta 3, one cell per row: pure accumulate.
            assert [mmu.peek_sram(w) for w in update.words] == \
                [3 * n] * layout.depth
            if HAVE_NUMPY:
                assert tcpu.vector_batches == 1
                assert tcpu.vector_write_batches == 1
                assert tcpu.batch_demotions == {}

    def test_heavy_hitter_update_accumulate_plus_claim(self):
        from repro.telemetry import build_heavy_hitter_update
        layout = self._hh_layout()
        update = build_heavy_hitter_update(layout, key=42)
        results = run_batch_vs_interpreter(update.source)
        slot = layout.slot_word(42)
        for n, ((_, _, mmu, tcpu), _) in zip(SIZES, results):
            for word in update.words[:-1]:
                assert mmu.peek_sram(word) == n
            # First packet claims the slot; the rest find key 42 there
            # (CSTORE only writes on match) and leave it intact.
            assert mmu.peek_sram(slot) == 42
            if HAVE_NUMPY:
                assert tcpu.vector_batches == 1
                assert tcpu.vector_write_batches == 1
                assert tcpu.batch_demotions == {}

    def test_claimed_slot_survives_rival_batch(self):
        # A batch of updates for a *different* key that hashes to the
        # same slot must not displace the incumbent claim.
        from repro.telemetry import build_heavy_hitter_update
        layout = self._hh_layout()
        rival = next(k for k in range(43, 512)
                     if layout.slot_word(k) == layout.slot_word(42))
        update = build_heavy_hitter_update(layout, key=rival)

        def seed(mmu):
            mmu.poke_sram(layout.slot_word(42), 42)

        results = run_batch_vs_interpreter(update.source, prepare=seed)
        for (_, _, mmu, _), _ in results:
            assert mmu.peek_sram(layout.slot_word(42)) == 42

    def test_distinct_update_demotes_to_safe_lane(self):
        from repro.telemetry import (DistinctCountLayout,
                                     build_distinct_update)
        layout = DistinctCountLayout(base_word=32, m=8)
        update = build_distinct_update(layout, key=5)
        _, rank = layout.bucket_and_rank(5)
        results = run_batch_vs_interpreter(update.source)
        for n, ((_, _, mmu, tcpu), _) in zip(SIZES, results):
            # Idempotent MAX: any number of packets leaves the rank.
            assert mmu.peek_sram(update.words[0]) == rank
            if HAVE_NUMPY:
                assert tcpu.vector_batches == 0
                assert tcpu.batch_demotions.get("write_dataflow", 0) >= 1

    def test_mixed_key_sketch_batch_degrades_to_scalar(self):
        # Different keys are different programs (the hash is baked into
        # the bytes): a mixed batch is the caller-bug path and must
        # still produce each key's own update.
        from repro.telemetry import build_count_min_update
        layout = self._hh_layout().countmin
        a = build_count_min_update(layout, key=42)
        b = build_count_min_update(layout, key=43)
        assert a.certificate.program_key != b.certificate.program_key
        tcpu = TCPU(make_mmu())
        reports = tcpu.execute_batch([a.build(), b.build()],
                                     [make_ctx(), make_ctx()])
        assert all(r.ok for r in reports)
        for update in (a, b):
            for word in update.words:
                expect = 2 if word in set(a.words) & set(b.words) else 1
                assert tcpu.mmu.peek_sram(word) == expect


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector lane needs numpy")
class TestSketchFaultRewind:
    """A mid-batch fault during a sketch update must rewind the write
    kernel with no partial counter increments left behind.

    Task ids are uniform (mixed tasks on a write-bearing batch demote
    before the kernel starts, reason ``non_uniform``); the fault comes
    from a per-context reader, so the kernel genuinely starts, hits
    the fault on packet 2, rewinds, and replays through the safe lane.
    """

    def _flaky_mmu(self):
        mmu = MMU(name="flaky-sketch")
        mmu.bind_reader("Switch:SwitchID", lambda ctx: 7,
                        batch_stable=True)

        def flaky(ctx):
            if ctx.time_ns == 3:
                raise TCPUFault(FaultCode.BAD_ADDRESS,
                                "clock gap at t=3")
            return 11

        mmu.bind_reader("Switch:ClockLo", flaky, batch_stable=True)
        return mmu

    def test_fault_mid_sketch_write_rewinds_bit_identically(self):
        from repro.telemetry import build_count_min_update
        from repro.telemetry.layout import CountMinLayout
        layout = CountMinLayout(base_word=0, width=8, depth=2)
        update = build_count_min_update(layout, key=42)
        # Prefix the update with the flaky read so the faulting packet
        # dies *before* its counter writes: the rewound replay must
        # leave exactly the three healthy packets' increments.
        source = update.source.replace(
            ".memory 2",
            ".memory 3\nLOAD [Switch:ClockLo],[Packet:2]")
        program = assemble(source)
        certificate = certificate_for(program, 5)
        assert certificate is not None

        def ctx_at(t):
            return ExecutionContext(metadata=PacketMetadata(),
                                    egress_port=FakePort(), time_ns=t,
                                    task_id=0)

        sides = []
        for batched in (True, False):
            tcpu = TCPU(self._flaky_mmu(), compile=batched, batch=True)
            tcpu.trust(certificate)
            sections = [program.build() for _ in range(4)]
            ctxs = [ctx_at(t) for t in (1, 2, 3, 4)]
            if batched:
                reports = tcpu.execute_batch(sections, ctxs)
            else:
                reports = [tcpu.execute(s, c)
                           for s, c in zip(sections, ctxs)]
            sides.append((reports, sections, tcpu))

        (b_reports, b_sections, b_tcpu), (r_reports, r_sections,
                                          r_tcpu) = sides
        assert b_tcpu.batch_fallbacks == 1
        assert b_tcpu.vector_batches == 0
        assert b_tcpu.batch_demotions.get("fault_rewind", 0) == 1
        assert [r.fault for r in b_reports] == [
            FaultCode.NONE, FaultCode.NONE, FaultCode.BAD_ADDRESS,
            FaultCode.NONE]
        for fast, ref in zip(b_reports, r_reports):
            assert report_tuple(fast) == report_tuple(ref)
        for fast, ref in zip(b_sections, r_sections):
            assert bytes(fast.memory) == bytes(ref.memory)
            assert fast.encode() == ref.encode()
        # No partial sketch writes from the faulted packet, and the
        # rewound batch left the same counters as the interpreter.
        for word in update.words:
            assert b_tcpu.mmu.peek_sram(word) == 3
            assert r_tcpu.mmu.peek_sram(word) == 3

    def test_mixed_task_sketch_batch_demotes_before_kernel(self):
        """The contrast case: mixed task ids on a write-bearing batch
        must demote *before* any kernel state exists — still
        bit-identical, counted as ``non_uniform``, not a rewind."""
        from repro.telemetry import build_count_min_update
        from repro.telemetry.layout import CountMinLayout
        layout = CountMinLayout(base_word=0, width=8, depth=2)
        update = build_count_min_update(layout, key=42)
        program = assemble(update.source)
        certificate = certificate_for(program, 5)
        task_ids = [1, 1, 2, 1]
        tcpu = TCPU(make_mmu(), compile=True, batch=True)
        tcpu.trust(certificate)
        sections = [program.build(task_id=t) for t in task_ids]
        reports = tcpu.execute_batch(sections,
                                     [make_ctx(t) for t in task_ids])
        assert all(r.ok for r in reports)
        assert tcpu.batch_fallbacks == 0
        assert tcpu.batch_demotions.get("non_uniform", 0) == 1
        for word in update.words:
            assert tcpu.mmu.peek_sram(word) == 4


class TestDeadFenceVector:
    """Relationally-dead CEXEC suffixes ride the vector lane; reports,
    packet memory and switch state must stay bit-identical to the
    interpreter, which executes the fence the long way."""

    DEAD_FENCE = (".memory 2\n"
                  "LOAD [Switch:ClockLo], [Packet:0]\n"
                  "CEXEC [Switch:SwitchID], 0x0F, 0xF0\n"
                  "STORE [Sram:Word0], [Packet:0]")

    def test_dead_fence_agrees(self):
        results = run_batch_vs_interpreter(self.DEAD_FENCE,
                                           max_instructions=8)
        if HAVE_NUMPY:
            (_, _, _, tcpu), _ = results[-1]
            assert tcpu.vector_batches >= 1
            assert tcpu.batch_demotions == {}

    def test_dead_fence_agrees_shared_ctx(self):
        run_batch_vs_interpreter(self.DEAD_FENCE, max_instructions=8,
                                 shared_ctx=True)

    def test_dead_fence_on_sram_fence_register(self):
        # The fence register itself lives in SRAM: the per-packet
        # disabling read is task-dependent, so the lowering must keep
        # task-id addressing while still skipping the dead suffix.
        source = (".memory 2\n"
                  "LOAD [Switch:ClockLo], [Packet:0]\n"
                  "CEXEC [Sram:Word7], 0x0F, 0xF0\n"
                  "STORE [Sram:Word0], [Packet:0]")
        run_batch_vs_interpreter(source, max_instructions=8)

    def test_dead_fence_multihop(self):
        run_batch_vs_interpreter(self.DEAD_FENCE, max_instructions=8,
                                 hops=3)
