"""Demotion observability: every safe-lane detour is counted, by reason.

The batched engine (:mod:`repro.core.batch`) increments
``TCPU.batch_demotions[reason]`` exactly once per demoted batch, and the
switch surfaces the dict via ``fastpath_stats()``/``batch_report()``.
Each test here drives one demotion path end to end and asserts both the
reason and that the batch still executed correctly through the safe
lane.
"""

import pytest

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.batch import HAVE_NUMPY
from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.memory_map import MemoryMap
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU
from repro.core.verifier import verify_program

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="vector lane needs numpy")


class FakeQueue:
    occupancy_bytes = 640


class FakePort:
    index = 0
    queue = FakeQueue()


def make_mmu(stable=True):
    mmu = MMU(name="counters")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 9, batch_stable=stable)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes,
                    batch_stable=stable)
    return mmu


def make_ctx(task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=0,
                            task_id=task_id)


def certified_tcpu(source, mmu=None, max_instructions=5, trust=True):
    mmu = mmu if mmu is not None else make_mmu()
    tcpu = TCPU(mmu, max_instructions=max_instructions,
                compile=True, batch=True)
    program = assemble(source)
    if trust:
        result = verify_program(program,
                                memory_map=MemoryMap.standard(),
                                max_instructions=max_instructions)
        tcpu.trust(result.raise_on_error().certificate)
    return tcpu, program


def run_batch(tcpu, program, n=4, task_ids=None, ctxs=None, mutate=None):
    tasks = task_ids if task_ids is not None else [0] * n
    sections = [program.build(task_id=t) for t in tasks]
    if mutate is not None:
        for index, section in enumerate(sections):
            mutate(section, index)
            section.invalidate_caches()
    if ctxs is None:
        ctxs = [make_ctx(t) for t in tasks]
    return tcpu.execute_batch(sections, ctxs), sections


READ_ONLY = "PUSH [Switch:SwitchID]"
WRITE_PRIVATE = "PUSH [Switch:SwitchID]\nPOP [Sram:Word0]"


class TestDemotionReasons:
    @needs_numpy
    def test_vectorized_batch_records_no_demotion(self):
        tcpu, program = certified_tcpu(READ_ONLY)
        run_batch(tcpu, program)
        assert tcpu.batch_demotions == {}
        assert tcpu.vector_batches == 1

    def test_no_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.core.batch.HAVE_NUMPY", False)
        tcpu, program = certified_tcpu(READ_ONLY)
        reports, _ = run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"no_numpy": 1}
        assert tcpu.vector_batches == 0
        assert all(r.ok for r in reports)

    @needs_numpy
    def test_uncertified_program(self):
        tcpu, program = certified_tcpu(READ_ONLY, trust=False)
        run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"uncertified": 1}

    @needs_numpy
    def test_uncertified_guard_miss(self):
        # Certified, but the uniform SP sits outside the certificate
        # guard: the batch must not trust the vector precondition.
        tcpu, program = certified_tcpu(READ_ONLY)

        def overflow_sp(section, index):
            section.hop_or_sp = len(section.memory)

        reports, _ = run_batch(tcpu, program, mutate=overflow_sp)
        assert tcpu.batch_demotions == {"uncertified": 1}
        assert all(r.fault == FaultCode.STACK_OVERFLOW for r in reports)

    @needs_numpy
    def test_oversized_program_counts_uncertified(self):
        tcpu, program = certified_tcpu("\n".join(["NOP"] * 4),
                                       max_instructions=3, trust=False)
        reports, _ = run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"uncertified": 1}
        assert all(r.fault == FaultCode.TOO_MANY_INSTRUCTIONS
                   for r in reports)

    @needs_numpy
    def test_cexec(self):
        tcpu, program = certified_tcpu(
            "CEXEC [Switch:SwitchID], 0xFF, 9\nPUSH [Queue:QueueSize]")
        run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"cexec": 1}

    @needs_numpy
    def test_write_dataflow(self):
        # Non-additive read-modify-write: no dataflow class fits.
        tcpu, program = certified_tcpu(
            ".mode absolute\n.memory 1\n"
            "LOAD [Sram:Word0], [Packet:0]\n"
            "XOR [Packet:0], [Switch:SwitchID]\n"
            "STORE [Sram:Word0], [Packet:0]")
        run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"write_dataflow": 1}

    @needs_numpy
    def test_link_scratch_write_counts_write_dataflow(self):
        # Link scratch certifies, but the target register depends on
        # each packet's egress port: not a batch-stable writer.
        tcpu, program = certified_tcpu(
            "PUSH [Switch:SwitchID]\nPOP [Link:Reg0]")
        run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"write_dataflow": 1}

    @needs_numpy
    def test_unstable_read(self):
        tcpu, program = certified_tcpu(READ_ONLY, mmu=make_mmu(stable=False))
        run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"unstable_read": 1}

    @needs_numpy
    def test_non_uniform_hop_counters(self):
        tcpu, program = certified_tcpu(READ_ONLY)

        def advance_one(section, index):
            if index == 1:
                section.hop_or_sp += 4

        run_batch(tcpu, program, mutate=advance_one)
        assert tcpu.batch_demotions == {"non_uniform": 1}

    @needs_numpy
    def test_mixed_program_keys_count_non_uniform(self):
        tcpu, _ = certified_tcpu(READ_ONLY, trust=False)
        a = assemble(READ_ONLY).build()
        b = assemble("PUSH [Queue:QueueSize]").build()
        tcpu.execute_batch([a, b], [make_ctx(), make_ctx()])
        assert tcpu.batch_demotions == {"non_uniform": 1}

    @needs_numpy
    def test_mixed_task_ids_with_writes_count_non_uniform(self):
        tcpu, program = certified_tcpu(WRITE_PRIVATE)
        run_batch(tcpu, program, task_ids=[1, 2, 1, 2])
        assert tcpu.batch_demotions == {"non_uniform": 1}
        assert tcpu.vector_write_batches == 0

    @needs_numpy
    def test_aliased_ctx_mixed_task_ids_count_non_uniform(self):
        tcpu, program = certified_tcpu(
            ".mode absolute\n.memory 1\nLOAD [Sram:Word0], [Packet:0]")
        ctx = make_ctx()
        run_batch(tcpu, program, task_ids=[1, 2, 1, 2],
                  ctxs=[ctx, ctx, ctx, ctx])
        assert tcpu.batch_demotions == {"non_uniform": 1}

    @needs_numpy
    def test_sram_protection_precheck(self):
        mmu = make_mmu()
        mmu.allocate_sram(0, 2, task_id=3)
        mmu.enforce_sram_protection = True
        tcpu, program = certified_tcpu(WRITE_PRIVATE, mmu=mmu)
        reports, _ = run_batch(tcpu, program, task_ids=[5, 5, 5, 5])
        assert tcpu.batch_demotions == {"sram_protection": 1}
        assert all(r.fault == FaultCode.SRAM_PROTECTION for r in reports)
        # SRAM commits never ran: the owner's words are untouched.
        assert mmu.peek_sram(0) == 0

    @needs_numpy
    def test_fault_rewind_mid_kernel(self):
        mmu = make_mmu()

        def flaky(ctx):
            if ctx.task_id == 2:
                raise TCPUFault(FaultCode.BAD_ADDRESS, "unbound for 2")
            return 11

        mmu.bind_reader("Switch:ClockLo", flaky, batch_stable=True)
        tcpu, program = certified_tcpu(
            "PUSH [Switch:SwitchID]\nPUSH [Switch:ClockLo]", mmu=mmu)
        reports, _ = run_batch(tcpu, program, task_ids=[1, 1, 2, 1])
        assert tcpu.batch_demotions == {"fault_rewind": 1}
        assert tcpu.batch_fallbacks == 1
        assert [r.fault for r in reports] == [
            FaultCode.NONE, FaultCode.NONE, FaultCode.BAD_ADDRESS,
            FaultCode.NONE]

    @needs_numpy
    def test_fault_rewind_with_write_lane_leaves_sram_pristine(self):
        # The write-bearing kernel faults on a later read: no SRAM
        # commit may have happened by then (epilogue-only commits).
        mmu = make_mmu()
        mmu.poke_sram(0, 123)

        def always_faults(ctx):
            raise TCPUFault(FaultCode.BAD_ADDRESS, "unbound")

        mmu.bind_reader("Switch:ClockLo", always_faults,
                        batch_stable=True)
        tcpu, program = certified_tcpu(
            ".mode absolute\n.memory 2\n"
            ".data 0 1\n"
            "ADD [Packet:0], [Sram:Word0]\n"
            "STORE [Sram:Word0], [Packet:0]\n"
            "LOAD [Switch:ClockLo], [Packet:1]", mmu=mmu)
        reports, _ = run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"fault_rewind": 1}
        assert tcpu.vector_write_batches == 0
        # The kernel processed the accumulate micro-ops before the LOAD
        # faulted, but commits are epilogue-only — the safe-lane replay
        # starts from a pristine 123 and applies the scalar semantics:
        # every packet bumps the counter (ADD and STORE precede the
        # faulting LOAD in program order), then faults.
        assert all(r.fault == FaultCode.BAD_ADDRESS for r in reports)
        assert all(r.executed == 2 for r in reports)
        assert mmu.peek_sram(0) == 123 + 4

    @needs_numpy
    def test_reasons_accumulate_across_batches(self):
        tcpu, program = certified_tcpu(READ_ONLY, trust=False)
        for _ in range(3):
            run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"uncertified": 3}


class TestCounterSurface:
    def _switch(self):
        from repro import units
        from repro.net.topology import TopologyBuilder

        builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                                  delay_ns=1_000)
        net = builder.star(n_hosts=2)
        return net.switch("sw0")

    def test_fastpath_stats_exposes_write_and_demotion_counters(self):
        switch = self._switch()
        stats = switch.fastpath_stats()
        assert stats["vector_write_batches"] == 0
        assert stats["vector_write_tpps"] == 0
        assert stats["batch_demotions"] == {}
        switch.tcpu.batch_demotions["cexec"] = 2
        switch.tcpu.vector_write_batches = 1
        fresh = switch.fastpath_stats()
        assert fresh["batch_demotions"] == {"cexec": 2}
        assert fresh["vector_write_batches"] == 1
        # The stats dict is a snapshot, not a live alias.
        fresh["batch_demotions"]["cexec"] = 99
        assert switch.tcpu.batch_demotions["cexec"] == 2

    def test_batch_report_renders_demotions(self):
        from repro.analysis.reporting import batch_report

        switch = self._switch()
        switch.tcpu.batch_demotions.update(
            {"cexec": 2, "fault_rewind": 1})
        switch.tcpu.vector_write_batches = 4
        text = batch_report([switch])
        assert "wr-batches" in text
        assert "demoted" in text
        assert "cexec×2" in text
        assert "fault_rewind×1" in text


DEAD_FENCE = (".memory 2\n"
              "LOAD [Queue:QueueSize], [Packet:0]\n"
              "CEXEC [Switch:SwitchID], 0x0F, 0xF0\n"
              "STORE [Sram:Word0], [Packet:0]")


class TestDeadFenceVectorization:
    """A statically-false CEXEC no longer costs the vector lane: the
    certificate's relational facts let the batch engine lower only the
    live prefix and stamp the scalar CEXEC bookkeeping."""

    @needs_numpy
    def test_dead_fence_batch_vectorizes(self):
        tcpu, program = certified_tcpu(DEAD_FENCE, max_instructions=8)
        mmu = tcpu.mmu
        mmu.poke_sram(0, 0xBEEF)
        reports, sections = run_batch(tcpu, program)
        assert tcpu.batch_demotions == {}
        assert tcpu.vector_batches == 1
        for report in reports:
            assert report.executed == 2   # LOAD + the disabling CEXEC
            assert report.skipped == 1    # the relationally-dead STORE
            assert report.cexec_disabled_at == 1
        assert mmu.peek_sram(0) == 0xBEEF  # the dead STORE never ran

    @needs_numpy
    def test_live_cexec_still_demotes(self):
        tcpu, program = certified_tcpu(
            ".memory 2\n"
            "LOAD [Queue:QueueSize], [Packet:0]\n"
            "CEXEC [Switch:SwitchID], 0x0F, 0x09\n"
            "STORE [Sram:Word0], [Packet:0]", max_instructions=8)
        run_batch(tcpu, program)
        assert tcpu.batch_demotions == {"cexec": 1}
        assert tcpu.vector_batches == 0

    @needs_numpy
    def test_write_in_live_prefix_still_demotes(self):
        # Dataflow classes are pinned over the whole program, so the
        # prefix-only lowering is off the table once the prefix writes.
        tcpu, program = certified_tcpu(
            "PUSH [Switch:SwitchID]\n"
            "POP [Sram:Word1]\n"
            "CEXEC [Switch:SwitchID], 0x0F, 0xF0\n"
            "PUSH [Queue:QueueSize]", max_instructions=8)
        run_batch(tcpu, program)
        assert tcpu.vector_batches == 0
        assert "cexec" in tcpu.batch_demotions
