"""Differential proof: compiled fast path ≡ reference interpreter.

Every case runs the same program twice — once on a ``compile=True`` TCPU
and once on ``compile=False`` — against two *independent* MMUs prepared
identically, then asserts that everything observable is bit-identical:

- the :class:`ExecutionReport` (executed/skipped counts, fault code,
  CEXEC disable index, cycle count, switch writes, in order);
- the TPP section itself (flags incl. the §3.4 fault stamp, hop/SP
  counter, packet-memory bytes, and the full wire encoding);
- switch-side state (SRAM words and per-port link scratch).

Covers every opcode, every fault code, hop-slot stamping across
multi-hop journeys, 8-byte words, and a seeded randomized sweep.
"""

import random

import pytest

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.exceptions import FaultCode
from repro.core.memory_map import SRAM_WORDS
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU


class FakeQueue:
    def __init__(self, occupancy=500):
        self.occupancy_bytes = occupancy


class FakePort:
    def __init__(self, index=0):
        self.index = index
        self.queue = FakeQueue()


def make_mmu(clock=123456):
    mmu = MMU(name="diff")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7)
    mmu.bind_reader("Switch:ClockLo", lambda ctx: clock)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    return mmu


def make_ctx(task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000,
                            task_id=task_id)


def report_tuple(report):
    return (report.executed, report.skipped, report.fault,
            report.cexec_disabled_at, report.cycles,
            list(report.switch_writes))


def run_both(source, hops=1, task_id=0, max_instructions=5,
             prepare=None, damage=None, **assemble_kwargs):
    """Execute ``source`` over ``hops`` switch visits on both paths.

    ``prepare(mmu)`` seeds switch state before execution; ``damage(tpp)``
    mangles the packet before the first hop (corruption cases).  Returns
    the two (reports, tpp, mmu) triples after asserting equivalence.
    """
    program = assemble(source, **assemble_kwargs)
    results = []
    for compile_flag in (True, False):
        mmu = make_mmu()
        if prepare is not None:
            prepare(mmu)
        tcpu = TCPU(mmu, max_instructions=max_instructions,
                    compile=compile_flag)
        tpp = program.build(task_id=task_id)
        if damage is not None:
            damage(tpp)
            tpp.invalidate_caches()
        reports = [tcpu.execute(tpp, make_ctx(task_id))
                   for _ in range(hops)]
        results.append((reports, tpp, mmu))

    (fast_reports, fast_tpp, fast_mmu) = results[0]
    (ref_reports, ref_tpp, ref_mmu) = results[1]
    for hop, (fast, ref) in enumerate(zip(fast_reports, ref_reports)):
        assert report_tuple(fast) == report_tuple(ref), f"hop {hop}"
    assert fast_tpp.flags == ref_tpp.flags
    assert fast_tpp.hop_or_sp == ref_tpp.hop_or_sp
    assert bytes(fast_tpp.memory) == bytes(ref_tpp.memory)
    assert fast_tpp.encode() == ref_tpp.encode()
    sram = [fast_mmu.peek_sram(i) for i in range(SRAM_WORDS)]
    assert sram == [ref_mmu.peek_sram(i) for i in range(SRAM_WORDS)]
    assert ([fast_mmu.peek_link_scratch(0, s) for s in range(4)]
            == [ref_mmu.peek_link_scratch(0, s) for s in range(4)])
    return results


class TestOpcodes:
    def test_nop(self):
        run_both("NOP")

    def test_push(self):
        run_both("PUSH [Switch:SwitchID]")

    def test_push_pop_roundtrip(self):
        (_, tpp, mmu), _ = run_both("""
            PUSH [Queue:QueueSize]
            POP [Sram:Word3]
        """)
        assert mmu.peek_sram(3) == 500
        assert tpp.sp == 0

    def test_load_hop_relative(self):
        run_both(".mode hop\n.hops 3\n"
                 "LOAD [Switch:SwitchID], [Packet:Hop[0]]", hops=3)

    def test_load_absolute(self):
        run_both(".mode absolute\n.memory 2\n"
                 "LOAD [Switch:ClockLo], [Packet:1]")

    def test_store(self):
        (_, _, mmu), _ = run_both("""
            .data 0 0xCAFE
            STORE [Sram:Word2], [Packet:0]
        """)
        assert mmu.peek_sram(2) == 0xCAFE

    def test_cstore_taken_and_not_taken(self):
        def seed(value):
            def prepare(mmu):
                mmu.poke_sram(0, value)
            return prepare

        # dst == cond: store wins, old value written back over cond.
        (_, tpp, mmu), _ = run_both("CSTORE [Sram:Word0], 10, 99",
                                    prepare=seed(10))
        assert mmu.peek_sram(0) == 99
        assert tpp.read_word(0) == 10
        # dst != cond: store loses, old value still written back.
        (_, tpp, mmu), _ = run_both("CSTORE [Sram:Word0], 10, 99",
                                    prepare=seed(11))
        assert mmu.peek_sram(0) == 11
        assert tpp.read_word(0) == 11

    def test_cexec_enables_and_disables(self):
        enabled = run_both("""
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7
            PUSH [Queue:QueueSize]
        """)
        assert enabled[0][0][0].cexec_disabled_at is None
        disabled = run_both("""
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 8
            PUSH [Queue:QueueSize]
        """)
        assert disabled[0][0][0].cexec_disabled_at == 0
        assert disabled[0][0][0].skipped == 1

    @pytest.mark.parametrize("op", ["ADD", "SUB", "AND", "OR", "XOR",
                                    "MIN", "MAX"])
    def test_arithmetic(self, op):
        run_both(f"""
            .data 0 41
            {op} [Packet:0], [Switch:SwitchID]
        """)

    def test_arithmetic_wraps_identically(self):
        """SUB below zero must wrap to the same masked word value."""
        (_, tpp, _), _ = run_both("""
            .data 0 3
            SUB [Packet:0], [Switch:SwitchID]
        """)
        assert tpp.read_word(0) == (3 - 7) & 0xFFFFFFFF


class TestFaults:
    def test_bad_address_read(self):
        results = run_both(".memory 1\nLOAD [0x0999], [Packet:0]")
        assert results[0][0][0].fault == FaultCode.BAD_ADDRESS

    def test_bad_address_write(self):
        results = run_both("""
            PUSH [Switch:SwitchID]
            POP [0x0999]
        """)
        assert results[0][0][0].fault == FaultCode.BAD_ADDRESS

    def test_write_protected(self):
        results = run_both("""
            PUSH [Switch:SwitchID]
            POP [Queue:QueueSize]
        """)
        assert results[0][0][0].fault == FaultCode.WRITE_PROTECTED
        # POP's SP decrement lands before the write faults (§3.4: partial
        # effects are preserved) — both paths agree via run_both.

    def test_memory_bounds(self):
        results = run_both(
            ".mode absolute\n.memory 1\n"
            "LOAD [Switch:SwitchID], [Packet:5]")
        assert results[0][0][0].fault == FaultCode.MEMORY_BOUNDS

    def test_stack_overflow(self):
        # One word of stack, executed on two hops: hop 1 has no room.
        results = run_both(".hops 1\nPUSH [Switch:SwitchID]", hops=2)
        assert results[0][0][0].fault == FaultCode.NONE
        assert results[0][0][1].fault == FaultCode.STACK_OVERFLOW

    def test_stack_underflow(self):
        results = run_both("POP [Sram:Word0]")
        assert results[0][0][0].fault == FaultCode.STACK_UNDERFLOW

    def test_too_many_instructions(self):
        results = run_both("\n".join(["NOP"] * 4), max_instructions=3)
        assert results[0][0][0].fault == FaultCode.TOO_MANY_INSTRUCTIONS

    def test_sram_protection(self):
        def prepare(mmu):
            mmu.allocate_sram(0, 2, task_id=1)
            mmu.enforce_sram_protection = True

        results = run_both("""
            PUSH [Switch:SwitchID]
            POP [Sram:Word0]
        """, task_id=2, prepare=prepare)
        assert results[0][0][0].fault == FaultCode.SRAM_PROTECTION

    def test_fault_behind_disabled_cexec_never_fires(self):
        """Compiling must not resolve-and-fault eagerly: an unmapped
        address behind a disabling CEXEC is dead code, not a fault."""
        results = run_both("""
            .memory 3
            CEXEC [Switch:SwitchID], 0xFFFFFFFF, 8
            LOAD [0x0999], [Packet:2]
        """)
        report = results[0][0][0]
        assert report.fault == FaultCode.NONE
        assert report.skipped == 1


class TestHopSlotStamping:
    """§3.4: a faulting hop is stamped *and* its hop slot is consumed."""

    def test_mid_journey_fault_consumes_hop_slot(self):
        source = """
            .mode hop
            .hops 3
            LOAD [Switch:ClockLo], [Packet:Hop[0]]
            LOAD [Queue:QueueSize], [Packet:Hop[1]]
        """
        program = assemble(source)
        for compile_flag in (True, False):
            mmu = make_mmu()
            tcpu = TCPU(mmu, compile=compile_flag)
            broken = MMU(name="broken")  # ClockLo unmapped here
            broken_tcpu = TCPU(broken, compile=compile_flag)
            tpp = program.build()
            assert tcpu.execute(tpp, make_ctx()).ok          # hop 0
            report = broken_tcpu.execute(tpp, make_ctx())    # hop 1 faults
            assert report.fault == FaultCode.BAD_ADDRESS
            assert tpp.hop == 2                              # slot consumed
            assert tpp.fault == FaultCode.BAD_ADDRESS        # stamped
            # The stamped TPP keeps travelling and later hops still run;
            # the first fault wins and stays in the flags.
            final = tcpu.execute(tpp, make_ctx())            # hop 2
            assert final.executed == 2
            assert tpp.hop == 3
            assert tpp.fault == FaultCode.BAD_ADDRESS

    def test_stamped_sections_identical_across_paths(self):
        source = """
            .mode hop
            .hops 2
            LOAD [Queue:QueueSize], [Packet:Hop[0]]
            LOAD [0x0999], [Packet:Hop[1]]
        """
        results = run_both(source, hops=2)
        report = results[0][0][0]
        assert report.fault == FaultCode.BAD_ADDRESS
        # hop 0's partial evidence (the first LOAD) must survive.
        assert results[0][1].read_word(0) == 500


class TestWideWords:
    def test_word8_push(self):
        run_both(".word 8\nPUSH [Switch:ClockLo]")

    def test_word8_arithmetic(self):
        (_, tpp, _), _ = run_both("""
            .word 8
            .data 0 1
            ADD [Packet:0], [Switch:ClockLo]
        """)
        assert tpp.read_word(0) == 123457


class TestCorruptedSections:
    """In-flight damage (link corruption) must execute identically."""

    def test_truncated_memory(self):
        def damage(tpp):
            del tpp.memory[:]

        results = run_both(".mode hop\n.hops 2\n"
                           "LOAD [Switch:SwitchID], [Packet:Hop[0]]",
                           damage=damage)
        assert results[0][0][0].fault == FaultCode.MEMORY_BOUNDS

    def test_bitflipped_memory(self):
        def damage(tpp):
            tpp.memory[0] ^= 0x80

        run_both("""
            .data 0 5
            ADD [Packet:0], [Switch:SwitchID]
        """, damage=damage)

    def test_scrambled_hop_counter(self):
        def damage(tpp):
            tpp.hop_or_sp ^= 1 << 9

        results = run_both(".mode hop\n.hops 2\n"
                           "LOAD [Switch:SwitchID], [Packet:Hop[0]]",
                           damage=damage)
        assert results[0][0][0].fault == FaultCode.MEMORY_BOUNDS


class TestRandomizedSweep:
    """Seeded fuzz: random programs, both paths, bit-identical always."""

    TEMPLATES = [
        "PUSH [Switch:SwitchID]",
        "PUSH [Queue:QueueSize]",
        "PUSH [Switch:ClockLo]",
        "POP [Sram:Word{word}]",
        "POP [Queue:QueueSize]",
        "LOAD [Switch:ClockLo], [Packet:{slot}]",
        "LOAD [0x0999], [Packet:{slot}]",
        "STORE [Sram:Word{word}], [Packet:{slot}]",
        "CSTORE [Sram:Word{word}], {imm}, {imm2}",
        "CEXEC [Switch:SwitchID], 0xFF, {imm}",
        "ADD [Packet:{slot}], [Switch:SwitchID]",
        "SUB [Packet:{slot}], [Queue:QueueSize]",
        "XOR [Packet:{slot}], [Switch:ClockLo]",
        "MIN [Packet:{slot}], [Switch:SwitchID]",
        "NOP",
    ]

    def test_random_programs_agree(self):
        rng = random.Random(20260806)
        for _ in range(150):
            n = rng.randint(1, 5)
            memory_words = rng.randint(0, 6)
            lines = [f".mode {rng.choice(['stack', 'absolute'])}",
                     f".memory {memory_words}"]
            for _ in range(n):
                template = rng.choice(self.TEMPLATES)
                lines.append(template.format(
                    word=rng.randint(0, 5),
                    slot=rng.randint(0, 7),
                    imm=rng.randint(0, 255),
                    imm2=rng.randint(0, 255),
                ))
            source = "\n".join(lines)

            def prepare(mmu, rng_state=rng.getstate()):
                seeder = random.Random(0)
                seeder.setstate(rng_state)
                for word in range(6):
                    mmu.poke_sram(word, seeder.randint(0, 2 ** 32 - 1))

            run_both(source, hops=rng.randint(1, 3),
                     max_instructions=5, prepare=prepare)

    def test_random_hop_programs_agree(self):
        rng = random.Random(77)
        hop_templates = [
            "LOAD [Switch:ClockLo], [Packet:Hop[{slot}]]",
            "LOAD [Queue:QueueSize], [Packet:Hop[{slot}]]",
            "ADD [Packet:Hop[{slot}]], [Switch:SwitchID]",
            "STORE [Sram:Word{word}], [Packet:Hop[{slot}]]",
        ]
        for _ in range(60):
            hops = rng.randint(1, 4)
            perhop = rng.randint(1, 3)
            lines = [".mode hop", f".hops {hops}", f".perhop {perhop}"]
            for _ in range(rng.randint(1, 3)):
                lines.append(rng.choice(hop_templates).format(
                    slot=rng.randint(0, perhop), word=rng.randint(0, 3)))
            run_both("\n".join(lines), hops=hops + 1)
