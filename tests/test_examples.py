"""Every example script must run clean — they are living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[path.stem for path in EXAMPLES])
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}")
    assert completed.stdout.strip(), f"{script.name} printed nothing"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    # The three tasks of §2 must each have a walk-through, plus the
    # quickstart the README references.
    assert {"quickstart", "microburst_monitor", "rcp_fairness",
            "ndb_debugger"} <= names
