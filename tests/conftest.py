"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import units
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network, TopologyBuilder
from repro.sim.simulator import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def memory_map() -> MemoryMap:
    """The standard network-wide memory map."""
    return MemoryMap.standard()


@pytest.fixture
def linear_net() -> Network:
    """h0 - sw0 - sw1 - sw2 - h1 at 1 Gb/s with routes installed."""
    builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                              delay_ns=1_000)
    net = builder.linear(n_switches=3)
    install_shortest_path_routes(net)
    return net


@pytest.fixture
def single_switch_net() -> Network:
    """Two hosts on one switch, routes installed."""
    builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                              delay_ns=1_000)
    net = builder.star(n_hosts=2)
    install_shortest_path_routes(net)
    return net
