"""Figure 1 end to end: the queue-size query's per-hop stack growth.

The figure shows a TPP whose packet memory starts empty (SP = 0x0) and
gains one queue-size word per switch (SP = 0x4, 0x8, 0xc), with the
packet never growing or shrinking inside the network.
"""

import pytest

from repro import quickstart_network, units
from repro.core.assembler import assemble


@pytest.fixture
def net():
    return quickstart_network(n_switches=3)


class TestFigure1:
    def test_stack_pointer_advances_per_hop(self, net):
        """SP goes 0x0 -> 0x4 -> 0x8 -> 0xc across three switches."""
        observed_sp = []
        program = assemble("PUSH [Queue:QueueSize]")

        def tap(record):
            # The echoed (done) TPP crosses the switches again but
            # executes nothing; only live executions count.
            if record.kind == "tpp.exec" and record.detail["executed"]:
                observed_sp.append(record.detail["sp_or_hop"])

        net.trace.add_tap(tap)
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac)
        net.run(until_seconds=0.01)
        assert observed_sp == [0x4, 0x8, 0xC]

    def test_packet_size_constant_in_network(self, net):
        """Packet memory is preallocated; the TPP never grows/shrinks."""
        sizes = set()

        def tap(record):
            if record.kind == "tpp.exec":
                sizes.add(4 * len(record.detail["memory_words"]))

        net.trace.add_tap(tap)
        program = assemble("PUSH [Queue:QueueSize]", hops=8)
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac)
        net.run(until_seconds=0.01)
        assert sizes == {8 * 4}

    def test_queue_snapshots_are_instantaneous(self, net):
        """Values in the packet are the occupancy at traversal instant —
        under load at sw1 only, only hop 2's word is large."""
        from repro.endhost.flows import Flow, FlowSink
        # Build congestion on sw1 -> sw2 by crossing traffic h0 -> h1
        # (saturating) is shared path, so instead slow the sw1->sw2 link.
        sw1 = net.switch("sw1")
        toward_sw2 = [port for port in sw1.ports
                      if port.link.name == "sw1->sw2"][0]
        toward_sw2.link.rate_bps = 50 * units.MEGABITS_PER_SEC

        h0, h1 = net.host("h0"), net.host("h1")
        FlowSink(h1, 99)
        flow = Flow(h0, h1, h1.mac, 99,
                    rate_bps=200 * units.MEGABITS_PER_SEC,
                    packet_bytes=1000)
        flow.start()
        results = []
        program = assemble("PUSH [Queue:QueueSize]")
        net.sim.schedule(units.milliseconds(5), lambda: h0.tpp.send(
            program, dst_mac=h1.mac, on_response=results.append))
        net.sim.schedule(units.milliseconds(6), flow.stop)
        net.run(until_seconds=0.2)
        hop_values = [words[0] for words in results[0].per_hop_words()]
        assert hop_values[1] > 5_000       # congested hop
        assert hop_values[2] < hop_values[1]

    def test_end_host_interprets_breakdown(self, net):
        """§2.1: 'a detailed breakdown of queueing latencies on all
        network hops' — hop count and per-hop attribution are exact."""
        results = []
        program = assemble("""
            PUSH [Switch:SwitchID]
            PUSH [Queue:QueueSize]
        """)
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac,
                                on_response=results.append)
        net.run(until_seconds=0.01)
        view = results[0]
        assert view.hops() == 3
        switch_ids = [words[0] for words in view.per_hop_words()]
        assert switch_ids == [net.switch(f"sw{i}").switch_id
                              for i in range(3)]
