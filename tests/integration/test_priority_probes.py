"""Scheduling telemetry into a protected queue.

An operational question every INT-like system hits: probes that share a
FIFO with the traffic they measure get delayed exactly when the network
is interesting.  With multi-queue ports, one TCAM set-queue rule
classifies TPP frames into a strict-priority queue; these tests compare
probe round-trip times for the shared and protected configurations
against the same standing data queue (the bench version with the printed
table is ``benchmarks/test_ablation_probe_priority.py``).
"""


from repro import units
from repro.asic.tables import TcamRule
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.packet import ETHERTYPE_TPP
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

RATE = 100 * units.MEGABITS_PER_SEC


def build(probe_queue):
    """Star with a 2-queue bottleneck port toward the sink; a TCAM rule
    steers TPP frames into ``probe_queue`` (1 = priority, 0 = shared with
    data: note queue 0 is the higher priority class, so 'shared' means
    putting DATA there too via tos)."""
    net = Network(seed=9, trace_enabled=False)
    switch = net.add_switch()
    h0 = net.add_host()   # prober
    h1 = net.add_host()   # data sender
    h2 = net.add_host()   # sink
    net.link(h0, switch, units.GIGABITS_PER_SEC)
    net.link(h1, switch, units.GIGABITS_PER_SEC)
    net.link(h2, switch, RATE, n_queues=2, scheduler="priority")
    install_shortest_path_routes(net)
    egress_index = [local for local, peer, _ in net.adjacency()["sw0"]
                    if peer == "h2"][0]
    # Data goes to the low-priority queue 1; probes to `probe_queue`.
    switch.install_tcam_rule(TcamRule(
        priority=10, out_port=egress_index, queue_id=1,
        dst_mac=h2.mac, ethertype=0x0800))
    switch.install_tcam_rule(TcamRule(
        priority=20, out_port=egress_index, queue_id=probe_queue,
        dst_mac=h2.mac, ethertype=ETHERTYPE_TPP))
    return net, egress_index


def run_probes(probe_queue):
    net, egress_index = build(probe_queue)
    h0, h1, h2 = (net.host(f"h{i}") for i in range(3))
    FlowSink(h2, 99)
    # Persistent overload of the data queue.
    data = Flow(h1, h2, h2.mac, 99, rate_bps=2 * RATE, packet_bytes=1000)
    data.start()

    endpoint = TPPEndpoint(h0)
    TPPEndpoint(h2)
    program = assemble("PUSH [Queue:QueueSize]")
    rtts = []
    sent_at = {}

    def probe():
        def on_response(result, t0=net.sim.now_ns):
            rtts.append(net.sim.now_ns - t0)
        endpoint.send(program, dst_mac=h2.mac, on_response=on_response)

    from repro.sim.timers import PeriodicTimer
    prober = PeriodicTimer(net.sim, units.milliseconds(5), probe)
    prober.start(units.milliseconds(20))  # after the queue is standing
    net.run(until_seconds=0.5)
    return net, rtts


class TestProbePriority:
    def test_prioritized_probes_return_fast(self):
        net, rtts = run_probes(probe_queue=0)
        assert len(rtts) > 50
        # Queue 0 preempts the standing data queue: sub-millisecond RTT.
        assert max(rtts) < units.milliseconds(2)

    def test_fifo_probes_suffer_data_queueing(self):
        net, rtts_shared = run_probes(probe_queue=1)
        _, rtts_priority = run_probes(probe_queue=0)
        assert len(rtts_shared) > 20
        # Behind a full 512 KiB drop-tail queue at 100 Mb/s the shared
        # probes eat tens of ms of queueing each way.
        median_shared = sorted(rtts_shared)[len(rtts_shared) // 2]
        median_priority = sorted(rtts_priority)[len(rtts_priority) // 2]
        assert median_shared > 10 * median_priority

    def test_probes_still_observe_data_queue_depth(self):
        """Even from the priority queue, a probe can read the data
        queue's depth with an explicit Queue-namespace... via its own
        metadata the probe sees queue 0; the data backlog shows up in
        the port's low-priority queue, checked via the switch."""
        net, rtts = run_probes(probe_queue=0)
        switch = net.switch("sw0")
        egress_index = [local for local, peer, _ in
                        net.adjacency()["sw0"] if peer == "h2"][0]
        port = switch.ports[egress_index]
        assert port.queues[1].stats.peak_occupancy_bytes > 100_000
        assert port.queues[0].stats.peak_occupancy_bytes < 5_000
