"""The grand integration test: four TPP tasks sharing one fabric.

A leaf/spine datacenter runs, concurrently and with SRAM isolation on:

- **RCP\\*** congestion control for a pair of long flows;
- **ndb** forwarding verification on a monitored flow;
- **micro-burst telemetry** watching a victim link;
- **latency profiling** across the fabric;

while bursty cross traffic stresses the network.  Each task must deliver
its result without corrupting the others — the paper's multi-task
story (§3.2) end to end, at (small) datacenter scale.
"""

import pytest

from repro import units
from repro.apps.latency import LatencyProfiler
from repro.apps.microburst import TelemetryStream
from repro.apps.ndb import NdbCollector, NdbTagger, PathVerifier
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import host_path, install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 100 * units.MEGABITS_PER_SEC
DURATION_S = 3.0


@pytest.fixture(scope="module")
def datacenter_run():
    builder = TopologyBuilder(rate_bps=CAPACITY, delay_ns=5_000,
                              trace_enabled=False)
    net = builder.fat_tree(k=2)  # 2 spines, 4 leaves, 8 hosts
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))

    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard(),
                              enforce_isolation=True)

    # --- task 1: RCP* on two long flows (h0 -> h4, h1 -> h5) -----------
    rcp_task = RCPStarTask(agent)
    rcp_flows = [
        RCPStarFlow(rcp_task, i, net.host(f"h{i}"), net.host(f"h{i + 4}"),
                    net.host(f"h{i + 4}").mac, capacity_bps=CAPACITY,
                    rtt_s=0.005, max_hops=4) for i in range(2)
    ]

    # --- task 2: ndb on a monitored flow (h2 -> h6) ---------------------
    ndb_task = agent.create_task("ndb")
    h2, h6 = net.host("h2"), net.host("h6")
    ndb_sink = FlowSink(h6, 99)
    collector = NdbCollector(h6, task_id=ndb_task.task_id)
    tagger = NdbTagger(hops=4, task_id=ndb_task.task_id)
    monitored = Flow(h2, h6, h6.mac, 99, rate_bps=CAPACITY // 10,
                     packet_bytes=500)
    tagger.attach(monitored)
    ndb_path = [net.switch(name).switch_id
                for name in host_path(net, "h2", "h6")
                if name in net.switches]
    current_entries = {}
    for switch in net.switches.values():
        entry = switch.l2.entry_for(h6.mac)
        if entry is not None:
            current_entries[switch.switch_id] = (entry.entry_id,
                                                 entry.version)

    # --- task 3: micro-burst telemetry (h3 watches path to h7) ----------
    h3, h7 = net.host("h3"), net.host("h7")
    stream = TelemetryStream(h3, h7.mac,
                             interval_ns=units.microseconds(500))
    TPPEndpoint(h7)

    # --- task 4: latency profiling across the fabric --------------------
    profiler = LatencyProfiler(h3, h6.mac,
                               interval_ns=units.milliseconds(5))

    # --- background stress: incast onto h7's downlink --------------------
    # Two senders jointly offer 1.3x the leaf3 -> h7 line rate, so the
    # telemetry stream (whose path ends on that link) sees real queues.
    FlowSink(h7, 98)
    crosses = [
        Flow(h6, h7, h7.mac, 98, rate_bps=int(0.7 * CAPACITY),
             packet_bytes=1000, src_port=40001),
        Flow(h2, h7, h7.mac, 98, rate_bps=int(0.6 * CAPACITY),
             packet_bytes=1000, src_port=40002),
    ]

    for flow in rcp_flows:
        flow.start()
    monitored.start()
    stream.start(first_delay_ns=1)
    profiler.start(first_delay_ns=1)
    for cross in crosses:
        cross.start()
    net.run(until_seconds=DURATION_S)

    return {
        "net": net,
        "rcp_task": rcp_task,
        "rcp_flows": rcp_flows,
        "collector": collector,
        "ndb_sink": ndb_sink,
        "ndb_path": ndb_path,
        "current_entries": current_entries,
        "stream": stream,
        "profiler": profiler,
    }


class TestDatacenterScenario:
    def test_rcp_flows_progress_and_share(self, datacenter_run):
        run = datacenter_run
        goodputs = [
            flow.sink.goodput_bps(units.seconds(DURATION_S - 1),
                                  units.seconds(DURATION_S))
            for flow in run["rcp_flows"]
        ]
        assert all(g > 0.05 * CAPACITY for g in goodputs)
        assert all(flow.updates_sent > 0 for flow in run["rcp_flows"])

    def test_ndb_verifies_clean_forwarding(self, datacenter_run):
        run = datacenter_run
        assert len(run["collector"].journeys) > 500
        verifier = PathVerifier(run["ndb_path"], run["current_entries"])
        assert verifier.verify(run["collector"].journeys) == []
        assert run["ndb_sink"].packets_received == len(
            run["collector"].journeys)

    def test_telemetry_collected_at_fine_grain(self, datacenter_run):
        run = datacenter_run
        assert run["stream"].samples > 3_000
        # The telemetry saw real congestion events somewhere on its path
        # (RCP flows + cross traffic share the fabric).
        peak = max(series.max()
                   for series in run["stream"].queue_series.values())
        assert peak > 0

    def test_latency_profiles_cover_fabric(self, datacenter_run):
        run = datacenter_run
        assert len(run["profiler"].profiles) > 300
        profile = run["profiler"].profiles[-1]
        assert len(profile.hops) == 3  # leaf, spine, leaf

    def test_no_task_faulted(self, datacenter_run):
        """SRAM isolation on + four tasks: zero TCPU faults anywhere."""
        net = datacenter_run["net"]
        assert all(switch.tcpu.faults == 0
                   for switch in net.switches.values())

    def test_fabric_wide_tpp_volume(self, datacenter_run):
        net = datacenter_run["net"]
        total = sum(switch.tcpu.tpps_executed
                    for switch in net.switches.values())
        assert total > 10_000  # genuinely concurrent dataplane programs
