"""CSTORE consistency end to end (§2.2, §3.2.3).

Many end-hosts write a shared switch register concurrently; plain STOREs
lose updates while CSTORE provides the linearizable read-modify-write the
paper promises.
"""

import pytest

from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder


@pytest.fixture
def star_net():
    """Several hosts around one switch holding a shared counter."""
    net = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC).star(5)
    install_shortest_path_routes(net)
    for host in net.hosts.values():
        host.tpp = TPPEndpoint(host)
    return net


class Incrementer:
    """An end-host task that increments a shared SRAM counter via
    read-modify-write TPP round trips."""

    def __init__(self, net, host, peer_mac, increments, use_cstore):
        self.net = net
        self.host = host
        self.peer_mac = peer_mac
        self.remaining = increments
        self.use_cstore = use_cstore
        self.retries = 0

    def start(self):
        self._read()

    def _read(self):
        if self.remaining <= 0:
            return
        program = assemble("PUSH [Sram:Word0]")
        self.host.tpp.send(program, dst_mac=self.peer_mac,
                           on_response=self._on_read)

    def _on_read(self, result):
        seen = result.word(0)
        if self.use_cstore:
            program = assemble(
                "CSTORE [Sram:Word0], $seen, $next",
                symbols={"seen": seen, "next": seen + 1})
            self.host.tpp.send(program, dst_mac=self.peer_mac,
                               on_response=lambda r, s=seen:
                               self._on_cstore(r, s))
        else:
            program = assemble(
                ".memory 1\n.data 0 $next\nSTORE [Sram:Word0], [Packet:0]",
                symbols={"next": seen + 1})
            self.host.tpp.send(program, dst_mac=self.peer_mac,
                               on_response=self._on_store)

    def _on_cstore(self, result, seen):
        # CSTORE wrote the old value back over cond: equality means we won.
        program_cond_word = 0  # pool base is word 0 (no other memory)
        old = result.word(program_cond_word)
        if old == seen:
            self.remaining -= 1
        else:
            self.retries += 1
        self._read()

    def _on_store(self, result):
        self.remaining -= 1
        self._read()


def run_incrementers(star_net, use_cstore, n_hosts=4, increments=20):
    hosts = [star_net.host(f"h{i}") for i in range(n_hosts)]
    peer = star_net.host(f"h{n_hosts}")  # echo target behind the switch
    tasks = [Incrementer(star_net, host, peer.mac, increments, use_cstore)
             for host in hosts]
    for task in tasks:
        task.start()
    star_net.run(until_seconds=5.0)
    switch = star_net.switch("sw0")
    return switch.mmu.peek_sram(0), tasks


class TestSharedCounter:
    def test_plain_store_loses_updates(self, star_net):
        final, tasks = run_incrementers(star_net, use_cstore=False)
        assert all(task.remaining == 0 for task in tasks)
        assert final < 4 * 20  # lost updates

    def test_cstore_is_linearizable(self, star_net):
        final, tasks = run_incrementers(star_net, use_cstore=True)
        assert all(task.remaining == 0 for task in tasks)
        assert final == 4 * 20
        assert sum(task.retries for task in tasks) > 0  # real contention
