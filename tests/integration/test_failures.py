"""Link failures: black-hole localization with ndb traces.

A silent dataplane failure (link loses frames, no control-plane alarm) is
the hardest case for black-box monitoring.  Per-packet TPP traces localize
it: journeys for the affected flow simply stop arriving while other flows'
journeys continue, and the last observed hop sequence names the segment.
"""


from repro import units
from repro.apps.ndb import NdbCollector, NdbTagger
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder


class TestLinkFailure:
    def test_down_link_loses_frames(self, linear_net):
        net = linear_net
        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        sw1 = net.switch("sw1")
        toward_sw2 = [p for p in sw1.ports
                      if p.link.name == "sw1->sw2"][0]
        toward_sw2.link.fail()
        from repro.net.packet import Datagram, RawPayload
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(100)))
        net.run(until_seconds=0.01)
        assert got == []
        assert toward_sw2.link.frames_lost == 1

    def test_restore_recovers(self, linear_net):
        net = linear_net
        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        sw1 = net.switch("sw1")
        link = [p for p in sw1.ports if p.link.name == "sw1->sw2"][0].link
        link.fail()
        link.restore()
        from repro.net.packet import Datagram, RawPayload
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(100)))
        net.run(until_seconds=0.01)
        assert len(got) == 1

    def test_reverse_direction_unaffected(self, linear_net):
        net = linear_net
        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h0.on_udp_port(9, lambda d, f: got.append(d))
        sw1 = net.switch("sw1")
        [p for p in sw1.ports
         if p.link.name == "sw1->sw2"][0].link.fail()
        from repro.net.packet import Datagram, RawPayload
        h1.send_datagram(h0.mac, Datagram(h1.ip, h0.ip, 1, 9,
                                          RawPayload(100)))
        net.run(until_seconds=0.01)
        assert len(got) == 1  # sw2->sw1 is a separate link


class TestBlackHoleLocalization:
    def test_ndb_journeys_stop_at_failure(self):
        """Journey arrival rate collapses at the failure instant, and
        the healthy control flow keeps flowing — the classic signature
        that localizes a silent black hole."""
        builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                                  delay_ns=1_000)
        net = builder.linear(n_switches=3, hosts_per_end=1)
        # A reference flow that shares only sw0 with the victim path.
        witness = net.add_host("hw")
        net.link(witness, net.switch("sw0"), units.GIGABITS_PER_SEC)
        install_shortest_path_routes(net)
        h0, h1 = net.host("h0"), net.host("h1")

        FlowSink(h1, 99)
        victim_collector = NdbCollector(h1)
        tagger = NdbTagger(hops=4)
        victim = Flow(h0, h1, h1.mac, 99, rate_bps=8_000_000,
                      packet_bytes=500)
        tagger.attach(victim)

        # Witness flow h0 -> hw (only crosses sw0).
        FlowSink(witness, 98)
        witness_collector = NdbCollector(witness)
        witness_flow = Flow(h0, witness, witness.mac, 98,
                            rate_bps=8_000_000, packet_bytes=500)
        NdbTagger(hops=4).attach(witness_flow)

        fail_at = units.milliseconds(20)
        sw1 = net.switch("sw1")
        link = [p for p in sw1.ports
                if p.link.name == "sw1->sw2"][0].link
        net.sim.schedule(fail_at, link.fail)

        victim.start()
        witness_flow.start()
        net.run(until_seconds=0.04)

        victim_after = [j for j in victim_collector.journeys
                        if j.received_at_ns > fail_at
                        + units.milliseconds(1)]
        witness_after = [j for j in witness_collector.journeys
                         if j.received_at_ns > fail_at
                         + units.milliseconds(1)]
        assert victim_after == []          # black hole on the victim path
        assert len(witness_after) > 20     # network is otherwise healthy
        # Localization: last good journeys crossed sw0, sw1, sw2 intact;
        # the division between healthy sw0 (witness still OK) and dead
        # downstream names the sw1 -> sw2 segment.
        last_good = victim_collector.journeys[-1]
        assert last_good.switch_ids() == [1, 2, 3]
        assert link.frames_lost > 0
