"""CEXEC targeting switch *classes* via id masks (§3.2.3).

"It may be desirable to execute a network task ... only on a subset of
switches (say all the top of rack switches in a datacenter)."  We encode
roles in the switch-id space — ToR ids carry a tag bit — and a single
CEXEC with a mask selects the whole class.
"""


from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

TOR_TAG = 0x100  # bit 8 marks a top-of-rack switch


def build_tagged_fabric():
    """h0 - tor0 - core - tor1 - h1, with ToR ids tagged."""
    net = Network(seed=1)
    tor0 = net.add_switch("tor0", switch_id_override=TOR_TAG | 1)
    core = net.add_switch("core", switch_id_override=2)
    tor1 = net.add_switch("tor1", switch_id_override=TOR_TAG | 3)
    net.link(tor0, core, units.GIGABITS_PER_SEC)
    net.link(core, tor1, units.GIGABITS_PER_SEC)
    h0 = net.add_host()
    h1 = net.add_host()
    net.link(h0, tor0, units.GIGABITS_PER_SEC)
    net.link(h1, tor1, units.GIGABITS_PER_SEC)
    install_shortest_path_routes(net)
    h0.tpp = TPPEndpoint(h0)
    h1.tpp = TPPEndpoint(h1)
    return net


class TestSwitchClassTargeting:
    def test_tor_only_program(self):
        """One CEXEC masks execution to the two ToRs; the core switch
        skips the LOADs."""
        net = build_tagged_fabric()
        h0, h1 = net.host("h0"), net.host("h1")
        program = assemble(
            """
            .mode hop
            CEXEC [Switch:SwitchID], $TorMask, $TorMask
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
            LOAD [Queue:QueueSize], [Packet:Hop[1]]
            """,
            symbols={"TorMask": TOR_TAG}, hops=4)
        results = []
        h0.tpp.send(program, dst_mac=h1.mac, on_response=results.append)
        net.run(until_seconds=0.01)
        tpp = results[0].tpp
        # Hop mode: the hop counter advanced at all three switches, but
        # only the ToRs wrote their ids.
        assert tpp.hop == 3
        ids = [tpp.read_word(hop * tpp.perhop_len_bytes)
               for hop in range(3)]
        assert ids == [TOR_TAG | 1, 0, TOR_TAG | 3]

    def test_core_only_program(self):
        """Inverting the predicate selects the non-ToR class."""
        net = build_tagged_fabric()
        h0, h1 = net.host("h0"), net.host("h1")
        program = assemble(
            """
            .mode hop
            CEXEC [Switch:SwitchID], $TorMask, 0
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
            """,
            symbols={"TorMask": TOR_TAG}, hops=4)
        results = []
        h0.tpp.send(program, dst_mac=h1.mac, on_response=results.append)
        net.run(until_seconds=0.01)
        tpp = results[0].tpp
        ids = [tpp.read_word(hop * tpp.perhop_len_bytes)
               for hop in range(3)]
        assert ids == [0, 2, 0]

    def test_counters_reflect_partial_execution(self):
        net = build_tagged_fabric()
        h0, h1 = net.host("h0"), net.host("h1")
        program = assemble(
            """
            .mode hop
            CEXEC [Switch:SwitchID], $TorMask, $TorMask
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
            """,
            symbols={"TorMask": TOR_TAG}, hops=4)
        h0.tpp.send(program, dst_mac=h1.mac)
        net.run(until_seconds=0.01)
        # Every switch ran the CEXEC; only ToRs retired the LOAD.
        assert net.switch("tor0").tcpu.instructions_executed == 2
        assert net.switch("core").tcpu.instructions_executed == 1
        assert net.switch("tor1").tcpu.instructions_executed == 2
