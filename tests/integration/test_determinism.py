"""Run-to-run determinism: identical seeds give identical traces.

Every stochastic component draws from named, seeded streams, the event
queue breaks ties deterministically, and nothing reads wall-clock time —
so an experiment is a pure function of its seed.  Reproducibility is what
makes the benchmark numbers in EXPERIMENTS.md checkable.
"""

from repro import units
from repro.apps.microburst import BurstyTrafficGenerator
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network, TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC


def run_rcp_once(seed):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1),
                              seed=seed, trace_enabled=False)
    net = builder.dumbbell(n_pairs=2, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    flows = [RCPStarFlow(task, i, net.host(f"h{i}"), net.host(f"h{i + 2}"),
                         net.host(f"h{i + 2}").mac, capacity_bps=CAPACITY,
                         rtt_s=0.02, max_hops=3) for i in range(2)]
    for flow in flows:
        flow.start()
    net.run(until_seconds=2.0)
    return (
        [flow.rate_series.samples() for flow in flows],
        [flow.sink.packets_received for flow in flows],
        task.rate_register_bps(net.switch("swL"), 0),
        net.sim.events_processed,
    )


def run_bursts_once(seed):
    net = Network(seed=seed, trace_enabled=False)
    switch = net.add_switch()
    hosts = [net.add_host() for _ in range(3)]
    for index, host in enumerate(hosts):
        rate = (100 * units.MEGABITS_PER_SEC if index == 2
                else units.GIGABITS_PER_SEC)
        net.link(host, switch, rate)
    install_shortest_path_routes(net)
    FlowSink(hosts[2], 99)
    flow = Flow(hosts[0], hosts[2], hosts[2].mac, 99, rate_bps=0)
    generator = BurstyTrafficGenerator(
        flow, units.GIGABITS_PER_SEC, units.microseconds(300),
        units.milliseconds(10), rng=net.rng.stream("bursts"))
    generator.start()
    net.run(until_seconds=0.5)
    return [(w.start_ns, w.end_ns) for w in generator.on_windows]


class TestDeterminism:
    def test_rcp_star_bitwise_repeatable(self):
        assert run_rcp_once(11) == run_rcp_once(11)

    def test_rcp_star_jitter_differs_per_flow(self):
        # Probe jitter is seeded per flow index so concurrent flows are
        # decorrelated; the two flows' probe timings must differ.
        times_per_flow = [[t for t, _ in flow_series]
                          for flow_series in run_rcp_once(11)[0]]
        assert times_per_flow[0] != times_per_flow[1]

    def test_burst_schedule_repeatable(self):
        assert run_bursts_once(4) == run_bursts_once(4)

    def test_burst_schedule_seed_sensitive(self):
        assert run_bursts_once(4) != run_bursts_once(5)
