"""RCP* on a multi-bottleneck parking-lot topology.

Unlike the dumbbell, different flows here have different bottleneck
*links*, so the CEXEC-targeted phase-3 updates must land on different
switches — exercising per-flow bottleneck identification end to end.
"""

import pytest

from repro import units
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

CAPACITY = 10 * units.MEGABITS_PER_SEC


def build_two_bottleneck_net():
    """h0 -> hA crosses bottleneck A only; h1 -> hB crosses B only;
    hL -> hR crosses both:

        hL   h0--+        +--hA   hB--+        +--hR
              sw0 ==A== sw1          sw2 ==B== sw3
        (hL on sw0, hA on sw1, hB on sw2, hR on sw3; sw1--sw2 is fast)
    """
    net = Network(seed=5)
    switches = [net.add_switch() for _ in range(4)]
    fast = 10 * CAPACITY
    delay = units.milliseconds(1)
    net.link(switches[0], switches[1], CAPACITY, delay)       # bottleneck A
    net.link(switches[1], switches[2], fast, delay)
    net.link(switches[2], switches[3], CAPACITY, delay)       # bottleneck B
    attach = {"hL": 0, "h0": 0, "hA": 1, "hB": 2, "hR": 3}
    for name, index in attach.items():
        host = net.add_host(name)
        net.link(host, switches[index], fast, delay)
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    return net


class TestMultiBottleneck:
    def test_flows_find_their_own_bottlenecks(self):
        net = build_two_bottleneck_net()
        agent = ControlPlaneAgent(list(net.switches.values()),
                                  memory_map=MemoryMap.standard())
        task = RCPStarTask(agent)

        flow_a = RCPStarFlow(task, 0, net.host("h0"), net.host("hA"),
                             net.host("hA").mac, capacity_bps=CAPACITY,
                             rtt_s=0.02, max_hops=4)
        flow_long = RCPStarFlow(task, 1, net.host("hL"), net.host("hR"),
                                net.host("hR").mac, capacity_bps=CAPACITY,
                                rtt_s=0.02, max_hops=4)
        flow_a.start()
        flow_long.start()
        net.run(until_seconds=6.0)

        # Both flows cross bottleneck A; only the long flow crosses B.
        # Fair shares: A carries two flows -> each ~C/2; B carries the
        # long flow only -> its register should stay well above C/2.
        register_a = task.rate_register_bps(net.switch("sw0"), 0)
        register_b = task.rate_register_bps(net.switch("sw2"), 1)
        # A carries two flows: its register converges toward C/2 (minus
        # probe overhead and smoothing lag); B carries only the long
        # flow, so its register stays strictly higher.
        assert register_a == pytest.approx(CAPACITY / 2, rel=0.5)
        assert register_b > register_a

        goodput_a = flow_a.sink.goodput_bps(units.seconds(4),
                                            units.seconds(6))
        goodput_long = flow_long.sink.goodput_bps(units.seconds(4),
                                                  units.seconds(6))
        assert goodput_a == pytest.approx(goodput_long, rel=0.4)
        total = goodput_a + goodput_long
        assert total > 0.6 * CAPACITY

    def test_updates_target_distinct_switches(self):
        """The long flow's updates go to A's switch while the short
        flow congests only A — verified via the TPP execution trace."""
        net = build_two_bottleneck_net()
        agent = ControlPlaneAgent(list(net.switches.values()),
                                  memory_map=MemoryMap.standard())
        task = RCPStarTask(agent)
        flow_a = RCPStarFlow(task, 0, net.host("h0"), net.host("hA"),
                             net.host("hA").mac, capacity_bps=CAPACITY,
                             rtt_s=0.02, max_hops=4)
        flow_b = RCPStarFlow(task, 1, net.host("hB"), net.host("hR"),
                             net.host("hR").mac, capacity_bps=CAPACITY,
                             rtt_s=0.02, max_hops=4)
        flow_a.start()
        flow_b.start()
        net.run(until_seconds=3.0)
        # Each flow's register writes landed on its own bottleneck
        # switch: sw0 (A) for flow_a, sw2 (B) for flow_b.
        writes_sw0 = [r for r in net.trace.records(kind="tpp.exec",
                                                   source="sw0")
                      if r.detail["executed"] >= 4]
        writes_sw2 = [r for r in net.trace.records(kind="tpp.exec",
                                                   source="sw2")
                      if r.detail["executed"] >= 4]
        assert writes_sw0 and writes_sw2
        # Registers on the fast middle link were never written down.
        middle = task.rate_register_bps(net.switch("sw1"), 1)
        assert middle == pytest.approx(10 * CAPACITY, rel=0.01)
