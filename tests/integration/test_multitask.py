"""Multiple network tasks coexisting (§3.2 "Multiple tasks").

RCP* and ndb run concurrently on the same network, with the control-plane
agent giving them disjoint state, exactly the scenario the paper sketches.
"""


from repro import units
from repro.apps.ndb import NdbCollector, NdbTagger
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC


class TestRcpAndNdbTogether:
    def test_coexistence(self):
        builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                                  delay_ns=units.milliseconds(1))
        net = builder.dumbbell(n_pairs=2, bottleneck_bps=CAPACITY)
        install_shortest_path_routes(net)
        for switch in net.switches.values():
            switch.start_stats(interval_ns=units.milliseconds(5))

        agent = ControlPlaneAgent(list(net.switches.values()),
                                  memory_map=MemoryMap.standard())
        rcp_task = RCPStarTask(agent)
        ndb_task = agent.create_task("ndb")

        # RCP* flow h0 -> h2.
        h0, h2 = net.host("h0"), net.host("h2")
        rcp_flow = RCPStarFlow(rcp_task, 0, h0, h2, h2.mac,
                               capacity_bps=CAPACITY, rtt_s=0.02,
                               max_hops=3)

        # ndb-tagged flow h1 -> h3 through the same bottleneck.
        h1, h3 = net.host("h1"), net.host("h3")
        sink = FlowSink(h3, 99)
        collector = NdbCollector(h3)
        tagger = NdbTagger(hops=4, task_id=ndb_task.task_id)
        data_flow = Flow(h1, h3, h3.mac, 99, rate_bps=CAPACITY // 4,
                         packet_bytes=500)
        tagger.attach(data_flow)

        rcp_flow.start()
        data_flow.start()
        net.run(until_seconds=3.0)

        # Both tasks did their jobs.
        assert rcp_flow.updates_sent > 0
        assert len(collector.journeys) > 100
        assert collector.journeys[-1].switch_ids() == [1, 2]
        # RCP adapted around the ndb flow's traffic: the register ended
        # below capacity (two flows share) but above the floor.
        register = rcp_task.rate_register_bps(net.switch("swL"), 0)
        assert 0.05 * CAPACITY < register < CAPACITY
        # And the data flow was delivered without loss of telemetry.
        assert sink.packets_received == len(collector.journeys)

    def test_disjoint_task_ids(self):
        builder = TopologyBuilder()
        net = builder.star(2)
        agent = ControlPlaneAgent(list(net.switches.values()),
                                  memory_map=MemoryMap.standard())
        rcp_task = RCPStarTask(agent)
        ndb_task = agent.create_task("ndb")
        assert rcp_task.task_id != ndb_task.task_id
