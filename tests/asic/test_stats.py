"""Utilization meters and queue averagers."""

import pytest

from repro import units
from repro.asic.stats import QueueAverager, UtilizationMeter


class Counter:
    def __init__(self):
        self.value = 0

    def __call__(self):
        return self.value


class TestUtilizationMeter:
    def test_full_rate_reads_one(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        counter.value += 125_000  # 1 Mb in 1 s
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(1.0)
        assert meter.utilization_milli == 1000

    def test_half_rate(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        counter.value += 62_500
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(0.5)

    def test_ewma_smooths(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=0.5)
        counter.value += 125_000
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(0.5)  # 0 -> halfway to 1
        counter.value += 125_000
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(0.75)

    def test_initial_count_ignored(self):
        counter = Counter()
        counter.value = 1_000_000  # preexisting bytes must not count
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        meter.sample(units.seconds(1))
        assert meter.utilization == 0.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMeter(Counter(), 1000, alpha=0.0)

    def test_overload_exceeds_one(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        counter.value += 250_000  # 2x line rate offered
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(2.0)


class TestQueueAverager:
    def test_converges_to_constant(self):
        averager = QueueAverager(lambda: 1000, alpha=0.5)
        for _ in range(20):
            averager.sample()
        assert averager.average_bytes == pytest.approx(1000, abs=2)

    def test_alpha_one_tracks_instantaneous(self):
        values = iter([100, 200, 300])
        averager = QueueAverager(lambda: next(values), alpha=1.0)
        averager.sample()
        averager.sample()
        averager.sample()
        assert averager.average_bytes == 300

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            QueueAverager(lambda: 0, alpha=1.5)


class TestSwitchStats:
    def test_sampler_updates_port_stats(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        stats = switch.start_stats(interval_ns=units.milliseconds(1),
                                   alpha=1.0)
        # Saturate the sw0 -> h1 link for 50 ms.
        from repro.endhost.flows import Flow, FlowSink
        h0, h1 = net.host("h0"), net.host("h1")
        sink = FlowSink(h1, 99)
        flow = Flow(h0, h1, h1.mac, 99, rate_bps=units.GIGABITS_PER_SEC)
        flow.start()
        net.run(until_seconds=0.05)
        flow.stop()
        port_stats = stats.port(1)  # toward h1
        assert port_stats.rx_utilization.utilization > 0.5
        assert port_stats.tx_utilization.utilization > 0.5

    def test_stop_freezes(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        stats = switch.start_stats(interval_ns=units.milliseconds(1))
        net.run(until_seconds=0.01)
        stats.stop()
        frozen = stats.port(0).rx_utilization.utilization
        net.run(until_seconds=0.02)
        assert stats.port(0).rx_utilization.utilization == frozen


@pytest.fixture
def force_fastpath(monkeypatch):
    """Pin the fast path on regardless of the ambient environment (CI
    also runs the whole suite with REPRO_TPP_FASTPATH=0)."""
    monkeypatch.setenv("REPRO_TPP_FASTPATH", "1")


class TestFastpathSurface:
    """Cache/accessor counters exposed via switch stats and the trace."""

    def _probe(self, net, n=3):
        from repro.core.assembler import assemble
        from repro.endhost.client import TPPEndpoint
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        program = assemble("PUSH [Queue:QueueSize]", hops=2)
        for _ in range(n):
            client.send(program, dst_mac=h1.mac)
        net.run(until_seconds=0.01)

    def test_switch_fastpath_stats(self, force_fastpath,
                                   single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        self._probe(net)
        stats = switch.fastpath_stats()
        assert stats["compile_enabled"] is True
        assert stats["misses"] == 1          # compiled once...
        assert stats["hits"] >= 2            # ...then served from cache
        assert stats["accessor_resolutions"] >= 1

    def test_sampler_exposes_fastpath(self, force_fastpath,
                                      single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        sampler = switch.start_stats()
        self._probe(net)
        assert sampler.fastpath["misses"] == 1
        assert sampler.fastpath == switch.fastpath_stats()

    def test_emit_fastpath_summary_trace_record(self, force_fastpath,
                                                single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        self._probe(net)
        snapshot = switch.emit_fastpath_summary()
        records = net.trace.records(kind="fastpath.summary")
        assert len(records) == 1
        assert records[0].source == "sw0"
        assert records[0].detail["hits"] == snapshot["hits"]
        assert records[0].detail["misses"] == 1

    def test_fastpath_report_table(self, single_switch_net):
        from repro.analysis.reporting import fastpath_report
        net = single_switch_net
        self._probe(net)
        table = fastpath_report([net.switch("sw0")])
        assert "sw0" in table
        assert "hits" in table
        assert fastpath_report([]) == "(nothing to report)"
