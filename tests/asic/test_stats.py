"""Utilization meters and queue averagers."""

import pytest

from repro import units
from repro.asic.stats import QueueAverager, UtilizationMeter


class Counter:
    def __init__(self):
        self.value = 0

    def __call__(self):
        return self.value


class TestUtilizationMeter:
    def test_full_rate_reads_one(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        counter.value += 125_000  # 1 Mb in 1 s
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(1.0)
        assert meter.utilization_milli == 1000

    def test_half_rate(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        counter.value += 62_500
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(0.5)

    def test_ewma_smooths(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=0.5)
        counter.value += 125_000
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(0.5)  # 0 -> halfway to 1
        counter.value += 125_000
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(0.75)

    def test_initial_count_ignored(self):
        counter = Counter()
        counter.value = 1_000_000  # preexisting bytes must not count
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        meter.sample(units.seconds(1))
        assert meter.utilization == 0.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMeter(Counter(), 1000, alpha=0.0)

    def test_overload_exceeds_one(self):
        counter = Counter()
        meter = UtilizationMeter(counter, rate_bps=units.MEGABITS_PER_SEC,
                                 alpha=1.0)
        counter.value += 250_000  # 2x line rate offered
        meter.sample(units.seconds(1))
        assert meter.utilization == pytest.approx(2.0)


class TestQueueAverager:
    def test_converges_to_constant(self):
        averager = QueueAverager(lambda: 1000, alpha=0.5)
        for _ in range(20):
            averager.sample()
        assert averager.average_bytes == pytest.approx(1000, abs=2)

    def test_alpha_one_tracks_instantaneous(self):
        values = iter([100, 200, 300])
        averager = QueueAverager(lambda: next(values), alpha=1.0)
        averager.sample()
        averager.sample()
        averager.sample()
        assert averager.average_bytes == 300

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            QueueAverager(lambda: 0, alpha=1.5)


class TestSwitchStats:
    def test_sampler_updates_port_stats(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        stats = switch.start_stats(interval_ns=units.milliseconds(1),
                                   alpha=1.0)
        # Saturate the sw0 -> h1 link for 50 ms.
        from repro.endhost.flows import Flow, FlowSink
        h0, h1 = net.host("h0"), net.host("h1")
        sink = FlowSink(h1, 99)
        flow = Flow(h0, h1, h1.mac, 99, rate_bps=units.GIGABITS_PER_SEC)
        flow.start()
        net.run(until_seconds=0.05)
        flow.stop()
        port_stats = stats.port(1)  # toward h1
        assert port_stats.rx_utilization.utilization > 0.5
        assert port_stats.tx_utilization.utilization > 0.5

    def test_stop_freezes(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        stats = switch.start_stats(interval_ns=units.milliseconds(1))
        net.run(until_seconds=0.01)
        stats.stop()
        frozen = stats.port(0).rx_utilization.utilization
        net.run(until_seconds=0.02)
        assert stats.port(0).rx_utilization.utilization == frozen
