"""Ingress-drain batching on the switch dataplane.

Same-instant arrivals of the same TPP program must be grouped into one
:meth:`TCPU.execute_batch` call — and doing so must not change a single
observable output relative to packet-at-a-time execution.
"""

import os

import pytest

from repro import units
from repro.analysis.reporting import batch_report
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder


def star_net(n_hosts=4):
    builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                              delay_ns=1_000)
    net = builder.star(n_hosts=n_hosts)
    install_shortest_path_routes(net)
    return net


def burst_probes(net, program, n_hosts=4, on_response=None):
    """One probe from every spoke host toward h0, all at t=0, so they
    arrive at the hub switch in the same drain window."""
    target = net.host("h0")
    TPPEndpoint(target)
    for index in range(1, n_hosts):
        client = TPPEndpoint(net.host(f"h{index}"))
        client.send(program, dst_mac=target.mac, on_response=on_response)


#: batch accounting is (by design) absent when the engine is disabled
#: via the environment; the correctness tests below still run.
requires_batch = pytest.mark.skipif(
    os.environ.get("REPRO_TPP_BATCH") == "0"
    or os.environ.get("REPRO_TPP_FASTPATH") == "0",
    reason="batched engine disabled via environment")


class TestDrainBatching:
    @requires_batch
    def test_same_instant_probes_form_a_batch(self):
        net = star_net()
        switch = net.switch("sw0")
        program = assemble("PUSH [Queue:QueueSize]", hops=2)
        burst_probes(net, program)
        net.run(until_seconds=0.01)
        stats = switch.fastpath_stats()
        assert stats["batches_executed"] >= 1
        assert stats["batched_tpps"] >= 3
        assert switch.tcpu.tpps_executed >= 3

    def test_staggered_probes_do_not_batch(self):
        """Arrivals in different drain windows stay scalar."""
        net = star_net()
        switch = net.switch("sw0")
        target = net.host("h0")
        TPPEndpoint(target)
        client = TPPEndpoint(net.host("h1"))
        program = assemble("PUSH [Queue:QueueSize]", hops=2)

        def send_one():
            client.send(program, dst_mac=target.mac)

        for at_ns in (0, 50_000, 100_000):
            net.sim.schedule(at_ns, send_one)
        net.run(until_seconds=0.01)
        assert switch.fastpath_stats()["batches_executed"] == 0
        assert switch.tcpu.tpps_executed == 3

    def test_batching_off_produces_identical_responses(self):
        """Observable equivalence: responses, hop words, and counters
        match with the ingress batcher enabled and disabled."""
        def run_once(batch):
            net = star_net()
            for switch in net.switches.values():
                switch.tcpu.batch_enabled = batch
            results = []
            program = assemble("""
                PUSH [Switch:SwitchID]
                PUSH [Queue:QueueSize]
            """, hops=2)
            burst_probes(net, program,
                         on_response=lambda r: results.append(r))
            net.run(until_seconds=0.01)
            switch = net.switch("sw0")
            return ([(r.tpp.encode(), r.per_hop_words())
                     for r in results],
                    switch.tcpu.tpps_executed,
                    switch.packets_switched)

        batched, scalar = run_once(True), run_once(False)
        assert len(batched[0]) == 3
        assert sorted(batched[0]) == sorted(scalar[0])
        assert batched[1:] == scalar[1:]

    def test_mixed_programs_split_into_runs(self):
        """Different program keys in one drain window never share a
        batch; every probe still executes correctly."""
        net = star_net()
        switch = net.switch("sw0")
        target = net.host("h0")
        TPPEndpoint(target)
        sources = ["PUSH [Switch:SwitchID]", "PUSH [Queue:QueueSize]",
                   "PUSH [Switch:SwitchID]"]
        results = []
        for index, source in enumerate(sources, start=1):
            client = TPPEndpoint(net.host(f"h{index}"))
            client.send(assemble(source, hops=2), dst_mac=target.mac,
                        on_response=results.append)
        net.run(until_seconds=0.01)
        assert len(results) == 3
        assert switch.tcpu.tpps_executed == 3


class TestBatchStats:
    def test_fastpath_stats_exposes_batch_counters(self):
        net = star_net()
        stats = net.switch("sw0").fastpath_stats()
        for key in ("batch_enabled", "batches_executed", "batched_tpps",
                    "vector_batches", "vector_tpps", "batch_fallbacks",
                    "batch_occupancy"):
            assert key in stats
        assert isinstance(stats["batch_occupancy"], dict)

    def test_batch_report_renders(self):
        net = star_net()
        program = assemble("PUSH [Queue:QueueSize]", hops=2)
        burst_probes(net, program)
        net.run(until_seconds=0.01)
        text = batch_report(net.switches.values())
        assert "Batched execution" in text
        assert "sw0" in text
        assert batch_report([]) == "(nothing to report)"
