"""Header parser: sees through TPP encapsulation."""

from repro.asic.parser import parse_frame
from repro.core.assembler import assemble
from repro.net.packet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_TPP,
    Datagram,
    EthernetFrame,
    RawPayload,
)


def datagram():
    return Datagram(src_ip=0x0A000001, dst_ip=0x0A000002,
                    src_port=1111, dst_port=2222, payload=RawPayload(10))


class TestParseFrame:
    def test_plain_ipv4(self):
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_IPV4,
                              payload=datagram())
        headers = parse_frame(frame)
        assert headers.dst_mac == 2
        assert headers.src_ip == 0x0A000001
        assert headers.dst_port == 2222
        assert headers.tpp is None

    def test_tpp_probe_without_payload(self):
        tpp = assemble("PUSH [Queue:QueueSize]").build()
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        headers = parse_frame(frame)
        assert headers.tpp is tpp
        assert headers.src_ip is None

    def test_tpp_sees_through_to_inner_datagram(self):
        """A TPP-wrapped packet must match the same rules as the packet it
        encapsulates (TPPs are 'forwarded just like other packets')."""
        tpp = assemble("PUSH [Queue:QueueSize]").build(payload=datagram())
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        headers = parse_frame(frame)
        assert headers.tpp is tpp
        assert headers.dst_ip == 0x0A000002
        assert headers.ip_protocol == 17
        assert headers.dst_port == 2222

    def test_raw_payload_has_no_l3(self):
        frame = EthernetFrame(dst=2, src=1, ethertype=0x88CC,
                              payload=RawPayload(46))
        headers = parse_frame(frame)
        assert headers.ethertype == 0x88CC
        assert headers.src_ip is None
        assert headers.tpp is None
