"""Header parser: sees through TPP encapsulation."""

from repro.asic.parser import parse_frame
from repro.core.assembler import assemble
from repro.net.packet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_TPP,
    Datagram,
    EthernetFrame,
    RawPayload,
)


def datagram():
    return Datagram(src_ip=0x0A000001, dst_ip=0x0A000002,
                    src_port=1111, dst_port=2222, payload=RawPayload(10))


class TestParseFrame:
    def test_plain_ipv4(self):
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_IPV4,
                              payload=datagram())
        headers = parse_frame(frame)
        assert headers.dst_mac == 2
        assert headers.src_ip == 0x0A000001
        assert headers.dst_port == 2222
        assert headers.tpp is None

    def test_tpp_probe_without_payload(self):
        tpp = assemble("PUSH [Queue:QueueSize]").build()
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        headers = parse_frame(frame)
        assert headers.tpp is tpp
        assert headers.src_ip is None

    def test_tpp_sees_through_to_inner_datagram(self):
        """A TPP-wrapped packet must match the same rules as the packet it
        encapsulates (TPPs are 'forwarded just like other packets')."""
        tpp = assemble("PUSH [Queue:QueueSize]").build(payload=datagram())
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        headers = parse_frame(frame)
        assert headers.tpp is tpp
        assert headers.dst_ip == 0x0A000002
        assert headers.ip_protocol == 17
        assert headers.dst_port == 2222

    def test_raw_payload_has_no_l3(self):
        frame = EthernetFrame(dst=2, src=1, ethertype=0x88CC,
                              payload=RawPayload(46))
        headers = parse_frame(frame)
        assert headers.ethertype == 0x88CC
        assert headers.src_ip is None
        assert headers.tpp is None


class TestParsedViewCache:
    """Zero-reparse: the parsed view travels with the frame across hops."""

    def test_reparse_returns_cached_view(self):
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_IPV4,
                              payload=datagram())
        first = parse_frame(frame)
        assert parse_frame(frame) is first

    def test_tpp_memory_writes_need_no_invalidation(self):
        """Per-hop writes mutate the same TPPSection object the cached
        view points at — the next hop sees them through the cache."""
        tpp = assemble("PUSH [Queue:QueueSize]").build()
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        headers = parse_frame(frame)
        tpp.write_word(0, 0xBEEF)
        again = parse_frame(frame)
        assert again is headers
        assert again.tpp.read_word(0) == 0xBEEF

    def test_size_cache_invalidation_drops_parsed_view(self):
        tpp = assemble("PUSH [Queue:QueueSize]").build(payload=datagram())
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        stale = parse_frame(frame)
        assert stale.tpp is tpp
        # The strip action: payload swap + explicit invalidation.
        frame.payload = tpp.payload
        frame.ethertype = ETHERTYPE_IPV4
        frame.invalidate_size_cache()
        fresh = parse_frame(frame)
        assert fresh is not stale
        assert fresh.tpp is None
        assert fresh.dst_ip == 0x0A000002

    def test_clone_does_not_share_the_cached_view(self):
        tpp = assemble("PUSH [Queue:QueueSize]").build()
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        cached = parse_frame(frame)
        twin = frame.clone()
        twin_headers = parse_frame(twin)
        assert twin_headers is not cached
        # Clones deep-copy mutable TPP payloads, and the twin's parsed
        # view must point at the twin's copy, not the original's.
        assert twin_headers.tpp is twin.payload
        assert twin_headers.tpp is not tpp
