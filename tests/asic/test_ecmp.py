"""ECMP multipath forwarding and its TPP visibility."""

import pytest

from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.packet import Datagram, RawPayload
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network


@pytest.fixture
def diamond_net():
    """h0 - leaf0 = {spine0, spine1} = leaf1 - h1 (two equal paths)."""
    net = Network(seed=2)
    leaf0 = net.add_switch("leaf0")
    leaf1 = net.add_switch("leaf1")
    spine0 = net.add_switch("spine0")
    spine1 = net.add_switch("spine1")
    for leaf in (leaf0, leaf1):
        for spine in (spine0, spine1):
            net.link(leaf, spine, units.GIGABITS_PER_SEC)
    h0 = net.add_host()
    h1 = net.add_host()
    net.link(h0, leaf0, units.GIGABITS_PER_SEC)
    net.link(h1, leaf1, units.GIGABITS_PER_SEC)
    install_shortest_path_routes(net)
    # Add the second spine as an ECMP alternate on both leaves.
    adjacency = net.adjacency()
    for leaf, dst in ((leaf0, h1), (leaf1, h0)):
        primary = leaf.l2.entry_for(dst.mac).out_ports[0]
        for local, peer, _ in adjacency[leaf.name]:
            if peer.startswith("spine") and local != primary:
                leaf.l2.add_alternate(dst.mac, local)
    return net


def send_flows(net, n_flows, packets_per_flow=3):
    h0, h1 = net.host("h0"), net.host("h1")
    h1.on_udp_port(9, lambda d, f: None)
    frames = []
    for flow_index in range(n_flows):
        for _ in range(packets_per_flow):
            datagram = Datagram(h0.ip, h1.ip,
                                src_port=20000 + flow_index, dst_port=9,
                                payload=RawPayload(100))
            h0.send_datagram(h1.mac, datagram)
    net.run(until_seconds=0.05)


class TestEcmp:
    def test_flows_spread_across_spines(self, diamond_net):
        net = diamond_net
        send_flows(net, n_flows=32)
        spine_loads = [net.switch(f"spine{i}").packets_switched
                       for i in range(2)]
        assert sum(spine_loads) == 32 * 3
        # With 32 flows, both spines carry traffic.
        assert all(load > 0 for load in spine_loads)

    def test_one_flow_stays_on_one_path(self, diamond_net):
        """No packet reordering: a single flow always hashes to the same
        next hop."""
        net = diamond_net
        send_flows(net, n_flows=1, packets_per_flow=20)
        spine_loads = sorted(net.switch(f"spine{i}").packets_switched
                             for i in range(2))
        assert spine_loads == [0, 20]

    def test_alternate_routes_visible_to_tpp(self, diamond_net):
        """Table 2: 'alternate routes for a packet' readable in-band."""
        net = diamond_net
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        results = []
        client.send(assemble("PUSH [PacketMetadata:AlternateRoutes]"),
                    dst_mac=h1.mac, on_response=results.append)
        net.run(until_seconds=0.01)
        per_hop = [words[0] for words in results[0].per_hop_words()]
        # leaf0 has 1 alternate; the spine and leaf1... leaf1 also has
        # an alternate installed toward h0 but this packet travels to
        # h1, so: [1, 0, 0].
        assert per_hop[0] == 1
        assert all(value == 0 for value in per_hop[1:])

    def test_hit_counters_accumulate(self, diamond_net):
        net = diamond_net
        send_flows(net, n_flows=4, packets_per_flow=5)
        leaf0 = net.switch("leaf0")
        entry = leaf0.l2.entry_for(net.host("h1").mac)
        assert leaf0.l2.hit_counts[entry.entry_id] == 20

    def test_matched_entry_hits_stat(self, diamond_net):
        """The per-entry counter is readable through the TPP interface."""
        net = diamond_net
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        results = []
        program = assemble("PUSH [PacketMetadata:MatchedEntryHits]")
        client.send(program, dst_mac=h1.mac, on_response=results.append)
        client.send(program, dst_mac=h1.mac, on_response=results.append)
        net.run(until_seconds=0.01)
        first = results[0].per_hop_words()[0][0]
        second = results[1].per_hop_words()[0][0]
        assert second == first + 1
