"""The switch pipeline end to end."""


from repro import units
from repro.asic.tables import DROP, TcamRule
from repro.core.assembler import assemble
from repro.core.exceptions import FaultCode
from repro.net.packet import Datagram, EthernetFrame, RawPayload
from repro.net.routing import install_shortest_path_routes


def send_datagram(net, src="h0", dst="h1", dst_port=9):
    h_src, h_dst = net.host(src), net.host(dst)
    h_src.send_datagram(h_dst.mac, Datagram(h_src.ip, h_dst.ip, 1, dst_port,
                                            RawPayload(100)))


class TestForwarding:
    def test_l2_forwarding(self, single_switch_net):
        net = single_switch_net
        got = []
        net.host("h1").on_udp_port(9, lambda d, f: got.append(d))
        send_datagram(net)
        net.run(until_seconds=0.01)
        assert len(got) == 1
        assert net.switch("sw0").packets_switched == 1

    def test_no_route_drops(self, single_switch_net):
        net = single_switch_net
        h0 = net.host("h0")
        h0.send_frame(EthernetFrame(dst=0xDEAD, src=h0.mac,
                                    ethertype=0x0800,
                                    payload=RawPayload(10)))
        net.run(until_seconds=0.01)
        assert net.switch("sw0").packets_dropped_no_route == 1

    def test_tcam_overrides_l2(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        # A TCAM drop rule for h0's traffic beats the L2 route.
        switch.install_tcam_rule(TcamRule(priority=10, out_port=DROP,
                                          src_ip=net.host("h0").ip))
        got = []
        net.host("h1").on_udp_port(9, lambda d, f: got.append(d))
        send_datagram(net)
        net.run(until_seconds=0.01)
        assert got == []
        assert switch.packets_dropped_by_rule == 1

    def test_l3_fallback(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        h0, h1 = net.host("h0"), net.host("h1")
        # Remove the L2 route and install an L3 prefix route instead.
        switch.l2.remove(h1.mac)
        port = None
        for local_port, peer, _ in net.adjacency()["sw0"]:
            if peer == "h1":
                port = local_port
        switch.install_l3_route(h1.ip, 32, port)
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        send_datagram(net)
        net.run(until_seconds=0.01)
        assert len(got) == 1

    def test_hops_recorded_on_frame(self, linear_net):
        net = linear_net
        got = []
        net.host("h1").on_udp_port(9, lambda d, f: got.append(f))
        send_datagram(net)
        net.run(until_seconds=0.01)
        assert got[0].hops == ["sw0", "sw1", "sw2"]

    def test_pipeline_latency_applied(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        switch.pipeline_latency_ns = 100_000
        times = []
        net.host("h1").on_udp_port(
            9, lambda d, f: times.append(net.sim.now_ns))
        send_datagram(net)
        net.run(until_seconds=0.01)
        assert times[0] > 100_000


class TestTPPExecution:
    def test_tpp_counters(self, linear_net):
        net = linear_net
        from repro.endhost.client import TPPEndpoint
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble("PUSH [Queue:QueueSize]"),
                             dst_mac=h1.mac)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        for name in ("sw0", "sw1", "sw2"):
            assert net.switch(name).tcpu.tpps_executed >= 1

    def test_tpp_disabled_switch_forwards_without_executing(
            self, linear_net):
        net = linear_net
        net.switch("sw1").tpp_enabled = False
        from repro.endhost.client import TPPEndpoint
        h0, h1 = net.host("h0"), net.host("h1")
        results = []
        TPPEndpoint(h0).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h1.mac, on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        # Only sw0 and sw2 executed: 2 hops of samples.
        assert results[0].hops() == 2
        ids = [words[0] for words in results[0].per_hop_words()]
        assert ids == [1, 3]

    def test_metadata_exposed_to_tpp(self, single_switch_net):
        net = single_switch_net
        from repro.endhost.client import TPPEndpoint
        h0, h1 = net.host("h0"), net.host("h1")
        results = []
        program = assemble("""
            PUSH [PacketMetadata:InputPort]
            PUSH [PacketMetadata:OutputPort]
            PUSH [PacketMetadata:PacketLength]
        """)
        TPPEndpoint(h0).send(program, dst_mac=h1.mac,
                             on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        in_port, out_port, length = results[0].per_hop_words()[0]
        adjacency = dict((peer, local)
                         for local, peer, _ in net.adjacency()["sw0"])
        assert in_port == adjacency["h0"]
        assert out_port == adjacency["h1"]
        assert length >= 64

    def test_queue_size_reflects_backlog(self):
        """A TPP arriving while a queue is congested reads nonzero
        occupancy: two senders converge on one receiver link."""
        from repro.net.topology import TopologyBuilder
        from repro.endhost.client import TPPEndpoint
        from repro.endhost.flows import Flow, FlowSink
        net = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC).star(3)
        install_shortest_path_routes(net)
        h0, h1, h2 = (net.host(f"h{i}") for i in range(3))
        FlowSink(h2, 99)
        flows = [Flow(h, h2, h2.mac, 99, rate_bps=units.GIGABITS_PER_SEC,
                      packet_bytes=1000) for h in (h0, h1)]
        results = []
        endpoint = TPPEndpoint(h0)
        TPPEndpoint(h2)
        for flow in flows:
            flow.start()
        net.sim.schedule(units.milliseconds(5), lambda: endpoint.send(
            assemble("PUSH [Queue:QueueSize]"), dst_mac=h2.mac,
            on_response=results.append))
        net.sim.schedule(units.milliseconds(6),
                         lambda: [flow.stop() for flow in flows])
        net.run(until_seconds=0.1)
        assert results[0].per_hop_words()[0][0] > 0

    def test_clock_readable(self, single_switch_net):
        net = single_switch_net
        from repro.endhost.client import TPPEndpoint
        h0, h1 = net.host("h0"), net.host("h1")
        results = []
        program = assemble("PUSH [Switch:ClockLo]\nPUSH [Switch:ClockHi]")
        endpoint = TPPEndpoint(h0)
        TPPEndpoint(h1)
        net.sim.schedule(units.milliseconds(3), lambda: endpoint.send(
            program, dst_mac=h1.mac, on_response=results.append))
        net.run(until_seconds=0.01)
        lo, hi = results[0].per_hop_words()[0]
        clock = (hi << 32) | lo
        assert units.milliseconds(3) < clock < units.milliseconds(4)

    def test_fault_travels_to_endhost(self, single_switch_net):
        net = single_switch_net
        from repro.endhost.client import TPPEndpoint
        h0, h1 = net.host("h0"), net.host("h1")
        results = []
        program = assemble(".memory 1\nSTORE [Queue:QueueSize], [Packet:0]")
        TPPEndpoint(h0).send(program, dst_mac=h1.mac,
                             on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert not results[0].ok
        assert results[0].fault == FaultCode.WRITE_PROTECTED
