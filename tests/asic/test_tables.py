"""Forwarding tables: L2, L3 LPM, TCAM, and version stamping."""

import pytest

from repro.asic.parser import ParsedHeaders
from repro.asic.tables import (
    DROP,
    EntryAllocator,
    L2Table,
    L3Table,
    Tcam,
    TcamRule,
)
from repro.errors import ConfigurationError


def headers(**kwargs) -> ParsedHeaders:
    defaults = dict(src_mac=1, dst_mac=2, ethertype=0x0800)
    defaults.update(kwargs)
    return ParsedHeaders(**defaults)


class TestL2Table:
    def test_install_and_lookup(self):
        table = L2Table(EntryAllocator())
        table.install(0xAA, out_port=3)
        result = table.lookup(0xAA)
        assert result is not None and result.out_port == 3

    def test_miss_returns_none(self):
        table = L2Table(EntryAllocator())
        assert table.lookup(0xAB) is None

    def test_reinstall_bumps_version_and_id(self):
        """ndb's mechanism: every rule change is a new version (§2.3)."""
        table = L2Table(EntryAllocator())
        first = table.install(0xAA, out_port=1)
        second = table.install(0xAA, out_port=2)
        assert second.version > first.version
        assert second.entry_id != first.entry_id
        assert table.lookup(0xAA).out_port == 2

    def test_table_version_tracks_changes(self):
        table = L2Table(EntryAllocator())
        assert table.table_version == 0
        table.install(0xAA, 1)
        v1 = table.table_version
        table.install(0xBB, 1)
        assert table.table_version > v1

    def test_remove(self):
        table = L2Table(EntryAllocator())
        table.install(0xAA, 1)
        table.remove(0xAA)
        assert table.lookup(0xAA) is None
        assert len(table) == 0

    def test_ecmp_alternates_counted(self):
        table = L2Table(EntryAllocator())
        table.install(0xAA, 1)
        table.add_alternate(0xAA, 2)
        table.add_alternate(0xAA, 3)
        result = table.lookup(0xAA)
        assert result.alternate_routes == 2
        assert result.out_port == 1  # primary wins

    def test_alternate_requires_existing_route(self):
        table = L2Table(EntryAllocator())
        with pytest.raises(ConfigurationError):
            table.add_alternate(0xAA, 1)


class TestL3Table:
    def test_longest_prefix_wins(self):
        table = L3Table(EntryAllocator())
        table.install(0x0A000000, 8, out_port=1)    # 10/8
        table.install(0x0A010000, 16, out_port=2)   # 10.1/16
        assert table.lookup(0x0A01FFFF).out_port == 2
        assert table.lookup(0x0A02FFFF).out_port == 1

    def test_default_route(self):
        table = L3Table(EntryAllocator())
        table.install(0, 0, out_port=9)
        assert table.lookup(0xDEADBEEF).out_port == 9

    def test_miss(self):
        table = L3Table(EntryAllocator())
        table.install(0x0A000000, 8, out_port=1)
        assert table.lookup(0x0B000000) is None

    def test_none_address_misses(self):
        table = L3Table(EntryAllocator())
        table.install(0, 0, 1)
        assert table.lookup(None) is None

    def test_reinstall_same_prefix_replaces(self):
        table = L3Table(EntryAllocator())
        table.install(0x0A000000, 8, out_port=1)
        table.install(0x0A000000, 8, out_port=5)
        assert len(table) == 1
        assert table.lookup(0x0A000001).out_port == 5

    def test_bad_prefix_len_rejected(self):
        table = L3Table(EntryAllocator())
        with pytest.raises(ConfigurationError):
            table.install(0, 33, 1)


class TestTcam:
    def test_wildcard_rule_matches_everything(self):
        tcam = Tcam(EntryAllocator())
        tcam.install(TcamRule(priority=1, out_port=4))
        assert tcam.lookup(headers(), in_port=0).out_port == 4

    def test_field_match(self):
        tcam = Tcam(EntryAllocator())
        tcam.install(TcamRule(priority=1, out_port=4, dst_mac=0xAA))
        assert tcam.lookup(headers(dst_mac=0xAA), 0) is not None
        assert tcam.lookup(headers(dst_mac=0xAB), 0) is None

    def test_priority_order(self):
        tcam = Tcam(EntryAllocator())
        tcam.install(TcamRule(priority=1, out_port=1))
        tcam.install(TcamRule(priority=10, out_port=2, dst_mac=2))
        assert tcam.lookup(headers(dst_mac=2), 0).out_port == 2
        assert tcam.lookup(headers(dst_mac=3), 0).out_port == 1

    def test_in_port_match(self):
        tcam = Tcam(EntryAllocator())
        tcam.install(TcamRule(priority=1, out_port=9, in_port=2))
        assert tcam.lookup(headers(), in_port=2) is not None
        assert tcam.lookup(headers(), in_port=3) is None

    def test_drop_action(self):
        tcam = Tcam(EntryAllocator())
        tcam.install(TcamRule(priority=5, out_port=DROP, src_ip=0x0A000001))
        result = tcam.lookup(headers(src_ip=0x0A000001), 0)
        assert result.is_drop

    def test_udp_port_match(self):
        tcam = Tcam(EntryAllocator())
        tcam.install(TcamRule(priority=1, out_port=1, dst_port=53))
        assert tcam.lookup(headers(dst_port=53), 0) is not None
        assert tcam.lookup(headers(dst_port=54), 0) is None

    def test_remove_by_entry_id(self):
        tcam = Tcam(EntryAllocator())
        rule = tcam.install(TcamRule(priority=1, out_port=1))
        assert tcam.remove(rule.entry_id)
        assert not tcam.remove(rule.entry_id)
        assert tcam.lookup(headers(), 0) is None

    def test_capacity_limit(self):
        tcam = Tcam(EntryAllocator(), capacity=2)
        tcam.install(TcamRule(priority=1, out_port=1))
        tcam.install(TcamRule(priority=2, out_port=1))
        with pytest.raises(ConfigurationError):
            tcam.install(TcamRule(priority=3, out_port=1))


class TestEntryAllocator:
    def test_ids_unique_across_tables(self):
        allocator = EntryAllocator()
        l2 = L2Table(allocator)
        tcam = Tcam(allocator)
        entry = l2.install(0xAA, 1)
        rule = tcam.install(TcamRule(priority=1, out_port=1))
        assert entry.entry_id != rule.entry_id

    def test_versions_monotonic(self):
        allocator = EntryAllocator()
        versions = [allocator.next_version() for _ in range(5)]
        assert versions == sorted(versions)
        assert allocator.last_version == versions[-1]
