"""TimeSeries container."""

import pytest

from repro.analysis.timeseries import TimeSeries


def series_of(pairs):
    series = TimeSeries("t")
    for time_ns, value in pairs:
        series.append(time_ns, value)
    return series


class TestAppend:
    def test_ordered_append(self):
        series = series_of([(1, 1.0), (2, 2.0)])
        assert series.samples() == [(1, 1.0), (2, 2.0)]

    def test_equal_times_allowed(self):
        series = series_of([(1, 1.0), (1, 2.0)])
        assert len(series) == 2

    def test_backwards_time_rejected(self):
        series = series_of([(5, 1.0)])
        with pytest.raises(ValueError):
            series.append(4, 2.0)


class TestQueries:
    def test_window_half_open(self):
        series = series_of([(0, 0.0), (10, 1.0), (20, 2.0), (30, 3.0)])
        window = series.window(10, 30)
        assert window.samples() == [(10, 1.0), (20, 2.0)]

    def test_stats(self):
        series = series_of([(0, 1.0), (1, 3.0), (2, 5.0)])
        assert series.mean() == 3.0
        assert series.max() == 5.0
        assert series.min() == 1.0
        assert series.last() == 5.0

    def test_empty_stats(self):
        series = TimeSeries()
        assert series.mean() == 0.0
        assert series.last() is None

    def test_value_at_zero_order_hold(self):
        series = series_of([(10, 1.0), (20, 2.0)])
        assert series.value_at(5) is None
        assert series.value_at(10) == 1.0
        assert series.value_at(15) == 1.0
        assert series.value_at(25) == 2.0


class TestTransforms:
    def test_ewma_smooths(self):
        series = series_of([(0, 0.0), (1, 10.0), (2, 10.0)])
        smoothed = series.ewma(0.5)
        assert smoothed.values() == [0.0, 5.0, 7.5]

    def test_ewma_alpha_validated(self):
        with pytest.raises(ValueError):
            series_of([(0, 1.0)]).ewma(0.0)

    def test_resample_mean(self):
        series = series_of([(0, 1.0), (5, 3.0), (10, 10.0), (15, 20.0)])
        resampled = series.resample_mean(10)
        assert resampled.samples() == [(0, 2.0), (10, 15.0)]

    def test_resample_skips_empty_buckets(self):
        series = series_of([(0, 1.0), (35, 2.0)])
        resampled = series.resample_mean(10)
        assert resampled.samples() == [(0, 1.0), (30, 2.0)]

    def test_resample_bucket_validated(self):
        with pytest.raises(ValueError):
            series_of([(0, 1.0)]).resample_mean(0)

    def test_resample_empty(self):
        assert len(TimeSeries().resample_mean(10)) == 0
