"""Percentile queries on time series."""

import pytest

from repro.analysis.timeseries import TimeSeries


def series_of(values):
    series = TimeSeries()
    for index, value in enumerate(values):
        series.append(index, value)
    return series


class TestPercentile:
    def test_median(self):
        series = series_of([5.0, 1.0, 3.0, 2.0, 4.0])
        assert series.percentile(0.5) == 3.0

    def test_extremes(self):
        series = series_of([5.0, 1.0, 3.0])
        assert series.percentile(0.0) == 1.0
        assert series.percentile(1.0) == 5.0

    def test_p99_on_long_tail(self):
        values = [1.0] * 99 + [100.0]
        series = series_of(values)
        assert series.percentile(0.99) == 100.0
        assert series.percentile(0.5) == 1.0

    def test_empty(self):
        assert TimeSeries().percentile(0.5) == 0.0

    def test_returns_observed_value(self):
        series = series_of([1.0, 2.0, 4.0, 8.0])
        for fraction in (0.1, 0.3, 0.6, 0.9):
            assert series.percentile(fraction) in {1.0, 2.0, 4.0, 8.0}

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            series_of([1.0]).percentile(1.5)
