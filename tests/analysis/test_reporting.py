"""Table and plot rendering."""

from repro.analysis.reporting import ascii_plot, format_table
from repro.analysis.timeseries import TimeSeries


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))
        # columns aligned: separators in the same position
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_title(self):
        table = format_table(["x"], [[1]], title="Table 9")
        assert table.splitlines()[0] == "Table 9"

    def test_numbers_stringified(self):
        table = format_table(["a"], [[1.25]])
        assert "1.25" in table


class TestAsciiPlot:
    def _series(self):
        series = TimeSeries("s")
        for i in range(100):
            series.append(i * 1_000_000, i % 10)
        return series

    def test_contains_marks(self):
        plot = ascii_plot(self._series(), width=40, height=8)
        assert "*" in plot

    def test_title_shown(self):
        plot = ascii_plot(self._series(), title="R(t)/C")
        assert "R(t)/C" in plot

    def test_empty_series(self):
        assert "(no data)" in ascii_plot(TimeSeries(), title="x")

    def test_y_bounds_respected(self):
        plot = ascii_plot(self._series(), y_min=0, y_max=100)
        assert "100" in plot

    def test_flat_series_does_not_crash(self):
        series = TimeSeries()
        series.append(0, 5.0)
        series.append(10, 5.0)
        plot = ascii_plot(series)
        assert "*" in plot
