"""Table and plot rendering."""

from repro.analysis.reporting import ascii_plot, format_table
from repro.analysis.timeseries import TimeSeries


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))
        # columns aligned: separators in the same position
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_title(self):
        table = format_table(["x"], [[1]], title="Table 9")
        assert table.splitlines()[0] == "Table 9"

    def test_numbers_stringified(self):
        table = format_table(["a"], [[1.25]])
        assert "1.25" in table


class TestAsciiPlot:
    def _series(self):
        series = TimeSeries("s")
        for i in range(100):
            series.append(i * 1_000_000, i % 10)
        return series

    def test_contains_marks(self):
        plot = ascii_plot(self._series(), width=40, height=8)
        assert "*" in plot

    def test_title_shown(self):
        plot = ascii_plot(self._series(), title="R(t)/C")
        assert "R(t)/C" in plot

    def test_empty_series(self):
        assert "(no data)" in ascii_plot(TimeSeries(), title="x")

    def test_y_bounds_respected(self):
        plot = ascii_plot(self._series(), y_min=0, y_max=100)
        assert "100" in plot

    def test_flat_series_does_not_crash(self):
        series = TimeSeries()
        series.append(0, 5.0)
        series.append(10, 5.0)
        plot = ascii_plot(series)
        assert "*" in plot


class TestRaceReport:
    def test_empty_inputs(self):
        from repro.analysis.reporting import race_report
        assert race_report() == "(nothing to report)"

    def test_switch_and_policy_rows(self):
        from repro.analysis.reporting import race_report
        from repro.control.security import VerifierPolicy
        from repro.core.assembler import assemble
        from repro.core.memory_map import MemoryMap
        from repro.core.mmu import MMU
        from repro.core.tcpu import TCPU
        from repro.core.verifier import verify_program

        class FakeSwitch:
            name = "sw0"

            def __init__(self):
                self.tcpu = TCPU(MMU(name="sw0"), race_mode="warn")

        switch = FakeSwitch()
        memory_map = MemoryMap.standard()
        for source in (".memory 1\nSTORE [Sram:Word0], [Packet:0]",
                       ".memory 2\nSTORE [Sram:Word0], [Packet:1]"):
            cert = verify_program(assemble(source),
                                  memory_map=memory_map).certificate
            assert switch.tcpu.trust(cert)
        out = race_report(switches=[switch],
                          policies=[VerifierPolicy()])
        assert "Certificate race table (TCPU)" in out
        assert "Admission race table (VerifierPolicy)" in out
        assert "sw0" in out and "policy0" in out
        # Two writers to Word0: one pair checked, one error recorded.
        assert " warn " in out
