"""Unit tests for the sketch decoders and layout math (no TCPU)."""

import math

import pytest

from repro.analysis.sketch import (
    CountMinDecoder,
    DistinctCountDecoder,
    HeavyHitterDecoder,
    image_from_mmu,
)
from repro.core.memory_map import SRAM_BASE, MemoryMap
from repro.core.mmu import MMU
from repro.errors import ConfigurationError
from repro.telemetry import (
    CountMinLayout,
    DistinctCountLayout,
    HeavyHitterLayout,
    depth_for,
    disjoint_keys,
    width_for,
)


class TestLayoutMath:
    def test_error_bounds_follow_geometry(self):
        layout = CountMinLayout(base_word=0, width=27, depth=3)
        assert layout.epsilon == pytest.approx(math.e / 27)
        assert layout.delta == pytest.approx(math.exp(-3))
        assert layout.error_bound(1000) == pytest.approx(
            1000 * math.e / 27)

    def test_for_bounds_inverts_the_bounds(self):
        layout = CountMinLayout.for_bounds(epsilon=0.05, delta=0.01)
        assert layout.epsilon <= 0.05
        assert layout.delta <= 0.01
        assert layout.width == width_for(0.05)
        assert layout.depth == depth_for(0.01)

    def test_rows_occupy_disjoint_word_ranges(self):
        layout = CountMinLayout(base_word=10, width=8, depth=4)
        for key in (1, 42, 99999):
            words = layout.words_for(key)
            assert len(set(words)) == layout.depth
            for row, word in enumerate(words):
                row_lo = 10 + row * 8
                assert row_lo <= word < row_lo + 8

    def test_heavy_hitter_slots_follow_counters(self):
        layout = HeavyHitterLayout(base_word=4, width=8, depth=2,
                                   n_slots=3)
        assert layout.slot_base == 4 + 16
        assert layout.n_words == 16 + 3
        assert layout.slot_word(42) in layout.slot_words()
        assert layout.countmin.n_words == 16

    def test_layouts_reject_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CountMinLayout(base_word=0, width=0, depth=2)
        with pytest.raises(ConfigurationError):
            CountMinLayout(base_word=1020, width=8, depth=2)
        with pytest.raises(ConfigurationError):
            DistinctCountLayout(base_word=0, m=12)  # not a power of two
        with pytest.raises(ConfigurationError):
            HeavyHitterLayout(base_word=0, width=4, depth=2, n_slots=0)

    def test_register_exposes_cell_symbols(self):
        memory_map = MemoryMap.standard()
        layout = HeavyHitterLayout(base_word=0, width=2, depth=2,
                                   n_slots=1, name="t")
        count = layout.register(memory_map)
        assert count == layout.n_words
        assert memory_map.resolve("Sketch:t-r1c1") == SRAM_BASE + 3
        assert memory_map.resolve("Sketch:t-slot0") == SRAM_BASE + 4

    def test_disjoint_keys_never_share_counter_cells(self):
        layout = CountMinLayout(base_word=0, width=8, depth=3)
        keys = disjoint_keys(layout, range(1, 2048), 2)
        assert len(keys) == 2
        a, b = (set(layout.words_for(k)) for k in keys)
        assert not a & b


class TestCountMinDecoder:
    LAYOUT = CountMinLayout(base_word=0, width=4, depth=2)

    def _image(self, counts):
        image = {w: 0 for w in self.LAYOUT.words()}
        for key, count in counts.items():
            for word in self.LAYOUT.words_for(key):
                image[word] += count
        return image

    def test_min_over_rows_and_row_sum(self):
        counts = {5: 10, 9: 3}
        image = self._image(counts)
        decoder = CountMinDecoder(self.LAYOUT)
        assert decoder.row_sum(image) == 13
        for key, count in counts.items():
            assert decoder.raw_estimate(image, key) >= count

    def test_estimate_bundles_the_contract(self):
        image = self._image({5: 10})
        est = CountMinDecoder(self.LAYOUT).estimate(image, 5)
        assert est.key == 5
        assert est.estimate >= 10
        assert est.error_bound == pytest.approx(
            self.LAYOUT.epsilon * 10)
        assert est.confidence == pytest.approx(1 - self.LAYOUT.delta)

    def test_missing_words_read_as_zero(self):
        decoder = CountMinDecoder(self.LAYOUT)
        assert decoder.raw_estimate({}, 5) == 0
        assert decoder.row_sum({}) == 0


class TestHeavyHitterDecoder:
    LAYOUT = HeavyHitterLayout(base_word=0, width=4, depth=2, n_slots=2,
                               unclaimed_value=7)

    def test_candidates_skip_the_sentinel(self):
        image = {w: 0 for w in self.LAYOUT.words()}
        for word in self.LAYOUT.slot_words():
            image[word] = self.LAYOUT.unclaimed_value
        image[self.LAYOUT.slot_base] = 42
        decoder = HeavyHitterDecoder(self.LAYOUT)
        assert decoder.candidates(image) == (42,)

    def test_report_ranks_by_estimate_and_truncates(self):
        image = {w: 0 for w in self.LAYOUT.words()}
        for word in self.LAYOUT.slot_words():
            image[word] = self.LAYOUT.unclaimed_value
        # Install two candidates with distinct counter masses; their
        # slots must differ for both to be visible.
        a, b = 42, next(
            k for k in range(1, 999)
            if self.LAYOUT.slot_word(k) != self.LAYOUT.slot_word(42)
            and k != self.LAYOUT.unclaimed_value)
        for key, count in ((a, 5), (b, 30)):
            image[self.LAYOUT.slot_word(key)] = key
            for word in self.LAYOUT.countmin.words_for(key):
                image[word] += count
        decoder = HeavyHitterDecoder(self.LAYOUT)
        report = decoder.report(image)
        assert [h.key for h in report] == [b, a]
        assert [h.key for h in decoder.report(image, k=1)] == [b]
        assert report[0].estimate >= 30


class TestDistinctCountDecoder:
    def test_empty_image_estimates_zero(self):
        layout = DistinctCountLayout(base_word=0, m=16)
        assert DistinctCountDecoder(layout).estimate({}) == 0.0

    def test_saturated_registers_use_harmonic_mean(self):
        layout = DistinctCountLayout(base_word=0, m=16)
        image = {w: 10 for w in layout.words()}
        decoder = DistinctCountDecoder(layout)
        estimate = decoder.estimate(image)
        # No zero registers and raw > 2.5m: pure HLL path.
        assert estimate == pytest.approx(0.673 * 16 * 16 * (2 ** 10) / 16)

    def test_alpha_constants(self):
        from repro.analysis.sketch import _hll_alpha
        assert _hll_alpha(16) == 0.673
        assert _hll_alpha(32) == 0.697
        assert _hll_alpha(64) == 0.709
        assert _hll_alpha(128) == pytest.approx(
            0.7213 / (1 + 1.079 / 128))

    def test_relative_error_is_the_layout_sigma(self):
        layout = DistinctCountLayout(base_word=0, m=64)
        assert DistinctCountDecoder(layout).relative_error() == \
            pytest.approx(1.04 / 8)


class TestImageFromMMU:
    def test_snapshot_reads_the_requested_words(self):
        mmu = MMU(name="img")
        mmu.poke_sram(3, 77)
        assert image_from_mmu(mmu, [2, 3]) == {2: 0, 3: 77}
