"""Convergence and fairness metrics."""

import pytest

from repro.analysis.convergence import (
    convergence_time_ns,
    jain_fairness,
    overshoot_fraction,
    steady_state_mean,
)
from repro.analysis.timeseries import TimeSeries


def series_of(pairs):
    series = TimeSeries()
    for t, v in pairs:
        series.append(t, v)
    return series


class TestConvergenceTime:
    def test_settles_and_stays(self):
        series = series_of([(0, 0.0), (10, 0.5), (20, 0.95), (30, 1.0),
                            (40, 1.02)])
        assert convergence_time_ns(series, target=1.0, tolerance=0.1) == 20

    def test_excursion_resets(self):
        series = series_of([(0, 1.0), (10, 5.0), (20, 1.0), (30, 1.0)])
        assert convergence_time_ns(series, target=1.0, tolerance=0.1) == 20

    def test_never_settles(self):
        series = series_of([(0, 0.0), (10, 5.0)])
        assert convergence_time_ns(series, target=1.0) is None

    def test_from_time_skips_history(self):
        series = series_of([(0, 1.0), (10, 1.0), (20, 1.0)])
        assert convergence_time_ns(series, target=1.0,
                                   from_time_ns=15) == 20

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError):
            convergence_time_ns(series_of([(0, 1.0)]), target=0.0)


class TestFairness:
    def test_perfect_fairness(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_fairness([10.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_empty(self):
        assert jain_fairness([]) == 0.0

    def test_all_zero(self):
        assert jain_fairness([0.0, 0.0]) == 0.0

    def test_partial(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
        assert jain_fairness([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)


class TestOthers:
    def test_steady_state_mean(self):
        series = series_of([(0, 100.0), (10, 1.0), (20, 3.0)])
        assert steady_state_mean(series, 10, 30) == 2.0

    def test_overshoot(self):
        series = series_of([(0, 1.0), (10, 1.5), (20, 1.2)])
        assert overshoot_fraction(series, target=1.0) == pytest.approx(0.5)

    def test_overshoot_from_time(self):
        series = series_of([(0, 2.0), (10, 1.1)])
        assert overshoot_fraction(series, 1.0, from_time_ns=5) == (
            pytest.approx(0.1))
