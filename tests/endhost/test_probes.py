"""Periodic TPP probing."""

import random

from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.endhost.probes import PeriodicProber


def make_prober(net, interval_ns, results, **kwargs):
    h0, h1 = net.host("h0"), net.host("h1")
    client = TPPEndpoint(h0)
    TPPEndpoint(h1)
    program = assemble("PUSH [Switch:SwitchID]")
    return PeriodicProber(client, program, interval_ns, results.append,
                          dst_mac=h1.mac, **kwargs)


class TestPeriodicProber:
    def test_probes_at_interval(self, linear_net):
        results = []
        prober = make_prober(linear_net, units.milliseconds(10), results)
        prober.start()
        linear_net.run(until_seconds=0.105)
        assert prober.probes_sent == 10
        assert prober.results_received == 10
        assert len(results) == 10

    def test_first_delay_override(self, linear_net):
        results = []
        prober = make_prober(linear_net, units.milliseconds(10), results)
        prober.start(first_delay_ns=1)
        linear_net.run(until_seconds=0.005)
        assert prober.probes_sent == 1

    def test_stop_halts_probing(self, linear_net):
        results = []
        prober = make_prober(linear_net, units.milliseconds(10), results)
        prober.start()
        linear_net.run(until_seconds=0.05)
        prober.stop()
        count = prober.probes_sent
        linear_net.run(until_seconds=0.2)
        assert prober.probes_sent == count

    def test_results_carry_samples(self, linear_net):
        results = []
        prober = make_prober(linear_net, units.milliseconds(10), results)
        prober.start()
        linear_net.run(until_seconds=0.05)
        assert all(r.hops() == 3 for r in results)

    def test_jitter_decorrelates(self, linear_net):
        results = []
        prober = make_prober(linear_net, units.milliseconds(10), results,
                             jitter_fraction=0.3,
                             rng=random.Random(1))
        prober.start()
        linear_net.run(until_seconds=0.2)
        times = [r.time_ns for r in results]
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert len(gaps) > 3  # intervals actually vary

    def test_jitter_applies_without_explicit_rng(self, linear_net):
        """Regression: jitter used to be silently dropped (fixed
        intervals) when no RNG was passed; the prober now defaults to a
        named stream from the simulator's seeded family."""
        results = []
        prober = make_prober(linear_net, units.milliseconds(10), results,
                             jitter_fraction=0.3)
        prober.start()
        linear_net.run(until_seconds=0.2)
        times = [r.time_ns for r in results]
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert len(gaps) > 3  # intervals vary: jitter is really applied

    def test_default_rng_deterministic_per_seed(self):
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import TopologyBuilder

        def run_once(seed):
            net = TopologyBuilder(seed=seed).linear(2)
            install_shortest_path_routes(net)
            results = []
            prober = make_prober(net, units.milliseconds(10), results,
                                 jitter_fraction=0.3)
            prober.start()
            net.run(until_seconds=0.1)
            return [r.time_ns for r in results]

        assert run_once(5) == run_once(5)
        assert run_once(5) != run_once(6)

    def test_jitter_deterministic_with_seed(self):
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import TopologyBuilder

        def run_once():
            net = TopologyBuilder().linear(2)
            install_shortest_path_routes(net)
            results = []
            prober = make_prober(net, units.milliseconds(10), results,
                                 jitter_fraction=0.3, rng=random.Random(7))
            prober.start()
            net.run(until_seconds=0.1)
            return [r.time_ns for r in results]

        assert run_once() == run_once()
