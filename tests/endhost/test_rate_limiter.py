"""Token bucket and paced sender."""

import pytest

from repro import units
from repro.endhost.rate_limiter import PacedSender, TokenBucket


class TestTokenBucket:
    def test_initial_burst_available(self, sim):
        bucket = TokenBucket(sim, rate_bps=8_000, burst_bytes=1000)
        assert bucket.try_consume(1000)
        assert not bucket.try_consume(1)

    def test_refills_over_time(self, sim):
        bucket = TokenBucket(sim, rate_bps=8_000, burst_bytes=1000)
        bucket.try_consume(1000)
        sim.run(until_ns=units.seconds(1))  # 8000 bits = 1000 bytes refill
        assert bucket.try_consume(1000)

    def test_burst_caps_accumulation(self, sim):
        bucket = TokenBucket(sim, rate_bps=8_000_000, burst_bytes=500)
        sim.run(until_ns=units.seconds(10))
        assert bucket.try_consume(500)
        assert not bucket.try_consume(500)

    def test_time_until_available(self, sim):
        bucket = TokenBucket(sim, rate_bps=8_000, burst_bytes=100)
        bucket.try_consume(100)
        wait = bucket.time_until_available_ns(100)
        assert wait == pytest.approx(units.seconds(0.1), rel=0.01)

    def test_zero_rate_never_available(self, sim):
        bucket = TokenBucket(sim, rate_bps=0, burst_bytes=10)
        bucket.try_consume(10)
        assert bucket.time_until_available_ns(10) == -1

    def test_set_rate(self, sim):
        bucket = TokenBucket(sim, rate_bps=8, burst_bytes=100)
        bucket.try_consume(100)
        bucket.set_rate(8_000_000)
        sim.run(until_ns=units.milliseconds(1))
        assert bucket.try_consume(100)

    def test_negative_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            TokenBucket(sim, rate_bps=-1)


class TestPacedSender:
    def _sender(self, sim, rate_bps, packet_bytes=1000):
        sent = []
        sender = PacedSender(sim, rate_bps, packet_bytes,
                             lambda n: sent.append(sim.now_ns))
        return sender, sent

    def test_achieves_configured_rate(self, sim):
        sender, sent = self._sender(sim, rate_bps=8_000_000)  # 1000 pkt/s
        sender.start()
        sim.run(until_ns=units.seconds(1))
        assert len(sent) == pytest.approx(1000, rel=0.02)

    def test_rate_change_takes_effect(self, sim):
        sender, sent = self._sender(sim, rate_bps=8_000_000)
        sender.start()
        sim.run(until_ns=units.seconds(1))
        first_second = len(sent)
        sender.set_rate(4_000_000)
        sim.run(until_ns=units.seconds(2))
        second_second = len(sent) - first_second
        assert second_second == pytest.approx(first_second / 2, rel=0.05)

    def test_zero_rate_stalls_then_resumes(self, sim):
        sender, sent = self._sender(sim, rate_bps=0)
        sender.start()
        sim.run(until_ns=units.seconds(1))
        sent_while_stalled = len(sent)
        sender.set_rate(8_000_000)
        sim.run(until_ns=units.seconds(2))
        assert len(sent) > sent_while_stalled

    def test_stop(self, sim):
        sender, sent = self._sender(sim, rate_bps=8_000_000)
        sender.start()
        sim.run(until_ns=units.milliseconds(100))
        sender.stop()
        count = len(sent)
        sim.run(until_ns=units.seconds(1))
        assert len(sent) == count

    def test_counters(self, sim):
        sender, _ = self._sender(sim, rate_bps=8_000_000)
        sender.start()
        sim.run(until_ns=units.milliseconds(10))
        assert sender.packets_sent == sender.bytes_sent // 1000

    def test_start_idempotent(self, sim):
        sender, sent = self._sender(sim, rate_bps=8_000_000)
        sender.start()
        sender.start()
        sim.run(until_ns=units.milliseconds(5))
        # The initial burst is exactly 2 packets (burst_bytes = 2 MTU);
        # a double start must not emit it twice.
        assert sum(1 for t in sent if t == 0) == 2

    def test_bad_packet_size_rejected(self, sim):
        with pytest.raises(ValueError):
            PacedSender(sim, 1000, 0, lambda n: None)
