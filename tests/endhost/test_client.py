"""TPP endpoint: send, echo, result decoding, payload delivery."""

import pytest

from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.packet import Datagram, RawPayload


@pytest.fixture
def endpoints(linear_net):
    h0, h1 = linear_net.host("h0"), linear_net.host("h1")
    return linear_net, TPPEndpoint(h0), TPPEndpoint(h1)


class TestProbeEcho:
    def test_response_callback_fires(self, endpoints):
        net, client, _ = endpoints
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        assert len(results) == 1

    def test_echo_marked_done(self, endpoints):
        net, client, responder = endpoints
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        assert results[0].tpp.done
        assert responder.tpps_echoed == 1

    def test_reverse_path_does_not_reexecute(self, endpoints):
        """The echoed TPP crosses the same switches again but collects
        nothing more: exactly one sample set per forward hop."""
        net, client, _ = endpoints
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        assert results[0].hops() == 3
        ids = [words[0] for words in results[0].per_hop_words()]
        assert ids == [1, 2, 3]

    def test_sequence_numbers_route_responses(self, endpoints):
        net, client, _ = endpoints
        got = {}
        program = assemble("PUSH [Switch:SwitchID]")
        for tag in range(4):
            client.send(program, dst_mac=net.host("h1").mac,
                        on_response=lambda r, t=tag: got.setdefault(t, r))
        net.run(until_seconds=0.01)
        assert sorted(got) == [0, 1, 2, 3]
        seqs = {r.seq for r in got.values()}
        assert len(seqs) == 4

    def test_counters(self, endpoints):
        net, client, _ = endpoints
        client.send(assemble("NOP"), dst_mac=net.host("h1").mac)
        net.run(until_seconds=0.01)
        assert client.probes_sent == 1
        assert client.responses_received == 1

    def test_send_without_destination_raises(self, endpoints):
        _, client, _ = endpoints
        with pytest.raises(ValueError):
            client.send(assemble("NOP"))

    def test_default_destination(self, linear_net):
        h0, h1 = linear_net.host("h0"), linear_net.host("h1")
        client = TPPEndpoint(h0, default_dst_mac=h1.mac)
        TPPEndpoint(h1)
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    on_response=results.append)
        linear_net.run(until_seconds=0.01)
        assert len(results) == 1


class TestPayloadDelivery:
    def test_wrapped_datagram_delivered_not_echoed(self, endpoints):
        net, client, responder = endpoints
        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        inner = Datagram(h0.ip, h1.ip, 1, 9, RawPayload(20))
        client.send(assemble("PUSH [Switch:SwitchID]"), dst_mac=h1.mac,
                    payload=inner)
        net.run(until_seconds=0.01)
        assert got == [inner]
        assert responder.tpps_echoed == 0
        assert responder.payloads_delivered == 1

    def test_tap_sees_executed_tpp(self, endpoints):
        net, client, responder = endpoints
        h0, h1 = net.host("h0"), net.host("h1")
        h1.on_udp_port(9, lambda d, f: None)
        seen = []
        responder.add_tap(lambda tpp, frame: seen.append(tpp))
        inner = Datagram(h0.ip, h1.ip, 1, 9, RawPayload(20))
        client.send(assemble("PUSH [Switch:SwitchID]"), dst_mac=h1.mac,
                    payload=inner)
        net.run(until_seconds=0.01)
        assert len(seen) == 1
        assert seen[0].hops_executed() == 3


class TestResultView:
    def test_per_hop_words_multi_stat(self, endpoints):
        net, client, _ = endpoints
        results = []
        client.send(assemble("""
            PUSH [Switch:SwitchID]
            PUSH [Queue:QueueSize]
        """), dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        view = results[0]
        assert view.hops() == 3
        assert all(len(words) == 2 for words in view.per_hop_words())

    def test_hop_words_accessor(self, endpoints):
        net, client, _ = endpoints
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        assert results[0].hop_words(1) == [2]

    def test_stack_words(self, endpoints):
        net, client, _ = endpoints
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        assert results[0].stack_words() == [1, 2, 3]

    def test_word_accessor(self, endpoints):
        net, client, _ = endpoints
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        assert results[0].word(0) == 1

    def test_ok_and_time(self, endpoints):
        net, client, _ = endpoints
        results = []
        client.send(assemble("PUSH [Switch:SwitchID]"),
                    dst_mac=net.host("h1").mac, on_response=results.append)
        net.run(until_seconds=0.01)
        assert results[0].ok
        assert results[0].time_ns > 0
