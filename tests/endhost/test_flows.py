"""Paced flows and receiver accounting."""

import pytest

from repro import units
from repro.endhost.flows import Flow, FlowSink
from repro.net.packet import ETHERTYPE_TPP, EthernetFrame


@pytest.fixture
def flow_pair(single_switch_net):
    net = single_switch_net
    h0, h1 = net.host("h0"), net.host("h1")
    sink = FlowSink(h1, 99)
    flow = Flow(h0, h1, h1.mac, 99, rate_bps=8_000_000, packet_bytes=1000)
    return net, flow, sink


class TestFlow:
    def test_goodput_matches_rate(self, flow_pair):
        net, flow, sink = flow_pair
        flow.start()
        net.run(until_seconds=1.0)
        goodput = sink.goodput_bps(0, units.seconds(1))
        assert goodput == pytest.approx(8_000_000, rel=0.05)

    def test_wire_size_equals_packet_bytes(self, flow_pair):
        net, flow, sink = flow_pair
        flow.start()
        net.run(until_seconds=0.01)
        flow.stop()
        # goodput counts datagram bytes: packet_bytes minus eth overhead
        assert sink.arrivals[0][1] == 1000 - 18

    def test_rate_history_recorded(self, flow_pair):
        net, flow, _ = flow_pair
        flow.start()
        net.run(until_seconds=0.01)
        flow.set_rate(4_000_000)
        assert [rate for _, rate in flow.rate_history] == [
            8_000_000, 4_000_000]

    def test_stop_ceases_traffic(self, flow_pair):
        net, flow, sink = flow_pair
        flow.start()
        net.run(until_seconds=0.1)
        flow.stop()
        count = sink.packets_received
        net.run(until_seconds=0.3)
        assert sink.packets_received <= count + 2  # in-flight stragglers

    def test_counters(self, flow_pair):
        net, flow, sink = flow_pair
        flow.start()
        net.run(until_seconds=0.1)
        assert flow.packets_sent > 0
        assert flow.bytes_sent == flow.packets_sent * 1000

    def test_custom_frame_factory(self, single_switch_net):
        net = single_switch_net
        h0, h1 = net.host("h0"), net.host("h1")
        frames = []

        def factory(flow, packet_bytes):
            frame = EthernetFrame(dst=flow.dst_mac, src=flow.src.mac,
                                  ethertype=ETHERTYPE_TPP,
                                  payload=flow.make_datagram(packet_bytes))
            frames.append(frame)
            return frame

        flow = Flow(h0, h1, h1.mac, 99, rate_bps=8_000_000,
                    frame_factory=factory)
        flow.start()
        net.run(until_seconds=0.01)
        assert frames
        assert all(f.ethertype == ETHERTYPE_TPP for f in frames)


class TestFlowSink:
    def test_goodput_windows(self, flow_pair):
        net, flow, sink = flow_pair
        flow.start()
        net.run(until_seconds=0.5)
        flow.stop()
        net.run(until_seconds=1.0)
        busy = sink.goodput_bps(0, units.seconds(0.5))
        idle = sink.goodput_bps(units.seconds(0.6), units.seconds(1.0))
        assert busy > 0
        assert idle == 0.0

    def test_empty_window(self, flow_pair):
        _, _, sink = flow_pair
        assert sink.goodput_bps(10, 10) == 0.0

    def test_packet_count(self, flow_pair):
        net, flow, sink = flow_pair
        flow.start()
        net.run(until_seconds=0.05)
        assert sink.packets_received == pytest.approx(
            flow.packets_sent, abs=3)
