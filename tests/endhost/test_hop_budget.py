"""Verifier-driven hop budgeting at the endpoint.

Before this existed, ``TPPEndpoint`` trusted the caller's ``.hops``
geometry: a program assembled for 2 hops sent across a 5-switch path
sailed through admission and faulted mid-path (``STACK_OVERFLOW`` in
stack mode, ``MEMORY_BOUNDS`` in hop mode) at hop 2.
The verifier's TPP009 scan already measured the memory's true hop
capacity — these tests pin the endpoint consulting it: ``auto`` mode
transparently grows poolless programs to the configured budget (and
re-verifies the result), ``reject`` mode (and unsound resizes) refuse
the send with a synthetic error-grade TPP009 instead of faulting
mid-path.
"""

import pytest

from repro import units
from repro.core.assembler import assemble
from repro.core.exceptions import FaultCode
from repro.core.verifier import VerificationError
from repro.endhost.client import TPPEndpoint
from repro.endhost.probes import PeriodicProber
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder


def build_net(n_switches, seed=0):
    builder = TopologyBuilder(seed=seed, rate_bps=units.GIGABITS_PER_SEC,
                              delay_ns=1_000)
    net = builder.linear(n_switches=n_switches)
    install_shortest_path_routes(net)
    return net


def small_probe(hops=2):
    """A poolless queue probe whose memory only fits ``hops`` hops."""
    return assemble("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]",
                    hops=hops)


class TestPlanHops:
    def test_reports_memory_capacity(self):
        net = build_net(2)
        endpoint = TPPEndpoint(net.host("h0"))
        assert endpoint.plan_hops(small_probe(hops=3)) == 3

    def test_zero_footprint_is_unbounded(self):
        net = build_net(2)
        endpoint = TPPEndpoint(net.host("h0"))
        program = assemble("CSTORE [Sram:Word0], 30, 111")
        assert endpoint.plan_hops(program) is None


class TestAutoSizing:
    def test_sufficient_program_passes_through_untouched(self):
        net = build_net(2)
        endpoint = TPPEndpoint(net.host("h0"), hop_budget=3)
        program = small_probe(hops=4)
        assert endpoint.budget(program) is program
        assert endpoint.probes_auto_sized == 0

    def test_undersized_program_is_grown_to_budget(self):
        net = build_net(2)
        endpoint = TPPEndpoint(net.host("h0"), hop_budget=6)
        program = small_probe(hops=2)
        resized = endpoint.budget(program)
        assert resized is not program
        assert resized.hops == 6
        assert len(resized.initial_memory) == 6 * program.perhop_len_bytes
        # The resize is confirmed by re-verification, not arithmetic.
        capacity = endpoint.plan_hops(resized)
        assert capacity is None or capacity >= 6
        assert endpoint.probes_auto_sized == 1
        # Memoized: the same template resolves to the same object.
        assert endpoint.budget(program) is resized

    def test_budgeted_probe_survives_the_long_path(self):
        """End to end: a 2-hop allocation across 5 switches faults
        without a budget and completes with one."""
        net = build_net(5)
        h0, h1 = net.host("h0"), net.host("h1")
        bare = TPPEndpoint(h0)
        TPPEndpoint(h1)
        results = []
        bare.send(small_probe(hops=2), dst_mac=h1.mac,
                  on_response=results.append)
        net.run(until_seconds=0.01)
        assert len(results) == 1
        assert results[0].fault == FaultCode.STACK_OVERFLOW

        budgeted = TPPEndpoint(h0, hop_budget=8)
        budgeted.send(small_probe(hops=2), dst_mac=h1.mac,
                      on_response=results.append)
        net.run(until_seconds=0.02)
        assert len(results) == 2
        assert results[1].ok
        assert results[1].hops() == 5
        assert len(results[1].per_hop_words()) == 5

    def test_prober_fires_the_resized_program(self):
        net = build_net(4)
        h0, h1 = net.host("h0"), net.host("h1")
        endpoint = TPPEndpoint(h0, hop_budget=8)
        TPPEndpoint(h1)
        results = []
        prober = PeriodicProber(endpoint, small_probe(hops=2),
                                interval_ns=units.milliseconds(1),
                                on_result=results.append, dst_mac=h1.mac)
        prober.start()
        net.run(until_seconds=0.01)
        prober.stop()
        assert results
        assert all(r.ok and r.hops() == 4 for r in results)


class TestRejection:
    def test_reject_mode_raises_synthetic_tpp009(self):
        net = build_net(2)
        endpoint = TPPEndpoint(net.host("h0"), hop_budget=6,
                               hop_budget_mode="reject")
        with pytest.raises(VerificationError) as excinfo:
            endpoint.send(small_probe(hops=2),
                          dst_mac=net.host("h1").mac)
        result = excinfo.value.result
        assert [d.code for d in result.errors] == ["TPP009"]
        assert result.hop_capacity == 2
        assert endpoint.probes_rejected == 1
        assert endpoint.probes_sent == 0

    def test_pooled_program_cannot_be_auto_sized(self):
        """A literal pool sits where the memory would grow: appending
        stack words would let later hops clobber the constants, so even
        ``auto`` mode must refuse."""
        net = build_net(2)
        endpoint = TPPEndpoint(net.host("h0"), hop_budget=5)
        pooled = assemble(
            "PUSH [Queue:QueueSize]\nCSTORE [Sram:Word0], 30, 111",
            hops=2)
        assert pooled.pool_base_word * pooled.word_size < len(
            pooled.initial_memory)
        with pytest.raises(VerificationError) as excinfo:
            endpoint.budget(pooled)
        assert "unsound" in str(excinfo.value)
        assert endpoint.probes_rejected == 1

    def test_prober_construction_fails_fast(self):
        net = build_net(2)
        h0, h1 = net.host("h0"), net.host("h1")
        endpoint = TPPEndpoint(h0, hop_budget=6, hop_budget_mode="reject")
        with pytest.raises(VerificationError):
            PeriodicProber(endpoint, small_probe(hops=2),
                           interval_ns=units.milliseconds(1),
                           on_result=lambda r: None, dst_mac=h1.mac)

    def test_bad_constructor_arguments(self):
        net = build_net(2)
        with pytest.raises(ValueError):
            TPPEndpoint(net.host("h0"), hop_budget_mode="maybe")
        with pytest.raises(ValueError):
            TPPEndpoint(net.host("h0"), hop_budget=0)
