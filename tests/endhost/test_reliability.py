"""Probe reliability: deadlines, retries, dedup, and defensive parsing."""

import random

import pytest

from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import (
    RetryPolicy,
    TPPEndpoint,
    TPPResultView,
)
from repro.endhost.probes import PeriodicProber
from repro.net.packet import ETHERTYPE_TPP, EthernetFrame


@pytest.fixture
def pair(linear_net):
    h0, h1 = linear_net.host("h0"), linear_net.host("h1")
    return linear_net, TPPEndpoint(h0), TPPEndpoint(h1)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ns=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ns=10, max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ns=10, backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ns=10, jitter_fraction=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ns=10, rtt_multiplier=-1.0)

    def test_exponential_backoff(self):
        policy = RetryPolicy(timeout_ns=100, max_attempts=4, backoff=2.0)
        assert [policy.timeout_for(n) for n in (1, 2, 3)] == [100, 200, 400]

    def test_max_timeout_clamps(self):
        policy = RetryPolicy(timeout_ns=100, max_attempts=5, backoff=2.0,
                             max_timeout_ns=250)
        assert policy.timeout_for(3) == 250

    def test_jitter_spreads_deadlines(self):
        policy = RetryPolicy(timeout_ns=1000, jitter_fraction=0.3)
        rng = random.Random(3)
        timeouts = {policy.timeout_for(1, rng) for _ in range(20)}
        assert len(timeouts) > 5
        assert all(700 <= t <= 1300 for t in timeouts)

    def test_rtt_multiplier_raises_deadline_above_floor(self):
        policy = RetryPolicy(timeout_ns=1000, rtt_multiplier=6.0)
        # No estimate yet: the floor applies.
        assert policy.timeout_for(1) == 1000
        assert policy.timeout_for(1, rtt_ewma_ns=100.0) == 1000
        # Estimate above floor/multiplier: the deadline tracks the path.
        assert policy.timeout_for(1, rtt_ewma_ns=500.0) == 3000


class TestTimeoutAndRetry:
    def test_lost_probe_times_out(self, pair):
        net, client, _ = pair
        h0, h1 = net.host("h0"), net.host("h1")
        h0.ports[0].link.fail()
        expired = []
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    on_timeout=expired.append,
                    retry_policy=RetryPolicy(
                timeout_ns=units.microseconds(50)))
        net.run(until_seconds=0.001)
        assert len(expired) == 1
        assert client.timeouts == 1
        assert client.pending_count == 0

    def test_retry_recovers_from_transient_loss(self, pair):
        net, client, _ = pair
        h0, h1 = net.host("h0"), net.host("h1")
        link = h0.ports[0].link
        link.fail()
        net.sim.schedule(units.microseconds(30), link.restore)
        results, expired = [], []
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    on_response=results.append, on_timeout=expired.append,
                    retry_policy=RetryPolicy(
                        timeout_ns=units.microseconds(50), max_attempts=3))
        net.run(until_seconds=0.001)
        assert len(results) == 1
        assert expired == []
        assert client.retries == 1
        assert client.timeouts == 0

    def test_all_attempts_exhausted(self, pair):
        net, client, _ = pair
        h0, h1 = net.host("h0"), net.host("h1")
        h0.ports[0].link.fail()
        expired = []
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    on_timeout=expired.append,
                    retry_policy=RetryPolicy(
                        timeout_ns=units.microseconds(50), max_attempts=3))
        net.run(until_seconds=0.001)
        assert len(expired) == 1
        assert expired[0].attempts == 3
        assert client.retries == 2
        assert client.timeouts == 1

    def test_late_echo_counted_not_delivered(self, pair):
        net, client, _ = pair
        h1 = net.host("h1")
        results, expired = [], []
        # 1 us deadline vs ~8 us round trip: the echo is alive but late.
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    on_response=results.append, on_timeout=expired.append,
                    retry_policy=RetryPolicy(timeout_ns=1_000))
        net.run(until_seconds=0.001)
        assert results == []
        assert len(expired) == 1
        assert client.late_responses == 1
        assert client.orphan_responses == 0

    def test_late_echo_teaches_the_rtt_estimator(self, pair):
        net, client, _ = pair
        h1 = net.host("h1")
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    retry_policy=RetryPolicy(timeout_ns=1_000))
        net.run(until_seconds=0.001)
        assert client.late_responses == 1
        # The straggler proved the deadline underestimated the path.
        assert client.rtt_ewma_ns > 1_000

    def test_rtt_ewma_tracks_echo_round_trip(self, pair):
        net, client, _ = pair
        h1 = net.host("h1")
        for _ in range(5):
            client.send(assemble("NOP"), dst_mac=h1.mac,
                        on_response=lambda r: None)
            net.run(until_seconds=net.sim.now_seconds + 0.001)
        # Path: 3 links of 1 us propagation each way, plus serialization.
        assert 6_000 < client.rtt_ewma_ns < 20_000

    def test_response_carries_rtt(self, pair):
        net, client, _ = pair
        h1 = net.host("h1")
        results = []
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    on_response=results.append)
        net.run(until_seconds=0.001)
        assert results[0].rtt_ns > 6_000


class TestSequenceWindow:
    def test_stuck_probe_slot_never_reused(self, pair):
        """Regression: an 8-bit counter alone would reassign an in-flight
        seq after 256 sends and cross-wire the straggler's callback."""
        net, client, _ = pair
        h1 = net.host("h1")
        program = assemble("NOP")
        # One probe to a blackholed destination stays pending forever
        # (no deadline), squatting on seq 0.
        stuck = []
        client.send(program, dst_mac=0xDEADBEEF, on_response=stuck.append)
        results = []
        for _ in range(300):
            client.send(program, dst_mac=h1.mac, on_response=results.append)
            net.run(until_seconds=net.sim.now_seconds + 0.001)
        assert len(results) == 300
        assert stuck == []
        assert client.pending_count == 1
        # The wrapped sequence space skipped the occupied slot.
        assert 0 not in {r.seq for r in results}

    def test_duplicate_echo_deduplicated(self, pair):
        net, client, _ = pair
        h0, h1 = net.host("h0"), net.host("h1")
        results = []
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    on_response=results.append)
        net.run(until_seconds=0.001)
        assert len(results) == 1
        # A duplicating link replays the identical echo.
        replay = EthernetFrame(dst=h0.mac, src=h1.mac,
                               ethertype=ETHERTYPE_TPP,
                               payload=results[0].tpp.copy())
        h1.send_frame(replay)
        net.run(until_seconds=0.002)
        assert len(results) == 1
        assert client.duplicate_responses == 1
        assert client.orphan_responses == 0

    def test_echo_from_wrong_host_is_orphaned(self, pair):
        net, client, responder = pair
        h0, h1 = net.host("h0"), net.host("h1")
        responder.echo_probes = False  # the real echo never comes
        results = []
        seq = client.send(assemble("NOP"), dst_mac=h1.mac,
                          on_response=results.append)
        net.run(until_seconds=0.001)
        # A reflected echo with the right seq/task but the wrong source
        # must not consume the record.
        fake = assemble("NOP").build(seq=seq)
        fake.mark_done()
        h1.send_frame(EthernetFrame(dst=h0.mac, src=0x999999,
                                    ethertype=ETHERTYPE_TPP, payload=fake))
        net.run(until_seconds=0.002)
        assert results == []
        assert client.orphan_responses == 1
        assert client.pending_count == 1

    def test_pending_bounded_over_many_lossy_probes(self, pair):
        """Acceptance: >= 10k probes through 30% loss, pending table
        bounded the whole way."""
        net, client, _ = pair
        h0, h1 = net.host("h0"), net.host("h1")
        h0.ports[0].link.set_impairments(loss_rate=0.3)
        program = assemble("NOP")
        results = []
        prober = PeriodicProber(client, program, units.microseconds(20),
                                results.append, dst_mac=h1.mac)
        high_water = [0]
        original = prober._fire

        def watched_fire():
            original()
            high_water[0] = max(high_water[0], client.pending_count)

        prober._fire = watched_fire
        prober.start(first_delay_ns=1)
        net.run(until_seconds=0.25)
        prober.stop()
        assert prober.probes_sent >= 10_000
        assert high_water[0] <= prober.max_outstanding
        assert client.timeouts > 0
        assert prober.loss_rate_estimate == pytest.approx(0.3, rel=0.5)
        net.run(until_seconds=0.3)  # drain stragglers and deadlines
        assert client.pending_count == 0


class TestResultViewDefensiveParsing:
    def executed_result(self, net, client, h1):
        program = assemble(
            "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]", hops=4)
        results = []
        client.send(program, dst_mac=h1.mac, on_response=results.append)
        net.run(until_seconds=0.001)
        assert results
        return results[0]

    def test_intact_trace_parses(self, pair):
        net, client, _ = pair
        result = self.executed_result(net, client, net.host("h1"))
        hops = result.per_hop_words()
        assert len(hops) == 3
        assert all(len(words) == 2 for words in hops)

    def test_truncated_memory_clamps_instead_of_raising(self, pair):
        net, client, _ = pair
        result = self.executed_result(net, client, net.host("h1"))
        # Chop the trace mid-record: only whole surviving records parse.
        del result.tpp.memory[12:]
        assert result.per_hop_words() == [result.hop_words(0)]
        del result.tpp.memory[:]
        assert result.per_hop_words() == []

    def test_ragged_perhop_length_rejected(self, pair):
        net, client, _ = pair
        result = self.executed_result(net, client, net.host("h1"))
        # A bit-flipped header field: per-hop length no longer a whole
        # number of words.
        result.tpp.perhop_len_bytes = 6
        assert result.per_hop_words() == []

    def test_corrupt_stack_pointer_clamped(self, pair):
        net, client, _ = pair
        result = self.executed_result(net, client, net.host("h1"))
        view = TPPResultView(result.tpp)
        view.tpp.hop_or_sp = 60_000  # far beyond the memory
        words = view.stack_words()
        assert len(words) == len(view.tpp.memory) // view.tpp.word_size
        view.tpp.hop_or_sp = 0
        assert view.stack_words() == []
