"""Endpoint admission: static verification before a probe leaves the host.

``verify_mode="enforce"`` refuses to inject unverifiable programs (the
probe never touches the network); ``"warn"`` counts but sends anyway;
``"off"`` (the default) skips the verifier entirely.
"""

import pytest

from repro.analysis.reporting import reliability_report
from repro.core.assembler import assemble
from repro.core.verifier import VerificationError
from repro.endhost.client import TPPEndpoint
from repro.endhost.probes import PeriodicProber

GOOD = "PUSH [Switch:SwitchID]"
BAD = "POP [Sram:Word0]"  # underflows on the first instruction


@pytest.fixture
def net_hosts(linear_net):
    return linear_net, linear_net.host("h0"), linear_net.host("h1")


class TestVerifyModes:
    def test_bad_mode_rejected(self, net_hosts):
        _, h0, _ = net_hosts
        with pytest.raises(ValueError):
            TPPEndpoint(h0, verify_mode="paranoid")

    def test_off_sends_anything(self, net_hosts):
        net, h0, h1 = net_hosts
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        client.send(assemble(BAD), dst_mac=h1.mac)
        assert client.probes_sent == 1
        assert client.probes_rejected == 0

    def test_enforce_rejects_bad_program(self, net_hosts):
        net, h0, h1 = net_hosts
        client = TPPEndpoint(h0, verify_mode="enforce")
        with pytest.raises(VerificationError) as excinfo:
            client.send(assemble(BAD), dst_mac=h1.mac)
        assert "TPP003" in str(excinfo.value)
        assert client.probes_rejected == 1
        assert client.probes_sent == 0

    def test_enforce_passes_good_program(self, net_hosts):
        net, h0, h1 = net_hosts
        client = TPPEndpoint(h0, verify_mode="enforce")
        TPPEndpoint(h1)
        results = []
        client.send(assemble(GOOD), dst_mac=h1.mac,
                    on_response=results.append)
        net.run(until_seconds=0.01)
        assert len(results) == 1
        assert client.probes_rejected == 0

    def test_warn_counts_but_sends(self, net_hosts):
        net, h0, h1 = net_hosts
        client = TPPEndpoint(h0, verify_mode="warn")
        client.send(assemble(BAD), dst_mac=h1.mac)
        assert client.probes_warned == 1
        assert client.probes_rejected == 0
        assert client.probes_sent == 1

    def test_wrap_is_gated_too(self, net_hosts):
        net, h0, h1 = net_hosts
        client = TPPEndpoint(h0, verify_mode="enforce")
        from repro.net.packet import RawPayload
        with pytest.raises(VerificationError):
            client.wrap(assemble(BAD), RawPayload(20), dst_mac=h1.mac)

    def test_admission_memoized_per_program(self, net_hosts):
        net, h0, h1 = net_hosts
        client = TPPEndpoint(h0, verify_mode="enforce")
        TPPEndpoint(h1)
        program = assemble(GOOD)
        for _ in range(5):
            client.send(program, dst_mac=h1.mac)
        first = client.admit(program)
        assert client.admit(program) is first

    def test_admit_exposes_result_without_sending(self, net_hosts):
        _, h0, _ = net_hosts
        client = TPPEndpoint(h0)  # mode off: admit still works on demand
        result = client.admit(assemble(BAD))
        assert not result.ok
        assert client.probes_sent == 0


class TestProberAdmission:
    def test_enforcing_prober_fails_at_construction(self, net_hosts):
        """The prober surfaces the rejection where the experiment is
        built, not on every timer tick."""
        net, h0, h1 = net_hosts
        endpoint = TPPEndpoint(h0, verify_mode="enforce")
        with pytest.raises(VerificationError):
            PeriodicProber(endpoint, assemble(BAD), interval_ns=1_000_000,
                           on_result=lambda r: None, dst_mac=h1.mac)

    def test_enforcing_prober_runs_good_program(self, net_hosts):
        net, h0, h1 = net_hosts
        endpoint = TPPEndpoint(h0, verify_mode="enforce")
        TPPEndpoint(h1)
        results = []
        prober = PeriodicProber(endpoint, assemble(GOOD),
                                interval_ns=1_000_000,
                                on_result=results.append, dst_mac=h1.mac)
        prober.start()
        net.run(until_seconds=0.01)
        prober.stop()
        assert results


class TestReporting:
    def test_rejected_column_in_reliability_report(self, net_hosts):
        net, h0, h1 = net_hosts
        client = TPPEndpoint(h0, verify_mode="enforce")
        with pytest.raises(VerificationError):
            client.send(assemble(BAD), dst_mac=h1.mac)
        report = reliability_report(endpoints=[client])
        assert "rejected" in report
        lines = [line for line in report.splitlines() if "h0" in line]
        assert lines and lines[0].rstrip().endswith("1")
