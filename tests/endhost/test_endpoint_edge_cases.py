"""TPP endpoint edge cases: sequence wrap, stray traffic, trimmed echo."""

import pytest

from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.packet import (
    ETHERTYPE_TPP,
    Datagram,
    EthernetFrame,
    RawPayload,
)


@pytest.fixture
def pair(linear_net):
    h0, h1 = linear_net.host("h0"), linear_net.host("h1")
    return linear_net, TPPEndpoint(h0), TPPEndpoint(h1)


class TestSequenceNumbers:
    def test_seq_wraps_at_256(self, pair):
        net, client, _ = pair
        program = assemble("NOP")
        results = []
        for _ in range(260):
            client.send(program, dst_mac=net.host("h1").mac,
                        on_response=results.append)
            net.run(until_seconds=net.sim.now_seconds + 0.001)
        assert len(results) == 260
        # Sequences wrapped: the 257th probe reused seq 0.
        assert results[256].seq == 0

    def test_interleaved_responses_route_correctly(self, pair):
        net, client, _ = pair
        outcomes = {}
        program = assemble("PUSH [Switch:SwitchID]")
        for tag in range(20):
            client.send(program, dst_mac=net.host("h1").mac,
                        on_response=lambda r, t=tag: outcomes.__setitem__(
                            t, r.seq))
        net.run(until_seconds=0.05)
        # Callback tag i received the response with seq i.
        assert outcomes == {tag: tag for tag in range(20)}


class TestStrayTraffic:
    def test_non_tpp_payload_on_tpp_ethertype_ignored(self, pair):
        net, _, responder = pair
        h0, h1 = net.host("h0"), net.host("h1")
        frame = EthernetFrame(dst=h1.mac, src=h0.mac,
                              ethertype=ETHERTYPE_TPP,
                              payload=RawPayload(64))
        h0.send_frame(frame)
        net.run(until_seconds=0.01)
        assert responder.tpps_echoed == 0

    def test_unsolicited_done_tpp_dropped_quietly(self, pair):
        net, client, _ = pair
        h0, h1 = net.host("h0"), net.host("h1")
        tpp = assemble("NOP").build(seq=99)
        tpp.mark_done()
        h1.tpp = None  # not used; send from h1 toward h0's endpoint
        frame = EthernetFrame(dst=h0.mac, src=h1.mac,
                              ethertype=ETHERTYPE_TPP, payload=tpp)
        h1.send_frame(frame)
        net.run(until_seconds=0.01)
        assert client.responses_received == 1  # counted ...
        # ... but no callback existed for seq 99, so nothing blew up.

    def test_echo_disabled_endpoint(self, linear_net):
        net = linear_net
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        silent = TPPEndpoint(h1, echo_probes=False)
        results = []
        client.send(assemble("NOP"), dst_mac=h1.mac,
                    on_response=results.append)
        net.run(until_seconds=0.02)
        assert results == []
        assert silent.tpps_echoed == 0


class TestTrimmedEcho:
    def test_trimmed_echo_strips_payload(self, pair):
        net, client, responder = pair
        h0, h1 = net.host("h0"), net.host("h1")
        responder.enable_trimmed_echo(task_id=7)
        h1.on_udp_port(9, lambda d, f: None)
        inner = Datagram(h0.ip, h1.ip, 1, 9, RawPayload(500))
        program = assemble("PUSH [Switch:SwitchID]")
        results = []
        tpp = client.wrap(program, payload=inner, task_id=7,
                          on_response=results.append)
        client.send_tpp(tpp, dst_mac=h1.mac)
        net.run(until_seconds=0.02)
        assert len(results) == 1
        assert results[0].tpp.payload is None        # trimmed
        assert results[0].hops() == 3                # samples intact
        assert responder.trimmed_echoes == 1

    def test_other_tasks_not_echoed(self, pair):
        net, client, responder = pair
        h0, h1 = net.host("h0"), net.host("h1")
        responder.enable_trimmed_echo(task_id=7)
        h1.on_udp_port(9, lambda d, f: None)
        inner = Datagram(h0.ip, h1.ip, 1, 9, RawPayload(100))
        results = []
        tpp = client.wrap(assemble("NOP"), payload=inner, task_id=8,
                          on_response=results.append)
        client.send_tpp(tpp, dst_mac=h1.mac)
        net.run(until_seconds=0.02)
        assert results == []
        assert responder.payloads_delivered == 1  # data still flowed
