"""Seeded RNG stream determinism."""

from repro.sim.rng import SeededRNG


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a = SeededRNG(42).stream("workload")
        b = SeededRNG(42).stream("workload")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)]

    def test_different_names_are_decorrelated(self):
        rng = SeededRNG(42)
        a = [rng.stream("a").random() for _ in range(5)]
        b = [rng.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = SeededRNG(1).stream("x").random()
        b = SeededRNG(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        rng = SeededRNG(0)
        assert rng.stream("x") is rng.stream("x")

    def test_creation_order_does_not_matter(self):
        forward = SeededRNG(7)
        forward.stream("first")
        value_forward = forward.stream("second").random()
        backward = SeededRNG(7)
        value_backward = backward.stream("second").random()
        backward.stream("first")
        assert value_forward == value_backward

    def test_reset_replays(self):
        rng = SeededRNG(3)
        first = rng.stream("s").random()
        rng.reset()
        assert rng.stream("s").random() == first
