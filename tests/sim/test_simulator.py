"""Simulator run-loop semantics."""

import pytest

from repro.errors import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now_ns == 0

    def test_callback_sees_advanced_clock(self, sim):
        seen = []
        sim.schedule(500, lambda: seen.append(sim.now_ns))
        sim.run()
        assert seen == [500]

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0, fired.append, "now")
        sim.run()
        assert fired == ["now"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(1234, lambda: seen.append(sim.now_ns))
        sim.run()
        assert seen == [1234]

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_events_can_schedule_events(self, sim):
        seen = []

        def first():
            sim.schedule(10, lambda: seen.append(sim.now_ns))

        sim.schedule(5, first)
        sim.run()
        assert seen == [15]

    def test_args_passed_through(self, sim):
        seen = []
        sim.schedule(1, lambda a, b: seen.append((a, b)), "x", 42)
        sim.run()
        assert seen == [("x", 42)]


class TestRunHorizon:
    def test_until_is_exclusive(self, sim):
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.schedule(200, fired.append, "b")
        sim.run(until_ns=200)
        assert fired == ["a"]

    def test_clock_advances_to_horizon(self, sim):
        sim.run(until_ns=5_000)
        assert sim.now_ns == 5_000

    def test_consecutive_runs_compose(self, sim):
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.schedule(300, fired.append, "b")
        sim.run(until_ns=200)
        sim.run(until_ns=400)
        assert fired == ["a", "b"]
        assert sim.now_ns == 400

    def test_event_at_horizon_fires_next_run(self, sim):
        fired = []
        sim.schedule(200, fired.append, "edge")
        sim.run(until_ns=200)
        assert fired == []
        sim.run(until_ns=201)
        assert fired == ["edge"]

    def test_returns_processed_count(self, sim):
        for _ in range(7):
            sim.schedule(1, lambda: None)
        assert sim.run() == 7
        assert sim.events_processed == 7


class TestStop:
    def test_stop_from_callback(self, sim):
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.schedule(1, first)
        sim.schedule(2, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_run_not_reentrant(self, sim):
        error = []

        def reenter():
            try:
                sim.run()
            except SimulationError:
                error.append(True)

        sim.schedule(1, reenter)
        sim.run()
        assert error == [True]

    def test_now_seconds_view(self, sim):
        sim.run(until_ns=2_500_000_000)
        assert sim.now_seconds == pytest.approx(2.5)
