"""Trace recorder filtering and taps."""

from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_emit_and_filter_by_kind(self):
        trace = TraceRecorder()
        trace.emit(1, "sw0", "queue.drop", port=1)
        trace.emit(2, "sw1", "tpp.exec", seq=5)
        trace.emit(3, "sw0", "tpp.exec", seq=6)
        assert len(trace.records(kind="tpp.exec")) == 2

    def test_filter_by_source(self):
        trace = TraceRecorder()
        trace.emit(1, "sw0", "x")
        trace.emit(2, "sw1", "x")
        assert [r.source for r in trace.records(source="sw0")] == ["sw0"]

    def test_filter_by_kind_and_source(self):
        trace = TraceRecorder()
        trace.emit(1, "sw0", "a")
        trace.emit(2, "sw0", "b")
        trace.emit(3, "sw1", "a")
        records = trace.records(kind="a", source="sw0")
        assert len(records) == 1 and records[0].time_ns == 1

    def test_detail_kwargs_stored(self):
        trace = TraceRecorder()
        trace.emit(5, "h0", "k", foo=1, bar="baz")
        record = trace.records()[0]
        assert record.detail == {"foo": 1, "bar": "baz"}

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.emit(1, "sw0", "x")
        assert len(trace) == 0

    def test_tap_sees_matching_records_live(self):
        trace = TraceRecorder()
        seen = []
        trace.add_tap(seen.append)
        trace.emit(1, "sw0", "x")
        trace.emit(2, "sw0", "y")
        assert [r.kind for r in seen] == ["x", "y"]

    def test_clear_keeps_taps(self):
        trace = TraceRecorder()
        seen = []
        trace.add_tap(seen.append)
        trace.emit(1, "a", "x")
        trace.clear()
        assert len(trace) == 0
        trace.emit(2, "a", "y")
        assert len(seen) == 2

    def test_iter_kind(self):
        trace = TraceRecorder()
        trace.emit(1, "a", "x")
        trace.emit(2, "a", "y")
        trace.emit(3, "a", "x")
        assert [r.time_ns for r in trace.iter_kind("x")] == [1, 3]
