"""Trace recorder filtering, taps, levels, and the bounded ring buffer."""

from repro.sim.trace import TraceLevel, TraceRecorder


class TestTraceRecorder:
    def test_emit_and_filter_by_kind(self):
        trace = TraceRecorder()
        trace.emit(1, "sw0", "queue.drop", port=1)
        trace.emit(2, "sw1", "tpp.exec", seq=5)
        trace.emit(3, "sw0", "tpp.exec", seq=6)
        assert len(trace.records(kind="tpp.exec")) == 2

    def test_filter_by_source(self):
        trace = TraceRecorder()
        trace.emit(1, "sw0", "x")
        trace.emit(2, "sw1", "x")
        assert [r.source for r in trace.records(source="sw0")] == ["sw0"]

    def test_filter_by_kind_and_source(self):
        trace = TraceRecorder()
        trace.emit(1, "sw0", "a")
        trace.emit(2, "sw0", "b")
        trace.emit(3, "sw1", "a")
        records = trace.records(kind="a", source="sw0")
        assert len(records) == 1 and records[0].time_ns == 1

    def test_detail_kwargs_stored(self):
        trace = TraceRecorder()
        trace.emit(5, "h0", "k", foo=1, bar="baz")
        record = trace.records()[0]
        assert record.detail == {"foo": 1, "bar": "baz"}

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.emit(1, "sw0", "x")
        assert len(trace) == 0

    def test_tap_sees_matching_records_live(self):
        trace = TraceRecorder()
        seen = []
        trace.add_tap(seen.append)
        trace.emit(1, "sw0", "x")
        trace.emit(2, "sw0", "y")
        assert [r.kind for r in seen] == ["x", "y"]

    def test_clear_keeps_taps(self):
        trace = TraceRecorder()
        seen = []
        trace.add_tap(seen.append)
        trace.emit(1, "a", "x")
        trace.clear()
        assert len(trace) == 0
        trace.emit(2, "a", "y")
        assert len(seen) == 2

    def test_iter_kind(self):
        trace = TraceRecorder()
        trace.emit(1, "a", "x")
        trace.emit(2, "a", "y")
        trace.emit(3, "a", "x")
        assert [r.time_ns for r in trace.iter_kind("x")] == [1, 3]


class TestTraceLevels:
    def test_debug_kinds_are_off_by_default(self):
        trace = TraceRecorder()  # default threshold: INFO
        trace.emit(1, "sw0", "link.deliver", frame_uid=1)
        trace.emit(2, "sw0", "tpp.exec", seq=1)
        assert [r.kind for r in trace.records()] == ["tpp.exec"]

    def test_wants_guards_the_hot_path(self):
        trace = TraceRecorder()
        assert not trace.wants("link.deliver")
        assert trace.wants("tpp.exec")
        assert trace.wants("queue.drop")
        assert not TraceRecorder(enabled=False).wants("queue.drop")

    def test_set_level_opens_the_firehose(self):
        trace = TraceRecorder()
        trace.set_level(TraceLevel.DEBUG)
        assert trace.wants("link.deliver")
        trace.emit(1, "sw0", "link.deliver", frame_uid=1)
        assert len(trace) == 1

    def test_warning_threshold_keeps_only_drops(self):
        trace = TraceRecorder(level=TraceLevel.WARNING)
        trace.emit(1, "sw0", "tpp.exec", seq=1)
        trace.emit(2, "sw0", "queue.drop", port=0)
        assert [r.kind for r in trace.records()] == ["queue.drop"]

    def test_unknown_kinds_default_to_info(self):
        trace = TraceRecorder()
        trace.emit(1, "sw0", "my.custom.kind", value=1)
        assert len(trace) == 1

    def test_set_kind_level_registers_new_kind(self):
        trace = TraceRecorder()
        trace.set_kind_level("my.firehose", TraceLevel.DEBUG)
        assert not trace.wants("my.firehose")
        trace.set_level(TraceLevel.DEBUG)
        assert trace.wants("my.firehose")

    def test_level_change_invalidates_wants_cache(self):
        trace = TraceRecorder()
        assert not trace.wants("link.deliver")  # populates the cache
        trace.set_level(TraceLevel.DEBUG)
        assert trace.wants("link.deliver")

    def test_taps_do_not_see_suppressed_records(self):
        trace = TraceRecorder(level=TraceLevel.WARNING)
        seen = []
        trace.add_tap(seen.append)
        trace.emit(1, "sw0", "tpp.exec", seq=1)
        trace.emit(2, "sw0", "queue.drop", port=0)
        assert [r.kind for r in seen] == ["queue.drop"]


class TestRingBuffer:
    def test_bounded_mode_keeps_most_recent(self):
        trace = TraceRecorder(max_records=3)
        for i in range(5):
            trace.emit(i, "sw0", "x", i=i)
        assert len(trace) == 3
        assert [r.time_ns for r in trace.records()] == [2, 3, 4]
        assert trace.records_emitted == 5
        assert trace.records_dropped == 2

    def test_taps_see_evicted_records_live(self):
        trace = TraceRecorder(max_records=1)
        seen = []
        trace.add_tap(seen.append)
        for i in range(4):
            trace.emit(i, "sw0", "x")
        assert len(seen) == 4
        assert len(trace) == 1

    def test_unbounded_mode_never_drops(self):
        trace = TraceRecorder()
        for i in range(100):
            trace.emit(i, "sw0", "x")
        assert trace.records_dropped == 0
        assert len(trace) == 100
