"""One-shot and periodic timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.timers import OneShotTimer, PeriodicTimer


class TestOneShotTimer:
    def test_fires_once(self, sim):
        fired = []
        timer = OneShotTimer(sim, fired.append, "tick")
        timer.start(100)
        sim.run()
        assert fired == ["tick"]

    def test_restart_supersedes_pending(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now_ns))
        timer.start(100)
        timer.start(500)
        sim.run()
        assert fired == [500]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = OneShotTimer(sim, fired.append, 1)
        timer.start(100)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_reflects_state(self, sim):
        timer = OneShotTimer(sim, lambda: None)
        assert not timer.armed
        timer.start(100)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_can_rearm_from_callback(self, sim):
        times = []

        def tick():
            times.append(sim.now_ns)
            if len(times) < 3:
                timer.start(10)

        timer = OneShotTimer(sim, tick)
        timer.start(10)
        sim.run()
        assert times == [10, 20, 30]


class TestPeriodicTimer:
    def test_fires_every_interval(self, sim):
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now_ns))
        timer.start()
        sim.run(until_ns=450)
        assert times == [100, 200, 300, 400]

    def test_first_delay_override(self, sim):
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now_ns))
        timer.start(first_delay_ns=10)
        sim.run(until_ns=250)
        assert times == [10, 110, 210]

    def test_stop_from_callback(self, sim):
        times = []

        def tick():
            times.append(sim.now_ns)
            if len(times) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 50, tick)
        timer.start()
        sim.run(until_ns=1_000)
        assert times == [50, 100]

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0, lambda: None)

    def test_fire_count(self, sim):
        timer = PeriodicTimer(sim, 10, lambda: None)
        timer.start()
        sim.run(until_ns=55)
        assert timer.fire_count == 5

    def test_running_property(self, sim):
        timer = PeriodicTimer(sim, 10, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running

    def test_restart_resets_phase(self, sim):
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now_ns))
        timer.start()
        sim.run(until_ns=150)
        timer.start()  # re-phase at t=150
        sim.run(until_ns=400)
        assert times == [100, 250, 350]
