"""One-shot and periodic timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.timers import OneShotTimer, PeriodicTimer


class TestOneShotTimer:
    def test_fires_once(self, sim):
        fired = []
        timer = OneShotTimer(sim, fired.append, "tick")
        timer.start(100)
        sim.run()
        assert fired == ["tick"]

    def test_restart_supersedes_pending(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now_ns))
        timer.start(100)
        timer.start(500)
        sim.run()
        assert fired == [500]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = OneShotTimer(sim, fired.append, 1)
        timer.start(100)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_reflects_state(self, sim):
        timer = OneShotTimer(sim, lambda: None)
        assert not timer.armed
        timer.start(100)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_can_rearm_from_callback(self, sim):
        times = []

        def tick():
            times.append(sim.now_ns)
            if len(times) < 3:
                timer.start(10)

        timer = OneShotTimer(sim, tick)
        timer.start(10)
        sim.run()
        assert times == [10, 20, 30]


class TestPeriodicTimer:
    def test_fires_every_interval(self, sim):
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now_ns))
        timer.start()
        sim.run(until_ns=450)
        assert times == [100, 200, 300, 400]

    def test_first_delay_override(self, sim):
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now_ns))
        timer.start(first_delay_ns=10)
        sim.run(until_ns=250)
        assert times == [10, 110, 210]

    def test_stop_from_callback(self, sim):
        times = []

        def tick():
            times.append(sim.now_ns)
            if len(times) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 50, tick)
        timer.start()
        sim.run(until_ns=1_000)
        assert times == [50, 100]

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0, lambda: None)

    def test_fire_count(self, sim):
        timer = PeriodicTimer(sim, 10, lambda: None)
        timer.start()
        sim.run(until_ns=55)
        assert timer.fire_count == 5

    def test_running_property(self, sim):
        timer = PeriodicTimer(sim, 10, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running

    def test_restart_resets_phase(self, sim):
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now_ns))
        timer.start()
        sim.run(until_ns=150)
        timer.start()  # re-phase at t=150
        sim.run(until_ns=400)
        assert times == [100, 250, 350]


class TestSameInstantCancelRearm:
    """Regression: cancel() + start() at the timer's own firing instant.

    The cancelled event is lazily deleted from the heap; its deletion must
    not fire the callback, flip ``armed``/``running``, or linger in
    ``pending_events()`` (which counts live events only).
    """

    def test_cancel_before_fire_suppresses_old_firing(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now_ns))

        def meddle():
            timer.cancel()
            timer.start(0)
            assert timer.armed
            # The superseded event is a cancelled straggler, not pending.
            assert sim.pending_events() == 1
            assert sim.cancelled_pending() == 1

        # meddle is scheduled FIRST, so at t=100 it runs before the
        # timer's own event: the old firing must be suppressed.
        sim.schedule(100, meddle)
        timer.start(100)
        sim.run()
        assert fired == [100]
        assert not timer.armed
        assert sim.pending_events() == 0
        assert sim.cancelled_pending() == 0

    def test_cancel_after_fire_is_noop_and_rearm_fires_again(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now_ns))

        def meddle():
            timer.cancel()  # no-op: the timer already fired this instant
            timer.start(0)

        # Timer scheduled FIRST: FIFO order within the instant means it
        # fires before meddle runs, so the re-arm fires a second time.
        timer.start(100)
        sim.schedule(100, meddle)
        sim.run()
        assert fired == [100, 100]
        assert not timer.armed

    def test_rearm_same_instant_fires_after_other_events(self, sim):
        order = []
        timer = OneShotTimer(sim, lambda: order.append("timer"))

        def meddle():
            order.append("meddle")
            timer.cancel()
            timer.start(0)

        sim.schedule(100, meddle)
        timer.start(100)
        sim.schedule(100, lambda: order.append("bystander"))
        sim.run()
        # The re-armed event gets a fresh sequence number: it fires after
        # every event already scheduled for this instant.
        assert order == ["meddle", "bystander", "timer"]

    def test_periodic_stop_start_same_instant_single_tick(self, sim):
        times = []
        timer = PeriodicTimer(sim, 100, lambda: times.append(sim.now_ns))

        def meddle():
            timer.stop()
            timer.start()  # re-phase exactly at the pending tick's time
            assert timer.running

        sim.schedule(100, meddle)
        timer.start()
        sim.run(until_ns=450)
        # The t=100 tick was superseded; ticks resume at 200 on the new
        # phase with no double-fire and no straggler accumulation.
        assert times == [200, 300, 400]
        assert timer.running
        assert sim.cancelled_pending() == 0

    def test_armed_agrees_with_live_pending_through_churn(self, sim):
        timer = OneShotTimer(sim, lambda: None)
        for _ in range(50):
            timer.start(1_000)  # each restart cancels the previous event
        assert timer.armed
        assert sim.pending_events() == 1
        sim.run()
        assert not timer.armed
        assert sim.pending_events() == 0
