"""Event queue ordering and cancellation semantics."""

from repro.sim.events import Event, EventQueue


class TestEventOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(300, fired.append, (3,))
        queue.push(100, fired.append, (1,))
        queue.push(200, fired.append, (2,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == [1, 2, 3]

    def test_ties_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for tag in range(10):
            queue.push(50, fired.append, (tag,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == list(range(10))

    def test_peek_time_matches_next_pop(self):
        queue = EventQueue()
        queue.push(70, lambda: None)
        queue.push(30, lambda: None)
        assert queue.peek_time() == 30
        event = queue.pop()
        assert event is not None and event.time_ns == 30

    def test_len_counts_pending(self):
        queue = EventQueue()
        assert len(queue) == 0
        queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        assert len(queue) == 2


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = Event(0, 0, fired.append, (1,))
        event.cancel()
        event.fire()
        assert fired == []

    def test_cancel_is_idempotent(self):
        event = Event(0, 0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pop_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(10, lambda: None)
        queue.push(20, lambda: None)
        first.cancel()
        event = queue.pop()
        assert event is not None and event.time_ns == 20

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(10, lambda: None)
        queue.push(25, lambda: None)
        first.cancel()
        assert queue.peek_time() == 25

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestLiveAccounting:
    def test_cancelled_pending_counts_stragglers(self):
        queue = EventQueue()
        events = [queue.push(i, lambda: None) for i in range(5)]
        events[1].cancel()
        events[3].cancel()
        assert queue.cancelled_pending == 2
        assert queue.live_count == 3
        assert len(queue) == 5  # raw heap entries still include stragglers

    def test_pop_of_cancelled_decrements_counter(self):
        queue = EventQueue()
        first = queue.push(10, lambda: None)
        queue.push(20, lambda: None)
        first.cancel()
        assert queue.cancelled_pending == 1
        queue.pop()  # skips and purges the straggler
        assert queue.cancelled_pending == 0

    def test_cancel_is_counted_once(self):
        queue = EventQueue()
        event = queue.push(10, lambda: None)
        event.cancel()
        event.cancel()
        assert queue.cancelled_pending == 1

    def test_stale_cancel_after_pop_does_not_skew_counter(self):
        queue = EventQueue()
        event = queue.push(10, lambda: None)
        assert queue.pop() is event
        event.cancel()  # handle outlived its heap entry
        assert queue.cancelled_pending == 0
        assert queue.live_count == 0


class TestCompaction:
    def test_explicit_compact_purges_stragglers(self):
        queue = EventQueue()
        events = [queue.push(i, lambda: None) for i in range(10)]
        for event in events[:6]:
            event.cancel()
        purged = queue.compact()
        assert purged == 6
        assert len(queue) == 4
        assert queue.cancelled_pending == 0
        assert queue.compactions == 1

    def test_compact_preserves_firing_order(self):
        queue = EventQueue()
        fired = []
        keep = []
        for tag in range(20):
            event = queue.push(100 - tag // 2, fired.append, (tag,))
            if tag % 3:
                keep.append(tag)
            else:
                event.cancel()
        queue.compact()
        while (event := queue.pop()) is not None:
            event.fire()
        expected = sorted(keep, key=lambda tag: (100 - tag // 2, tag))
        assert fired == expected

    def test_auto_compaction_bounds_stragglers(self):
        queue = EventQueue(compact_min_cancelled=8, compact_fraction=0.5)
        live = queue.push(1_000_000, lambda: None)
        stale = [queue.push(i, lambda: None) for i in range(100)]
        for event in stale:
            event.cancel()
        # Cancellation churn must have triggered compaction rather than
        # letting 100 stragglers accumulate behind one live event.
        assert queue.compactions >= 1
        assert queue.cancelled_pending <= 8 + 1
        assert queue.live_count == 1
        assert not live.cancelled

    def test_compact_empty_is_noop(self):
        queue = EventQueue()
        assert queue.compact() == 0
        assert queue.compactions == 0

    def test_pop_before_horizon(self):
        queue = EventQueue()
        queue.push(10, lambda: None)
        queue.push(20, lambda: None)
        event = queue.pop_before(15)
        assert event is not None and event.time_ns == 10
        assert queue.pop_before(15) is None
        assert len(queue) == 1  # the t=20 event stayed queued
