"""Event queue ordering and cancellation semantics."""

from repro.sim.events import Event, EventQueue


class TestEventOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(300, fired.append, (3,))
        queue.push(100, fired.append, (1,))
        queue.push(200, fired.append, (2,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == [1, 2, 3]

    def test_ties_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for tag in range(10):
            queue.push(50, fired.append, (tag,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == list(range(10))

    def test_peek_time_matches_next_pop(self):
        queue = EventQueue()
        queue.push(70, lambda: None)
        queue.push(30, lambda: None)
        assert queue.peek_time() == 30
        event = queue.pop()
        assert event is not None and event.time_ns == 30

    def test_len_counts_pending(self):
        queue = EventQueue()
        assert len(queue) == 0
        queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        assert len(queue) == 2


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = Event(0, 0, fired.append, (1,))
        event.cancel()
        event.fire()
        assert fired == []

    def test_cancel_is_idempotent(self):
        event = Event(0, 0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pop_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(10, lambda: None)
        queue.push(20, lambda: None)
        first.cancel()
        event = queue.pop()
        assert event is not None and event.time_ns == 20

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(10, lambda: None)
        queue.push(25, lambda: None)
        first.cancel()
        assert queue.peek_time() == 25

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None
