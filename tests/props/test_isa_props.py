"""Property tests: instruction encoding is a bijection on valid inputs."""

from hypothesis import given, strategies as st

from repro.core.isa import (
    Instruction,
    Opcode,
    decode_program,
    encode_program,
)

instructions = st.builds(
    Instruction,
    opcode=st.sampled_from(list(Opcode)),
    addr=st.integers(min_value=0, max_value=0xFFFF),
    offset=st.integers(min_value=0, max_value=0xFF),
)


class TestEncodingProperties:
    @given(instructions)
    def test_round_trip(self, instruction):
        assert Instruction.decode(instruction.encode()) == instruction

    @given(instructions)
    def test_always_four_bytes(self, instruction):
        assert len(instruction.encode()) == 4

    @given(st.lists(instructions, max_size=32))
    def test_program_round_trip(self, program):
        assert decode_program(encode_program(program)) == program

    @given(st.lists(instructions, max_size=32))
    def test_program_length(self, program):
        assert len(encode_program(program)) == 4 * len(program)

    @given(instructions, instructions)
    def test_distinct_instructions_distinct_bytes(self, a, b):
        if a != b:
            assert a.encode() != b.encode()
