"""Property suite: sketch accuracy contracts on the live pipeline.

Every trace runs end to end — generated update TPPs executed by a real
TCPU against a real MMU, decoded from the resulting SRAM image — and is
scored against an exact dict ground truth:

- count-min estimates are **overestimate-only** (a hard per-query
  invariant: counters only ever add), and exceed the truth by more
  than ``ε·N`` with frequency at most ``δ`` (the (ε, δ) contract,
  checked in aggregate over the seeded sweep);
- distinct-count estimates land within the HLL standard-error budget
  (per-trace at four sigma, in aggregate near one);
- heavy-hitter candidate tables recover every flow whose claim slot
  was not stolen first.

The seeded sweep covers the acceptance bar (>= 200 traces); the
hypothesis properties re-run the same oracle on arbitrary seeds, so a
failure shrinks to — and prints — the smallest offending trace seed.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.sketch import (
    CountMinDecoder,
    DistinctCountDecoder,
    HeavyHitterDecoder,
    image_from_mmu,
)
from repro.asic.metadata import PacketMetadata
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU
from repro.telemetry import (
    CountMinLayout,
    DistinctCountLayout,
    HeavyHitterLayout,
    build_count_min_update,
    build_distinct_update,
    build_heavy_hitter_update,
    read_sketch,
)

#: Acceptance bar: >= 200 randomized traces through the live pipeline.
N_TRACES = 220

#: The sweep's count-min geometry: eps = e/8 ~ 0.34, delta = e^-3 ~ 0.05.
CM = CountMinLayout(base_word=0, width=8, depth=3)
#: Register file for the distinct-count sweep: sigma = 1.04/sqrt(32).
HLL = DistinctCountLayout(base_word=64, m=32)


class FakeQueue:
    occupancy_bytes = 500


class FakePort:
    index = 0
    queue = FakeQueue()


def make_ctx():
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000)


def make_tcpu():
    """Sketch SRAM starts zeroed (MMU default), nothing else bound —
    update programs touch only SRAM."""
    return TCPU(MMU(name="sketch-acc"), max_instructions=8,
                race_mode="off")


def execute(tcpu, update):
    report = tcpu.execute(update.build(), make_ctx())
    assert report.ok, f"sketch update faulted: {report.fault}"


def random_trace(seed, max_keys=24, max_count=60):
    """Seeded flow trace: key -> exact count (the dict ground truth)."""
    rng = random.Random(seed)
    n_keys = rng.randint(2, max_keys)
    keys = rng.sample(range(1, 1_000_000), n_keys)
    return {key: rng.randint(1, max_count) for key in keys}


def run_count_min_trace(seed):
    """Play one trace through update TPPs; return (truth, image).

    Each key's whole count rides one update program (``delta=count``) —
    the weighted-update form of the sketch, bit-identical in SRAM to
    ``count`` unit updates and linear in keys instead of packets.
    """
    truth = random_trace(seed)
    tcpu = make_tcpu()
    for key, count in truth.items():
        execute(tcpu, build_count_min_update(CM, key, delta=count))
    return truth, image_from_mmu(tcpu.mmu, CM.words())


def count_min_violations(truth, image):
    """Per-trace oracle: overestimate-only is hard, the εN bound is
    counted (its failure probability is what δ budgets)."""
    decoder = CountMinDecoder(CM)
    total = sum(truth.values())
    assert decoder.row_sum(image) == total
    over_bound = 0
    for key, exact in truth.items():
        estimate = decoder.raw_estimate(image, key)
        assert estimate >= exact, (
            f"underestimate for key {key} (trace seed in test id): "
            f"{estimate} < {exact}")
        if estimate - exact > CM.error_bound(total):
            over_bound += 1
    return over_bound, len(truth)


class TestCountMinSweep:
    def test_bounds_hold_over_seeded_traces(self):
        """The (ε, δ) acceptance sweep: overestimate-only everywhere,
        εN exceeded with aggregate frequency <= δ."""
        queries = 0
        violations = 0
        for seed in range(N_TRACES):
            truth, image = run_count_min_trace(seed)
            over, n = count_min_violations(truth, image)
            violations += over
            queries += n
        assert queries >= 200 * 2
        assert violations <= CM.delta * queries, (
            f"εN bound violated on {violations}/{queries} queries; "
            f"budget is δ={CM.delta:.4f}")

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_overestimate_only_property(self, seed):
        """Shrinkable form: any failure minimizes and prints ``seed``."""
        truth, image = run_count_min_trace(seed)
        decoder = CountMinDecoder(CM)
        for key, exact in truth.items():
            estimate = decoder.raw_estimate(image, key)
            assert estimate >= exact, (
                f"trace seed {seed}: key {key} underestimated "
                f"({estimate} < {exact})")

    def test_estimate_carries_the_contract(self):
        truth, image = run_count_min_trace(7)
        total = sum(truth.values())
        key = next(iter(truth))
        est = CountMinDecoder(CM).estimate(image, key)
        assert est.error_bound == CM.epsilon * total
        assert est.confidence == 1.0 - CM.delta


def run_distinct_trace(seed, max_cardinality=400):
    rng = random.Random(seed)
    cardinality = rng.randint(1, max_cardinality)
    keys = rng.sample(range(1, 10_000_000), cardinality)
    tcpu = make_tcpu()
    for key in keys:
        execute(tcpu, build_distinct_update(HLL, key))
    # Duplicates must be no-ops (MAX is idempotent).
    for key in keys[:3]:
        execute(tcpu, build_distinct_update(HLL, key))
    return cardinality, image_from_mmu(tcpu.mmu, HLL.words())


class TestDistinctCountSweep:
    #: Traces in the (slower: one TPP per distinct key) HLL sweep.
    N_HLL_TRACES = 60
    #: Per-trace tolerance: four sigma relative, plus a small absolute
    #: floor so tiny cardinalities (where "relative" degenerates) pass.
    SIGMAS = 4.0
    ABS_SLACK = 3.0

    def _check(self, cardinality, image, seed):
        estimate = DistinctCountDecoder(HLL).estimate(image)
        budget = (self.SIGMAS * HLL.standard_error * cardinality
                  + self.ABS_SLACK)
        assert abs(estimate - cardinality) <= budget, (
            f"trace seed {seed}: |{estimate:.1f} - {cardinality}| "
            f"> {budget:.1f}")
        return abs(estimate - cardinality) / max(cardinality, 1)

    def test_estimates_within_standard_error_budget(self):
        relative_errors = []
        for seed in range(self.N_HLL_TRACES):
            cardinality, image = run_distinct_trace(seed)
            relative_errors.append(self._check(cardinality, image, seed))
        mean = sum(relative_errors) / len(relative_errors)
        # In aggregate the estimator must behave like its analysis
        # says: mean relative error around one sigma, not four.
        assert mean <= 1.5 * HLL.standard_error, (
            f"mean relative error {mean:.3f} exceeds "
            f"1.5*sigma = {1.5 * HLL.standard_error:.3f}")

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_bounded_error_property(self, seed):
        cardinality, image = run_distinct_trace(seed, max_cardinality=150)
        self._check(cardinality, image, seed)


class TestHeavyHitterRecovery:
    LAYOUT = HeavyHitterLayout(base_word=128, width=16, depth=3,
                               n_slots=8)

    def test_unstolen_candidates_are_recovered_exactly(self):
        rng = random.Random(11)
        truth = {}
        tcpu = make_tcpu()
        claimed = {}
        for key in rng.sample(range(1, 100000), 12):
            count = rng.randint(1, 40)
            truth[key] = count
            execute(tcpu, build_heavy_hitter_update(self.LAYOUT, key,
                                                    delta=count))
            claimed.setdefault(self.LAYOUT.slot_word(key), key)
        image = image_from_mmu(tcpu.mmu, self.LAYOUT.words())
        decoder = HeavyHitterDecoder(self.LAYOUT)
        # Exactly the slot winners are reported...
        assert set(decoder.candidates(image)) == set(claimed.values())
        # ...and every reported estimate honors overestimate-only.
        for hitter in decoder.report(image):
            assert hitter.estimate >= truth[hitter.key]

    def test_probe_tpp_snapshot_matches_control_plane(self):
        """The data-plane read path (probe TPPs) and the control-plane
        shortcut must produce the same image, hence same estimates."""
        tcpu = make_tcpu()
        for key, count in [(42, 9), (7, 4)]:
            execute(tcpu, build_heavy_hitter_update(self.LAYOUT, key,
                                                    delta=count))
        words = list(self.LAYOUT.words())
        via_probes = read_sketch(tcpu, words, make_ctx)
        assert via_probes == image_from_mmu(tcpu.mmu, words)
        report = HeavyHitterDecoder(self.LAYOUT).report(via_probes)
        assert [(h.key, h.estimate) for h in report] == [(42, 9), (7, 4)]