"""Property tests: event-queue determinism under schedule/cancel/compact.

Two contracts the whole reproduction rests on:

- firing order is exactly ``(time_ns, sequence)`` over the events that are
  live at fire time, no matter how schedule/cancel/compact operations
  interleave (compaction must be invisible);
- clock-advance composition: ``run(t1); run(t2)`` is indistinguishable
  from ``run(t2)`` (same firings, same order, same final clock).
"""

from hypothesis import given, settings, strategies as st

from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator

times = st.integers(min_value=0, max_value=1_000)

#: An op is (kind, value): schedule at a time, cancel the i-th scheduled
#: event (index modulo the count so far), or compact the heap explicitly.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), times),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("compact"), st.just(0)),
    ),
    max_size=120,
)


class TestFiringOrder:
    @given(operations)
    def test_schedule_cancel_compact_preserves_order(self, ops):
        queue = EventQueue(compact_min_cancelled=4, compact_fraction=0.25)
        fired = []
        handles = []
        for kind, value in ops:
            if kind == "schedule":
                tag = len(handles)
                handles.append(queue.push(value, fired.append, (tag,)))
            elif kind == "cancel" and handles:
                handles[value % len(handles)].cancel()
            elif kind == "compact":
                queue.compact()

        while (event := queue.pop()) is not None:
            event.fire()

        live = [(handle.time_ns, handle.sequence, tag)
                for tag, handle in enumerate(handles)
                if not handle.cancelled]
        expected = [tag for _, _, tag in sorted(live)]
        assert fired == expected

    @given(operations)
    def test_live_accounting_is_exact(self, ops):
        queue = EventQueue(compact_min_cancelled=4, compact_fraction=0.25)
        handles = []
        for kind, value in ops:
            if kind == "schedule":
                handles.append(queue.push(value, lambda: None))
            elif kind == "cancel" and handles:
                handles[value % len(handles)].cancel()
            elif kind == "compact":
                queue.compact()
            live = sum(1 for handle in handles if not handle.cancelled)
            assert queue.live_count == live
            assert len(queue) - queue.cancelled_pending == live


class TestRunComposition:
    @given(
        st.lists(st.tuples(times, st.booleans()), max_size=40),
        times,
        times,
    )
    @settings(max_examples=60)
    def test_split_run_equals_single_run(self, schedule, t1, t2):
        """run(t1); run(t2) == run(t2) for any t1 <= t2."""
        t1, t2 = min(t1, t2), max(t1, t2) + 1

        def drive(split):
            sim = Simulator()
            fired = []
            for time_ns, cancel_it in schedule:
                event = sim.schedule(time_ns,
                                     lambda t=time_ns: fired.append(t))
                if cancel_it:
                    event.cancel()
            if split:
                sim.run(until_ns=t1)
                sim.run(until_ns=t2)
            else:
                sim.run(until_ns=t2)
            return fired, sim.now_ns, sim.pending_events()

        assert drive(split=True) == drive(split=False)
