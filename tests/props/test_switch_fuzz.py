"""Fuzz the whole switch pipeline with arbitrary TPPs.

Whatever program a (possibly hostile) end-host injects, the network must
keep forwarding: no switch may crash, read-only state must stay intact,
and non-TPP traffic must be unaffected.  This is the §4 threat model
exercised at the packet level.
"""

from hypothesis import given, settings, strategies as st

from repro import quickstart_network
from repro.core.isa import Instruction, Opcode
from repro.core.tpp import AddressingMode, TPPSection
from repro.net.packet import ETHERTYPE_TPP, EthernetFrame

instructions = st.builds(
    Instruction,
    opcode=st.sampled_from(list(Opcode)),
    addr=st.integers(min_value=0, max_value=0xFFFF),
    offset=st.integers(min_value=0, max_value=0xFF),
)

tpps = st.builds(
    TPPSection,
    instructions=st.lists(instructions, max_size=5),
    memory=st.integers(min_value=0, max_value=16).map(
        lambda words: bytearray(4 * words)),
    mode=st.sampled_from(list(AddressingMode)),
    word_size=st.sampled_from([4, 8]),
    hop_or_sp=st.integers(min_value=0, max_value=128),
    perhop_len_bytes=st.integers(min_value=0, max_value=8).map(
        lambda words: 4 * words),
    task_id=st.integers(min_value=0, max_value=255),
)


class TestSwitchFuzz:
    @settings(max_examples=120, deadline=None)
    @given(tpps)
    def test_arbitrary_tpps_never_break_forwarding(self, tpp):
        net = quickstart_network(n_switches=2, stats_interval_ns=None)
        h0, h1 = net.host("h0"), net.host("h1")
        received = []
        h0.tpp.add_tap(lambda t, f: None)
        h1.tpp.add_tap(lambda t, f: received.append(t))

        frame = EthernetFrame(dst=h1.mac, src=h0.mac,
                              ethertype=ETHERTYPE_TPP, payload=tpp)
        h0.send_frame(frame)
        net.run(until_seconds=0.01)

        # The packet was forwarded (or, if done-flagged, echo-dropped at
        # the endpoint) and both switches survived.
        for name in ("sw0", "sw1"):
            switch = net.switch(name)
            assert switch.packets_switched >= 1
            # Critical invariant: read-only state cannot have changed.
            assert switch.switch_id == int(name[-1]) + 1
            assert len(switch.l2) == 2

    @settings(max_examples=60, deadline=None)
    @given(tpps)
    def test_arbitrary_tpps_do_not_affect_bystanders(self, tpp):
        from repro.net.packet import Datagram, RawPayload

        net = quickstart_network(n_switches=2, stats_interval_ns=None)
        h0, h1 = net.host("h0"), net.host("h1")
        delivered = []
        h1.on_udp_port(9, lambda d, f: delivered.append(d))

        h0.send_frame(EthernetFrame(dst=h1.mac, src=h0.mac,
                                    ethertype=ETHERTYPE_TPP, payload=tpp))
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(64)))
        net.run(until_seconds=0.01)
        assert len(delivered) == 1
