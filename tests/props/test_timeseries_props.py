"""Property tests: TimeSeries transforms preserve basic invariants."""

from hypothesis import given, strategies as st

from repro.analysis.convergence import jain_fairness
from repro.analysis.timeseries import TimeSeries

sample_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**9),
              st.floats(min_value=-1e9, max_value=1e9,
                        allow_nan=False, allow_infinity=False)),
    max_size=50,
).map(lambda pairs: sorted(pairs, key=lambda p: p[0]))


def series_of(pairs):
    series = TimeSeries()
    for t, v in pairs:
        series.append(t, v)
    return series


class TestSeriesProperties:
    @given(sample_lists)
    def test_window_subset(self, pairs):
        series = series_of(pairs)
        if not pairs:
            return
        lo = pairs[0][0]
        hi = pairs[-1][0] + 1
        window = series.window(lo, hi)
        assert len(window) == len(series)

    @given(sample_lists)
    def test_mean_bounded_by_extremes(self, pairs):
        series = series_of(pairs)
        if len(series) == 0:
            return
        assert series.min() - 1e-6 <= series.mean() <= series.max() + 1e-6

    @given(sample_lists, st.floats(min_value=0.01, max_value=1.0))
    def test_ewma_bounded_by_extremes(self, pairs, alpha):
        series = series_of(pairs)
        if len(series) == 0:
            return
        smoothed = series.ewma(alpha)
        assert smoothed.min() >= series.min() - 1e-6
        assert smoothed.max() <= series.max() + 1e-6

    @given(sample_lists, st.integers(min_value=1, max_value=10**8))
    def test_resample_never_adds_samples(self, pairs, bucket):
        series = series_of(pairs)
        assert len(series.resample_mean(bucket)) <= max(1, len(series))

    @given(sample_lists)
    def test_value_at_returns_existing_value(self, pairs):
        series = series_of(pairs)
        values = set(series.values())
        for time_ns, _ in pairs:
            held = series.value_at(time_ns)
            assert held in values


class TestFairnessProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=20))
    def test_index_in_unit_interval(self, allocations):
        index = jain_fairness(allocations)
        assert 0.0 <= index <= 1.0 + 1e-9

    def test_subnormal_allocations_stay_in_unit_interval(self):
        """Squares of tiny shares underflow into subnormals; the
        normalized form must still keep the index at exactly 1.0 for
        equal shares instead of drifting past it."""
        tiny = 6.465776397029825e-161
        assert jain_fairness([tiny, tiny]) == 1.0

    @given(st.floats(min_value=0.001, max_value=1e6),
           st.integers(min_value=1, max_value=20))
    def test_equal_allocations_perfect(self, value, n):
        assert jain_fairness([value] * n) > 0.999999
