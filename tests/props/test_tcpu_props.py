"""Property tests: TCPU execution invariants.

Whatever program a packet carries, executing it must never corrupt switch
state it has no right to touch, never raise out of the TCPU, and always
leave the packet's structure (lengths, instruction block) intact.
"""

from hypothesis import given, settings, strategies as st

from repro.asic.metadata import PacketMetadata
from repro.core.isa import Instruction, Opcode
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU
from repro.core.tpp import AddressingMode, TPPSection

instructions = st.builds(
    Instruction,
    opcode=st.sampled_from(list(Opcode)),
    addr=st.integers(min_value=0, max_value=0xFFFF),
    offset=st.integers(min_value=0, max_value=0xFF),
)

tpps = st.builds(
    TPPSection,
    instructions=st.lists(instructions, max_size=5),
    memory=st.integers(min_value=0, max_value=16).map(
        lambda w: bytearray(4 * w)),
    mode=st.sampled_from(list(AddressingMode)),
    word_size=st.just(4),
    hop_or_sp=st.integers(min_value=0, max_value=64).map(lambda v: v * 4),
    perhop_len_bytes=st.integers(min_value=0, max_value=8).map(
        lambda w: 4 * w),
)


class FakeQueue:
    occupancy_bytes = 777


class FakePort:
    index = 0
    queue = FakeQueue()


def harness():
    mmu = MMU()
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 5)
    mmu.bind_reader("Queue:QueueSize", lambda ctx: 777)
    return TCPU(mmu)


class TestExecutionProperties:
    @settings(max_examples=300)
    @given(tpps)
    def test_never_raises(self, tpp):
        tcpu = harness()
        ctx = ExecutionContext(metadata=PacketMetadata(),
                               egress_port=FakePort())
        tcpu.execute(tpp, ctx)  # must not raise, whatever the program

    @settings(max_examples=300)
    @given(tpps)
    def test_structure_preserved(self, tpp):
        """The TPP never grows or shrinks inside the network."""
        tcpu = harness()
        before_code = list(tpp.instructions)
        before_len = len(tpp.memory)
        ctx = ExecutionContext(metadata=PacketMetadata(),
                               egress_port=FakePort())
        tcpu.execute(tpp, ctx)
        assert tpp.instructions == before_code
        assert len(tpp.memory) == before_len

    @settings(max_examples=300)
    @given(tpps)
    def test_accounting_consistent(self, tpp):
        tcpu = harness()
        ctx = ExecutionContext(metadata=PacketMetadata(),
                               egress_port=FakePort())
        report = tcpu.execute(tpp, ctx)
        assert report.executed + report.skipped <= len(tpp.instructions)
        assert report.cycles >= 0
        if report.fault:
            assert tpp.fault == report.fault

    @settings(max_examples=200)
    @given(tpps)
    def test_done_tpps_untouched(self, tpp):
        tcpu = harness()
        tpp.mark_done()
        before = bytes(tpp.memory)
        before_pos = tpp.hop_or_sp
        ctx = ExecutionContext(metadata=PacketMetadata(),
                               egress_port=FakePort())
        report = tcpu.execute(tpp, ctx)
        assert report.executed == 0
        assert bytes(tpp.memory) == before
        assert tpp.hop_or_sp == before_pos
