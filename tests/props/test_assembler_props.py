"""Property tests: assembler/disassembler consistency."""

from hypothesis import given, strategies as st

from repro.core.assembler import assemble
from repro.core.disassembler import disassemble
from repro.core.memory_map import MemoryMap

_MAP = MemoryMap.standard()
_READABLE = [name for name in _MAP.names()
             if not name.lower().startswith("sram:word")][:30]
_WRITABLE = [f"Sram:Word{i}" for i in range(8)] + ["Link:Reg0", "Link:Reg1"]

push_lines = st.sampled_from(_READABLE).map(lambda n: f"PUSH [{n}]")
load_lines = st.tuples(
    st.sampled_from(_READABLE), st.integers(0, 31)).map(
    lambda t: f"LOAD [{t[0]}], [Packet:{t[1]}]")
store_lines = st.tuples(
    st.sampled_from(_WRITABLE), st.integers(0, 31)).map(
    lambda t: f"STORE [{t[0]}], [Packet:{t[1]}]")
arith_lines = st.tuples(
    st.sampled_from(["ADD", "SUB", "MIN", "MAX", "AND", "OR", "XOR"]),
    st.integers(0, 31), st.sampled_from(_READABLE)).map(
    lambda t: f"{t[0]} [Packet:{t[1]}], [{t[2]}]")

programs = st.lists(
    st.one_of(push_lines, load_lines, store_lines, arith_lines),
    min_size=1, max_size=5).map("\n".join)


class TestAssemblerProperties:
    @given(programs)
    def test_assemble_disassemble_reassemble(self, source):
        first = assemble(source, memory_map=_MAP)
        text = disassemble(first.instructions, _MAP)
        second = assemble(text, memory_map=_MAP,
                          hops=first.memory_words or 1)
        assert second.instructions == first.instructions

    @given(programs)
    def test_memory_covers_all_operands(self, source):
        """Every packet operand the program touches fits in the
        preallocated memory, so a single-switch execution cannot go out
        of bounds because of sizing."""
        program = assemble(source, memory_map=_MAP)
        total_words = len(program.initial_memory) // program.word_size
        for instruction in program.instructions:
            if instruction.opcode.name in ("PUSH", "POP"):
                continue
            assert instruction.offset < total_words

    @given(programs)
    def test_instruction_bytes_4n(self, source):
        program = assemble(source, memory_map=_MAP)
        assert program.instruction_bytes == 4 * program.n_instructions

    @given(programs, st.integers(min_value=1, max_value=16))
    def test_stack_memory_scales_with_hops(self, source, hops):
        program = assemble(source, memory_map=_MAP, hops=hops)
        pushes = sum(1 for i in program.instructions
                     if i.opcode.name == "PUSH")
        if pushes:
            assert program.memory_words >= pushes * hops
