"""Randomized race harness: the static analysis vs ground truth.

Builds fleets of 2–6 random same-task TPPs, runs the fleet-level static
race analysis (:mod:`repro.core.racecheck`), then *executes* the fleet
under many program-interleaving orders on a live TCPU and asserts the
oracle in both directions:

- **no false negatives** — any divergence in final SRAM (or in any
  program's final packet memory) across interleavings must be flagged
  by at least one race diagnostic;
- **race-free means order-insensitive** — every fleet the analysis
  declares race-free (zero diagnostics) produces bit-identical SRAM
  *and* packet memory under every interleaving tested.

The TCPU executes a whole TPP atomically, so whole-program interleaving
is the only nondeterminism — which is exactly the granularity the
static analysis reasons at.  False positives (flagged fleets that never
diverge — e.g. TPP021 reads whose observables happen to coincide) are
allowed but counted, and the aggregate count is gated against the
committed baseline in ``race_fp_baseline.json`` so it cannot regress
silently.  The analysis runs with the ground-truth switch's stable
registers bound (``fence_values``) *and* its seeded SRAM image bound
(``sram_values``), mirroring how ``TCPU.trust`` deploys it per switch —
so writes behind falsified fences and claims whose epochs are
relationally unreachable no longer count as may-writes.
"""

import itertools
import json
import pathlib
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.core.mmu import MMU, ExecutionContext
from repro.core.racecheck import check_fleet, summarize_program
from repro.core.tcpu import TCPU
from repro.telemetry import (
    DistinctCountLayout,
    HeavyHitterLayout,
    build_count_min_update,
    build_distinct_update,
    build_heavy_hitter_update,
    disjoint_keys,
)

_MAP = MemoryMap.standard()

#: SRAM words the generated fleets fight over — small on purpose, so
#: access sets genuinely intersect.
WORDS = 4
#: Seeded fleets in the main sweep (acceptance bar: >= 200).
N_FLEETS = 220
#: Documented false-positive bound for the seeded sweep: flagged fleets
#: whose outcomes never diverge.  The constant-fence refinement (with
#: the ground-truth switch's ID bound, as ``TCPU.trust`` does in
#: deployment) retired the dominant class — writers behind a fence
#: that can never pass here — taking the measurement 27/220 → 21/220;
#: the relational refinement (claim-epoch reachability against the
#: bound SRAM image, dead reads, inert writes) retired the live-both
#: and dead-read classes on top, landing at 3/220 ≈ 0.014.  What
#: remains is inherent to whole-program may-analysis over joined claim
#: values.  The rate bound is asserted loose so generator tweaks don't
#: flake; the *count* is gated hard against the committed baseline.
MAX_FALSE_POSITIVE_RATE = 0.25

#: Committed regression baseline for the seeded sweep (CI gate): the
#: sweep fails if the measured false-positive fleet count exceeds
#: ``max_fp_fleets``.  Update the file deliberately when the analysis
#: changes — never loosen it to paper over a regression.
FP_BASELINE_PATH = pathlib.Path(__file__).with_name(
    "race_fp_baseline.json")
FP_BASELINE = json.loads(FP_BASELINE_PATH.read_text())


class FakeQueue:
    occupancy_bytes = 500


class FakePort:
    index = 0
    queue = FakeQueue()


def make_mmu(rng_seed):
    """Fresh MMU with deterministic stat bindings + seeded SRAM.

    Only *stable* statistics are bound: nothing a program can read
    changes between executions, so the only cross-program channel is
    SRAM — the channel under test.
    """
    mmu = MMU(name="race")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7)
    mmu.bind_reader("Switch:NumPorts", lambda ctx: 4)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    rng = random.Random(rng_seed)
    for word in range(WORDS):
        mmu.poke_sram(word, rng.randrange(0, 50))
    return mmu


def make_ctx(task_id=0):
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=FakePort(), time_ns=1000,
                            task_id=task_id)


def random_program(rng):
    """One random absolute-mode TPP over the contested SRAM words.

    Uses LOAD/STORE/ADD-family/CSTORE/CEXEC/PUSH so every access class
    the classifier distinguishes shows up; all operands are in-bounds
    by construction, so programs never fault and every interleaving
    runs every program to completion.
    """
    n_data = 3
    lines = [".memory {}".format(n_data + 2)]
    for slot in range(n_data):
        lines.append(f".data {slot} {rng.randrange(0, 50)}")
    ops = []
    for _ in range(rng.randint(1, 4)):
        word = rng.randrange(WORDS)
        slot = rng.randrange(n_data)
        kind = rng.choice(["load", "store", "arith", "cstore", "rmw",
                           "cexec", "push"])
        if kind == "load":
            ops.append(f"LOAD [Sram:Word{word}], [Packet:{slot}]")
        elif kind == "store":
            ops.append(f"STORE [Sram:Word{word}], [Packet:{slot}]")
        elif kind == "arith":
            opcode = rng.choice(["ADD", "SUB", "XOR", "MIN", "MAX"])
            ops.append(f"{opcode} [Packet:{slot}], [Sram:Word{word}]")
        elif kind == "cstore":
            cond = rng.randrange(0, 50)
            src = rng.randrange(0, 50)
            ops.append(f"CSTORE [Sram:Word{word}], {cond}, {src}")
        elif kind == "rmw":
            ops.append(f"ADD [Packet:{slot}], [Sram:Word{word}]")
            ops.append(f"STORE [Sram:Word{word}], [Packet:{slot}]")
        elif kind == "cexec":
            # Half the fences can never pass (SwitchID is 7): the
            # bound analysis must prove the suffix dead for target 9
            # and keep it live for target 7.
            target = rng.choice([7, 9])
            ops.append(f"CEXEC [Switch:SwitchID], 0xFFFFFFFF, {target}")
        else:
            ops.append(f"PUSH [Sram:Word{word}]")
    lines.extend(ops[:6])
    return assemble("\n".join(lines))


def build_fleet(seed, n_min=2, n_max=6):
    rng = random.Random(seed)
    return [random_program(rng)
            for _ in range(rng.randint(n_min, n_max))]


def orders_for(n, rng):
    """Interleavings to execute: exhaustive for n<=4, sampled beyond."""
    if n <= 4:
        return list(itertools.permutations(range(n)))
    identity = tuple(range(n))
    sampled = {identity, identity[::-1]}
    while len(sampled) < 12:
        order = list(range(n))
        rng.shuffle(order)
        sampled.add(tuple(order))
    return sorted(sampled)


def run_fleet(programs, order, sram_seed):
    """Execute the fleet in one order; return all final observables."""
    mmu = make_mmu(sram_seed)
    tcpu = TCPU(mmu, max_instructions=8, race_mode="off")
    memories = [None] * len(programs)
    for index in order:
        tpp = programs[index].build(task_id=0)
        report = tcpu.execute(tpp, make_ctx())
        assert report.ok, f"generated program faulted: {report.fault}"
        memories[index] = bytes(tpp.memory)
    sram = tuple(mmu.peek_sram(word) for word in range(WORDS))
    return (sram, tuple(memories))


#: The ground-truth switch's stable registers (mirrors ``make_mmu``):
#: the analysis is run per-switch in deployment (``TCPU.trust``), so
#: the sweep binds them too — constant fences falsified by the binding
#: discount their guarded accesses.
BINDINGS = {_MAP.resolve("Switch:SwitchID"): 7}


def sram_image(rng_seed):
    """The ground-truth switch's seeded SRAM image (mirrors
    ``make_mmu``: same seed, same draw order)."""
    rng = random.Random(rng_seed)
    return {word: rng.randrange(0, 50) for word in range(WORDS)}


def analyse(programs, fence_values=None, sram_values=None):
    return check_fleet([
        summarize_program(program, task_id=0, name=f"prog{i}")
        for i, program in enumerate(programs)], fence_values,
        sram_values=sram_values)


def check_oracle(programs, seed):
    """Run one fleet both ways; return (diverged, flagged)."""
    report = analyse(programs, fence_values=BINDINGS,
                     sram_values=sram_image(seed))
    rng = random.Random(seed ^ 0x5EED)
    outcomes = {run_fleet(programs, order, sram_seed=seed)
                for order in orders_for(len(programs), rng)}
    diverged = len(outcomes) > 1
    flagged = bool(report.diagnostics)
    if diverged:
        assert flagged, (
            f"false negative (seed {seed}): {len(outcomes)} distinct "
            f"outcomes but no race diagnostics")
    if report.race_free:
        assert not diverged, (
            f"analysis declared race-free (seed {seed}) but outcomes "
            f"diverged")
    return diverged, flagged


class TestRandomizedOracle:
    """The acceptance-bar sweep: >= 200 seeded fleets, both directions."""

    def test_oracle_holds_on_seeded_fleets(self):
        stats = {"fleets": 0, "diverged": 0, "flagged": 0,
                 "false_positive": 0}
        for seed in range(N_FLEETS):
            programs = build_fleet(seed)
            diverged, flagged = check_oracle(programs, seed)
            stats["fleets"] += 1
            stats["diverged"] += diverged
            stats["flagged"] += flagged
            stats["false_positive"] += (flagged and not diverged)
        assert stats["fleets"] >= 200
        # The sweep must actually exercise both sides of the oracle.
        assert stats["diverged"] > 10
        assert stats["flagged"] - stats["false_positive"] > 10
        assert stats["fleets"] - stats["flagged"] > 10  # race-free too
        fp_rate = stats["false_positive"] / stats["fleets"]
        assert fp_rate <= MAX_FALSE_POSITIVE_RATE, stats
        # CI regression gate: the FP count may never exceed the
        # committed baseline (race_fp_baseline.json).
        assert stats["fleets"] == FP_BASELINE["sweep_fleets"], stats
        assert (stats["false_positive"]
                <= FP_BASELINE["max_fp_fleets"]), (
            f"race-harness FP regression: "
            f"{stats['false_positive']} false-positive fleets exceed "
            f"the committed baseline "
            f"{FP_BASELINE['max_fp_fleets']} ({FP_BASELINE_PATH})")

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=N_FLEETS, max_value=100_000),
           size=st.integers(min_value=2, max_value=5))
    def test_oracle_property(self, seed, size):
        programs = build_fleet(seed, n_min=size, n_max=size)
        check_oracle(programs, seed)


def fleet_from_sources(*sources):
    return [assemble(source) for source in sources]


class TestKnownFleets:
    """Hand-written fleets with known verdicts and known ground truth."""

    def test_last_writer_wins_divergence_is_flagged(self):
        programs = fleet_from_sources(
            ".memory 1\n.data 0 5\nSTORE [Sram:Word0], [Packet:0]",
            ".memory 1\n.data 0 9\nSTORE [Sram:Word0], [Packet:0]")
        report = analyse(programs)
        assert [d.code for d in report.diagnostics] == ["TPP020"]
        outcomes = {run_fleet(programs, order, sram_seed=1)
                    for order in ((0, 1), (1, 0))}
        assert len(outcomes) == 2  # genuinely order-sensitive

    def test_lost_increment_pair_is_flagged(self):
        counter = (".memory 1\n.data 0 1\n"
                   "ADD [Packet:0], [Sram:Word0]\n"
                   "STORE [Sram:Word0], [Packet:0]")
        other = ".memory 1\n.data 0 77\nSTORE [Sram:Word0], [Packet:0]"
        programs = fleet_from_sources(counter, other)
        report = analyse(programs)
        assert not report.ok
        outcomes = {run_fleet(programs, order, sram_seed=2)
                    for order in ((0, 1), (1, 0))}
        assert len(outcomes) == 2

    def test_competing_claims_diverge_and_are_noted(self):
        # Both CSTOREs fire (cond == seeded initial value is arranged
        # to match for the first claimer only), so the winner — and the
        # final word — depends on order: exactly TPP023's story.
        programs = fleet_from_sources(
            "CSTORE [Sram:Word0], 30, 111",
            "CSTORE [Sram:Word0], 30, 222")
        report = analyse(programs)
        assert [d.code for d in report.diagnostics] == ["TPP023"]
        assert report.ok  # sanctioned protocol: no error severity
        # Find a seed whose initial Word0 is 30 so both claims contend.
        seed = next(s for s in range(100)
                    if random.Random(s).randrange(0, 50) == 30)
        outcomes = {run_fleet(programs, order, sram_seed=seed)
                    for order in ((0, 1), (1, 0))}
        assert len(outcomes) == 2
        assert not report.race_free  # oracle still covered

    def test_disjoint_fleet_is_race_free_and_insensitive(self):
        programs = fleet_from_sources(
            ".memory 1\n.data 0 5\nSTORE [Sram:Word0], [Packet:0]",
            ".memory 1\n.data 0 9\nSTORE [Sram:Word1], [Packet:0]",
            ".memory 1\nLOAD [Sram:Word2], [Packet:0]")
        report = analyse(programs)
        assert report.race_free
        outcomes = {run_fleet(programs, order, sram_seed=3)
                    for order in itertools.permutations(range(3))}
        assert len(outcomes) == 1

    def test_commuting_increments_flagged_and_observably_racy(self):
        """Two identical RMW counters: the *SRAM* sum commutes (+1 twice
        lands on the same total either way) but each program's packet
        memory records the intermediate it saw, so the full-observable
        oracle still diverges — TPP020 is a true positive here, not a
        tolerated false one."""
        counter = (".memory 1\n.data 0 1\n"
                   "ADD [Packet:0], [Sram:Word0]\n"
                   "STORE [Sram:Word0], [Packet:0]")
        programs = fleet_from_sources(counter, counter)
        report = analyse(programs)
        assert [d.code for d in report.diagnostics] == ["TPP020"]
        outcomes = {run_fleet(programs, order, sram_seed=4)
                    for order in ((0, 1), (1, 0))}
        srams = {sram for sram, _ in outcomes}
        assert len(srams) == 1      # the counter itself commutes...
        assert len(outcomes) == 2   # ...but the observed intermediates
        #                             swap between the two programs.

    def test_fenced_writers_resolved_by_switch_binding(self):
        """Two writers fenced behind ``CEXEC SwitchID == 9`` on a
        switch whose ID is 7.  The *unbound* analysis must still flag
        TPP020 — on some switch the fence passes and the stores race —
        but binding the ground-truth switch's ID proves the stores dead
        there, and the diagnostic disappears.  Ground truth agrees: the
        fence never passes, so every order yields the same outcome.
        This was the harness's canonical false positive before the
        per-switch fence_values refinement."""
        fenced = (".memory 1\n.data 0 9\n"
                  "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 9\n"
                  "STORE [Sram:Word0], [Packet:0]")
        programs = fleet_from_sources(fenced, fenced)
        unbound = analyse(programs)
        assert [d.code for d in unbound.diagnostics] == ["TPP020"]
        bound = analyse(programs, fence_values=BINDINGS)
        assert bound.race_free
        # On a switch whose ID really is 9 the fence passes and the
        # stores genuinely race — the binding must NOT suppress there.
        matching = analyse(
            programs, fence_values={_MAP.resolve("Switch:SwitchID"): 9})
        assert [d.code for d in matching.diagnostics] == ["TPP020"]
        outcomes = {run_fleet(programs, order, sram_seed=4)
                    for order in ((0, 1), (1, 0))}
        assert len(outcomes) == 1  # fence never passes; nothing races

    def test_unfenced_vs_dead_fenced_writer_is_suppressed(self):
        """The dominant false-positive class the sweep used to tolerate:
        an unfenced writer vs a writer behind a never-passing fence.
        Mutual exclusion alone cannot help (one guard set is empty), but
        the switch binding proves the fenced store dead."""
        plain = ".memory 1\n.data 0 5\nSTORE [Sram:Word0], [Packet:0]"
        fenced = (".memory 1\n.data 0 9\n"
                  "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 9\n"
                  "STORE [Sram:Word0], [Packet:0]")
        programs = fleet_from_sources(plain, fenced)
        unbound = analyse(programs)
        assert [d.code for d in unbound.diagnostics] == ["TPP020"]
        bound = analyse(programs, fence_values=BINDINGS)
        assert bound.race_free
        outcomes = {run_fleet(programs, order, sram_seed=4)
                    for order in ((0, 1), (1, 0))}
        assert len(outcomes) == 1  # only the unfenced store runs

    def test_shipped_examples_fleet_is_race_free(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parents[2] / "examples"
        programs = [
            assemble((root / name).read_text(), symbols={"Target": 7})
            for name in ("queue_probe.tpp", "path_tracer.tpp",
                         "guarded_update.tpp", "sketch_update.tpp")]
        report = analyse(programs)
        assert report.race_free

    def test_racy_counter_example_races_with_guarded_update(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parents[2] / "examples"
        programs = [
            assemble((root / name).read_text(), symbols={"Target": 7})
            for name in ("guarded_update.tpp", "racy_counter.tpp")]
        report = analyse(programs)
        assert not report.ok
        assert "TPP022" in report.by_code()


# --------------------------------------------------------------------- #
# Sketch-updater fleets: 2-6 concurrent sketch writers on one switch
# --------------------------------------------------------------------- #

#: Seeded sketch fleets in the sketch sweep.
SKETCH_N_FLEETS = 120
#: Seeded SRAM values stay small so CSTORE claims genuinely contend
#: with the unclaimed sentinels the generator draws from [0, 4).
SKETCH_SRAM_MAX = 6


def sketch_layouts(seed):
    """One seeded heavy-hitter layout + a small HLL register file.

    The layouts share the fleet seed as their hash seed, so counter
    placement — and therefore which updaters collide — varies per
    fleet.  Blocks are disjoint: hh in words [0, 24), hll in [32, 36).
    """
    rng = random.Random(seed)
    layout = HeavyHitterLayout(
        base_word=0, width=rng.randint(2, 6), depth=rng.randint(1, 3),
        n_slots=rng.randint(1, 3), seed=seed,
        unclaimed_value=rng.randrange(0, 4))
    hll = DistinctCountLayout(base_word=32, m=4, seed=seed)
    return layout, hll


def sketch_words(layout, hll):
    return tuple(layout.words()) + tuple(hll.words())


def build_sketch_fleet(seed):
    """2-6 concurrent sketch programs sharing one switch's sketch SRAM.

    Mixes every dataflow class the sketch subsystem generates:
    heavy-hitter updates (accumulate rows + a CSTORE claim), bare
    count-min updates (accumulate only), distinct-count updates (MAX
    RMW, mixed) and LOAD-only probe readers.  Keys come from a small
    universe so colliding counter cells — and duplicate keys — occur
    often.
    """
    layout, hll = sketch_layouts(seed)
    rng = random.Random(seed ^ 0xA5A5)
    words = sketch_words(layout, hll)
    programs = []
    for _ in range(rng.randint(2, 6)):
        kind = rng.random()
        if kind < 0.40:
            key = rng.choice([k for k in range(1, 9)
                              if k != layout.unclaimed_value])
            programs.append(build_heavy_hitter_update(
                layout, key, delta=rng.randint(1, 3)).program)
        elif kind < 0.65:
            programs.append(build_count_min_update(
                layout.countmin, rng.randrange(1, 9),
                delta=rng.randint(1, 3)).program)
        elif kind < 0.85:
            programs.append(build_distinct_update(
                hll, rng.randrange(1, 64)).program)
        else:
            sample = rng.sample(words, k=min(3, len(words)))
            lines = [f".memory {len(sample)}"]
            lines += [f"LOAD [Sram:Word{w}], [Packet:{i}]"
                      for i, w in enumerate(sample)]
            programs.append(assemble("\n".join(lines)))
    return layout, hll, programs


def make_sketch_mmu(layout, hll, rng_seed):
    """Fresh MMU with the stable bindings + seeded *sketch* SRAM."""
    mmu = MMU(name="sketch-race")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7)
    mmu.bind_reader("Switch:NumPorts", lambda ctx: 4)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    rng = random.Random(rng_seed)
    for word in sketch_words(layout, hll):
        mmu.poke_sram(word, rng.randrange(0, SKETCH_SRAM_MAX))
    return mmu


def sketch_sram_image(layout, hll, rng_seed):
    """Mirror of :func:`make_sketch_mmu` (same seed, same draw order)."""
    rng = random.Random(rng_seed)
    return {word: rng.randrange(0, SKETCH_SRAM_MAX)
            for word in sketch_words(layout, hll)}


def run_sketch_fleet(layout, hll, programs, order, sram_seed):
    mmu = make_sketch_mmu(layout, hll, sram_seed)
    tcpu = TCPU(mmu, max_instructions=8, race_mode="off")
    memories = [None] * len(programs)
    for index in order:
        tpp = programs[index].build(task_id=0)
        report = tcpu.execute(tpp, make_ctx())
        assert report.ok, f"sketch program faulted: {report.fault}"
        memories[index] = bytes(tpp.memory)
    sram = tuple(mmu.peek_sram(word)
                 for word in sketch_words(layout, hll))
    return (sram, tuple(memories))


def check_sketch_oracle(layout, hll, programs, seed):
    """Sketch-fleet instance of the two-direction oracle."""
    report = analyse(programs, fence_values=BINDINGS,
                     sram_values=sketch_sram_image(layout, hll, seed))
    rng = random.Random(seed ^ 0x5EED)
    outcomes = {run_sketch_fleet(layout, hll, programs, order,
                                 sram_seed=seed)
                for order in orders_for(len(programs), rng)}
    diverged = len(outcomes) > 1
    flagged = bool(report.diagnostics)
    if diverged:
        assert flagged, (
            f"false negative (sketch seed {seed}): {len(outcomes)} "
            f"distinct outcomes but no race diagnostics")
    if report.race_free:
        assert not diverged, (
            f"analysis declared sketch fleet race-free (seed {seed}) "
            f"but outcomes diverged")
    return diverged, flagged


class TestSketchFleets:
    """Concurrent sketch updaters under the same two-direction oracle."""

    def test_four_updater_fleet_admitted_under_enforce(self):
        """The acceptance-criteria fleet: four heavy-hitter updaters
        whose counter cells are provably disjoint share one switch.
        ``enforce``-mode admission accepts all four (their claim slots
        may be shared — CSTORE vs CSTORE is the sanctioned TPP023
        protocol, never error severity), and the oracle agrees: any
        order-sensitivity the interleavings expose is flagged."""
        layout = HeavyHitterLayout(base_word=0, width=8, depth=2,
                                   n_slots=2)
        keys = disjoint_keys(layout, range(1, 512), 4)
        assert len(keys) == 4
        mmu = make_sketch_mmu(
            layout, DistinctCountLayout(base_word=32, m=4), 0)
        for word in layout.words():     # deploy on a pristine sketch
            mmu.poke_sram(word, 0)
        tcpu = TCPU(mmu, max_instructions=5, race_mode="enforce")
        updates = [build_heavy_hitter_update(layout, key)
                   for key in keys]
        for update in updates:
            assert tcpu.trust(update.certificate), update.key
        assert tcpu.certificates_refused == 0
        fleet = tcpu.fleet.report()
        assert fleet.ok                  # nothing error-severity
        codes = set(fleet.by_code())
        assert codes <= {"TPP021", "TPP023"}, codes
        # Oracle over the same four programs, zero false negatives.
        hll = DistinctCountLayout(base_word=32, m=4)
        check_sketch_oracle(layout, hll,
                            [u.program for u in updates], seed=0)
        # And a fifth updater whose counters collide with the fleet is
        # refused — admission is the oracle's verdict, not a heuristic.
        collider = next(
            key for key in range(1, 512)
            if key not in keys
            and any(set(layout.countmin.words_for(key))
                    & set(layout.countmin.words_for(k))
                    for k in keys))
        update = build_heavy_hitter_update(layout, collider)
        assert not tcpu.trust(update.certificate)
        assert tcpu.certificates_refused == 1

    def test_oracle_holds_on_seeded_sketch_fleets(self):
        stats = {"fleets": 0, "diverged": 0, "flagged": 0,
                 "false_positive": 0}
        for seed in range(SKETCH_N_FLEETS):
            layout, hll, programs = build_sketch_fleet(seed)
            diverged, flagged = check_sketch_oracle(
                layout, hll, programs, seed)
            stats["fleets"] += 1
            stats["diverged"] += diverged
            stats["flagged"] += flagged
            stats["false_positive"] += (flagged and not diverged)
        # Both oracle directions must be exercised.
        assert stats["diverged"] > 10
        assert stats["flagged"] - stats["false_positive"] > 10
        assert stats["fleets"] - stats["flagged"] > 10  # race-free too
        # CI regression gate against the committed baseline.
        assert stats["fleets"] == FP_BASELINE["sketch_sweep_fleets"], (
            stats)
        assert (stats["false_positive"]
                <= FP_BASELINE["sketch_max_fp_fleets"]), (
            f"sketch-fleet FP regression: "
            f"{stats['false_positive']} false-positive fleets exceed "
            f"the committed baseline "
            f"{FP_BASELINE['sketch_max_fp_fleets']} "
            f"({FP_BASELINE_PATH})")
