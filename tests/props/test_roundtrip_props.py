"""Property tests: the full pipeline round trip.

assemble → build → encode (wire bytes) → decode → disassemble →
re-assemble must be the identity on the instruction stream, and the
decoded section must agree with the original on every header field and
memory byte.  This is the end-to-end contract every probe relies on:
what an endpoint writes is exactly what a switch (and the echoing far
end) reads back.
"""

from hypothesis import given, strategies as st

from repro.core.assembler import assemble
from repro.core.disassembler import disassemble
from repro.core.memory_map import MemoryMap
from repro.core.tpp import TPPSection
from repro.core.verifier import verify_program, verify_section

_MAP = MemoryMap.standard()
_READABLE = [name for name in _MAP.names()
             if not name.lower().startswith("sram:word")][:30]
_WRITABLE = [f"Sram:Word{i}" for i in range(8)] + ["Link:Reg0", "Link:Reg1"]

push_lines = st.sampled_from(_READABLE).map(lambda n: f"PUSH [{n}]")
pop_lines = st.sampled_from(_WRITABLE).map(lambda n: f"POP [{n}]")
load_lines = st.tuples(
    st.sampled_from(_READABLE), st.integers(0, 15)).map(
    lambda t: f"LOAD [{t[0]}], [Packet:{t[1]}]")
store_lines = st.tuples(
    st.sampled_from(_WRITABLE), st.integers(0, 15)).map(
    lambda t: f"STORE [{t[0]}], [Packet:{t[1]}]")
cstore_lines = st.tuples(
    st.sampled_from(_WRITABLE), st.integers(0, 255),
    st.integers(0, 255)).map(
    lambda t: f"CSTORE [{t[0]}], {t[1]}, {t[2]}")
cexec_lines = st.tuples(
    st.sampled_from(_READABLE), st.integers(0, 255),
    st.integers(0, 255)).map(
    lambda t: f"CEXEC [{t[0]}], {t[1]}, {t[2]}")
arith_lines = st.tuples(
    st.sampled_from(["ADD", "SUB", "MIN", "MAX", "AND", "OR", "XOR"]),
    st.integers(0, 15), st.sampled_from(_READABLE)).map(
    lambda t: f"{t[0]} [Packet:{t[1]}], [{t[2]}]")

programs = st.lists(
    st.one_of(push_lines, pop_lines, load_lines, store_lines,
              cstore_lines, cexec_lines, arith_lines,
              st.just("NOP")),
    min_size=1, max_size=5).map("\n".join)


class TestWireRoundTrip:
    @given(programs, st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=255))
    def test_encode_decode_identity(self, source, hops, task_id):
        program = assemble(source, memory_map=_MAP, hops=hops)
        tpp = program.build(task_id=task_id)
        decoded = TPPSection.decode(tpp.encode())
        assert decoded.instructions == tpp.instructions
        assert decoded.mode == tpp.mode
        assert decoded.word_size == tpp.word_size
        assert decoded.task_id == tpp.task_id
        assert decoded.hop_or_sp == tpp.hop_or_sp
        assert decoded.perhop_len_bytes == tpp.perhop_len_bytes
        assert bytes(decoded.memory) == bytes(tpp.memory)
        # And the re-encoding is byte-identical (a stable fingerprint).
        assert decoded.encode() == tpp.encode()

    @given(programs, st.integers(min_value=1, max_value=8))
    def test_decode_disassemble_reassemble(self, source, hops):
        """The long way around the loop ends where it started."""
        program = assemble(source, memory_map=_MAP, hops=hops)
        decoded = TPPSection.decode(program.build().encode())
        text = disassemble(decoded.instructions, _MAP)
        again = assemble(text, memory_map=_MAP, hops=hops)
        assert again.instructions == program.instructions

    @given(programs, st.integers(min_value=1, max_value=8))
    def test_verdict_stable_across_the_wire(self, source, hops):
        """Verification is a pure function of the program and geometry,
        so the verdict on the assembled program equals the verdict on
        the wire-decoded section — a switch can re-check a certificate
        without trusting the sender's analysis."""
        program = assemble(source, memory_map=_MAP, hops=hops)
        tpp = program.build()
        before = verify_program(program, memory_map=_MAP, max_hops=hops)
        after = verify_section(TPPSection.decode(tpp.encode()),
                               memory_map=_MAP, max_hops=hops)
        assert before.ok == after.ok
        assert ([d.code for d in before.errors]
                == [d.code for d in after.errors])
        if before.ok and before.certificate and after.certificate:
            assert (before.certificate.program_key
                    == after.certificate.program_key)
            assert (before.certificate.guard_lo
                    == after.certificate.guard_lo)
            assert (before.certificate.guard_hi
                    == after.certificate.guard_hi)
