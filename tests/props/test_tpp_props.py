"""Property tests: TPP wire format and packet memory."""

from hypothesis import given, strategies as st

from repro.core.isa import Instruction, Opcode
from repro.core.tpp import AddressingMode, TPPSection

instructions = st.builds(
    Instruction,
    opcode=st.sampled_from(list(Opcode)),
    addr=st.integers(min_value=0, max_value=0xFFFF),
    offset=st.integers(min_value=0, max_value=0xFF),
)

tpp_sections = st.builds(
    TPPSection,
    instructions=st.lists(instructions, max_size=8),
    memory=st.integers(min_value=0, max_value=16).map(
        lambda words: bytearray(4 * words)),
    mode=st.sampled_from(list(AddressingMode)),
    word_size=st.sampled_from([4, 8]),
    hop_or_sp=st.integers(min_value=0, max_value=0xFFFF),
    perhop_len_bytes=st.integers(min_value=0, max_value=16).map(
        lambda w: 4 * w),
    flags=st.integers(min_value=0, max_value=0xFF),
    task_id=st.integers(min_value=0, max_value=0xFF),
    seq=st.integers(min_value=0, max_value=0xFF),
)


class TestWireFormatProperties:
    @given(tpp_sections)
    def test_encode_decode_round_trip(self, tpp):
        decoded = TPPSection.decode(tpp.encode())
        assert decoded.instructions == tpp.instructions
        assert decoded.memory == tpp.memory
        assert decoded.mode == tpp.mode
        assert decoded.word_size == tpp.word_size
        assert decoded.hop_or_sp == tpp.hop_or_sp
        assert decoded.perhop_len_bytes == tpp.perhop_len_bytes
        assert decoded.flags == tpp.flags
        assert decoded.task_id == tpp.task_id
        assert decoded.seq == tpp.seq

    @given(tpp_sections)
    def test_length_field_consistent(self, tpp):
        assert len(tpp.encode()) == tpp.tpp_length_bytes

    @given(tpp_sections)
    def test_copy_equals_but_isolates(self, tpp):
        clone = tpp.copy()
        assert clone.encode() == tpp.encode()
        if len(clone.memory) >= clone.word_size:
            clone.write_word(0, 0xFF)
            original_word = tpp.read_word(0)
            assert original_word == 0 or clone.memory != tpp.memory


class TestMemoryProperties:
    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=-2**40, max_value=2**40))
    def test_write_read_masks(self, word_index, value):
        tpp = TPPSection(instructions=[], memory=bytearray(16))
        tpp.write_word(word_index * 4, value)
        assert tpp.read_word(word_index * 4) == value & 0xFFFF_FFFF

    @given(st.lists(st.tuples(st.integers(0, 3),
                              st.integers(0, 0xFFFF_FFFF)), max_size=20))
    def test_last_write_wins(self, writes):
        tpp = TPPSection(instructions=[], memory=bytearray(16))
        last = {}
        for index, value in writes:
            tpp.write_word(index * 4, value)
            last[index] = value
        for index, value in last.items():
            assert tpp.read_word(index * 4) == value

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF))
    def test_writes_do_not_leak_to_neighbours(self, value):
        tpp = TPPSection(instructions=[], memory=bytearray(12))
        tpp.write_word(4, value)
        assert tpp.read_word(0) == 0
        assert tpp.read_word(8) == 0
