"""Property tests: queue byte conservation under arbitrary op sequences."""

from hypothesis import given, strategies as st

from repro.net.packet import EthernetFrame, RawPayload
from repro.net.queues import DropTailQueue

sizes = st.integers(min_value=64, max_value=1518)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), sizes),
        st.tuples(st.just("drain"), st.just(0)),
    ),
    max_size=60,
)


def frame_of(size_bytes):
    return EthernetFrame(1, 2, 0, RawPayload(size_bytes - 18))


class TestQueueInvariants:
    @given(operations, st.integers(min_value=1000, max_value=20000))
    def test_byte_conservation(self, ops, capacity):
        """enqueued == departed + dropped_by_clear + still_queued, and
        occupancy never exceeds capacity."""
        queue = DropTailQueue(capacity_bytes=capacity)
        in_flight = []
        departed_bytes = 0
        for op, size in ops:
            if op == "offer":
                queue.offer(frame_of(size))
            else:
                frame = queue.begin_transmit()
                if frame is not None:
                    in_flight.append(frame)
                if in_flight:
                    done = in_flight.pop(0)
                    queue.transmit_complete(done)
                    departed_bytes += done.size_bytes
            assert queue.occupancy_bytes <= capacity
            assert queue.occupancy_bytes >= 0
        stats = queue.stats
        assert (stats.bytes_enqueued
                == departed_bytes + queue.occupancy_bytes)

    @given(operations)
    def test_drop_accounting(self, ops):
        queue = DropTailQueue(capacity_bytes=5000)
        offered_bytes = 0
        for op, size in ops:
            if op == "offer":
                frame = frame_of(size)
                offered_bytes += frame.size_bytes
                queue.offer(frame)
        stats = queue.stats
        assert stats.bytes_enqueued + stats.bytes_dropped == offered_bytes

    @given(st.lists(sizes, max_size=40))
    def test_fifo_order_preserved(self, packet_sizes):
        queue = DropTailQueue(capacity_bytes=10**9)
        frames = [frame_of(size) for size in packet_sizes]
        for frame in frames:
            queue.offer(frame)
        drained = []
        while (frame := queue.begin_transmit()) is not None:
            queue.transmit_complete(frame)
            drained.append(frame)
        assert drained == frames
