"""Property tests: scheduler invariants.

Whatever arrival pattern the queues see, a scheduler must (a) never pick
an empty queue, (b) be work-conserving (pick *something* whenever any
queue is backlogged), and (c) for DRR, keep long-run service shares close
to the configured weights.
"""

from hypothesis import given, settings, strategies as st

from repro.net.packet import EthernetFrame, RawPayload
from repro.net.queues import DropTailQueue
from repro.net.schedulers import (
    DeficitRoundRobinScheduler,
    StrictPriorityScheduler,
)


def frame_of(size_bytes):
    return EthernetFrame(1, 2, 0, RawPayload(size_bytes - 18))


arrivals = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),     # queue index
              st.integers(min_value=64, max_value=1518)),  # size
    min_size=1, max_size=80)

weights = st.lists(st.floats(min_value=0.1, max_value=10.0),
                   min_size=3, max_size=3)


def drain_all(scheduler, queues):
    order = []
    while any(len(queue) for queue in queues):
        index = scheduler.select(queues)
        assert index is not None, "not work-conserving"
        assert len(queues[index]) > 0, "picked an empty queue"
        frame = queues[index].begin_transmit()
        queues[index].transmit_complete(frame)
        order.append((index, frame.size_bytes))
    return order


class TestPriorityProperties:
    @given(arrivals)
    def test_never_picks_empty_and_drains(self, packets):
        queues = [DropTailQueue(10**9) for _ in range(3)]
        for queue_index, size in packets:
            queues[queue_index].offer(frame_of(size))
        order = drain_all(StrictPriorityScheduler(), queues)
        assert len(order) == len(packets)

    @given(arrivals)
    def test_high_priority_served_first(self, packets):
        queues = [DropTailQueue(10**9) for _ in range(3)]
        for queue_index, size in packets:
            queues[queue_index].offer(frame_of(size))
        order = drain_all(StrictPriorityScheduler(), queues)
        # With no new arrivals, the served sequence of queue indexes is
        # non-decreasing: all of queue 0, then 1, then 2.
        indexes = [index for index, _ in order]
        assert indexes == sorted(indexes)


class TestDRRProperties:
    @settings(max_examples=50)
    @given(arrivals, weights)
    def test_never_picks_empty_and_drains(self, packets, queue_weights):
        queues = [DropTailQueue(10**9) for _ in range(3)]
        for queue_index, size in packets:
            queues[queue_index].offer(frame_of(size))
        scheduler = DeficitRoundRobinScheduler(queue_weights)
        order = drain_all(scheduler, queues)
        assert len(order) == len(packets)

    @settings(max_examples=20)
    @given(st.floats(min_value=0.5, max_value=4.0))
    def test_backlogged_shares_follow_weights(self, ratio):
        """Two always-backlogged queues: byte shares ~ weights."""
        scheduler = DeficitRoundRobinScheduler([ratio, 1.0],
                                               quantum_bytes=1500)
        queues = [DropTailQueue(10**9) for _ in range(2)]
        for queue in queues:
            for _ in range(400):
                queue.offer(frame_of(1000))
        served_bytes = [0, 0]
        for _ in range(300):
            index = scheduler.select(queues)
            frame = queues[index].begin_transmit()
            queues[index].transmit_complete(frame)
            served_bytes[index] += frame.size_bytes
        measured = served_bytes[0] / served_bytes[1]
        assert measured == ratio or abs(measured - ratio) / ratio < 0.25
