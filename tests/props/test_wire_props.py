"""Property tests: full-frame wire serialization round-trips."""

from hypothesis import given, strategies as st

from repro.net import wire
from repro.net.packet import (
    ETHERTYPE_IPV4,
    Datagram,
    EthernetFrame,
    RawPayload,
)

payloads = st.one_of(
    st.none(),
    st.binary(min_size=1, max_size=64).map(
        lambda data: RawPayload(len(data), data=data)),
)

datagrams = st.builds(
    Datagram,
    src_ip=st.integers(min_value=0, max_value=0xFFFF_FFFF),
    dst_ip=st.integers(min_value=0, max_value=0xFFFF_FFFF),
    src_port=st.integers(min_value=0, max_value=0xFFFF),
    dst_port=st.integers(min_value=0, max_value=0xFFFF),
    payload=payloads,
    protocol=st.just(17),
    tos=st.integers(min_value=0, max_value=0x3F),
    ecn=st.sampled_from([0, 1, 3]),
    route_record_slots=st.sampled_from([0, 0, 0, 3, 9]),
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestDatagramProperties:
    @given(datagrams)
    def test_round_trip_addresses(self, original):
        decoded, _ = wire.decode_datagram(wire.encode_datagram(original))
        assert decoded.src_ip == original.src_ip
        assert decoded.dst_ip == original.dst_ip
        assert decoded.src_port == original.src_port
        assert decoded.dst_port == original.dst_port
        assert decoded.tos == original.tos
        assert decoded.ecn == original.ecn
        assert decoded.route_record_slots == original.route_record_slots

    @given(datagrams)
    def test_checksum_always_valid(self, original):
        raw = wire.encode_datagram(original)
        ihl = (raw[0] & 0xF) * 4
        assert wire.internet_checksum(raw[:ihl]) == 0

    @given(datagrams, st.lists(st.integers(0, 0xFFFF_FFFF), max_size=3))
    def test_route_entries_survive(self, original, entries):
        if original.route_record_slots == 0:
            return
        original.route_record.extend(
            entries[:original.route_record_slots])
        decoded, _ = wire.decode_datagram(wire.encode_datagram(original))
        assert decoded.route_record == original.route_record


class TestFrameProperties:
    @given(macs, macs, datagrams)
    def test_frame_round_trip(self, dst, src, inner):
        frame = EthernetFrame(dst=dst, src=src, ethertype=ETHERTYPE_IPV4,
                              payload=inner)
        decoded = wire.decode_frame(wire.encode_frame(frame))
        assert decoded.dst == dst
        assert decoded.src == src
        assert decoded.payload.dst_port == inner.dst_port

    @given(macs, macs, datagrams)
    def test_encoded_at_least_minimum(self, dst, src, inner):
        frame = EthernetFrame(dst=dst, src=src, ethertype=ETHERTYPE_IPV4,
                              payload=inner)
        assert len(wire.encode_frame(frame)) >= 64
