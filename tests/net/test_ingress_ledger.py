"""The ingress ledger's decrement path under in-flight loss.

Links announce every scheduled delivery in a batching receiver's
``inbound_at`` ledger.  A copy that the impairment rolls kill still
occupies its arrival instant on the wire, so the announcement must be
retired by a tombstone when the dead frame would have landed — otherwise
stale instants accumulate and the switch keeps scheduling drains for
frames that are not coming.
"""

from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder


def build_net(seed=0, n_switches=2):
    builder = TopologyBuilder(seed=seed, rate_bps=units.GIGABITS_PER_SEC,
                              delay_ns=1_000)
    net = builder.linear(n_switches=n_switches)
    install_shortest_path_routes(net)
    return net


def run_until_announced(net, device, deadline_ns):
    """Step the sim until ``device`` has a ledger entry (or deadline)."""
    while net.sim.now_ns < deadline_ns and not device.inbound_at:
        net.sim.run(until_ns=net.sim.now_ns + 100)
    return dict(device.inbound_at)


class TestAnnouncedThenLost:
    def test_lost_probe_is_announced_and_retired(self):
        """A 100%-loss link still announces the in-flight copy, and the
        tombstone retires the entry instead of leaking the instant."""
        net = build_net()
        h0, h1 = net.host("h0"), net.host("h1")
        sw0 = net.switch("sw0")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        link = h0.ports[0].link
        link.set_impairments(loss_rate=1.0)
        program = assemble("PUSH [Switch:SwitchID]", hops=4)
        client.send(program, dst_mac=h1.mac)

        announced = run_until_announced(net, sw0, units.seconds(0.01))
        assert announced, "in-flight copy was never announced"

        net.run(until_seconds=0.02)
        assert not sw0.inbound_at
        assert sw0.inbound_now == 0
        assert link.frames_lost == 1
        assert link.frames_impaired_lost == 1
        assert link.frames_delivered == 0

    def test_corrupt_dropped_non_tpp_is_announced_and_retired(self):
        """Corrupt non-TPP frames fail their FCS at the receiving NIC:
        announced like any delivery, retired by the tombstone, counted
        as impairment loss at arrival time."""
        net = build_net()
        h0, h1 = net.host("h0"), net.host("h1")
        sw0 = net.switch("sw0")
        link = h0.ports[0].link
        link.set_impairments(corrupt_rate=1.0)
        FlowSink(h1, 9)
        flow = Flow(h0, h1, h1.mac, 9, rate_bps=10_000_000,
                    packet_bytes=500)
        flow.start()

        announced = run_until_announced(net, sw0, units.seconds(0.01))
        assert announced, "in-flight copy was never announced"

        net.run(until_seconds=0.02)
        flow.stop()
        net.run(until_seconds=0.03)
        assert not sw0.inbound_at
        assert sw0.inbound_now == 0
        assert link.frames_impaired_lost > 0
        assert link.frames_delivered == 0
        assert link.frames_corrupted == 0

    def test_mixed_instant_survivor_still_delivered(self):
        """When an instant holds both a tombstone and a live frame, the
        survivor is delivered and the instant drains to zero."""
        net = build_net()
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        link = h0.ports[0].link
        # Duplicate everything; the loss roll then kills roughly half
        # the copies, pairing tombstones with live arrivals.
        link.set_impairments(loss_rate=0.5, duplicate_rate=1.0)
        program = assemble("PUSH [Switch:SwitchID]", hops=4)
        for _ in range(40):
            client.send(program, dst_mac=h1.mac)
        net.run(until_seconds=0.05)
        assert link.frames_duplicated == 40
        assert link.frames_delivered > 0
        assert link.frames_impaired_lost > 0
        assert link.frames_delivered + link.frames_impaired_lost == 80
        for sw in net.switches.values():
            assert not sw.inbound_at
            assert sw.inbound_now == 0

    def test_ledgers_drain_under_sustained_impairment(self):
        """Stress: every link lossy/corrupting/duplicating for a long
        run; every switch ledger must end empty."""
        net = build_net(seed=11, n_switches=3)
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        net.impair_links(loss_rate=0.2, corrupt_rate=0.2,
                         duplicate_rate=0.2)
        program = assemble("PUSH [Switch:SwitchID]", hops=6)
        for _ in range(200):
            client.send(program, dst_mac=h1.mac)
        net.run(until_seconds=0.1)
        for sw in net.switches.values():
            assert not sw.inbound_at
            assert sw.inbound_now == 0
        total_lost = sum(port.link.frames_impaired_lost
                         for device in net.all_devices()
                         for port in device.ports)
        assert total_lost > 0
