"""Wire serialization: real bytes for every simulated frame."""

import pytest

from repro.apps.rcp_common import RCPHeader
from repro.core.assembler import assemble
from repro.errors import WireFormatError
from repro.net import wire
from repro.net.packet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_TPP,
    Datagram,
    EthernetFrame,
    RawPayload,
)


def datagram(**kwargs):
    defaults = dict(src_ip=0x0A000001, dst_ip=0x0A000002, src_port=1234,
                    dst_port=5678, payload=RawPayload(32, data=b"hello"))
    defaults.update(kwargs)
    return Datagram(**defaults)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert wire.internet_checksum(data) == 0x220D

    def test_checksum_of_checksummed_is_zero(self):
        data = bytes(range(20))
        checksum = wire.internet_checksum(data)
        assert wire.internet_checksum(
            data + checksum.to_bytes(2, "big")) == 0

    def test_odd_length_padded(self):
        assert wire.internet_checksum(b"\xFF") == wire.internet_checksum(
            b"\xFF\x00")


class TestDatagramRoundTrip:
    def test_basic(self):
        original = datagram()
        decoded, consumed = wire.decode_datagram(
            wire.encode_datagram(original))
        assert decoded.src_ip == original.src_ip
        assert decoded.dst_ip == original.dst_ip
        assert decoded.src_port == original.src_port
        assert decoded.dst_port == original.dst_port
        assert decoded.payload.data.rstrip(b"\x00") == b"hello"

    def test_tos_and_ecn(self):
        original = datagram(tos=5, ecn=3)
        decoded, _ = wire.decode_datagram(wire.encode_datagram(original))
        assert decoded.tos == 5
        assert decoded.ecn == 3

    def test_record_route_option(self):
        original = datagram(route_record_slots=4)
        original.route_record.extend([7, 9])
        decoded, _ = wire.decode_datagram(wire.encode_datagram(original))
        assert decoded.route_record == [7, 9]
        assert decoded.route_record_slots == 4

    def test_rcp_shim(self):
        original = datagram(
            congestion_header=RCPHeader(rate_bps=10_000_000,
                                        rtt_ns=20_000_000))
        decoded, _ = wire.decode_datagram(wire.encode_datagram(original))
        assert decoded.congestion_header.rate_bps == 10_000_000
        assert decoded.congestion_header.rtt_ns == 20_000_000
        assert decoded.protocol == 17  # real protocol restored

    def test_corrupt_checksum_rejected(self):
        raw = bytearray(wire.encode_datagram(datagram()))
        raw[12] ^= 0xFF  # flip a source-address byte
        with pytest.raises(WireFormatError):
            wire.decode_datagram(bytes(raw))

    def test_wire_length_matches_model(self):
        for d in (datagram(), datagram(route_record_slots=9),
                  datagram(congestion_header=RCPHeader(1, 2))):
            encoded = wire.encode_datagram(d)
            expected = d.size_bytes
            if d.route_record_slots:
                # the model counts 3+4n; the wire pads options to /4
                expected += (-(3 + 4 * d.route_record_slots)) % 4
            if d.congestion_header:
                expected += 16 - d.congestion_header.size_bytes
            assert len(encoded) == expected


class TestFrameRoundTrip:
    def test_ipv4_frame(self):
        frame = EthernetFrame(dst=0xAABB, src=0xCCDD,
                              ethertype=ETHERTYPE_IPV4,
                              payload=datagram())
        decoded = wire.decode_frame(wire.encode_frame(frame))
        assert decoded.dst == frame.dst
        assert decoded.src == frame.src
        assert decoded.payload.dst_port == 5678

    def test_tpp_frame(self):
        program = assemble("PUSH [Queue:QueueSize]", hops=3)
        tpp = program.build()
        tpp.write_word(0, 0xCAFE)
        tpp.sp = 4
        frame = EthernetFrame(dst=1, src=2, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        decoded = wire.decode_frame(wire.encode_frame(frame))
        assert decoded.payload.instructions == tpp.instructions
        assert decoded.payload.read_word(0) == 0xCAFE
        assert decoded.payload.sp == 4

    def test_tpp_encapsulating_datagram(self):
        program = assemble("PUSH [Queue:QueueSize]", hops=2)
        tpp = program.build(payload=datagram())
        frame = EthernetFrame(dst=1, src=2, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        decoded = wire.decode_frame(wire.encode_frame(frame))
        assert decoded.payload.payload.dst_port == 5678

    def test_fcs_detects_corruption(self):
        frame = EthernetFrame(dst=1, src=2, ethertype=ETHERTYPE_IPV4,
                              payload=datagram())
        raw = bytearray(wire.encode_frame(frame))
        raw[20] ^= 0x01
        with pytest.raises(WireFormatError):
            wire.decode_frame(bytes(raw))

    def test_minimum_frame_padding(self):
        frame = EthernetFrame(dst=1, src=2, ethertype=0x88CC,
                              payload=None)
        assert len(wire.encode_frame(frame)) == 64

    def test_short_input_rejected(self):
        with pytest.raises(WireFormatError):
            wire.decode_frame(b"\x00" * 10)

    def test_unencodable_payload(self):
        frame = EthernetFrame(dst=1, src=2, ethertype=0, payload=object())
        with pytest.raises(WireFormatError):
            wire.encode_frame(frame)
