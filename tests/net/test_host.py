"""Host dispatch by ethertype and UDP port."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.net.link import connect
from repro.net.packet import (
    ETHERTYPE_IPV4,
    Datagram,
    EthernetFrame,
    RawPayload,
)


@pytest.fixture
def pair(sim):
    a = Host(sim, "a", mac=1, ip=0x0A000001)
    b = Host(sim, "b", mac=2, ip=0x0A000002)
    connect(sim, a, b, units.GIGABITS_PER_SEC)
    return a, b


class TestSending:
    def test_send_datagram_builds_ipv4_frame(self, sim, pair):
        a, b = pair
        received = []
        b.on_udp_port(99, lambda d, f: received.append((d, f)))
        a.send_datagram(2, Datagram(a.ip, b.ip, 1, 99, RawPayload(10)))
        sim.run()
        datagram, frame = received[0]
        assert frame.ethertype == ETHERTYPE_IPV4
        assert datagram.dst_port == 99

    def test_send_without_port_raises(self, sim):
        lonely = Host(sim, "x", mac=9, ip=1)
        with pytest.raises(ConfigurationError):
            lonely.send_frame(EthernetFrame(1, 9, 0, RawPayload(0)))

    def test_frames_sent_counter(self, sim, pair):
        a, b = pair
        a.send_datagram(2, Datagram(a.ip, b.ip, 1, 99, RawPayload(10)))
        assert a.frames_sent == 1


class TestDispatch:
    def test_ethertype_handler_wins_over_udp(self, sim, pair):
        a, b = pair
        hits = []
        b.on_ethertype(ETHERTYPE_IPV4, lambda f: hits.append("eth"))
        b.on_udp_port(99, lambda d, f: hits.append("udp"))
        a.send_datagram(2, Datagram(a.ip, b.ip, 1, 99, RawPayload(10)))
        sim.run()
        assert hits == ["eth"]

    def test_unbound_udp_port_counts_undelivered(self, sim, pair):
        a, b = pair
        a.send_datagram(2, Datagram(a.ip, b.ip, 1, 12345, RawPayload(10)))
        sim.run()
        assert b.undelivered_frames == 1

    def test_unknown_ethertype_counts_undelivered(self, sim, pair):
        a, b = pair
        a.send_frame(EthernetFrame(2, 1, 0xABCD, RawPayload(10)))
        sim.run()
        assert b.undelivered_frames == 1

    def test_frames_received_counter(self, sim, pair):
        a, b = pair
        b.on_udp_port(7, lambda d, f: None)
        for _ in range(3):
            a.send_datagram(2, Datagram(a.ip, b.ip, 1, 7, RawPayload(0)))
        sim.run()
        assert b.frames_received == 3

    def test_deliver_datagram_direct(self, sim, pair):
        a, _ = pair
        got = []
        a.on_udp_port(5, lambda d, f: got.append(d))
        datagram = Datagram(1, 2, 3, 5, RawPayload(0))
        assert a.deliver_datagram(datagram, EthernetFrame(1, 2, 0, datagram))
        assert got == [datagram]

    def test_deliver_datagram_unbound_returns_false(self, sim, pair):
        a, _ = pair
        datagram = Datagram(1, 2, 3, 55555, RawPayload(0))
        assert not a.deliver_datagram(
            datagram, EthernetFrame(1, 2, 0, datagram))
