"""Drop-tail queue byte accounting."""

import pytest

from repro.net.packet import EthernetFrame, RawPayload
from repro.net.queues import DropTailQueue


def frame_of(size_bytes: int) -> EthernetFrame:
    # Build a frame whose wire size is exactly size_bytes (>= 64).
    return EthernetFrame(1, 2, 0, RawPayload(size_bytes - 18))


class TestAdmission:
    def test_offer_accepts_until_capacity(self):
        queue = DropTailQueue(capacity_bytes=300)
        assert queue.offer(frame_of(100))
        assert queue.offer(frame_of(100))
        assert queue.offer(frame_of(100))
        assert not queue.offer(frame_of(100))

    def test_drop_counted_in_stats(self):
        queue = DropTailQueue(capacity_bytes=100)
        queue.offer(frame_of(100))
        queue.offer(frame_of(100))
        assert queue.stats.packets_dropped == 1
        assert queue.stats.bytes_dropped == 100

    def test_occupancy_tracks_bytes(self):
        queue = DropTailQueue()
        queue.offer(frame_of(100))
        queue.offer(frame_of(200))
        assert queue.occupancy_bytes == 300

    def test_enqueue_stats(self):
        queue = DropTailQueue()
        queue.offer(frame_of(100))
        queue.offer(frame_of(100))
        assert queue.stats.packets_enqueued == 2
        assert queue.stats.bytes_enqueued == 200

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_bytes=0)

    def test_peak_occupancy(self):
        queue = DropTailQueue()
        queue.offer(frame_of(100))
        queue.offer(frame_of(100))
        queue.begin_transmit()
        assert queue.stats.peak_occupancy_bytes == 200


class TestTransmit:
    def test_fifo_order(self):
        queue = DropTailQueue()
        first, second = frame_of(100), frame_of(100)
        queue.offer(first)
        queue.offer(second)
        assert queue.begin_transmit() is first

    def test_in_flight_bytes_stay_in_occupancy(self):
        queue = DropTailQueue()
        frame = frame_of(100)
        queue.offer(frame)
        queue.begin_transmit()
        assert queue.occupancy_bytes == 100
        assert queue.backlog_bytes == 0
        queue.transmit_complete(frame)
        assert queue.occupancy_bytes == 0

    def test_begin_transmit_empty_returns_none(self):
        assert DropTailQueue().begin_transmit() is None

    def test_transmit_complete_without_begin_raises(self):
        queue = DropTailQueue()
        with pytest.raises(RuntimeError):
            queue.transmit_complete(frame_of(100))

    def test_backlog_excludes_in_flight(self):
        queue = DropTailQueue()
        queue.offer(frame_of(100))
        queue.offer(frame_of(200))
        queue.begin_transmit()
        assert queue.backlog_bytes == 200
        assert queue.occupancy_bytes == 300

    def test_clear_empties_without_drops(self):
        queue = DropTailQueue()
        queue.offer(frame_of(100))
        queue.clear()
        assert queue.occupancy_bytes == 0
        assert queue.stats.packets_dropped == 0

    def test_len_counts_waiting_packets(self):
        queue = DropTailQueue()
        queue.offer(frame_of(100))
        queue.offer(frame_of(100))
        assert len(queue) == 2
        queue.begin_transmit()
        assert len(queue) == 1
