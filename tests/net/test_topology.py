"""Topology builders and the Network container."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.net.topology import Network, TopologyBuilder


class TestNetwork:
    def test_auto_names(self):
        net = Network()
        assert net.add_host().name == "h0"
        assert net.add_host().name == "h1"
        assert net.add_switch().name == "sw0"

    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(ConfigurationError):
            net.add_host("x")
        with pytest.raises(ConfigurationError):
            net.add_switch("x")

    def test_unique_macs_and_ips(self):
        net = Network()
        hosts = [net.add_host() for _ in range(5)]
        assert len({h.mac for h in hosts}) == 5
        assert len({h.ip for h in hosts}) == 5

    def test_adjacency_is_symmetric(self):
        net = Network()
        a, b = net.add_switch(), net.add_switch()
        net.link(a, b, units.GIGABITS_PER_SEC)
        adjacency = net.adjacency()
        assert adjacency["sw0"] == [(0, "sw1", 0)]
        assert adjacency["sw1"] == [(0, "sw0", 0)]

    def test_device_lookup(self):
        net = Network()
        host = net.add_host()
        switch = net.add_switch()
        assert net.device("h0") is host
        assert net.device("sw0") is switch

    def test_run_advances_clock(self):
        net = Network()
        net.run(until_seconds=0.25)
        assert net.sim.now_ns == units.seconds(0.25)


class TestBuilders:
    def test_linear_shape(self):
        net = TopologyBuilder().linear(n_switches=3)
        assert len(net.switches) == 3
        assert len(net.hosts) == 2
        # chain edges + 2 host edges
        assert len(net.edges) == 2 + 2

    def test_linear_multiple_hosts_per_end(self):
        net = TopologyBuilder().linear(n_switches=2, hosts_per_end=3)
        assert len(net.hosts) == 6

    def test_linear_requires_one_switch(self):
        with pytest.raises(ConfigurationError):
            TopologyBuilder().linear(0)

    def test_star_shape(self):
        net = TopologyBuilder().star(n_hosts=4)
        assert len(net.switches) == 1
        assert len(net.hosts) == 4
        assert len(net.switch("sw0").ports) == 4

    def test_dumbbell_shape(self):
        net = TopologyBuilder().dumbbell(
            n_pairs=3, bottleneck_bps=10 * units.MEGABITS_PER_SEC)
        assert set(net.switches) == {"swL", "swR"}
        assert len(net.hosts) == 6
        bottleneck = [e for e in net.edges
                      if {e.device_a, e.device_b} == {"swL", "swR"}]
        assert bottleneck[0].rate_bps == 10 * units.MEGABITS_PER_SEC

    def test_dumbbell_edge_links_faster_by_default(self):
        net = TopologyBuilder().dumbbell(
            n_pairs=1, bottleneck_bps=units.MEGABITS_PER_SEC)
        edge_links = [e for e in net.edges
                      if {e.device_a, e.device_b} != {"swL", "swR"}]
        assert all(e.rate_bps == 10 * units.MEGABITS_PER_SEC
                   for e in edge_links)

    def test_parking_lot_shape(self):
        net = TopologyBuilder().parking_lot(n_switches=4)
        assert len(net.switches) == 4
        assert len(net.hosts) == 4
        assert len(net.edges) == 3 + 4

    def test_fat_tree_shape(self):
        net = TopologyBuilder().fat_tree(k=2)
        assert len(net.switches) == 2 + 4   # spines + leaves
        assert len(net.hosts) == 8
        assert len(net.edges) == 2 * 4 + 8  # full mesh + host links
