"""Packet model sizes and nesting."""

import pytest

from repro.core.assembler import assemble
from repro.net import packet as pkt


class TestRawPayload:
    def test_declared_size(self):
        assert pkt.RawPayload(100).size_bytes == 100

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            pkt.RawPayload(-1)

    def test_data_longer_than_declared_rejected(self):
        with pytest.raises(ValueError):
            pkt.RawPayload(2, data=b"abc")

    def test_data_within_declared_ok(self):
        payload = pkt.RawPayload(10, data=b"abc")
        assert payload.data == b"abc"


class TestDatagram:
    def _datagram(self, payload_bytes=72):
        return pkt.Datagram(src_ip=1, dst_ip=2, src_port=10, dst_port=20,
                            payload=pkt.RawPayload(payload_bytes))

    def test_size_includes_headers(self):
        datagram = self._datagram(72)
        assert datagram.size_bytes == 20 + 8 + 72

    def test_congestion_shim_adds_bytes(self):
        class Shim:
            size_bytes = 12
        datagram = self._datagram(0)
        datagram.congestion_header = Shim()
        assert datagram.size_bytes == 20 + 8 + 12


class TestEthernetFrame:
    def test_min_frame_padding(self):
        frame = pkt.EthernetFrame(dst=1, src=2, ethertype=pkt.ETHERTYPE_IPV4,
                                  payload=pkt.RawPayload(1))
        assert frame.size_bytes == pkt.ETHERNET_MIN_FRAME_BYTES

    def test_size_is_headers_plus_payload(self):
        frame = pkt.EthernetFrame(dst=1, src=2, ethertype=pkt.ETHERTYPE_IPV4,
                                  payload=pkt.RawPayload(1000))
        assert frame.size_bytes == 14 + 1000 + 4

    def test_uids_are_unique(self):
        frames = [pkt.EthernetFrame(1, 2, 0, pkt.RawPayload(0))
                  for _ in range(10)]
        uids = {frame.uid for frame in frames}
        assert len(uids) == 10

    def test_none_payload_counts_zero(self):
        frame = pkt.EthernetFrame(1, 2, 0, None)
        assert frame.size_bytes == pkt.ETHERNET_MIN_FRAME_BYTES

    def test_unknown_payload_type_rejected(self):
        frame = pkt.EthernetFrame(1, 2, 0, object())
        with pytest.raises(TypeError):
            frame.size_bytes


class TestTPPFrameSizes:
    def test_tpp_frame_size_counts_real_encoding(self):
        program = assemble("PUSH [Queue:QueueSize]", hops=5)
        tpp = program.build()
        # header 12 + 1 instruction (4) + 5 words of memory (20).
        assert tpp.tpp_length_bytes == 12 + 4 + 20
        assert tpp.size_bytes == tpp.tpp_length_bytes

    def test_tpp_encapsulation_adds_inner_payload(self):
        program = assemble("PUSH [Queue:QueueSize]", hops=5)
        inner = pkt.Datagram(src_ip=1, dst_ip=2, src_port=1, dst_port=2,
                             payload=pkt.RawPayload(100))
        tpp = program.build(payload=inner)
        assert tpp.size_bytes == tpp.tpp_length_bytes + inner.size_bytes


class TestInnermostPayload:
    def test_unwraps_nesting(self):
        inner = pkt.RawPayload(10)
        datagram = pkt.Datagram(1, 2, 3, 4, payload=inner)
        frame = pkt.EthernetFrame(1, 2, pkt.ETHERTYPE_IPV4, datagram)
        assert pkt.innermost_payload(frame) is inner

    def test_plain_object_returned_as_is(self):
        target = pkt.RawPayload(5)
        assert pkt.innermost_payload(target) is target
