"""Link serialization/propagation and port draining."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.net.device import Device
from repro.net.link import Link, connect
from repro.net.packet import EthernetFrame, RawPayload


class RecordingDevice(Device):
    """Remembers every (time, frame, port) it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append((self.sim.now_ns, frame, in_port))


def frame_of(size_bytes: int) -> EthernetFrame:
    return EthernetFrame(1, 2, 0, RawPayload(size_bytes - 18))


class TestLink:
    def test_rejects_bad_rate(self, sim):
        with pytest.raises(ConfigurationError):
            Link(sim, rate_bps=0)

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(ConfigurationError):
            Link(sim, rate_bps=1000, delay_ns=-1)

    def test_serialization_time(self, sim):
        link = Link(sim, rate_bps=units.GIGABITS_PER_SEC)
        assert link.serialization_time_ns(frame_of(1000)) == 8_000

    def test_delivery_requires_receiver(self, sim):
        link = Link(sim, rate_bps=1000)
        with pytest.raises(ConfigurationError):
            link.deliver_after_propagation(frame_of(100))


class TestConnect:
    def test_full_duplex_ports_created(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, port_b = connect(sim, a, b, units.GIGABITS_PER_SEC)
        assert a.ports == [port_a]
        assert b.ports == [port_b]

    def test_frame_arrives_after_tx_plus_propagation(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, _ = connect(sim, a, b, units.GIGABITS_PER_SEC,
                            delay_ns=5_000)
        frame = frame_of(1000)  # 8 us serialization
        port_a.enqueue(frame)
        sim.run()
        assert b.received == [(13_000, frame, 0)]

    def test_reverse_direction_works(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        _, port_b = connect(sim, a, b, units.GIGABITS_PER_SEC,
                            delay_ns=1_000)
        frame = frame_of(1000)
        port_b.enqueue(frame)
        sim.run()
        assert len(a.received) == 1

    def test_back_to_back_frames_serialize_sequentially(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, _ = connect(sim, a, b, units.GIGABITS_PER_SEC,
                            delay_ns=0)
        port_a.enqueue(frame_of(1000))
        port_a.enqueue(frame_of(1000))
        sim.run()
        times = [t for t, _, _ in b.received]
        assert times == [8_000, 16_000]

    def test_tx_counters(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, _ = connect(sim, a, b, units.GIGABITS_PER_SEC)
        port_a.enqueue(frame_of(1000))
        sim.run()
        assert port_a.tx_frames == 1
        assert port_a.tx_bytes == 1000

    def test_queue_drains_fully(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, _ = connect(sim, a, b, units.GIGABITS_PER_SEC)
        for _ in range(10):
            port_a.enqueue(frame_of(500))
        sim.run()
        assert len(b.received) == 10
        assert port_a.queue.occupancy_bytes == 0

    def test_tail_drop_when_queue_full(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, _ = connect(sim, a, b, 1_000_000,  # slow: 1 Mb/s
                            queue_capacity_bytes=2_000)
        accepted = [port_a.enqueue(frame_of(1000)) for _ in range(4)]
        assert accepted == [True, True, False, False]
        sim.run()
        assert port_a.queue.stats.packets_dropped == 2

    def test_note_rx_counters(self, sim):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, port_b = connect(sim, a, b, units.GIGABITS_PER_SEC)
        frame = frame_of(800)
        port_a.enqueue(frame)
        sim.run()
        # RecordingDevice does not call note_rx; do it like a real device.
        port_b.note_rx(frame)
        assert port_b.rx_bytes == 800
        assert port_b.rx_frames == 1
