"""Multi-queue ports: priority and DRR scheduling."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.net.device import Device
from repro.net.link import connect
from repro.net.packet import EthernetFrame, RawPayload
from repro.net.queues import DropTailQueue
from repro.net.schedulers import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    StrictPriorityScheduler,
    make_scheduler,
)


class RecordingDevice(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, frame, in_port):
        self.received.append(frame)


def frame_of(size_bytes, tag=0):
    frame = EthernetFrame(1, 2, 0, RawPayload(size_bytes - 18))
    frame.tag = tag
    return frame


def queues_with(*packet_lists):
    queues = []
    for packets in packet_lists:
        queue = DropTailQueue(10**9)
        for packet in packets:
            queue.offer(packet)
        queues.append(queue)
    return queues


class TestSchedulerUnits:
    def test_fifo_empty(self):
        assert FifoScheduler().select(queues_with([])) is None

    def test_fifo_serves_queue_zero(self):
        queues = queues_with([frame_of(100)])
        assert FifoScheduler().select(queues) == 0

    def test_priority_prefers_lowest_index(self):
        queues = queues_with([frame_of(100)], [frame_of(100)])
        assert StrictPriorityScheduler().select(queues) == 0

    def test_priority_falls_through(self):
        queues = queues_with([], [frame_of(100)])
        assert StrictPriorityScheduler().select(queues) == 1

    def test_priority_empty(self):
        assert StrictPriorityScheduler().select(queues_with([], [])) is None

    def test_drr_weights_validated(self):
        with pytest.raises(ConfigurationError):
            DeficitRoundRobinScheduler([1.0, 0.0])

    def test_drr_queue_count_checked(self):
        scheduler = DeficitRoundRobinScheduler([1.0, 1.0])
        with pytest.raises(ConfigurationError):
            scheduler.select(queues_with([frame_of(100)]))

    def test_drr_alternates_equal_weights(self):
        scheduler = DeficitRoundRobinScheduler([1.0, 1.0],
                                               quantum_bytes=1000)
        queues = queues_with([frame_of(500) for _ in range(10)],
                             [frame_of(500) for _ in range(10)])
        served = []
        for _ in range(12):  # 3 whole rounds of [0, 0, 1, 1]
            index = scheduler.select(queues)
            served.append(index)
            frame = queues[index].begin_transmit()
            queues[index].transmit_complete(frame)
        assert served.count(0) == 6
        assert served.count(1) == 6

    def test_drr_respects_weights(self):
        scheduler = DeficitRoundRobinScheduler([3.0, 1.0],
                                               quantum_bytes=500)
        queues = queues_with([frame_of(500) for _ in range(40)],
                             [frame_of(500) for _ in range(40)])
        served = []
        for _ in range(24):
            index = scheduler.select(queues)
            served.append(index)
            frame = queues[index].begin_transmit()
            queues[index].transmit_complete(frame)
        ratio = served.count(0) / max(1, served.count(1))
        assert 2.0 < ratio < 4.5

    def test_drr_work_conserving(self):
        scheduler = DeficitRoundRobinScheduler([1.0, 1.0])
        queues = queues_with([], [frame_of(100)])
        assert scheduler.select(queues) == 1

    def test_make_scheduler_validation(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("fifo", 2)
        with pytest.raises(ConfigurationError):
            make_scheduler("bogus", 1)


class TestMultiQueuePort:
    def _port_pair(self, sim, **kwargs):
        a = RecordingDevice(sim, "a")
        b = RecordingDevice(sim, "b")
        port_a, _ = connect(sim, a, b, units.MEGABITS_PER_SEC, delay_ns=0,
                            **kwargs)
        return port_a, b

    def test_priority_queue_preempts_between_packets(self, sim):
        port, receiver = self._port_pair(sim, n_queues=2,
                                         scheduler="priority")
        # Fill the low-priority queue, then add one high-priority frame.
        for index in range(5):
            port.enqueue(frame_of(1000, tag=f"low{index}"), queue_id=1)
        urgent = frame_of(1000, tag="urgent")
        port.enqueue(urgent, queue_id=0)
        sim.run()
        order = [frame.tag for frame in receiver.received]
        # The first low packet was already on the wire; the urgent one
        # goes right after it, ahead of the remaining low ones.
        assert order[1] == "urgent"

    def test_drr_splits_bandwidth(self, sim):
        port, receiver = self._port_pair(
            sim, n_queues=2, scheduler="drr", scheduler_weights=[1.0, 1.0])
        for index in range(20):
            port.enqueue(frame_of(1000, tag="a"), queue_id=0)
            port.enqueue(frame_of(1000, tag="b"), queue_id=1)
        sim.run()
        first_half = [f.tag for f in receiver.received[:20]]
        assert 8 <= first_half.count("a") <= 12

    def test_queue_for_clamps(self, sim):
        port, _ = self._port_pair(sim, n_queues=2, scheduler="priority")
        assert port.queue_for(7) is port.queues[1]

    def test_total_occupancy(self, sim):
        port, _ = self._port_pair(sim, n_queues=2, scheduler="priority")
        port.enqueue(frame_of(100), queue_id=0)
        port.enqueue(frame_of(200), queue_id=1)
        assert port.total_occupancy_bytes() == 300

    def test_single_queue_default_unchanged(self, sim):
        port, receiver = self._port_pair(sim)
        assert port.n_queues == 1
        port.enqueue(frame_of(100))
        sim.run()
        assert len(receiver.received) == 1


class TestQueueClassificationInSwitch:
    def test_tos_selects_queue(self):
        from repro.net.packet import Datagram
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import Network

        net = Network()
        switch = net.add_switch()
        h0 = net.add_host()
        h1 = net.add_host()
        net.link(h0, switch, units.GIGABITS_PER_SEC)
        net.link(h1, switch, units.GIGABITS_PER_SEC, n_queues=3,
                 scheduler="priority")
        install_shortest_path_routes(net)
        h1.on_udp_port(9, lambda d, f: None)
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(300), tos=2))
        net.run(until_seconds=0.01)
        egress = switch.ports[1]
        assert egress.queues[2].stats.packets_enqueued == 1
        assert egress.queues[0].stats.packets_enqueued == 0

    def test_tcam_set_queue_action_wins(self):
        from repro.asic.tables import TcamRule
        from repro.net.packet import Datagram
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import Network

        net = Network()
        switch = net.add_switch()
        h0 = net.add_host()
        h1 = net.add_host()
        net.link(h0, switch, units.GIGABITS_PER_SEC)
        out_port, _ = net.link(h1, switch, units.GIGABITS_PER_SEC,
                               n_queues=2, scheduler="priority")
        install_shortest_path_routes(net)
        egress_index = [local for local, peer, _ in net.adjacency()["sw0"]
                        if peer == "h1"][0]
        switch.install_tcam_rule(TcamRule(priority=5,
                                          out_port=egress_index,
                                          queue_id=1, dst_mac=h1.mac))
        h1.on_udp_port(9, lambda d, f: None)
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(300), tos=0))
        net.run(until_seconds=0.01)
        egress = switch.ports[egress_index]
        assert egress.queues[1].stats.packets_enqueued == 1

    def test_tpp_reads_its_own_queue(self):
        """Queue: namespace resolves against the packet's selected queue."""
        from repro.core.assembler import assemble
        from repro.endhost.client import TPPEndpoint
        from repro.endhost.flows import Flow, FlowSink
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import Network

        net = Network()
        switch = net.add_switch()
        hosts = [net.add_host() for _ in range(3)]
        net.link(hosts[0], switch, units.GIGABITS_PER_SEC)
        net.link(hosts[1], switch, units.GIGABITS_PER_SEC)
        net.link(hosts[2], switch, 10 * units.MEGABITS_PER_SEC,
                 n_queues=2, scheduler="priority")
        install_shortest_path_routes(net)
        h0, h1, h2 = hosts
        # Congest the low-priority queue (tos=1 from h1).
        FlowSink(h2, 99)
        flow = Flow(h1, h2, h2.mac, 99,
                    rate_bps=50 * units.MEGABITS_PER_SEC)
        flow.frame_factory = None
        # Flow datagrams default to tos=0 -> queue 0... send with tos via
        # a custom factory instead:
        from repro.net.packet import ETHERTYPE_IPV4, EthernetFrame

        def low_priority(f, size):
            datagram = f.make_datagram(size)
            datagram.tos = 1
            return EthernetFrame(dst=f.dst_mac, src=f.src.mac,
                                 ethertype=ETHERTYPE_IPV4,
                                 payload=datagram)

        flow.frame_factory = low_priority
        flow.start()
        TPPEndpoint(h2)
        results = []
        endpoint = TPPEndpoint(h0)
        # Probe rides queue 0 (tos 0): it should see ~0 backlog even
        # though queue 1 is congested.
        net.sim.schedule(units.milliseconds(20), lambda: endpoint.send(
            assemble("PUSH [Queue:QueueSize]"), dst_mac=h2.mac,
            on_response=results.append))
        net.sim.schedule(units.milliseconds(21), flow.stop)
        net.run(until_seconds=0.3)
        egress = switch.ports[2]
        assert egress.queues[1].stats.peak_occupancy_bytes > 5_000
        assert results[0].word(0) < 2_000  # queue 0 nearly empty
