"""Wireless SNR channel model."""

import random

from repro.net.wireless import WirelessChannel, attach_wireless_channel
from repro.sim.simulator import Simulator


class TestWirelessChannel:
    def test_starts_at_mean(self, sim):
        channel = WirelessChannel(sim, random.Random(1), mean_snr_db=25.0)
        assert channel.current_snr_db == 25.0

    def test_evolves_when_started(self, sim):
        channel = WirelessChannel(sim, random.Random(1),
                                  update_interval_ns=1_000)
        channel.start()
        sim.run(until_ns=100_000)
        assert channel.updates == 99

    def test_stays_within_bounds(self, sim):
        channel = WirelessChannel(sim, random.Random(2), mean_snr_db=5.0,
                                  step_db=10.0, floor_db=0.0,
                                  ceiling_db=10.0, update_interval_ns=100)
        channel.start()
        observed = []
        from repro.sim.timers import PeriodicTimer
        sampler = PeriodicTimer(sim, 100,
                                lambda: observed.append(
                                    channel.current_snr_milli_db))
        sampler.start()
        sim.run(until_ns=50_000)
        assert observed
        assert all(0 <= v <= 10_000 for v in observed)

    def test_deterministic_given_seed(self):
        def run_once():
            sim = Simulator()
            channel = WirelessChannel(sim, random.Random(7),
                                      update_interval_ns=500)
            channel.start()
            sim.run(until_ns=20_000)
            return channel.current_snr_milli_db

        assert run_once() == run_once()

    def test_stop_freezes(self, sim):
        channel = WirelessChannel(sim, random.Random(3),
                                  update_interval_ns=1_000)
        channel.start()
        sim.run(until_ns=5_500)
        channel.stop()
        frozen = channel.current_snr_milli_db
        sim.run(until_ns=50_000)
        assert channel.current_snr_milli_db == frozen

    def test_attach_to_port(self, sim):
        class FakePort:
            pass

        port = FakePort()
        channel = WirelessChannel(sim, random.Random(4))
        attach_wireless_channel(port, channel)
        assert port.wireless_channel is channel


class TestSNRThroughTPP:
    def test_snr_readable_via_link_namespace(self):
        """An end-host samples the AP's wireless SNR with a LOAD TPP."""
        from repro import quickstart_network
        from repro.core import assemble

        net = quickstart_network(n_switches=1)
        switch = net.switch("sw0")
        # Make the switch's port toward h1 a "wireless" downlink.
        channel = WirelessChannel(net.sim, net.rng.stream("snr"),
                                  mean_snr_db=30.0)
        attach_wireless_channel(switch.ports[1], channel)
        channel.start()

        program = assemble("PUSH [Link:SNR-MilliDb]")
        results = []
        net.host("h0").tpp.send(program, dst_mac=net.host("h1").mac,
                                on_response=results.append)
        net.run(until_seconds=0.01)
        assert results
        snr_milli = results[0].per_hop_words()[0][0]
        assert 0 < snr_milli < 45_000
