"""Link impairments: seeded loss, corruption, and duplication."""

import pytest

from repro import units
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder
from repro.sim.trace import TraceLevel


def build_net(seed=0):
    builder = TopologyBuilder(seed=seed, rate_bps=units.GIGABITS_PER_SEC,
                              delay_ns=1_000)
    net = builder.linear(n_switches=2)
    install_shortest_path_routes(net)
    return net


def first_link(net):
    h0 = net.host("h0")
    return h0.ports[0].link


def run_flow(net, seconds=0.02, rate_bps=50_000_000):
    h0, h1 = net.host("h0"), net.host("h1")
    FlowSink(h1, 9)
    flow = Flow(h0, h1, h1.mac, 9, rate_bps=rate_bps, packet_bytes=500)
    flow.start()
    net.run(until_seconds=seconds)
    flow.stop()


class TestConfiguration:
    def test_rates_validated(self, sim):
        link = Link(sim, rate_bps=1_000_000)
        for bad in ({"loss_rate": 1.5}, {"corrupt_rate": -0.1},
                    {"duplicate_rate": 2.0}):
            with pytest.raises(ConfigurationError):
                link.set_impairments(**bad)

    def test_all_zero_rates_clear_model(self, sim):
        link = Link(sim, rate_bps=1_000_000)
        link.set_impairments(loss_rate=0.1)
        assert link.impairments is not None
        link.set_impairments()
        assert link.impairments is None

    def test_network_impair_links_covers_every_link(self):
        net = build_net()
        count = net.impair_links(loss_rate=0.01)
        impaired = [port.link
                    for device in net.all_devices()
                    for port in device.ports
                    if port.link.impairments is not None]
        assert count == len(impaired) > 0


class TestLoss:
    def test_seeded_loss_drops_about_the_configured_fraction(self):
        net = build_net()
        link = first_link(net)
        link.set_impairments(loss_rate=0.2)
        run_flow(net)
        total = link.frames_delivered + link.frames_impaired_lost
        assert total > 200
        assert link.frames_impaired_lost == pytest.approx(0.2 * total,
                                                          rel=0.5)
        assert link.frames_lost == link.frames_impaired_lost

    def test_identical_seeds_impair_identically(self):
        def run_once():
            net = build_net(seed=42)
            link = first_link(net)
            link.set_impairments(loss_rate=0.1, corrupt_rate=0.02,
                                 duplicate_rate=0.02)
            run_flow(net)
            return (link.frames_delivered, link.frames_impaired_lost,
                    link.frames_corrupted, link.frames_duplicated)

        first, second = run_once(), run_once()
        assert first == second
        assert first[1] > 0

    def test_different_seeds_impair_differently(self):
        counts = []
        for seed in (1, 2):
            net = build_net(seed=seed)
            link = first_link(net)
            link.set_impairments(loss_rate=0.1)
            run_flow(net)
            counts.append(link.frames_impaired_lost)
        assert counts[0] != counts[1]


class TestDuplication:
    def test_duplicates_arrive_and_are_counted(self):
        net = build_net()
        link = first_link(net)
        link.set_impairments(duplicate_rate=1.0)
        run_flow(net, seconds=0.005, rate_bps=10_000_000)
        assert link.frames_duplicated > 0
        # Every frame arrived twice.
        assert link.frames_delivered == 2 * link.frames_duplicated

    def test_duplicate_preserves_frame_identity(self):
        net = build_net()
        link = first_link(net)
        link.set_impairments(duplicate_rate=1.0)
        seen = []
        original = net.host("h1").receive

        def spy(frame, in_port):
            seen.append(frame.uid)
            return original(frame, in_port)

        net.host("h1").receive = spy
        run_flow(net, seconds=0.002, rate_bps=10_000_000)
        # Duplicates carry the original uid: same packet, twice.
        assert seen and len(seen) == 2 * len(set(seen))


class TestDuplicationDrawOrder:
    """The impairment draw order is pinned: loss(orig) -> corrupt(orig)
    -> dup roll -> loss(dup) -> corrupt(dup).  The duplicate is cloned
    from the pre-corruption bytes and rolls its own loss/corruption
    independently, so seeded runs replay byte-identically."""

    def _send_probes(self, net, count):
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        program = assemble("PUSH [Switch:SwitchID]", hops=4)
        for _ in range(count):
            client.send(program, dst_mac=h1.mac)

    def test_duplicate_rolls_corruption_independently(self):
        net = build_net()
        link = first_link(net)
        link.set_impairments(corrupt_rate=1.0, duplicate_rate=1.0)
        self._send_probes(net, 10)
        net.run(until_seconds=0.02)
        assert link.frames_duplicated == 10
        # Original AND duplicate each rolled (and hit) corruption: the
        # dup is not a copy of the already-damaged original.
        assert link.frames_corrupted == 20
        assert link.frames_delivered == 20

    def test_duplicate_cloned_from_pristine_bytes(self):
        """Both copies arrive with *different* damage: the dup was
        cloned before the original was corrupted, then corrupted by its
        own draws."""
        net = build_net(seed=5)
        h1 = net.host("h1")
        link = first_link(net)
        link.set_impairments(corrupt_rate=1.0, duplicate_rate=1.0)
        seen = {}
        original = h1.receive

        def spy(frame, in_port):
            seen.setdefault(frame.uid, []).append(
                bytes(frame.payload.encode()))
            return original(frame, in_port)

        h1.receive = spy
        self._send_probes(net, 5)
        net.run(until_seconds=0.02)
        pairs = [wires for wires in seen.values() if len(wires) == 2]
        assert pairs
        assert any(a != b for a, b in pairs)

    def test_dup_runs_replay_byte_identically(self):
        """Determinism regression for the pinned draw order."""
        def run_once():
            net = build_net(seed=2026)
            h1 = net.host("h1")
            link = first_link(net)
            link.set_impairments(loss_rate=0.2, corrupt_rate=0.5,
                                 duplicate_rate=0.5)
            seen = []
            original = h1.receive

            def spy(frame, in_port):
                seen.append(bytes(frame.payload.encode()))
                return original(frame, in_port)

            h1.receive = spy
            self._send_probes(net, 40)
            net.run(until_seconds=0.05)
            return seen, (link.frames_impaired_lost,
                          link.frames_corrupted, link.frames_duplicated)

        first, second = run_once(), run_once()
        assert first == second
        assert first[1][2] > 0      # duplicates actually occurred
        assert first[1][0] > 0      # ... and losses interleaved with them


class TestCorruption:
    def test_corrupted_non_tpp_frame_dropped(self):
        net = build_net()
        link = first_link(net)
        link.set_impairments(corrupt_rate=1.0)
        run_flow(net, seconds=0.002, rate_bps=10_000_000)
        # Non-TPP frames fail their FCS: everything was lost, nothing
        # "corrupted in place".
        assert link.frames_impaired_lost > 0
        assert link.frames_delivered == 0
        assert link.frames_corrupted == 0

    def test_corrupted_tpp_still_delivered(self):
        net = build_net()
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        link = first_link(net)
        link.set_impairments(corrupt_rate=1.0)
        program = assemble("PUSH [Switch:SwitchID]", hops=4)
        for _ in range(20):
            client.send(program, dst_mac=h1.mac)
        net.run(until_seconds=0.02)
        assert link.frames_corrupted == 20
        assert link.frames_delivered == 20


class TestTraceKinds:
    def test_impairment_kinds_are_debug_only(self):
        net = build_net()
        link = first_link(net)
        link.set_impairments(loss_rate=0.3, duplicate_rate=0.3)
        run_flow(net, seconds=0.005)
        assert net.trace.records(kind="link.lost") == []
        assert net.trace.records(kind="link.dup") == []

    def test_impairment_kinds_recorded_at_debug(self):
        net = build_net()
        net.trace.set_level(TraceLevel.DEBUG)
        h0, h1 = net.host("h0"), net.host("h1")
        client = TPPEndpoint(h0)
        TPPEndpoint(h1)
        link = first_link(net)
        link.set_impairments(loss_rate=0.3, corrupt_rate=0.3,
                             duplicate_rate=0.3)
        program = assemble("PUSH [Switch:SwitchID]", hops=4)
        for _ in range(60):
            client.send(program, dst_mac=h1.mac)
        net.run(until_seconds=0.05)
        lost = net.trace.records(kind="link.lost")
        assert lost and all(r.detail["reason"] == "impairment"
                            for r in lost)
        corrupt = net.trace.records(kind="link.corrupt")
        assert corrupt and all(r.detail["damage"] in
                               ("truncate", "bitflip", "header")
                               for r in corrupt)
        assert net.trace.records(kind="link.dup")


class TestCorruptionInvalidatesCaches:
    """In-flight damage bypasses the TPP's mutator methods, so _corrupt
    must drop the section's memoized fingerprint/wire/length caches and
    the frame's size + parsed-view caches."""

    def _tpp_frame(self, source="PUSH [Queue:QueueSize]", hops=2):
        from repro.net.packet import ETHERTYPE_TPP, EthernetFrame
        tpp = assemble(source, hops=hops).build()
        frame = EthernetFrame(dst=2, src=1, ethertype=ETHERTYPE_TPP,
                              payload=tpp)
        return tpp, frame

    def test_bitflip_drops_wire_cache(self, sim):
        import random
        link = Link(sim, rate_bps=1_000_000)
        tpp, frame = self._tpp_frame()
        stale = tpp.encode()          # warm the wire cache
        key = tpp.program_key         # warm the fingerprint
        # seed 0: first random() is ~0.84 >= 0.5 -> bitflip branch.
        out = link._corrupt(frame, random.Random(0), None)
        assert out is frame
        assert tpp._wire_cache is None
        assert tpp.encode() != stale  # damage visible on the wire
        assert tpp.program_key == key  # instructions were untouched

    def test_truncation_drops_length_and_size_caches(self, sim):
        import random
        link = Link(sim, rate_bps=1_000_000)
        tpp, frame = self._tpp_frame(hops=4)
        before_len = tpp.tpp_length_bytes
        before_size = frame.size_bytes
        from repro.asic.parser import parse_frame
        parsed = parse_frame(frame)
        # seed 1: first random() is ~0.13 < 0.5 -> truncate branch.
        out = link._corrupt(frame, random.Random(1), None)
        assert out is frame
        assert len(tpp.memory) < 16
        assert tpp.tpp_length_bytes < before_len
        assert frame.size_bytes <= before_size
        assert frame._parsed_cache is None
        fresh = parse_frame(frame)
        assert fresh is not parsed

    def test_header_scramble_drops_wire_cache(self, sim):
        import random
        link = Link(sim, rate_bps=1_000_000)
        tpp, frame = self._tpp_frame(source="NOP", hops=0)
        assert not tpp.memory
        stale = tpp.encode()
        link._corrupt(frame, random.Random(0), None)
        assert tpp.encode() != stale  # hop/SP scramble reached the wire

    def test_corrupted_probe_executes_identically_on_both_paths(self):
        """End to end: a corrupted-in-flight probe must produce the same
        response bytes whether switches run compiled or interpreted."""
        import os

        def run(compile_env):
            env_before = os.environ.get("REPRO_TPP_FASTPATH")
            os.environ["REPRO_TPP_FASTPATH"] = compile_env
            try:
                net = build_net(seed=7)
                h0, h1 = net.host("h0"), net.host("h1")
                client = TPPEndpoint(h0)
                TPPEndpoint(h1)
                link = first_link(net)
                link.set_impairments(corrupt_rate=1.0)
                results = []
                program = assemble("PUSH [Switch:SwitchID]", hops=4)
                for _ in range(10):
                    client.send(program, dst_mac=h1.mac,
                                on_response=lambda r: results.append(
                                    r.tpp.encode()))
                net.run(until_seconds=0.05)
                return results
            finally:
                if env_before is None:
                    del os.environ["REPRO_TPP_FASTPATH"]
                else:
                    os.environ["REPRO_TPP_FASTPATH"] = env_before

        assert run("1") == run("0")
