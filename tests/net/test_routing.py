"""Shortest-path computation and route installation."""

import pytest

from repro.errors import ConfigurationError
from repro.net.routing import (
    host_path,
    install_shortest_path_routes,
    next_hop_port,
    shortest_paths_from,
)
from repro.net.topology import TopologyBuilder


class TestShortestPaths:
    def test_linear_path(self, linear_net):
        path = host_path(linear_net, "h0", "h1")
        assert path == ["h0", "sw0", "sw1", "sw2", "h1"]

    def test_unknown_origin_raises(self, linear_net):
        with pytest.raises(ConfigurationError):
            shortest_paths_from(linear_net, "nope")

    def test_no_path_raises(self):
        builder = TopologyBuilder()
        net = builder.star(1)
        isolated = net.add_host("lonely")
        with pytest.raises(ConfigurationError):
            host_path(net, "h0", "lonely")

    def test_next_hop_port(self, linear_net):
        port = next_hop_port(linear_net, "sw0", "sw1")
        assert port is not None
        assert next_hop_port(linear_net, "sw0", "sw2") is None

    def test_fat_tree_paths_are_three_switches(self):
        net = TopologyBuilder().fat_tree(k=2)
        path = host_path(net, "h0", "h2")  # different leaves
        # host, leaf, spine, leaf, host
        assert len(path) == 5


class TestInstallRoutes:
    def test_all_pairs_reachable(self, linear_net):
        intended = install_shortest_path_routes(linear_net)
        # every switch has a route to both hosts
        assert len(intended) == 3 * 2

    def test_end_to_end_delivery(self, linear_net):
        h0, h1 = linear_net.host("h0"), linear_net.host("h1")
        from repro.net.packet import Datagram, RawPayload
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(100)))
        linear_net.run(until_seconds=0.01)
        assert len(got) == 1

    def test_intended_state_matches_tables(self, linear_net):
        intended = install_shortest_path_routes(linear_net)
        for (switch_name, mac), out_port in intended.items():
            result = linear_net.switch(switch_name).l2.lookup(mac)
            assert result is not None
            assert result.out_port == out_port

    def test_bidirectional_delivery(self, linear_net):
        from repro.net.packet import Datagram, RawPayload
        h0, h1 = linear_net.host("h0"), linear_net.host("h1")
        got = []
        h0.on_udp_port(9, lambda d, f: got.append(d))
        h1.send_datagram(h0.mac, Datagram(h1.ip, h0.ip, 1, 9,
                                          RawPayload(10)))
        linear_net.run(until_seconds=0.01)
        assert len(got) == 1

    def test_fat_tree_all_pairs(self):
        from repro.net.packet import Datagram, RawPayload
        net = TopologyBuilder().fat_tree(k=2)
        install_shortest_path_routes(net)
        src = net.host("h0")
        delivered = []
        for name, dst in net.hosts.items():
            if name == "h0":
                continue
            dst.on_udp_port(9, lambda d, f: delivered.append(d))
            src.send_datagram(dst.mac, Datagram(src.ip, dst.ip, 1, 9,
                                                RawPayload(10)))
        net.run(until_seconds=0.01)
        assert len(delivered) == len(net.hosts) - 1
