"""RED active queue management."""

import random

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.net.aqm import (
    ECN_CE,
    ECN_ECT,
    REDPolicy,
    install_red,
    mark_ce,
    red_offer,
)
from repro.net.packet import Datagram, EthernetFrame, RawPayload
from repro.net.queues import DropTailQueue


def plain_frame(size=500):
    return EthernetFrame(1, 2, 0x0800,
                         Datagram(1, 2, 3, 4, RawPayload(size - 46)))


def ect_frame(size=500):
    frame = plain_frame(size)
    frame.payload.ecn = ECN_ECT
    return frame


class TestREDPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            REDPolicy(1000, 1000)
        with pytest.raises(ConfigurationError):
            REDPolicy(1000, 2000, max_probability=0.0)
        with pytest.raises(ConfigurationError):
            REDPolicy(1000, 2000, weight=2.0)

    def test_below_min_always_admits(self):
        policy = REDPolicy(10_000, 20_000)
        queue = DropTailQueue(10**6)
        for _ in range(5):
            assert policy.on_arrival(queue, ect_frame()) == "admit"

    def test_above_max_always_acts(self):
        policy = REDPolicy(1_000, 2_000, weight=1.0)
        queue = DropTailQueue(10**6)
        for _ in range(10):
            queue.offer(plain_frame(500))
        # avg jumps straight to backlog (weight 1.0) = 5000 > max
        assert policy.on_arrival(queue, ect_frame()) == "mark"
        assert policy.on_arrival(queue, plain_frame()) == "drop"

    def test_intermediate_probabilistic(self):
        policy = REDPolicy(1_000, 10_000, max_probability=0.5,
                           weight=1.0, rng=random.Random(1))
        queue = DropTailQueue(10**6)
        for _ in range(11):
            queue.offer(plain_frame(500))  # backlog ~5000: mid-range
        actions = [policy.on_arrival(queue, ect_frame())
                   for _ in range(300)]
        marks = actions.count("mark")
        assert 20 < marks < 150  # ~0.22 probability +- randomness

    def test_ect_marked_not_dropped(self):
        policy = REDPolicy(100, 200, weight=1.0)
        queue = DropTailQueue(10**6)
        queue.offer(plain_frame(500))
        assert policy.on_arrival(queue, ect_frame()) == "mark"
        assert policy.stats.packets_marked == 1

    def test_non_ect_dropped(self):
        policy = REDPolicy(100, 200, weight=1.0)
        queue = DropTailQueue(10**6)
        queue.offer(plain_frame(500))
        assert policy.on_arrival(queue, plain_frame()) == "drop"
        assert policy.stats.packets_dropped_early == 1

    def test_average_smooths(self):
        policy = REDPolicy(1_000, 2_000, weight=0.1)
        queue = DropTailQueue(10**6)
        for _ in range(4):
            queue.offer(plain_frame(500))
        policy.on_arrival(queue, plain_frame())
        assert 0 < policy.average_bytes < queue.backlog_bytes


class TestRedOffer:
    def test_drop_counted_in_queue_stats(self):
        policy = REDPolicy(100, 200, weight=1.0)
        queue = DropTailQueue(10**6)
        queue.offer(plain_frame(500))
        assert not red_offer(queue, policy, plain_frame())
        assert queue.stats.packets_dropped == 1

    def test_mark_stamps_ce(self):
        policy = REDPolicy(100, 200, weight=1.0)
        queue = DropTailQueue(10**6)
        queue.offer(plain_frame(500))
        frame = ect_frame()
        assert red_offer(queue, policy, frame)
        assert frame.payload.ecn == ECN_CE

    def test_mark_ce_reaches_wrapped_datagram(self):
        from repro.core.assembler import assemble
        inner = Datagram(1, 2, 3, 4, RawPayload(10), ecn=ECN_ECT)
        tpp = assemble("NOP").build(payload=inner)
        frame = EthernetFrame(1, 2, 0x9999, tpp)
        mark_ce(frame)
        assert inner.ecn == ECN_CE


class TestInstallRed:
    def test_end_to_end_marking(self):
        """RED on the bottleneck port marks a DCTCP-style flow's packets
        without any datagram hook."""
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import TopologyBuilder
        from repro.endhost.flows import Flow

        capacity = 10 * units.MEGABITS_PER_SEC
        builder = TopologyBuilder(rate_bps=10 * capacity,
                                  delay_ns=units.milliseconds(1))
        net = builder.dumbbell(n_pairs=1, bottleneck_bps=capacity)
        install_shortest_path_routes(net)
        bottleneck_port = net.switch("swL").ports[0]
        adapters = install_red([bottleneck_port],
                               min_threshold_bytes=5_000,
                               max_threshold_bytes=20_000)
        h0, h1 = net.host("h0"), net.host("h1")
        marked = []
        h1.on_udp_port(9, lambda d, f: marked.append(d.ecn))

        def ect_factory(flow, size):
            datagram = flow.make_datagram(size)
            datagram.ecn = ECN_ECT
            from repro.net.packet import ETHERTYPE_IPV4
            return EthernetFrame(dst=flow.dst_mac, src=flow.src.mac,
                                 ethertype=ETHERTYPE_IPV4,
                                 payload=datagram)

        flow = Flow(h0, h1, h1.mac, 9, rate_bps=3 * capacity,
                    frame_factory=ect_factory)
        flow.start()
        net.run(until_seconds=0.5)
        flow.stop()
        assert ECN_CE in marked          # congestion was signalled
        assert ECN_ECT in marked         # but not on every packet (RED)
        assert adapters[0].policy.stats.packets_marked > 0

    def test_uncongested_port_untouched(self):
        from repro.net.routing import install_shortest_path_routes
        from repro.net.topology import TopologyBuilder

        builder = TopologyBuilder()
        net = builder.star(2)
        install_shortest_path_routes(net)
        install_red(net.switch("sw0").ports, 5_000, 20_000)
        h0, h1 = net.host("h0"), net.host("h1")
        seen = []
        h1.on_udp_port(9, lambda d, f: seen.append(d.ecn))
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(10), ecn=ECN_ECT))
        net.run(until_seconds=0.01)
        assert seen == [ECN_ECT]
