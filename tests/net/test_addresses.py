"""MAC/IPv4 formatting and parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.net import addresses


class TestMac:
    def test_format(self):
        assert addresses.format_mac(0x0200_0000_0001) == "02:00:00:00:00:01"

    def test_parse(self):
        assert addresses.parse_mac("02:00:00:00:00:01") == 0x0200_0000_0001

    def test_round_trip(self):
        mac = 0xDEAD_BEEF_CAFE
        assert addresses.parse_mac(addresses.format_mac(mac)) == mac

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            addresses.format_mac(1 << 48)

    def test_parse_rejects_short(self):
        with pytest.raises(ConfigurationError):
            addresses.parse_mac("02:00:00")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            addresses.parse_mac("zz:00:00:00:00:01")

    def test_host_and_switch_macs_disjoint(self):
        hosts = {addresses.host_mac(i) for i in range(100)}
        switches = {addresses.switch_mac(i) for i in range(100)}
        assert not hosts & switches


class TestIpv4:
    def test_format(self):
        assert addresses.format_ipv4(0x0A000001) == "10.0.0.1"

    def test_parse(self):
        assert addresses.parse_ipv4("10.0.0.1") == 0x0A000001

    def test_round_trip(self):
        ip = 0xC0A80164
        assert addresses.parse_ipv4(addresses.format_ipv4(ip)) == ip

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            addresses.format_ipv4(1 << 32)

    def test_parse_rejects_short(self):
        with pytest.raises(ConfigurationError):
            addresses.parse_ipv4("10.0.0")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            addresses.parse_ipv4("a.b.c.d")
