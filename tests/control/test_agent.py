"""Control-plane agent: network-wide SRAM and register allocation."""

import pytest

from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import (
    LINK_SCRATCH_BASE,
    LINK_SCRATCH_SLOTS,
    SRAM_BASE,
    MemoryMap,
)
from repro.errors import ConfigurationError


@pytest.fixture
def agent(linear_net):
    switches = list(linear_net.switches.values())
    return ControlPlaneAgent(switches, memory_map=MemoryMap.standard())


class TestTasks:
    def test_task_ids_unique(self, agent):
        a = agent.create_task("rcp")
        b = agent.create_task("ndb")
        assert a.task_id != b.task_id

    def test_duplicate_task_rejected(self, agent):
        agent.create_task("rcp")
        with pytest.raises(ConfigurationError):
            agent.create_task("rcp")

    def test_task_lookup(self, agent):
        allocation = agent.create_task("rcp")
        assert agent.task("rcp") is allocation


class TestSramAllocation:
    def test_same_address_on_every_switch(self, agent, linear_net):
        agent.create_task("rcp")
        vaddr = agent.allocate_sram("rcp", "counter", n_words=2)
        word = vaddr - SRAM_BASE
        task_id = agent.task("rcp").task_id
        for switch in linear_net.switches.values():
            assert switch.mmu.sram_owner(word) == task_id

    def test_nonoverlapping_across_tasks(self, agent):
        """§3.2: RCP and ndb get disjoint SRAM."""
        agent.create_task("rcp")
        agent.create_task("ndb")
        a = agent.allocate_sram("rcp", "x", n_words=4)
        b = agent.allocate_sram("ndb", "y", n_words=4)
        assert abs(a - b) >= 4

    def test_allocation_recorded(self, agent):
        agent.create_task("rcp")
        vaddr = agent.allocate_sram("rcp", "x")
        assert agent.task("rcp").sram_vaddr("x") == vaddr

    def test_release_frees_on_all_switches(self, agent, linear_net):
        agent.create_task("rcp")
        vaddr = agent.allocate_sram("rcp", "x")
        word = vaddr - SRAM_BASE
        agent.release_task("rcp")
        for switch in linear_net.switches.values():
            assert switch.mmu.sram_owner(word) is None

    def test_exhaustion(self, agent):
        agent.create_task("big")
        with pytest.raises(ConfigurationError):
            agent.allocate_sram("big", "x", n_words=10_000)


class TestLinkRegisters:
    def test_allocation_and_mnemonic(self, agent):
        agent.create_task("rcp")
        vaddr = agent.allocate_link_register(
            "rcp", "rate", mnemonic="Link:RCP-RateRegister")
        assert vaddr == LINK_SCRATCH_BASE
        assert agent.memory_map.resolve("Link:RCP-RateRegister") == vaddr

    def test_distinct_slots(self, agent):
        agent.create_task("rcp")
        a = agent.allocate_link_register("rcp", "rate")
        b = agent.allocate_link_register("rcp", "ts")
        assert a != b

    def test_slot_exhaustion(self, agent):
        agent.create_task("rcp")
        for i in range(LINK_SCRATCH_SLOTS):
            agent.allocate_link_register("rcp", f"r{i}")
        with pytest.raises(ConfigurationError):
            agent.allocate_link_register("rcp", "overflow")

    def test_initialize_to_capacity(self, agent, linear_net):
        """Footnote 3: initialize each link's fair share to capacity."""
        agent.create_task("rcp")
        vaddr = agent.allocate_link_register("rcp", "rate")
        agent.initialize_link_register(
            vaddr, lambda switch, port: switch.ports[port].rate_bps // 1000)
        slot = vaddr - LINK_SCRATCH_BASE
        for switch in linear_net.switches.values():
            for port in switch.ports:
                expected = port.rate_bps // 1000
                assert switch.mmu.peek_link_scratch(
                    port.index, slot) == expected

    def test_initialize_rejects_non_register(self, agent):
        with pytest.raises(ConfigurationError):
            agent.initialize_link_register(0xB000, lambda s, p: 0)

    def test_initialize_sram(self, agent, linear_net):
        agent.create_task("t")
        vaddr = agent.allocate_sram("t", "x")
        agent.initialize_sram(vaddr, 42)
        for switch in linear_net.switches.values():
            assert switch.mmu.peek_sram(vaddr - SRAM_BASE) == 42

    def test_initialize_sram_rejects_bad_address(self, agent):
        with pytest.raises(ConfigurationError):
            agent.initialize_sram(0xC000, 1)


class TestIsolationEnforcement:
    def test_enforcement_flag_propagates(self, linear_net):
        switches = list(linear_net.switches.values())
        ControlPlaneAgent(switches, enforce_isolation=True)
        assert all(s.mmu.enforce_sram_protection for s in switches)

    def test_foreign_task_tpp_faults(self, linear_net):
        """A TPP carrying the wrong task id cannot touch another task's
        SRAM when isolation is on (§3.2 / §4)."""
        from repro.core.assembler import assemble
        from repro.core.exceptions import FaultCode
        from repro.endhost.client import TPPEndpoint

        switches = list(linear_net.switches.values())
        agent = ControlPlaneAgent(switches, enforce_isolation=True)
        rcp = agent.create_task("rcp")
        ndb = agent.create_task("ndb")
        agent.allocate_sram("rcp", "private")  # word 0

        program = assemble(".memory 1\nSTORE [Sram:Word0], [Packet:0]")
        h0, h1 = linear_net.host("h0"), linear_net.host("h1")
        results = []
        TPPEndpoint(h0).send(program, dst_mac=h1.mac, task_id=ndb.task_id,
                             on_response=results.append)
        TPPEndpoint(h1)
        linear_net.run(until_seconds=0.01)
        assert results[0].fault == FaultCode.SRAM_PROTECTION
