"""Edge security: stripping and dropping TPPs from untrusted sources."""

import pytest

from repro.control.security import EdgeTPPPolicy, TaskQuotaPolicy
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.packet import Datagram, RawPayload


class TestEdgeTPPPolicy:
    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            EdgeTPPPolicy(untrusted_action="execute")

    def test_trust_marking(self):
        policy = EdgeTPPPolicy()
        policy.mark_untrusted("sw0", 1)
        assert policy.is_untrusted("sw0", 1)
        policy.mark_trusted("sw0", 1)
        assert not policy.is_untrusted("sw0", 1)

    def test_trusted_port_executes(self, single_switch_net):
        net = single_switch_net
        policy = EdgeTPPPolicy()
        net.switch("sw0").tpp_policy = policy
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h1.mac, on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert results[0].hops() == 1

    def test_untrusted_probe_stripped_and_dropped(self, single_switch_net):
        """A bare probe from an untrusted port has nothing inside to
        forward, so stripping discards it entirely."""
        net = single_switch_net
        switch = net.switch("sw0")
        policy = EdgeTPPPolicy(untrusted_action="strip")
        in_port = [local for local, peer, _ in net.adjacency()["sw0"]
                   if peer == "h0"][0]
        policy.mark_untrusted("sw0", in_port)
        switch.tpp_policy = policy
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h1.mac, on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert results == []
        assert switch.tpps_stripped == 1

    def test_untrusted_wrapped_data_still_delivered(self,
                                                    single_switch_net):
        """Stripping a tenant's TPP must not break their traffic: the
        encapsulated packet is forwarded normally (§4)."""
        net = single_switch_net
        switch = net.switch("sw0")
        policy = EdgeTPPPolicy(untrusted_action="strip")
        in_port = [local for local, peer, _ in net.adjacency()["sw0"]
                   if peer == "h0"][0]
        policy.mark_untrusted("sw0", in_port)
        switch.tpp_policy = policy

        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append((d, f)))
        inner = Datagram(h0.ip, h1.ip, 1, 9, RawPayload(50))
        endpoint = TPPEndpoint(h0)
        endpoint.send(assemble("PUSH [Switch:SwitchID]"), dst_mac=h1.mac,
                      payload=inner)
        net.run(until_seconds=0.01)
        datagram, frame = got[0]
        assert datagram is inner
        from repro.net.packet import ETHERTYPE_IPV4
        assert frame.ethertype == ETHERTYPE_IPV4  # TPP section removed
        assert switch.tcpu.tpps_executed == 0

    def test_drop_action(self, single_switch_net):
        net = single_switch_net
        switch = net.switch("sw0")
        policy = EdgeTPPPolicy(untrusted_action="drop")
        in_port = [local for local, peer, _ in net.adjacency()["sw0"]
                   if peer == "h0"][0]
        policy.mark_untrusted("sw0", in_port)
        switch.tpp_policy = policy
        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        inner = Datagram(h0.ip, h1.ip, 1, 9, RawPayload(50))
        TPPEndpoint(h0).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h1.mac, payload=inner)
        net.run(until_seconds=0.01)
        assert got == []  # whole packet gone
        assert switch.tpps_dropped == 1

    def test_core_switch_stays_trusted(self, linear_net):
        """Only the edge strips; TPPs entering via trusted core ports
        execute normally."""
        net = linear_net
        policy = EdgeTPPPolicy()
        # Untrust only sw0's host-facing port.
        in_port = [local for local, peer, _ in net.adjacency()["sw0"]
                   if peer == "h0"][0]
        policy.mark_untrusted("sw0", in_port)
        for name in net.switches:
            net.switch(name).tpp_policy = policy
        # h1's TPP (entering at sw2, a trusted port) still executes on
        # every switch.  It wraps a data packet so delivery at h0 does not
        # depend on an echo crossing the untrusted edge back out.
        h0, h1 = net.host("h0"), net.host("h1")
        seen = []
        endpoint_h0 = TPPEndpoint(h0)
        endpoint_h0.add_tap(lambda tpp, frame: seen.append(tpp))
        h0.on_udp_port(9, lambda d, f: None)
        inner = Datagram(h1.ip, h0.ip, 1, 9, RawPayload(10))
        TPPEndpoint(h1).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h0.mac, payload=inner)
        net.run(until_seconds=0.01)
        assert seen[0].hops_executed() == 3


class TestTaskQuotaPolicy:
    def test_admitted_task_executes(self, single_switch_net):
        net = single_switch_net
        policy = TaskQuotaPolicy()
        policy.admit(5)
        net.switch("sw0").tpp_policy = policy
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h1.mac, task_id=5,
                             on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert results[0].hops() == 1

    def test_unadmitted_task_stripped(self, single_switch_net):
        net = single_switch_net
        policy = TaskQuotaPolicy(default_action="strip")
        net.switch("sw0").tpp_policy = policy
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h1.mac, task_id=5,
                             on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert results == []

    def test_revoke(self):
        policy = TaskQuotaPolicy()
        policy.admit(1)
        policy.revoke(1)
        assert policy.action_for(None, 0, type("T", (), {"task_id": 1})()
                                 ) == "strip"

    def test_forward_action_carries_without_executing(
            self, single_switch_net):
        net = single_switch_net
        policy = TaskQuotaPolicy(default_action="forward")
        switch = net.switch("sw0")
        switch.tpp_policy = policy
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble("PUSH [Switch:SwitchID]"),
                             dst_mac=h1.mac, on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        # Echoed back with zero hops executed.
        assert results[0].hops() == 0
        assert switch.tcpu.tpps_executed == 0

    def test_bad_default_action_rejected(self):
        with pytest.raises(ValueError):
            TaskQuotaPolicy(default_action="execute")


class TestVerifierPolicy:
    GOOD = "PUSH [Switch:SwitchID]"
    BAD = "POP [Sram:Word0]"  # underflows immediately

    def wire(self, net, action="strip"):
        from repro.control.security import VerifierPolicy
        policy = VerifierPolicy(untrusted_action=action)
        in_port = [local for local, peer, _ in net.adjacency()["sw0"]
                   if peer == "h0"][0]
        policy.mark_untrusted("sw0", in_port)
        net.switch("sw0").tpp_policy = policy
        return policy

    def test_invalid_action_rejected(self):
        from repro.control.security import VerifierPolicy
        with pytest.raises(ValueError):
            VerifierPolicy(untrusted_action="execute")

    def test_safe_program_executes(self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net)
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble(self.GOOD), dst_mac=h1.mac,
                             on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert results[0].hops() == 1
        assert policy.tpps_admitted >= 1
        assert policy.tpps_rejected == 0

    def test_unsafe_program_stripped(self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net)
        switch = net.switch("sw0")
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble(self.BAD), dst_mac=h1.mac,
                             on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert results == []
        assert policy.tpps_rejected == 1
        assert switch.tpps_stripped == 1
        assert switch.tcpu.tpps_executed == 0

    def test_unsafe_program_dropped(self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net, action="drop")
        switch = net.switch("sw0")
        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        inner = Datagram(h0.ip, h1.ip, 1, 9, RawPayload(50))
        TPPEndpoint(h0).send(assemble(self.BAD), dst_mac=h1.mac,
                             payload=inner)
        net.run(until_seconds=0.01)
        assert got == []
        assert switch.tpps_dropped == 1

    def test_trusted_port_skips_verification(self, single_switch_net):
        from repro.control.security import VerifierPolicy
        net = single_switch_net
        policy = VerifierPolicy()  # no ports marked untrusted
        net.switch("sw0").tpp_policy = policy
        results = []
        h0, h1 = net.host("h0"), net.host("h1")
        # Even the bad program executes (and faults at runtime): the
        # policy only verifies untrusted ingress.
        TPPEndpoint(h0).send(assemble(self.BAD), dst_mac=h1.mac,
                             on_response=results.append)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert policy.tpps_verified == 0
        assert len(results) == 1

    def test_verdicts_cached_per_program(self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net)
        h0, h1 = net.host("h0"), net.host("h1")
        client, _ = TPPEndpoint(h0), TPPEndpoint(h1)
        program = assemble(self.GOOD)
        for _ in range(4):
            client.send(program, dst_mac=h1.mac)
        net.run(until_seconds=0.01)
        assert policy.tpps_admitted == 4
        assert policy.tpps_verified == 1  # one analysis, memoized

    def test_trust_on_admit_feeds_verified_fastpath(self,
                                                    single_switch_net):
        net = single_switch_net
        policy = self.wire(net)
        switch = net.switch("sw0")
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble(self.GOOD), dst_mac=h1.mac)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert switch.tcpu.certificates == 1
        if switch.tcpu.compile_enabled:
            assert switch.tcpu.verified_executions >= 1

    def test_trust_on_admit_disabled(self, single_switch_net):
        from repro.control.security import VerifierPolicy
        net = single_switch_net
        policy = VerifierPolicy(trust_on_admit=False)
        in_port = [local for local, peer, _ in net.adjacency()["sw0"]
                   if peer == "h0"][0]
        policy.mark_untrusted("sw0", in_port)
        switch = net.switch("sw0")
        switch.tpp_policy = policy
        h0, h1 = net.host("h0"), net.host("h1")
        TPPEndpoint(h0).send(assemble(self.GOOD), dst_mac=h1.mac)
        TPPEndpoint(h1)
        net.run(until_seconds=0.01)
        assert switch.tcpu.certificates == 0
        assert switch.tcpu.verified_executions == 0


class TestVerifierPolicyRaces:
    """Fleet-level race gating at the admission point."""

    # Verifier-clean individually; a TPP020 write-write race as a pair.
    WRITER_A = ".memory 1\nSTORE [Sram:Word0], [Packet:0]"
    WRITER_B = ".memory 2\nSTORE [Sram:Word0], [Packet:1]"

    def wire(self, net, race_mode="warn"):
        from repro.control.security import VerifierPolicy
        policy = VerifierPolicy(race_mode=race_mode)
        in_port = [local for local, peer, _ in net.adjacency()["sw0"]
                   if peer == "h0"][0]
        policy.mark_untrusted("sw0", in_port)
        net.switch("sw0").tpp_policy = policy
        return policy

    def test_invalid_race_mode_rejected(self):
        from repro.control.security import VerifierPolicy
        with pytest.raises(ValueError):
            VerifierPolicy(race_mode="paranoid")

    def test_warn_mode_admits_racy_fleet_and_reports(
            self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net)
        switch = net.switch("sw0")
        h0, h1 = net.host("h0"), net.host("h1")
        client, _ = TPPEndpoint(h0), TPPEndpoint(h1)
        client.send(assemble(self.WRITER_A), dst_mac=h1.mac)
        client.send(assemble(self.WRITER_B), dst_mac=h1.mac)
        net.run(until_seconds=0.01)
        assert policy.tpps_admitted == 2
        assert policy.tpps_rejected == 0
        assert policy.tpps_racy == 1  # second arrival saw the race
        assert switch.tcpu.tpps_executed == 2
        report = policy.race_report()
        assert "TPP020" in report
        assert "mode warn" in report

    def test_enforce_mode_strips_racing_arrival(self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net, race_mode="enforce")
        switch = net.switch("sw0")
        h0, h1 = net.host("h0"), net.host("h1")
        client, _ = TPPEndpoint(h0), TPPEndpoint(h1)
        client.send(assemble(self.WRITER_A), dst_mac=h1.mac)
        net.run(until_seconds=0.01)
        client.send(assemble(self.WRITER_B), dst_mac=h1.mac)
        net.run(until_seconds=0.02)
        assert policy.tpps_admitted == 1
        assert policy.tpps_racy == 1
        assert policy.tpps_rejected == 1
        assert switch.tpps_stripped == 1
        assert switch.tcpu.tpps_executed == 1
        assert len(policy.fleet) == 1

    def test_revoke_readmits_former_rival(self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net, race_mode="enforce")
        switch = net.switch("sw0")
        h0, h1 = net.host("h0"), net.host("h1")
        client, _ = TPPEndpoint(h0), TPPEndpoint(h1)
        incumbent = assemble(self.WRITER_A)
        client.send(incumbent, dst_mac=h1.mac)
        net.run(until_seconds=0.01)
        client.send(assemble(self.WRITER_B), dst_mac=h1.mac)
        net.run(until_seconds=0.02)
        assert policy.tpps_rejected == 1
        # Retire the incumbent; its rival must now admit cleanly —
        # the fleet analysis is re-run per arrival.
        assert policy.revoke(incumbent.build(), switch=switch)
        assert len(policy.fleet) == 0
        assert switch.tcpu.certificates == 0
        client.send(assemble(self.WRITER_B), dst_mac=h1.mac)
        net.run(until_seconds=0.03)
        assert policy.tpps_admitted == 2
        assert policy.tpps_rejected == 1  # unchanged
        assert len(policy.fleet) == 1

    def test_off_mode_skips_fleet_analysis(self, single_switch_net):
        net = single_switch_net
        policy = self.wire(net, race_mode="off")
        h0, h1 = net.host("h0"), net.host("h1")
        client, _ = TPPEndpoint(h0), TPPEndpoint(h1)
        client.send(assemble(self.WRITER_A), dst_mac=h1.mac)
        client.send(assemble(self.WRITER_B), dst_mac=h1.mac)
        net.run(until_seconds=0.01)
        assert policy.tpps_admitted == 2
        assert policy.tpps_racy == 0
        assert len(policy.fleet) == 0
