"""Command-line tools."""

import pytest

from repro.tools import run_experiment, tppasm


class TestTppasmAssemble:
    def test_assemble_from_file(self, tmp_path, capsys):
        source = tmp_path / "probe.tpp"
        source.write_text("PUSH [Queue:QueueSize]\n")
        assert tppasm.main(["assemble", str(source), "--hops", "3"]) == 0
        out = capsys.readouterr().out
        assert "instructions: 1 (4 bytes)" in out
        assert "wire bytes:" in out

    def test_assemble_with_symbols(self, tmp_path, capsys):
        source = tmp_path / "update.tpp"
        source.write_text(
            "CEXEC [Switch:SwitchID], 0xFFFFFFFF, $Target\n")
        code = tppasm.main(["assemble", str(source),
                            "--symbols", "Target=7"])
        assert code == 0

    def test_assemble_error_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.tpp"
        source.write_text("FROB [Queue:QueueSize]\n")
        assert tppasm.main(["assemble", str(source)]) == 1
        assert "assembly error" in capsys.readouterr().err

    def test_bad_symbol_syntax(self, tmp_path):
        source = tmp_path / "x.tpp"
        source.write_text("NOP\n")
        with pytest.raises(SystemExit):
            tppasm.main(["assemble", str(source), "--symbols", "oops"])


class TestTppasmRoundTrip:
    def test_assemble_then_disassemble(self, tmp_path, capsys):
        source = tmp_path / "probe.tpp"
        source.write_text("PUSH [Switch:SwitchID]\n")
        tppasm.main(["assemble", str(source), "--hops", "2"])
        out = capsys.readouterr().out
        hex_lines = [line.split(":", 1)[1].strip()
                     for line in out.splitlines()
                     if line.strip().startswith(("0000:", "0010:",
                                                 "0020:"))]
        hexbytes = "".join(hex_lines).replace(" ", "")
        assert tppasm.main(["disassemble", hexbytes]) == 0
        out = capsys.readouterr().out
        assert "PUSH [Switch:SwitchID]" in out

    def test_disassemble_garbage(self, capsys):
        assert tppasm.main(["disassemble", "deadbeef"]) == 1
        assert "decode error" in capsys.readouterr().err


class TestTppasmMemmap:
    def test_memmap_lists_namespaces(self, capsys):
        assert tppasm.main(["memmap"]) == 0
        out = capsys.readouterr().out
        assert "Queue:QueueSize" in out
        assert "Switch:SwitchID" in out
        assert "Link:RX-Utilization" in out
        assert "Sram:Word0..Word1023" in out


class TestRunExperiment:
    def test_fig1(self, capsys):
        assert run_experiment.main(["fig1", "--switches", "2"]) == 0
        out = capsys.readouterr().out
        assert "hop 0" in out and "hop 1" in out

    def test_microburst(self, capsys):
        assert run_experiment.main(
            ["microburst", "--duration", "0.3"]) == 0
        assert "micro-bursts detected" in capsys.readouterr().out

    def test_ndb(self, capsys):
        assert run_experiment.main(["ndb"]) == 0
        out = capsys.readouterr().out
        assert "violations:" in out
        assert "wrong-path" in out or "unknown-rule" in out

    def test_fig2_short(self, capsys):
        assert run_experiment.main(["fig2", "--duration", "1.5"]) == 0
        assert "R(t)/C" in capsys.readouterr().out
