"""Command-line tools."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.tools import run_experiment, tppasm

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_run_bench():
    """Import tools/run_bench.py (it lives outside the package tree)."""
    spec = importlib.util.spec_from_file_location(
        "run_bench", REPO_ROOT / "tools" / "run_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_report(schema="simcore-bench/v3", scale=1.0, **overrides):
    """A synthetic, well-formed bench report for validator/compare tests."""
    workloads = {
        "event_core": {"events_per_sec": 1e6 * scale,
                       "legacy_events_per_sec": 5e5 * scale,
                       "speedup_vs_dataclass_heap": 2.0},
        "event_loop": {"events_per_sec": 4e5 * scale,
                       "events_processed": 100000},
        "packet_forwarding": {"packets_per_sec_wall": 1e4 * scale,
                              "packet_hops_per_sec_wall": 3e4 * scale,
                              "packets_received": 5000},
        "tpp_exec": {"tpp_execs_per_sec": 2e5 * scale,
                     "instructions_per_sec": 4e5 * scale,
                     "interp_execs_per_sec": 1e5 * scale,
                     "speedup_vs_interpreter": 2.0},
        "tpp_exec_cached": {"tpp_execs_per_sec": 4e5 * scale,
                            "instructions_per_sec": 8e5 * scale},
        "tpp_exec_verified": {"tpp_execs_per_sec": 5e5 * scale,
                              "instructions_per_sec": 1e6 * scale,
                              "unverified_execs_per_sec": 4e5 * scale,
                              "speedup_vs_unverified": 1.25,
                              "verified_executions": 200000},
    }
    report = {"schema": schema, "quick": False, "seed": 1,
              "timestamp": 1_800_000_000.0,
              "timestamp_iso": "2027-01-15T08:00:00+00:00",
              "workloads": workloads}
    if schema in ("simcore-bench/v4", "simcore-bench/v5",
                  "simcore-bench/v6", "simcore-bench/v7"):
        workloads["tpp_exec_batched"] = {
            "tpp_execs_per_sec": 1.5e6 * scale,
            "instructions_per_sec": 3e6 * scale,
            "scalar_execs_per_sec": 2e5 * scale,
            "speedup_vs_scalar": 7.5}
    if schema in ("simcore-bench/v5", "simcore-bench/v6",
                  "simcore-bench/v7"):
        workloads["fleet_scale"] = {
            "packets_per_sec_modeled": 8e4 * scale,
            "flows_per_sec_modeled": 2e5 * scale,
            "speedup_vs_one_shard": 3.0,
            "bit_identical": 1}
    if schema in ("simcore-bench/v6", "simcore-bench/v7"):
        workloads["tpp_exec_batched_write"] = {
            "tpp_execs_per_sec": 1e6 * scale,
            "instructions_per_sec": 2e6 * scale,
            "scalar_execs_per_sec": 2e5 * scale,
            "speedup_vs_scalar": 5.0,
            "vector_write_batches": 6000}
    if schema == "simcore-bench/v7":
        workloads["tpp_exec_sketch"] = {
            "tpp_execs_per_sec": 9e5 * scale,
            "instructions_per_sec": 4.5e6 * scale,
            "scalar_execs_per_sec": 1.5e5 * scale,
            "speedup_vs_scalar": 6.0,
            "vector_write_batches": 6000}
    if schema in ("simcore-bench/v1", "simcore-bench/v2"):
        del workloads["tpp_exec_verified"]
    if schema == "simcore-bench/v1":
        del report["timestamp_iso"]
        del workloads["tpp_exec_cached"]
        for key in ("interp_execs_per_sec", "speedup_vs_interpreter"):
            del workloads["tpp_exec"][key]
    report.update(overrides)
    return report


class TestRunBenchValidate:
    def test_v3_report_valid(self):
        assert load_run_bench().validate(bench_report()) == []

    def test_v2_report_still_valid(self):
        """v2 baselines (no tpp_exec_verified workload) keep validating."""
        report = bench_report(schema="simcore-bench/v2")
        assert load_run_bench().validate(report) == []

    def test_v3_requires_verified_workload(self):
        report = bench_report()
        del report["workloads"]["tpp_exec_verified"]
        problems = load_run_bench().validate(report)
        assert any("tpp_exec_verified" in p for p in problems)

    def test_v1_report_still_valid(self):
        """Historical baselines (schema v1, no timestamp_iso, no cached
        workload) must keep validating."""
        report = bench_report(schema="simcore-bench/v1")
        assert load_run_bench().validate(report) == []

    def test_v5_report_valid(self):
        report = bench_report(schema="simcore-bench/v5")
        assert load_run_bench().validate(report) == []

    def test_v5_requires_fleet_workload(self):
        report = bench_report(schema="simcore-bench/v5")
        del report["workloads"]["fleet_scale"]
        problems = load_run_bench().validate(report)
        assert any("fleet_scale" in p for p in problems)

    def test_v5_diverged_fingerprints_rejected(self):
        """bit_identical doubles as the determinism gate: a 0 means the
        1- and 4-shard runs disagreed, and the report must not pass."""
        report = bench_report(schema="simcore-bench/v5")
        report["workloads"]["fleet_scale"]["bit_identical"] = 0
        problems = load_run_bench().validate(report)
        assert any("bit_identical" in p for p in problems)

    def test_v6_report_valid(self):
        report = bench_report(schema="simcore-bench/v6")
        assert load_run_bench().validate(report) == []

    def test_v6_requires_write_batch_workload(self):
        report = bench_report(schema="simcore-bench/v6")
        del report["workloads"]["tpp_exec_batched_write"]
        problems = load_run_bench().validate(report)
        assert any("tpp_exec_batched_write" in p for p in problems)

    def test_v7_report_valid(self):
        report = bench_report(schema="simcore-bench/v7")
        assert load_run_bench().validate(report) == []

    def test_v7_requires_sketch_workload(self):
        report = bench_report(schema="simcore-bench/v7")
        del report["workloads"]["tpp_exec_sketch"]
        problems = load_run_bench().validate(report)
        assert any("tpp_exec_sketch" in p for p in problems)

    def test_unknown_schema_rejected(self):
        problems = load_run_bench().validate(
            bench_report(schema="simcore-bench/v99"))
        assert any("schema" in p for p in problems)

    def test_v2_requires_iso_timestamp(self):
        problems = load_run_bench().validate(
            bench_report(timestamp_iso="yesterday-ish"))
        assert any("timestamp_iso" in p for p in problems)

    def test_v2_requires_cached_workload(self):
        report = bench_report()
        del report["workloads"]["tpp_exec_cached"]
        problems = load_run_bench().validate(report)
        assert any("tpp_exec_cached" in p for p in problems)

    def test_nonpositive_metric_rejected(self):
        report = bench_report()
        report["workloads"]["tpp_exec"]["tpp_execs_per_sec"] = 0
        problems = load_run_bench().validate(report)
        assert any("tpp_exec.tpp_execs_per_sec" in p for p in problems)


class TestRunBenchCompare:
    def write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_improvement_passes(self, tmp_path, capsys):
        run_bench = load_run_bench()
        old = self.write(tmp_path, "old.json", bench_report())
        new = self.write(tmp_path, "new.json", bench_report(scale=1.5))
        assert run_bench.main(["--compare", old, new]) == 0
        assert "REGRESSION" not in capsys.readouterr().out

    def test_small_regression_tolerated(self, tmp_path):
        run_bench = load_run_bench()
        old = self.write(tmp_path, "old.json", bench_report())
        new = self.write(tmp_path, "new.json", bench_report(scale=0.95))
        assert run_bench.main(["--compare", old, new]) == 0

    def test_large_regression_fails(self, tmp_path, capsys):
        run_bench = load_run_bench()
        old = self.write(tmp_path, "old.json", bench_report())
        new = self.write(tmp_path, "new.json", bench_report(scale=0.8))
        assert run_bench.main(["--compare", old, new]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regressed beyond" in captured.err

    def test_per_workload_noise_floor(self, tmp_path, capsys):
        """A 15% drop on the (noisy) batched workload is inside its 20%
        floor, while the same drop on event_core (10% floor) regresses —
        one global tolerance cannot express both."""
        run_bench = load_run_bench()
        old_report = bench_report(schema="simcore-bench/v6")
        noisy_only = bench_report(schema="simcore-bench/v6")
        for name in ("tpp_exec_batched", "tpp_exec_batched_write"):
            for metric in noisy_only["workloads"][name]:
                if metric != "vector_write_batches":
                    noisy_only["workloads"][name][metric] *= 0.85
        old = self.write(tmp_path, "old.json", old_report)
        new = self.write(tmp_path, "new.json", noisy_only)
        assert run_bench.main(["--compare", old, new]) == 0

        quiet_hit = bench_report(schema="simcore-bench/v6")
        quiet_hit["workloads"]["event_core"]["events_per_sec"] *= 0.85
        new = self.write(tmp_path, "new2.json", quiet_hit)
        assert run_bench.main(["--compare", old, new]) == 1
        captured = capsys.readouterr()
        assert "event_core" in captured.err
        assert "floor 10%" in captured.out

    def test_v1_baseline_skips_missing_workloads(self, tmp_path, capsys):
        """Comparing v2 against a v1 baseline skips tpp_exec_cached
        instead of counting it as a regression."""
        run_bench = load_run_bench()
        old = self.write(tmp_path, "old.json",
                         bench_report(schema="simcore-bench/v1"))
        new = self.write(tmp_path, "new.json", bench_report())
        assert run_bench.main(["--compare", old, new]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_v4_baseline_accepts_v5_report(self, tmp_path, capsys):
        """A committed v4 baseline still gates a v5 run: fleet_scale is
        one-sided, so it is reported as skipped, never as a regression."""
        run_bench = load_run_bench()
        old = self.write(tmp_path, "old.json",
                         bench_report(schema="simcore-bench/v4"))
        new = self.write(tmp_path, "new.json",
                         bench_report(schema="simcore-bench/v5", scale=1.1))
        assert run_bench.main(["--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "fleet_scale" in out and "skipped" in out

    def test_unreadable_report_fails(self, tmp_path, capsys):
        run_bench = load_run_bench()
        old = self.write(tmp_path, "old.json", bench_report())
        assert run_bench.main(
            ["--compare", old, str(tmp_path / "missing.json")]) == 1
        assert "unreadable" in capsys.readouterr().err


class TestTppasmAssemble:
    def test_assemble_from_file(self, tmp_path, capsys):
        source = tmp_path / "probe.tpp"
        source.write_text("PUSH [Queue:QueueSize]\n")
        assert tppasm.main(["assemble", str(source), "--hops", "3"]) == 0
        out = capsys.readouterr().out
        assert "instructions: 1 (4 bytes)" in out
        assert "wire bytes:" in out

    def test_assemble_with_symbols(self, tmp_path, capsys):
        source = tmp_path / "update.tpp"
        source.write_text(
            "CEXEC [Switch:SwitchID], 0xFFFFFFFF, $Target\n")
        code = tppasm.main(["assemble", str(source),
                            "--symbols", "Target=7"])
        assert code == 0

    def test_assemble_error_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.tpp"
        source.write_text("FROB [Queue:QueueSize]\n")
        assert tppasm.main(["assemble", str(source)]) == 1
        assert "assembly error" in capsys.readouterr().err

    def test_bad_symbol_syntax(self, tmp_path):
        source = tmp_path / "x.tpp"
        source.write_text("NOP\n")
        with pytest.raises(SystemExit):
            tppasm.main(["assemble", str(source), "--symbols", "oops"])


class TestTppasmRoundTrip:
    def test_assemble_then_disassemble(self, tmp_path, capsys):
        source = tmp_path / "probe.tpp"
        source.write_text("PUSH [Switch:SwitchID]\n")
        tppasm.main(["assemble", str(source), "--hops", "2"])
        out = capsys.readouterr().out
        hex_lines = [line.split(":", 1)[1].strip()
                     for line in out.splitlines()
                     if line.strip().startswith(("0000:", "0010:",
                                                 "0020:"))]
        hexbytes = "".join(hex_lines).replace(" ", "")
        assert tppasm.main(["disassemble", hexbytes]) == 0
        out = capsys.readouterr().out
        assert "PUSH [Switch:SwitchID]" in out

    def test_disassemble_garbage(self, capsys):
        assert tppasm.main(["disassemble", "deadbeef"]) == 1
        assert "decode error" in capsys.readouterr().err


class TestTppasmMemmap:
    def test_memmap_lists_namespaces(self, capsys):
        assert tppasm.main(["memmap"]) == 0
        out = capsys.readouterr().out
        assert "Queue:QueueSize" in out
        assert "Switch:SwitchID" in out
        assert "Link:RX-Utilization" in out
        assert "Sram:Word0..Word1023" in out


class TestRunExperiment:
    def test_fig1(self, capsys):
        assert run_experiment.main(["fig1", "--switches", "2"]) == 0
        out = capsys.readouterr().out
        assert "hop 0" in out and "hop 1" in out

    def test_microburst(self, capsys):
        assert run_experiment.main(
            ["microburst", "--duration", "0.3"]) == 0
        assert "micro-bursts detected" in capsys.readouterr().out

    def test_ndb(self, capsys):
        assert run_experiment.main(["ndb"]) == 0
        out = capsys.readouterr().out
        assert "violations:" in out
        assert "wrong-path" in out or "unknown-rule" in out

    def test_fig2_short(self, capsys):
        assert run_experiment.main(["fig2", "--duration", "1.5"]) == 0
        assert "R(t)/C" in capsys.readouterr().out


class TestTppasmLint:
    GOOD = "PUSH [Queue:QueueSize]\n"
    BAD = "POP [Sram:Word0]\n"  # stack underflow (TPP003)
    WARN = "CEXEC [Switch:SwitchID], 0x0F, 0xFF\nNOP\n"  # dead code

    def write(self, tmp_path, text, name="prog.tpp"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_clean_program_exits_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, self.GOOD)
        assert tppasm.main(["lint", path, "--hops", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified: 0 error(s)" in out

    def test_bad_program_exits_one_with_code(self, tmp_path, capsys):
        path = self.write(tmp_path, self.BAD)
        assert tppasm.main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "TPP003" in out
        assert f"{path}:1:" in out  # file:line diagnostics

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        path = self.write(tmp_path, self.WARN)
        assert tppasm.main(["lint", path]) == 0
        capsys.readouterr()
        assert tppasm.main(["lint", path, "--strict"]) == 1
        assert "TPP008" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = self.write(tmp_path, self.BAD)
        assert tppasm.main(["lint", path, "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False
        assert blob["diagnostics"][0]["code"] == "TPP003"
        assert blob["diagnostics"][0]["fault"] == "STACK_UNDERFLOW"

    def test_json_certificate_on_clean_program(self, tmp_path, capsys):
        path = self.write(tmp_path, self.GOOD)
        assert tppasm.main(["lint", path, "--hops", "1",
                            "--max-hops", "1", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is True
        assert blob["certificate"]["n_instructions"] == 1

    def test_max_hops_budget_enforced(self, tmp_path, capsys):
        # One hop of stack, a two-hop budget: provably overflows.
        path = self.write(tmp_path, self.GOOD)
        code = tppasm.main(["lint", path, "--hops", "1",
                            "--max-hops", "2"])
        assert code == 1
        assert "TPP002" in capsys.readouterr().out

    def test_max_instructions_flag(self, tmp_path, capsys):
        path = self.write(tmp_path, "NOP\n" * 4)
        assert tppasm.main(["lint", path,
                            "--max-instructions", "3"]) == 1
        assert "TPP001" in capsys.readouterr().out

    def test_unparseable_program_exits_one(self, tmp_path, capsys):
        path = self.write(tmp_path, "FROB [Queue:QueueSize]\n")
        assert tppasm.main(["lint", path]) == 1
        assert "assembly error" in capsys.readouterr().err

    def test_unparseable_program_json(self, tmp_path, capsys):
        path = self.write(tmp_path, "FROB [Queue:QueueSize]\n")
        assert tppasm.main(["lint", path, "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False and "assembly error" in blob["error"]

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert tppasm.main(["lint", str(tmp_path / "nope.tpp")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_symbols_flag(self, tmp_path, capsys):
        path = self.write(tmp_path,
                          "CEXEC [Switch:SwitchID], 0xFFFFFFFF, $T\n")
        assert tppasm.main(["lint", path, "--symbols", "T=7"]) == 0


class TestTppasmJsonModes:
    def test_assemble_json(self, tmp_path, capsys):
        path = tmp_path / "p.tpp"
        path.write_text("PUSH [Queue:QueueSize]\n")
        assert tppasm.main(["assemble", str(path), "--hops", "2",
                            "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is True
        assert blob["instructions"] == 1
        assert blob["wire_hex"]

    def test_assemble_json_wire_hex_decodes(self, tmp_path, capsys):
        path = tmp_path / "p.tpp"
        path.write_text("PUSH [Switch:SwitchID]\n")
        tppasm.main(["assemble", str(path), "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert tppasm.main(["disassemble", blob["wire_hex"],
                            "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["ok"] is True
        assert "PUSH [Switch:SwitchID]" in decoded["assembly"]

    def test_assemble_lint_gates_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.tpp"
        path.write_text("POP [Sram:Word0]\n")
        assert tppasm.main(["assemble", str(path)]) == 0  # no lint: fine
        capsys.readouterr()
        assert tppasm.main(["assemble", str(path), "--lint"]) == 1
        assert "TPP003" in capsys.readouterr().out

    def test_assemble_lint_json(self, tmp_path, capsys):
        path = tmp_path / "bad.tpp"
        path.write_text("POP [Sram:Word0]\n")
        assert tppasm.main(["assemble", str(path), "--lint",
                            "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False
        assert blob["lint"]["diagnostics"][0]["code"] == "TPP003"

    def test_assemble_error_json(self, tmp_path, capsys):
        path = tmp_path / "bad.tpp"
        path.write_text("FROB x\n")
        assert tppasm.main(["assemble", str(path), "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False

    def test_disassemble_garbage_json(self, capsys):
        assert tppasm.main(["disassemble", "deadbeef", "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False and "decode error" in blob["error"]

    def test_memmap_json(self, capsys):
        assert tppasm.main(["memmap", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in blob["entries"]}
        assert "Queue:QueueSize" in names
        assert any(r["name"].startswith("Sram:") for r in blob["ranges"])


class TestTppasmRacecheck:
    WRITER_A = ".memory 1\nSTORE [Sram:Word0], [Packet:0]\n"
    WRITER_B = ".memory 2\nSTORE [Sram:Word0], [Packet:1]\n"
    READER = "PUSH [Sram:Word0]\n"
    DISJOINT = ".memory 1\nSTORE [Sram:Word9], [Packet:0]\n"

    def write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    def test_clean_fleet_exits_zero(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.WRITER_A)
        b = self.write(tmp_path, "b.tpp", self.DISJOINT)
        assert tppasm.main(["racecheck", a, b]) == 0
        assert "race-free" in capsys.readouterr().out

    def test_racy_fleet_exits_nonzero(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.WRITER_A)
        b = self.write(tmp_path, "b.tpp", self.WRITER_B)
        assert tppasm.main(["racecheck", a, b]) == 1
        out = capsys.readouterr().out
        assert "TPP020" in out
        assert "a.tpp" in out and "b.tpp" in out

    def test_json_shape(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.WRITER_A)
        b = self.write(tmp_path, "b.tpp", self.WRITER_B)
        assert tppasm.main(["racecheck", "--json", a, b]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False
        assert blob["race_free"] is False
        codes = [d["code"] for d in blob["diagnostics"]]
        assert codes == ["TPP020"]
        assert len(blob["programs"]) == 2
        assert blob["diagnostics"][0]["word"] == 0

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.WRITER_A)
        b = self.write(tmp_path, "b.tpp", self.READER)
        # Read-write is a warning: admitted normally...
        assert tppasm.main(["racecheck", a, b]) == 0
        capsys.readouterr()
        # ...but --strict demands a fully race-free fleet.
        assert tppasm.main(["racecheck", "--strict", a, b]) == 1
        assert "TPP021" in capsys.readouterr().out

    def test_task_isolation_respected(self, tmp_path, capsys):
        """Same sources on different --task values never conflict with
        each other's run: each invocation models ONE task's fleet."""
        a = self.write(tmp_path, "a.tpp", self.WRITER_A)
        b = self.write(tmp_path, "b.tpp", self.WRITER_B)
        assert tppasm.main(["racecheck", "--task", "3", a, b]) == 1
        capsys.readouterr()
        assert tppasm.main(["racecheck", "--json",
                            "--task", "3", a, b]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["diagnostics"][0]["task_id"] == 3

    def test_assembler_error_reported(self, tmp_path, capsys):
        bad = self.write(tmp_path, "bad.tpp", "FROB [Sram:Word0]\n")
        assert tppasm.main(["racecheck", bad]) == 1
        assert "assembly error" in capsys.readouterr().err

    def test_single_program_is_trivially_race_free(self, tmp_path,
                                                   capsys):
        a = self.write(tmp_path, "a.tpp", self.WRITER_A)
        assert tppasm.main(["racecheck", a]) == 0
        assert "race-free" in capsys.readouterr().out


class TestTppasmRacecheckBindings:
    """Per-switch bindings: --fence/--sram refinements, --switches
    multi-switch reports, and the per-pair index contract of the JSON
    diagnostics."""

    CLAIM_A = "CSTORE [Sram:Word0], 0, 1\n"
    CLAIM_B = "CSTORE [Sram:Word0], 2, 3\nNOP\n"
    WRITER = ".memory 1\nSTORE [Sram:Word0], [Packet:0]\n"
    READER = "PUSH [Sram:Word0]\n"

    def write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    def test_sram_binding_discharges_dead_claims(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.CLAIM_A)
        b = self.write(tmp_path, "b.tpp", self.CLAIM_B)
        # Unbound: claim-coordinated sharing note survives --strict.
        assert tppasm.main(["racecheck", "--strict", a, b]) == 1
        assert "TPP023" in capsys.readouterr().out
        # word0=5 strands both claim epochs: fully race-free.
        assert tppasm.main(["racecheck", "--strict",
                            "--sram", "0=5", a, b]) == 0
        assert "race-free" in capsys.readouterr().out

    def test_fence_binding_parses_register_names(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.WRITER)
        b = self.write(tmp_path, "b.tpp", self.READER)
        assert tppasm.main(["racecheck", "--fence",
                            "Switch:SwitchID=7", a, b]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            tppasm.main(["racecheck", "--fence", "No:Such=1", a, b])

    def test_bad_sram_binding_rejected(self, tmp_path):
        a = self.write(tmp_path, "a.tpp", self.WRITER)
        with pytest.raises(SystemExit):
            tppasm.main(["racecheck", "--sram", "zero", a])

    def test_switches_file_reports_per_switch(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.CLAIM_A)
        b = self.write(tmp_path, "b.tpp", self.CLAIM_B)
        spec = tmp_path / "switches.json"
        spec.write_text(json.dumps({"switches": [
            {"name": "tor-1", "sram_values": {"0": 0}},
            {"name": "tor-2", "sram_values": {"0": 5}},
        ]}))
        assert tppasm.main(["racecheck", "--switches", str(spec),
                            a, b]) == 0
        out = capsys.readouterr().out
        assert "-- switch tor-1 --" in out
        assert "-- switch tor-2 --" in out
        assert "fleet-wide:" in out

    def test_switches_json_shape(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.CLAIM_A)
        b = self.write(tmp_path, "b.tpp", self.CLAIM_B)
        spec = tmp_path / "switches.json"
        spec.write_text(json.dumps({"switches": [
            {"name": "tor-1", "sram_values": {"0": 0}},
            {"name": "tor-2", "sram_values": {"0": 5}},
        ]}))
        assert tppasm.main(["racecheck", "--json", "--switches",
                            str(spec), a, b]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert set(blob) == {"ok", "race_free", "racy_switches",
                             "switches"}
        assert blob["ok"] is True
        assert blob["race_free"] is False  # tor-1 keeps a warning
        assert blob["switches"]["tor-2"]["race_free"] is True
        codes = [d["code"]
                 for d in blob["switches"]["tor-1"]["diagnostics"]]
        assert codes == ["TPP021"]

    def test_switches_strict_gates_on_any_switch(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.CLAIM_A)
        b = self.write(tmp_path, "b.tpp", self.CLAIM_B)
        spec = tmp_path / "switches.json"
        spec.write_text(json.dumps({"switches": [
            {"name": "tor-1", "sram_values": {"0": 0}},
            {"name": "tor-2", "sram_values": {"0": 5}},
        ]}))
        assert tppasm.main(["racecheck", "--strict", "--switches",
                            str(spec), a, b]) == 1

    def test_missing_switches_file_reported(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.tpp", self.WRITER)
        assert tppasm.main(["racecheck", "--switches",
                            str(tmp_path / "nope.json"), a]) == 1
        assert "cannot load" in capsys.readouterr().err

    def test_tpp021_json_indices_are_symmetric(self, tmp_path, capsys):
        """TPP021 carries the offending indices of BOTH programs, in
        both argument orders — the same per-pair shape TPP020 emits."""
        writer = self.write(tmp_path, "w.tpp", self.WRITER)
        reader = self.write(tmp_path, "r.tpp", self.READER)
        for sources in ((writer, reader), (reader, writer)):
            assert tppasm.main(["racecheck", "--json", *sources]) == 0
            blob = json.loads(capsys.readouterr().out)
            diag = blob["diagnostics"][0]
            assert diag["code"] == "TPP021"
            assert diag["instructions_a"], diag
            assert diag["instructions_b"], diag
