"""Boundary links and ingresses: the message-passing seam between shards.

These pin the two halves of a cross-region wire — serialized egress into
an outbox, barrier-time ingress with ledger announcements — and the
canonical injection order that makes the seam placement-independent.
"""

import random

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.fleet.boundary import (
    BoundaryIngress,
    BoundaryLink,
    BoundaryMessage,
    attach_boundary_port,
    injection_order,
)
from repro.net.packet import ETHERTYPE_TPP, EthernetFrame, RawPayload
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network
from repro.net.wire import decode_frame


def ring_region(index=0, n_regions=2, seed=0):
    """A one-switch, one-host region with a boundary port on the switch."""
    net = Network(seed=seed, trace_enabled=False, index_base=index * 64)
    switch = net.add_switch(f"r{index}s0")
    host = net.add_host(f"r{index}h0")
    net.link(host, switch, units.GIGABITS_PER_SEC, delay_ns=1_000)
    install_shortest_path_routes(net)
    outbox = []
    port, port_index, ingress = attach_boundary_port(
        net, switch, (index + 1) % n_regions, outbox,
        units.GIGABITS_PER_SEC, delay_ns=10_000)
    return net, switch, host, outbox, port, port_index, ingress


def raw_frame(dst, src, size=200):
    """A non-IP frame with real (non-zero) payload bytes, so the wire
    round-trip reconstructs the same payload length."""
    return EthernetFrame(dst=dst, src=src, ethertype=0x88B5,
                         payload=RawPayload(
                             size, data=bytes(i % 251 or 1
                                              for i in range(size))))


class TestBoundaryLink:
    def test_port_driven_export(self):
        """Frames leave through the normal port queue/serialization path
        and land in the outbox with FIFO seq and absolute arrivals."""
        net, switch, host, outbox, port, _idx, _ing = ring_region()
        a = raw_frame(dst=1, src=2, size=500)
        b = raw_frame(dst=1, src=2, size=500)
        port.enqueue(a)
        port.enqueue(b)
        net.sim.run(until_ns=1_000_000)
        assert [m.seq for m in outbox] == [0, 1]
        assert all(m.dst_region == 1 for m in outbox)
        # Second frame serializes strictly after the first; propagation
        # delay is shared, so arrivals preserve emission order.
        assert outbox[0].arrival_ns < outbox[1].arrival_ns
        # The export time is serialization end + boundary delay.
        serialization = port.link.serialization_time_ns(a)
        assert outbox[0].arrival_ns == serialization + 10_000
        assert port.link.frames_exported == 2

    def test_wire_bytes_round_trip(self):
        net, switch, host, outbox, port, _idx, _ing = ring_region()
        port.enqueue(raw_frame(dst=0xAB, src=0xCD, size=300))
        net.sim.run(until_ns=1_000_000)
        frame = decode_frame(outbox[0].raw)
        assert frame.dst == 0xAB
        assert frame.src == 0xCD
        assert frame.payload.size_bytes == 300

    def test_downed_link_loses_frames(self):
        net, switch, host, outbox, port, _idx, _ing = ring_region()
        port.link.fail()
        port.enqueue(raw_frame(dst=1, src=2))
        net.sim.run(until_ns=1_000_000)
        assert outbox == []
        assert port.link.frames_lost == 1

    def test_impairments_are_refused(self):
        net, *_rest = ring_region()
        link = BoundaryLink(net.sim, units.GIGABITS_PER_SEC, 10_000,
                            name="b", dst_region=1, outbox=[])
        with pytest.raises(ConfigurationError):
            link.set_impairments(loss_rate=0.1)
        link.set_impairments()  # all-zero is a no-op, not an error


class TestInjectionOrder:
    def test_canonical_key(self):
        messages = [
            BoundaryMessage(0, 200, "a->b", 0, b"x"),
            BoundaryMessage(0, 100, "c->d", 5, b"x"),
            BoundaryMessage(0, 100, "a->b", 1, b"x"),
            BoundaryMessage(0, 100, "a->b", 0, b"x"),
        ]
        ordered = injection_order(messages)
        assert [(m.arrival_ns, m.link_name, m.seq) for m in ordered] == [
            (100, "a->b", 0), (100, "a->b", 1), (100, "c->d", 5),
            (200, "a->b", 0)]

    def test_shuffle_invariant(self):
        """Any producer-side ordering collapses to one injection order —
        the property the resharding guarantee leans on."""
        rng = random.Random(7)
        messages = [
            BoundaryMessage(0, rng.randrange(5), f"link{rng.randrange(3)}",
                            seq, b"x")
            for seq in range(40)
        ]
        reference = injection_order(messages)
        for _ in range(10):
            shuffled = list(messages)
            rng.shuffle(shuffled)
            assert injection_order(shuffled) == reference


class TestBoundaryIngress:
    def test_delivers_to_switch_with_ledger(self):
        """An injected frame is announced in the ingress ledger, then
        delivered through Device.receive at its recorded instant."""
        net, switch, host, outbox, port, idx, ingress = ring_region()
        frame = raw_frame(dst=host.mac, src=0x99, size=200)
        from repro.net.wire import encode_frame
        message = BoundaryMessage(0, 50_000, "peer->here", 0,
                                  encode_frame(frame))
        ingress.inject(message)
        assert switch.inbound_at[50_000] == 1
        net.sim.run(until_ns=100_000)
        assert ingress.frames_injected == 1
        assert not switch.inbound_at  # ledger retired
        assert host.frames_received == 1  # routed on to the local host

    def test_same_instant_injections_batch(self):
        """Two frames injected at one instant are announced together, so
        the switch's ingress drain sees them as one batch."""
        net, switch, host, outbox, port, idx, ingress = ring_region()
        from repro.net.wire import encode_frame
        raw = encode_frame(raw_frame(dst=host.mac, src=0x99, size=200))
        for seq in range(2):
            ingress.inject(BoundaryMessage(0, 40_000, "peer->here", seq, raw))
        assert switch.inbound_at[40_000] == 2
        net.sim.run(until_ns=100_000)
        assert not switch.inbound_at
        assert host.frames_received == 2

    def test_past_injection_is_rejected(self):
        net, switch, host, outbox, port, idx, ingress = ring_region()
        net.sim.run(until_ns=10_000)
        from repro.net.wire import encode_frame
        raw = encode_frame(raw_frame(dst=host.mac, src=0x99))
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            ingress.inject(BoundaryMessage(0, 5_000, "peer->here", 0, raw))
