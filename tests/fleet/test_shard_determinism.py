"""Resharding invariance: the fleet's core guarantee.

The same region specs must produce bit-identical per-flow reports, SRAM
images and switch counters whether the regions share one worker or are
spread across many — and whether the workers are in-process or forked.
"""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    RegionSpec,
    ShardedFleet,
    fleet_specs,
    run_fleet,
)

#: Small but non-trivial: 4 regions x 2 switches x 2 hosts, 3 bursts.
SPECS = fleet_specs(4, switches=2, hosts_per_switch=2, probe_bursts=3,
                    probe_interval_ns=100_000, flows_per_probe=250)
DURATION_NS = 2_000_000


@pytest.fixture(scope="module")
def baseline():
    return run_fleet(SPECS, DURATION_NS, shards=1)


class TestBitIdenticalResharding:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_shard_count_does_not_change_results(self, baseline, shards):
        result = run_fleet(SPECS, DURATION_NS, shards=shards)
        assert result.fingerprint() == baseline.fingerprint()
        assert result.digests == baseline.digests
        assert result.counters == baseline.counters
        assert result.messages_exchanged == baseline.messages_exchanged

    def test_fork_transport_matches_inline(self, baseline):
        result = run_fleet(SPECS, DURATION_NS, shards=2, transport="fork")
        assert result.fingerprint() == baseline.fingerprint()
        assert result.counters == baseline.counters

    def test_rerun_is_reproducible(self, baseline):
        assert run_fleet(SPECS, DURATION_NS,
                         shards=1).fingerprint() == baseline.fingerprint()

    def test_different_seed_changes_nothing_structural_but_runs(self):
        """A different master seed still converges (no hidden coupling to
        the default seed)."""
        specs = fleet_specs(2, master_seed=99, probe_bursts=2)
        a = run_fleet(specs, 1_000_000, shards=1)
        b = run_fleet(specs, 1_000_000, shards=2)
        assert a.fingerprint() == b.fingerprint()


class TestFleetBehaviour:
    def test_probes_complete_around_the_ring(self, baseline):
        counters = baseline.counters
        # 4 regions x 4 lanes x 3 bursts, every echo collected.
        assert counters["probes_sent"] == 48
        assert counters["responses_received"] == 48
        assert counters["logical_flows"] == 48 * 250
        # Every probe crossed one boundary out and its echo circled the
        # remaining three regions home: 4 boundary hops per probe.
        assert counters["frames_exported"] == 48 * 4
        assert counters["frames_injected"] == counters["frames_exported"]

    def test_admission_is_amortized(self, baseline):
        counters = baseline.counters
        # One verifier run per region covers every lane, burst and
        # logical flow in it.
        assert counters["programs_verified"] == 4
        assert counters["flows_admitted"] == 48 * 250
        assert counters["verifications_saved"] == 48 * 250 - 4
        # One certificate per (program, switch): 2 switches per region.
        assert counters["certificates_installed"] == 8

    def test_probes_execute_on_both_legs(self, baseline):
        # Forward path: 1-2 switches locally + 2 in the next region;
        # every report shows hops > 0 and the fleet's TPP executions are
        # bounded by probes x max path.
        counters = baseline.counters
        assert 0 < counters["tpps_executed"] <= 48 * 4

    def test_single_region_fleet(self):
        result = run_fleet(fleet_specs(1, probe_bursts=2), 1_000_000)
        assert result.counters["responses_received"] == \
            result.counters["probes_sent"] > 0

    def test_modeled_time_is_positive(self, baseline):
        assert baseline.modeled_seconds > 0
        assert baseline.wall_seconds >= baseline.modeled_seconds


class TestValidation:
    def test_mismatched_quantum_rejected(self):
        specs = [RegionSpec(index=0, n_regions=2, boundary_delay_ns=10_000),
                 RegionSpec(index=1, n_regions=2, boundary_delay_ns=20_000)]
        with pytest.raises(ConfigurationError):
            ShardedFleet(specs)

    def test_index_coverage_enforced(self):
        specs = [RegionSpec(index=0, n_regions=2),
                 RegionSpec(index=0, n_regions=2)]
        with pytest.raises(ConfigurationError):
            ShardedFleet(specs)

    def test_bad_transport_and_shards(self):
        specs = fleet_specs(2)
        with pytest.raises(ConfigurationError):
            ShardedFleet(specs, transport="threads")
        with pytest.raises(ConfigurationError):
            ShardedFleet(specs, shards=0)

    def test_excess_shards_clamped(self):
        fleet = ShardedFleet(fleet_specs(2), shards=8)
        assert fleet.shards == 2

    def test_stride_collision_rejected(self):
        with pytest.raises(ConfigurationError):
            RegionSpec(index=0, n_regions=1, switches=8,
                       hosts_per_switch=4, stride=16)
