"""Per-hop latency profiling."""

import pytest

from repro import quickstart_network, units
from repro.apps.latency import LatencyProfiler, clock_delta_ns
from repro.endhost.flows import Flow, FlowSink


class TestClockDelta:
    def test_plain_difference(self):
        assert clock_delta_ns(1000, 400) == 600

    def test_wraps(self):
        assert clock_delta_ns(100, (1 << 32) - 50) == 150

    def test_zero(self):
        assert clock_delta_ns(123, 123) == 0


@pytest.fixture
def profiled_net():
    # 1 Gb/s, 1 us propagation per link, known pipeline latency.
    net = quickstart_network(n_switches=3, rate_bps=units.GIGABITS_PER_SEC,
                             delay_ns=1_000)
    return net


class TestLatencyProfiler:
    def test_segments_match_known_path_delays(self, profiled_net):
        """On an idle path the segment latency is pipeline + tx + prop,
        all of which we know exactly."""
        net = profiled_net
        profiler = LatencyProfiler(net.host("h0"), net.host("h1").mac,
                                   interval_ns=units.milliseconds(1))
        profiler.start(first_delay_ns=1)
        net.run(until_seconds=0.02)
        profiler.stop()
        profile = profiler.profiles[0]
        assert [hop.switch_id for hop in profile.hops] == [1, 2, 3]
        switch = net.switch("sw0")
        frame_bytes = 12 + 4 * 3 + profiler.program.memory_bytes + 18
        expected = (switch.pipeline_latency_ns
                    + units.transmission_time_ns(
                        max(64, frame_bytes), units.GIGABITS_PER_SEC)
                    + 1_000)
        for hop in profile.hops[1:]:
            assert hop.segment_latency_ns == pytest.approx(expected,
                                                           rel=0.05)

    def test_congested_segment_stands_out(self, profiled_net):
        """Cross traffic inflates exactly the congested segment."""
        net = profiled_net
        h0, h1 = net.host("h0"), net.host("h1")
        # Slow the sw1 -> sw2 link and overload it.
        sw1 = net.switch("sw1")
        toward_sw2 = [p for p in sw1.ports
                      if p.link.name == "sw1->sw2"][0]
        toward_sw2.link.rate_bps = 50 * units.MEGABITS_PER_SEC
        FlowSink(h1, 99)
        cross = Flow(h0, h1, h1.mac, 99,
                     rate_bps=200 * units.MEGABITS_PER_SEC,
                     packet_bytes=1000)
        profiler = LatencyProfiler(h0, h1.mac,
                                   interval_ns=units.milliseconds(2))
        cross.start()
        profiler.start(first_delay_ns=units.milliseconds(5))
        net.sim.schedule(units.milliseconds(9), cross.stop)
        net.sim.schedule(units.milliseconds(9), profiler.stop)
        net.run(until_seconds=0.5)
        # Worst segment is into sw2 (id 3): behind the congested link.
        congested = [p.worst_segment() for p in profiler.profiles
                     if p.worst_segment() is not None]
        assert congested
        assert all(seg.switch_id == 3 for seg in congested)
        assert congested[0].segment_latency_ns > 500_000  # >> idle ~10us

    def test_total_latency_consistent_with_segments(self, profiled_net):
        net = profiled_net
        profiler = LatencyProfiler(net.host("h0"), net.host("h1").mac,
                                   interval_ns=units.milliseconds(1))
        profiler.start(first_delay_ns=1)
        net.run(until_seconds=0.01)
        profile = profiler.profiles[0]
        total = profile.total_network_latency_ns()
        summed = sum(hop.segment_latency_ns for hop in profile.hops
                     if hop.segment_latency_ns is not None)
        assert total == summed

    def test_segment_series_accumulate(self, profiled_net):
        net = profiled_net
        profiler = LatencyProfiler(net.host("h0"), net.host("h1").mac,
                                   interval_ns=units.milliseconds(1))
        profiler.start(first_delay_ns=1)
        net.run(until_seconds=0.05)
        assert set(profiler.segment_series) == {2, 3}
        assert profiler.mean_segment_latency_ns(2) > 0

    def test_queue_bytes_recorded_per_hop(self, profiled_net):
        net = profiled_net
        profiler = LatencyProfiler(net.host("h0"), net.host("h1").mac,
                                   interval_ns=units.milliseconds(1))
        profiler.start(first_delay_ns=1)
        net.run(until_seconds=0.01)
        assert all(hop.queue_bytes == 0
                   for hop in profiler.profiles[0].hops)
