"""Arithmetic path folding and scatter/gather inventory."""

import pytest

from repro import units
from repro.apps.pathprobe import (
    PathBottleneckProbe,
    SwitchInventory,
)
from repro.endhost.client import TPPEndpoint
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network


@pytest.fixture
def mixed_capacity_net():
    """h0 - sw0 =1G= sw1 =100M= sw2 =1G= h1 (narrow waist at sw1->sw2)."""
    net = Network()
    switches = [net.add_switch() for _ in range(3)]
    net.link(switches[0], switches[1], units.GIGABITS_PER_SEC)
    net.link(switches[1], switches[2], 100 * units.MEGABITS_PER_SEC)
    h0 = net.add_host()
    h1 = net.add_host()
    net.link(h0, switches[0], units.GIGABITS_PER_SEC)
    net.link(h1, switches[2], units.GIGABITS_PER_SEC)
    install_shortest_path_routes(net)
    h0.tpp = TPPEndpoint(h0)
    h1.tpp = TPPEndpoint(h1)
    return net


class TestPathBottleneckProbe:
    def test_min_finds_narrowest_link(self, mixed_capacity_net):
        net = mixed_capacity_net
        summaries = []
        probe = PathBottleneckProbe(net.host("h0").tpp,
                                    net.host("h1").mac)
        probe.probe(summaries.append)
        net.run(until_seconds=0.01)
        assert summaries[0].bottleneck_capacity_mbps == 100

    def test_max_queue_zero_when_idle(self, mixed_capacity_net):
        net = mixed_capacity_net
        summaries = []
        PathBottleneckProbe(net.host("h0").tpp,
                            net.host("h1").mac).probe(summaries.append)
        net.run(until_seconds=0.01)
        assert summaries[0].max_queue_bytes == 0

    def test_max_sees_congested_hop(self, mixed_capacity_net):
        net = mixed_capacity_net
        from repro.endhost.flows import Flow, FlowSink
        h0, h1 = net.host("h0"), net.host("h1")
        FlowSink(h1, 99)
        flow = Flow(h0, h1, h1.mac, 99,
                    rate_bps=units.GIGABITS_PER_SEC)  # >> 100M waist
        flow.start()
        summaries = []
        probe = PathBottleneckProbe(h0.tpp, h1.mac)
        net.sim.schedule(units.milliseconds(5),
                         lambda: probe.probe(summaries.append))
        net.sim.schedule(units.milliseconds(6), flow.stop)
        net.run(until_seconds=0.5)
        assert summaries[0].max_queue_bytes > 10_000

    def test_memory_footprint_is_two_words(self, mixed_capacity_net):
        """The whole point: constant memory regardless of path length."""
        net = mixed_capacity_net
        probe = PathBottleneckProbe(net.host("h0").tpp,
                                    net.host("h1").mac)
        assert probe.program.memory_bytes == 8


class TestSwitchInventory:
    def test_collects_every_path_switch(self, linear_net):
        net = linear_net
        h0, h1 = net.host("h0"), net.host("h1")
        h0.tpp = TPPEndpoint(h0)
        h1.tpp = TPPEndpoint(h1)
        reports = []
        SwitchInventory(h0.tpp, h1.mac).collect(reports.append)
        net.run(until_seconds=0.05)
        assert sorted(reports[0]) == [1, 2, 3]

    def test_reports_are_per_switch(self, linear_net):
        net = linear_net
        h0, h1 = net.host("h0"), net.host("h1")
        h0.tpp = TPPEndpoint(h0)
        h1.tpp = TPPEndpoint(h1)
        # Give sw1 a distinctive table population.
        net.switch("sw1").install_l3_route(0x0A000000, 8, 0)
        reports = []
        SwitchInventory(h0.tpp, h1.mac).collect(reports.append)
        net.run(until_seconds=0.05)
        report = reports[0]
        assert report[2].switch_id == 2
        # Every switch has 2 L2 routes (one per host).
        assert all(r.l2_entries == 2 for r in report.values())
        assert all(r.packets_switched > 0 for r in report.values())

    def test_cexec_isolates_target(self, linear_net):
        """Each scattered TPP's LOADs fire on exactly one switch: the
        packets_switched counts must be those of distinct switches, not
        one switch repeated."""
        net = linear_net
        h0, h1 = net.host("h0"), net.host("h1")
        h0.tpp = TPPEndpoint(h0)
        h1.tpp = TPPEndpoint(h1)
        reports = []
        SwitchInventory(h0.tpp, h1.mac).collect(reports.append)
        net.run(until_seconds=0.05)
        report = reports[0]
        tpp_counts = {sid: r.tpps_executed for sid, r in report.items()}
        # Each switch executed the discovery TPP + 3 inventory TPPs by
        # the time its own inventory TPP sampled the counter — but the
        # sampled values must come from the matching switch, which we
        # can tell because all three are plausible and per-switch
        # l2_entries match reality.
        assert set(report) == {1, 2, 3}
        assert all(count >= 1 for count in tpp_counts.values())
