"""RCP* with piggybacked collect TPPs ("using the flow's packets", §2.2)."""

import pytest

from repro import units
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC


def build(n_pairs=1):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=n_pairs, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    return net, RCPStarTask(agent)


def make_flow(net, task, index, n_pairs, **kwargs):
    src = net.host(f"h{index}")
    dst = net.host(f"h{index + n_pairs}")
    return RCPStarFlow(task, index, src, dst, dst.mac,
                       capacity_bps=CAPACITY, rtt_s=0.02, max_hops=3,
                       **kwargs)


class TestPiggyback:
    def test_every_nth_packet_carries_tpp(self):
        net, task = build()
        flow = make_flow(net, task, 0, 1, piggyback_every=4)
        flow.start()
        net.run(until_seconds=0.5)
        # ~1/4 of the emitted frames are TPP-wrapped.
        wrapped = sum(1 for r in net.trace.records(kind="tpp.exec",
                                                   source="swL")
                      if r.detail["executed"] == 5)
        assert wrapped > 10
        assert flow._data_packets > 3 * wrapped

    def test_trimmed_echo_returns_samples(self):
        net, task = build()
        flow = make_flow(net, task, 0, 1, piggyback_every=4)
        flow.start()
        net.run(until_seconds=0.5)
        assert flow.endpoint.responses_received > 10
        assert len(flow.links) == 2
        assert flow.links[0].samples > 10

    def test_data_still_delivered(self):
        net, task = build()
        flow = make_flow(net, task, 0, 1, piggyback_every=4)
        flow.start()
        net.run(until_seconds=0.5)
        # Receiver got every data packet (wrapped and unwrapped alike);
        # a handful may still be in flight when the run stops.
        assert flow.sink.packets_received == pytest.approx(
            flow.flow.packets_sent, abs=15)

    def test_single_flow_converges_to_capacity(self):
        net, task = build()
        flow = make_flow(net, task, 0, 1, piggyback_every=4)
        flow.start()
        net.run(until_seconds=2.0)
        assert flow.flow.rate_bps == pytest.approx(CAPACITY, rel=0.15)

    def test_three_flows_fair_share(self):
        net, task = build(n_pairs=3)
        flows = [make_flow(net, task, i, 3, piggyback_every=4)
                 for i in range(3)]
        for flow in flows:
            flow.start()
        net.run(until_seconds=5.0)
        register = task.rate_register_bps(net.switch("swL"), 0)
        assert register == pytest.approx(CAPACITY / 3, rel=0.35)
        goodputs = [f.sink.goodput_bps(units.seconds(4), units.seconds(5))
                    for f in flows]
        assert goodputs[0] == pytest.approx(goodputs[2], rel=0.2)

    def test_keepalive_probes_cover_quiet_flows(self):
        """A flow paced near zero still samples the path."""
        net, task = build()
        flow = make_flow(net, task, 0, 1, piggyback_every=4,
                         initial_rate_bps=1000)  # ~0 data packets
        # Freeze the data path entirely to isolate the keepalive.
        flow.flow.set_rate(0)
        flow.start()
        net.run(until_seconds=0.5)
        # Samples arrived anyway (standalone keepalive probes).
        assert flow.endpoint.responses_received > 20

    def test_no_prober_when_piggybacking(self):
        net, task = build()
        flow = make_flow(net, task, 0, 1, piggyback_every=4)
        assert flow.prober is None
        assert flow._keepalive is not None
