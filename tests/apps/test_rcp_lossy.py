"""RCP* on lossy links: the control loop degrades instead of stalling."""

import pytest

from repro import units
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC
RTT_S = 0.02


def build(n_pairs=1, seed=0, loss_rate=0.05):
    builder = TopologyBuilder(seed=seed, rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=n_pairs, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    net.impair_links(loss_rate=loss_rate)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    return net, task


def make_flow(net, task, index, n_pairs):
    src = net.host(f"h{index}")
    dst = net.host(f"h{index + n_pairs}")
    return RCPStarFlow(task, index, src, dst, dst.mac,
                       capacity_bps=CAPACITY, rtt_s=RTT_S, max_hops=3)


class TestConvergenceUnderLoss:
    def test_single_flow_still_ramps_at_5pct_loss(self):
        net, task = build(n_pairs=1, loss_rate=0.05)
        flow = make_flow(net, task, 0, 1)
        flow.start()
        net.run(until_seconds=2.0)
        # Probes were genuinely lost, yet the loop kept turning: the
        # rate is near capacity, not stuck at its 5% starting trickle.
        assert flow.collects_missed > 0
        assert flow.flow.rate_bps == pytest.approx(CAPACITY, rel=0.25)
        assert flow.endpoint.pending_count < 32

    def test_two_flows_stay_bounded_and_busy_at_5pct_loss(self):
        net, task = build(n_pairs=2, loss_rate=0.05)
        flows = [make_flow(net, task, i, 2) for i in range(2)]
        for flow in flows:
            flow.start()
        net.run(until_seconds=2.5)
        for flow in flows:
            # Bounded above by capacity, and not collapsed: each flow
            # holds a usable share of the bottleneck.
            assert flow.flow.rate_bps <= 1.05 * CAPACITY
            assert flow.flow.rate_bps > 0.15 * CAPACITY
            assert flow.endpoint.pending_count < 32
        total = sum(f.flow.rate_bps for f in flows)
        assert total == pytest.approx(CAPACITY, rel=0.3)

    def test_run_is_bit_identical_per_seed(self):
        def run_once(seed):
            net, task = build(n_pairs=1, seed=seed, loss_rate=0.05)
            flow = make_flow(net, task, 0, 1)
            flow.start()
            net.run(until_seconds=1.0)
            return (flow.rate_series.samples(),
                    flow.collects_missed,
                    flow.endpoint.timeouts,
                    flow.endpoint.probes_sent,
                    flow.endpoint.rtt_ewma_ns)

        assert run_once(11) == run_once(11)
        assert run_once(11) != run_once(12)


class TestMissDecay:
    def test_blackhole_decays_rate_to_floor_and_recovers(self):
        """Total loss: the flow must throttle itself (stale-rate traffic
        into a dead path helps nobody), then recover with the path."""
        net, task = build(n_pairs=1, loss_rate=0.0)
        flow = make_flow(net, task, 0, 1)
        flow.start()
        net.run(until_seconds=1.0)
        ramped = flow.flow.rate_bps
        assert ramped == pytest.approx(CAPACITY, rel=0.25)
        link = net.host("h0").ports[0].link
        link.fail()
        net.run(until_seconds=2.0)
        assert flow.collects_missed > 2
        assert flow.flow.rate_bps < 0.2 * ramped
        link.restore()
        net.run(until_seconds=3.5)
        assert flow.flow.rate_bps == pytest.approx(CAPACITY, rel=0.25)
