"""AIMD baseline controller."""


from repro import units
from repro.apps.aimd import AIMDFlow
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC


def build(n_pairs=2):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=n_pairs, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    return net


class TestAIMDFlow:
    def test_ramps_up_on_empty_network(self):
        net = build(n_pairs=1)
        flow = AIMDFlow(0, net.host("h0"), net.host("h1"),
                        net.host("h1").mac, capacity_bps=CAPACITY)
        flow.start()
        net.run(until_seconds=2.0)
        assert flow.flow.rate_bps > 0.5 * CAPACITY

    def test_backs_off_under_congestion(self):
        net = build(n_pairs=2)
        flows = [AIMDFlow(i, net.host(f"h{i}"), net.host(f"h{i + 2}"),
                          net.host(f"h{i + 2}").mac, capacity_bps=CAPACITY)
                 for i in range(2)]
        for flow in flows:
            flow.start()
        net.run(until_seconds=3.0)
        assert any(flow.backoffs > 0 for flow in flows)

    def test_utilization_reasonable(self):
        net = build(n_pairs=2)
        flows = [AIMDFlow(i, net.host(f"h{i}"), net.host(f"h{i + 2}"),
                          net.host(f"h{i + 2}").mac, capacity_bps=CAPACITY)
                 for i in range(2)]
        for flow in flows:
            flow.start()
        net.run(until_seconds=4.0)
        total = sum(f.sink.goodput_bps(units.seconds(2), units.seconds(4))
                    for f in flows)
        assert 0.4 * CAPACITY < total <= 1.05 * CAPACITY

    def test_rate_series_recorded(self):
        net = build(n_pairs=1)
        flow = AIMDFlow(0, net.host("h0"), net.host("h1"),
                        net.host("h1").mac, capacity_bps=CAPACITY)
        flow.start()
        net.run(until_seconds=0.5)
        assert len(flow.rate_series) > 10

    def test_stop(self):
        net = build(n_pairs=1)
        flow = AIMDFlow(0, net.host("h0"), net.host("h1"),
                        net.host("h1").mac, capacity_bps=CAPACITY)
        flow.start()
        net.run(until_seconds=0.5)
        flow.stop()
        sent = flow.flow.packets_sent
        net.run(until_seconds=1.0)
        assert flow.flow.packets_sent == sent
