"""In-network RCP baseline (Figure 2's reference curve)."""

import pytest

from repro import units
from repro.apps.rcp_common import RCPHeader
from repro.apps.rcp_router import (
    RCPBaselineFlow,
    RCPLinkAgent,
    RCPRouterNetwork,
)
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC
RTT_S = 0.02


def build_dumbbell(n_pairs=2):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=n_pairs, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    return net


def make_flows(net, routers, n):
    flows = []
    for i in range(n):
        src = net.host(f"h{i}")
        dst = net.host(f"h{i + len(net.hosts) // 2}")
        flows.append(RCPBaselineFlow(i, src, dst, dst.mac, src.mac,
                                     capacity_bps=CAPACITY,
                                     rtt_ns=int(RTT_S * 1e9)))
    return flows


class TestRCPLinkAgent:
    def test_rate_starts_at_capacity(self):
        net = build_dumbbell()
        switch = net.switch("swL")
        agent = RCPLinkAgent(switch, switch.ports[0], rtt_s=RTT_S)
        assert agent.rate_bps == CAPACITY

    def test_idle_link_keeps_full_rate(self):
        net = build_dumbbell()
        switch = net.switch("swL")
        agent = RCPLinkAgent(switch, switch.ports[0], rtt_s=RTT_S)
        agent.start()
        net.run(until_seconds=1.0)
        assert agent.rate_bps == CAPACITY

    def test_stamp_lowers_header_rate(self):
        net = build_dumbbell()
        switch = net.switch("swL")
        agent = RCPLinkAgent(switch, switch.ports[0], rtt_s=RTT_S)
        agent.rate_bps = 3e6
        header = RCPHeader(rate_bps=10e6, rtt_ns=1)
        agent.stamp(header)
        assert header.rate_bps == 3e6

    def test_stamp_never_raises_header_rate(self):
        net = build_dumbbell()
        switch = net.switch("swL")
        agent = RCPLinkAgent(switch, switch.ports[0], rtt_s=RTT_S)
        agent.rate_bps = 9e6
        header = RCPHeader(rate_bps=1e6, rtt_ns=1)
        agent.stamp(header)
        assert header.rate_bps == 1e6

    def test_rate_series_recorded(self):
        net = build_dumbbell()
        switch = net.switch("swL")
        agent = RCPLinkAgent(switch, switch.ports[0], rtt_s=RTT_S)
        agent.start()
        net.run(until_seconds=0.1)
        assert len(agent.rate_series) >= 10


class TestRCPRouterNetwork:
    def test_agents_on_every_port(self):
        net = build_dumbbell(n_pairs=2)
        routers = RCPRouterNetwork(list(net.switches.values()), rtt_s=RTT_S)
        total_ports = sum(len(s.ports) for s in net.switches.values())
        assert len(routers.agents) == total_ports

    def test_single_flow_gets_full_rate(self):
        net = build_dumbbell(n_pairs=1)
        routers = RCPRouterNetwork(list(net.switches.values()), rtt_s=RTT_S)
        routers.start()
        flows = make_flows(net, routers, 1)
        flows[0].start()
        net.run(until_seconds=3.0)
        agent = routers.agent("swL", 0)
        assert agent.rate_bps == pytest.approx(CAPACITY, rel=0.1)
        goodput = flows[0].sink.goodput_bps(units.seconds(2),
                                            units.seconds(3))
        assert goodput == pytest.approx(CAPACITY, rel=0.15)

    def test_two_flows_split_fairly(self):
        net = build_dumbbell(n_pairs=2)
        routers = RCPRouterNetwork(list(net.switches.values()), rtt_s=RTT_S)
        routers.start()
        flows = make_flows(net, routers, 2)
        for flow in flows:
            flow.start()
        net.run(until_seconds=4.0)
        agent = routers.agent("swL", 0)
        assert agent.rate_bps == pytest.approx(CAPACITY / 2, rel=0.2)
        goodputs = [f.sink.goodput_bps(units.seconds(3), units.seconds(4))
                    for f in flows]
        assert goodputs[0] == pytest.approx(goodputs[1], rel=0.1)

    def test_feedback_loop_updates_sender_rate(self):
        net = build_dumbbell(n_pairs=1)
        routers = RCPRouterNetwork(list(net.switches.values()), rtt_s=RTT_S)
        routers.start()
        flows = make_flows(net, routers, 1)
        flows[0].start()
        net.run(until_seconds=1.0)
        assert len(flows[0].rate_feedback) > 0
        assert flows[0].flow.rate_bps > 0.5 * CAPACITY
