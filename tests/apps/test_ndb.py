"""ndb — the forwarding-plane debugger (§2.3)."""

import pytest

from repro import units
from repro.apps.ndb import (
    HopRecord,
    NdbCollector,
    NdbTagger,
    PacketJourney,
    PathVerifier,
    trace_program,
)
from repro.asic.tables import TcamRule
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import (
    host_path,
    install_shortest_path_routes,
)
from repro.net.topology import TopologyBuilder


@pytest.fixture
def ndb_net():
    """Linear 3-switch network with a tagged flow h0 -> h1."""
    builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                              delay_ns=1_000)
    net = builder.linear(n_switches=3)
    intended = install_shortest_path_routes(net)
    return net, intended


def run_tagged_flow(net, seconds=0.01, rate_bps=8_000_000):
    h0, h1 = net.host("h0"), net.host("h1")
    sink = FlowSink(h1, 99)
    collector = NdbCollector(h1)
    tagger = NdbTagger(hops=4)
    flow = Flow(h0, h1, h1.mac, 99, rate_bps=rate_bps, packet_bytes=500)
    tagger.attach(flow)
    flow.start()
    net.run(until_seconds=seconds)
    flow.stop()
    return collector, tagger, sink


class TestTaggerAndCollector:
    def test_journeys_reassembled(self, ndb_net):
        net, _ = ndb_net
        collector, tagger, sink = run_tagged_flow(net)
        assert len(collector.journeys) > 0
        assert tagger.packets_tagged >= len(collector.journeys)

    def test_journey_switch_sequence(self, ndb_net):
        net, _ = ndb_net
        collector, _, _ = run_tagged_flow(net)
        assert collector.journeys[0].switch_ids() == [1, 2, 3]

    def test_data_still_delivered(self, ndb_net):
        """Tagging must not break the application's traffic."""
        net, _ = ndb_net
        collector, _, sink = run_tagged_flow(net)
        assert sink.packets_received == len(collector.journeys)

    def test_hop_records_carry_rule_identity(self, ndb_net):
        net, intended = ndb_net
        collector, _, _ = run_tagged_flow(net)
        h1 = net.host("h1")
        journey = collector.journeys[0]
        for switch_name, hop in zip(("sw0", "sw1", "sw2"), journey.hops):
            entry = net.switch(switch_name).l2.entry_for(h1.mac)
            assert hop.entry_id == entry.entry_id
            assert hop.entry_version == entry.version

    def test_input_ports_recorded(self, ndb_net):
        net, _ = ndb_net
        collector, _, _ = run_tagged_flow(net)
        journey = collector.journeys[0]
        adjacency = net.adjacency()
        expected_in = []
        for switch, prev in (("sw0", "h0"), ("sw1", "sw0"), ("sw2", "sw1")):
            for local, peer, _ in adjacency[switch]:
                if peer == prev:
                    expected_in.append(local)
        assert [hop.input_port for hop in journey.hops] == expected_in


def make_verifier(net, intended, dst_mac):
    path = [net.switch(name).switch_id
            for name in host_path(net, "h0", "h1")
            if name in net.switches]
    current = {}
    for switch_name, switch in net.switches.items():
        entry = switch.l2.entry_for(dst_mac)
        if entry is not None:
            current[switch.switch_id] = (entry.entry_id, entry.version)
    return PathVerifier(path, current)


class TestPathVerifier:
    def test_clean_network_verifies(self, ndb_net):
        net, intended = ndb_net
        collector, _, _ = run_tagged_flow(net)
        verifier = make_verifier(net, intended, net.host("h1").mac)
        assert verifier.verify(collector.journeys) == []

    def test_stale_rule_detected(self, ndb_net):
        """Reinstall a route mid-flow: packets forwarded by the old rule
        version are flagged once the controller's view moves on."""
        net, intended = ndb_net
        h0, h1 = net.host("h0"), net.host("h1")
        sink = FlowSink(h1, 99)
        collector = NdbCollector(h1)
        tagger = NdbTagger(hops=4)
        flow = Flow(h0, h1, h1.mac, 99, rate_bps=8_000_000,
                    packet_bytes=500)
        tagger.attach(flow)
        flow.start()

        # Mid-flow, the controller re-installs sw1's route (same port,
        # new version).
        switch = net.switch("sw1")
        old_entry = switch.l2.entry_for(h1.mac)
        out_port = old_entry.out_ports[0]
        net.sim.schedule(units.milliseconds(5),
                         lambda: switch.install_l2_route(h1.mac, out_port))
        net.run(until_seconds=0.01)
        flow.stop()

        verifier = make_verifier(net, intended, h1.mac)
        violations = verifier.verify(collector.journeys)
        kinds = {violation.kind for violation in violations}
        assert "unknown-rule" in kinds or "stale-rule" in kinds
        # ... but packets after the update are clean:
        late = [j for j in collector.journeys
                if j.hops[1].entry_id != old_entry.entry_id]
        assert late and verifier.verify(late) == []

    def test_tcam_hijack_detected(self, ndb_net):
        """An unexpected high-priority TCAM rule (not installed by the
        controller) shows up as an unknown-rule violation."""
        net, intended = ndb_net
        h1 = net.host("h1")
        # A rogue rule on sw1 that still forwards correctly — invisible
        # to black-box testing, but ndb sees the matched entry id.
        out_port = net.switch("sw1").l2.entry_for(h1.mac).out_ports[0]
        net.switch("sw1").install_tcam_rule(
            TcamRule(priority=100, out_port=out_port, dst_mac=h1.mac))
        collector, _, _ = run_tagged_flow(net)
        verifier = make_verifier(net, intended, h1.mac)
        violations = verifier.verify(collector.journeys)
        assert violations
        assert all(v.kind == "unknown-rule" for v in violations)
        assert violations[0].switch_id == net.switch("sw1").switch_id

    def test_wrong_path_detected(self):
        verifier = PathVerifier([1, 2, 3], {})
        journey = PacketJourney(frame_uid=1, received_at_ns=0, hops=[
            HopRecord(1, 0, 0, 0), HopRecord(9, 0, 0, 0),
            HopRecord(3, 0, 0, 0)])
        violations = verifier.verify_one(journey)
        assert [v.kind for v in violations] == ["wrong-path"]

    def test_since_filter(self):
        verifier = PathVerifier([1], {})
        old = PacketJourney(frame_uid=1, received_at_ns=100,
                            hops=[HopRecord(9, 0, 0, 0)])
        assert verifier.verify([old], since_ns=200) == []
        assert len(verifier.verify([old], since_ns=0)) == 1


def truncated_trace_tpp(hops_executed=3, keep_bytes=40):
    """A trace TPP whose memory tail was lost in flight."""
    tpp = trace_program(hops=4).build()
    tpp.hop = hops_executed
    del tpp.memory[keep_bytes:]
    tpp.invalidate_length_cache()
    return tpp


class TestGapHops:
    def test_truncated_trace_marks_gap_hops(self, ndb_net):
        from repro.net.packet import ETHERTYPE_TPP, EthernetFrame

        net, _ = ndb_net
        h0, h1 = net.host("h0"), net.host("h1")
        collector = NdbCollector(h1)
        tpp = truncated_trace_tpp()  # 3 hops executed, 2.5 records left
        h1.receive(EthernetFrame(dst=h1.mac, src=h0.mac,
                                 ethertype=ETHERTYPE_TPP, payload=tpp),
                   in_port=0)
        assert collector.truncated_traces == 1
        journey = collector.journeys[0]
        assert len(journey.hops) == 3
        assert journey.has_gaps()
        assert [hop.gap for hop in journey.hops] == [False, False, True]
        assert journey.switch_ids()[2] == -1

    def test_gapped_journey_gets_no_path_verdict(self):
        """Incomplete evidence must not page an operator for a wrong
        path; surviving hops are still checked against the rules."""
        journey = PacketJourney(frame_uid=7, received_at_ns=0, hops=[
            HopRecord(1, entry_id=5, entry_version=1, input_port=0),
            HopRecord(-1, -1, -1, -1, gap=True)])
        verifier = PathVerifier([1, 2], {1: (5, 1), 2: (6, 1)})
        violations = verifier.verify_one(journey)
        assert [v.kind for v in violations] == ["trace-gap"]

    def test_surviving_hops_still_rule_checked(self):
        journey = PacketJourney(frame_uid=8, received_at_ns=0, hops=[
            HopRecord(1, entry_id=99, entry_version=1, input_port=0),
            HopRecord(-1, -1, -1, -1, gap=True)])
        verifier = PathVerifier([1, 2], {1: (5, 1)})
        kinds = {v.kind for v in verifier.verify_one(journey)}
        assert kinds == {"trace-gap", "unknown-rule"}

    def test_corrupting_link_does_not_break_reassembly(self, ndb_net):
        """End to end: a corrupting link feeds the collector mangled
        traces; it keeps reassembling instead of crashing."""
        net, _ = ndb_net
        sw1 = net.switch("sw1")
        toward_sw2 = [p for p in sw1.ports
                      if p.link.name == "sw1->sw2"][0]
        toward_sw2.link.set_impairments(corrupt_rate=0.5)
        collector, tagger, sink = run_tagged_flow(net, seconds=0.02)
        assert toward_sw2.link.frames_corrupted > 0
        assert len(collector.journeys) > 0
        gapped = [j for j in collector.journeys if j.has_gaps()]
        assert len(gapped) == collector.truncated_traces


class TestTraceProgram:
    def test_fits_instruction_budget(self):
        """The trace program must fit the paper's 5-instruction budget."""
        program = trace_program()
        assert program.n_instructions <= 5

    def test_hop_mode_with_four_words(self):
        program = trace_program(hops=6)
        assert program.perhop_len_bytes == 16
        assert program.memory_bytes == 16 * 6
