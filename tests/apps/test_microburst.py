"""Micro-burst detection (§2.1)."""

import pytest

from repro import units
from repro.analysis.timeseries import TimeSeries
from repro.apps.microburst import (
    Burst,
    BurstDetector,
    BurstyTrafficGenerator,
    CoarsePoller,
    TelemetryStream,
)
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder


def series_of(pairs):
    series = TimeSeries()
    for t, v in pairs:
        series.append(t, v)
    return series


class TestBurstDetector:
    def test_single_burst(self):
        series = series_of([(0, 0), (1, 50), (2, 60), (3, 0)])
        bursts = BurstDetector(threshold_bytes=40).detect(series)
        assert len(bursts) == 1
        assert bursts[0].start_ns == 1
        assert bursts[0].end_ns == 2
        assert bursts[0].peak_bytes == 60

    def test_multiple_bursts(self):
        series = series_of([(0, 50), (1, 0), (2, 50), (3, 0), (4, 50)])
        bursts = BurstDetector(40).detect(series)
        assert len(bursts) == 3

    def test_burst_at_end_closed(self):
        series = series_of([(0, 0), (1, 50)])
        bursts = BurstDetector(40).detect(series)
        assert len(bursts) == 1

    def test_min_duration_filter(self):
        series = series_of([(0, 50), (100, 50), (101, 0), (200, 50),
                            (201, 0)])
        bursts = BurstDetector(40, min_duration_ns=50).detect(series)
        assert len(bursts) == 1

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            BurstDetector(0)

    def test_recall_full(self):
        truth = [Burst(0, 10, 0), Burst(100, 110, 0)]
        detected = [Burst(5, 8, 0), Burst(105, 106, 0)]
        assert BurstDetector.recall(detected, truth) == 1.0

    def test_recall_partial(self):
        truth = [Burst(0, 10, 0), Burst(100, 110, 0)]
        detected = [Burst(5, 8, 0)]
        assert BurstDetector.recall(detected, truth) == 0.5

    def test_recall_with_slack(self):
        truth = [Burst(0, 10, 0)]
        detected = [Burst(15, 20, 0)]
        assert BurstDetector.recall(detected, truth) == 0.0
        assert BurstDetector.recall(detected, truth, slack_ns=10) == 1.0

    def test_recall_empty_truth_is_one(self):
        assert BurstDetector.recall([], []) == 1.0


class TestBurstOverlap:
    def test_overlap(self):
        assert Burst(0, 10, 0).overlaps(Burst(5, 15, 0))

    def test_disjoint(self):
        assert not Burst(0, 10, 0).overlaps(Burst(11, 20, 0))

    def test_touching_counts(self):
        assert Burst(0, 10, 0).overlaps(Burst(10, 20, 0))

    def test_duration(self):
        assert Burst(5, 25, 0).duration_ns == 20


@pytest.fixture
def burst_net():
    """Senders h0 (prober), h1, h3 (cross) into receiver h2 at 100 Mb/s.

    Two cross senders can jointly offer 2x the receiver link's rate, so
    genuine queue buildup happens at sw0's port toward h2.
    """
    builder = TopologyBuilder(rate_bps=100 * units.MEGABITS_PER_SEC,
                              delay_ns=10_000,
                              queue_capacity_bytes=64 * 1024)
    net = builder.star(n_hosts=4)
    install_shortest_path_routes(net)
    return net


class TestBurstyTrafficGenerator:
    def test_on_windows_recorded(self, burst_net):
        net = burst_net
        h0, h2 = net.host("h0"), net.host("h2")
        FlowSink(h2, 99)
        flow = Flow(h0, h2, h2.mac, 99, rate_bps=0, packet_bytes=1000)
        generator = BurstyTrafficGenerator(
            flow, burst_rate_bps=100 * units.MEGABITS_PER_SEC,
            on_mean_ns=units.microseconds(300),
            off_mean_ns=units.milliseconds(3),
            rng=net.rng.stream("bursts"))
        generator.start()
        net.run(until_seconds=0.2)
        generator.stop()
        assert len(generator.on_windows) > 5
        assert all(w.duration_ns > 0 for w in generator.on_windows)

    def test_traffic_only_during_on(self, burst_net):
        net = burst_net
        h0, h2 = net.host("h0"), net.host("h2")
        sink = FlowSink(h2, 99)
        flow = Flow(h0, h2, h2.mac, 99, rate_bps=0, packet_bytes=1000)
        generator = BurstyTrafficGenerator(
            flow, burst_rate_bps=50 * units.MEGABITS_PER_SEC,
            on_mean_ns=units.milliseconds(1),
            off_mean_ns=units.milliseconds(5),
            rng=net.rng.stream("bursts"))
        generator.start()
        net.run(until_seconds=0.1)
        generator.stop()
        assert sink.packets_received > 0
        on_time = sum(w.duration_ns for w in generator.on_windows)
        duty = on_time / units.seconds(0.1)
        # sent bytes consistent with the ON duty cycle (loose bound)
        expected = 50e6 * duty * 0.1 / 8
        assert flow.bytes_sent == pytest.approx(expected, rel=0.6)

    def test_deterministic_with_seed(self):
        def run_once():
            builder = TopologyBuilder(
                rate_bps=100 * units.MEGABITS_PER_SEC)
            net = builder.star(3)
            install_shortest_path_routes(net)
            h0, h2 = net.host("h0"), net.host("h2")
            FlowSink(h2, 99)
            flow = Flow(h0, h2, h2.mac, 99, rate_bps=0)
            generator = BurstyTrafficGenerator(
                flow, 50 * units.MEGABITS_PER_SEC,
                units.milliseconds(1), units.milliseconds(5),
                rng=net.rng.stream("bursts"))
            generator.start()
            net.run(until_seconds=0.05)
            return [(w.start_ns, w.end_ns) for w in generator.on_windows]

        assert run_once() == run_once()


class TestTelemetryStream:
    def test_per_hop_series_collected(self, burst_net):
        net = burst_net
        h0, h2 = net.host("h0"), net.host("h2")
        stream = TelemetryStream(h0, h2.mac,
                                 interval_ns=units.microseconds(500))
        from repro.endhost.client import TPPEndpoint
        TPPEndpoint(h2)
        stream.start(first_delay_ns=1)
        net.run(until_seconds=0.02)
        stream.stop()
        assert 1 in stream.queue_series  # switch id 1
        assert len(stream.series_for(1)) > 30

    def test_detects_real_burst(self, burst_net):
        """Cross traffic creates queue spikes; telemetry sees them."""
        net = burst_net
        h0, h1, h2, h3 = (net.host(f"h{i}") for i in range(4))
        FlowSink(h2, 99)
        crosses = [Flow(h, h2, h2.mac, 99,
                        rate_bps=100 * units.MEGABITS_PER_SEC,
                        packet_bytes=1000) for h in (h1, h3)]
        stream = TelemetryStream(h0, h2.mac,
                                 interval_ns=units.microseconds(200))
        from repro.endhost.client import TPPEndpoint
        TPPEndpoint(h2)
        stream.start(first_delay_ns=1)
        for cross in crosses:
            net.sim.schedule(units.milliseconds(5), cross.start)
            net.sim.schedule(units.milliseconds(8), cross.stop)
        net.run(until_seconds=0.05)
        series = stream.series_for(1)
        bursts = BurstDetector(threshold_bytes=5000).detect(series)
        assert len(bursts) >= 1
        # burst roughly where the cross traffic was on
        assert any(units.milliseconds(4) < b.start_ns
                   < units.milliseconds(10) for b in bursts)


class TestCoarsePoller:
    def test_polls_at_interval(self, burst_net):
        net = burst_net
        port = net.switch("sw0").ports[2]
        poller = CoarsePoller(net.sim, port,
                              interval_ns=units.milliseconds(10))
        poller.start()
        net.run(until_seconds=0.105)
        assert len(poller.series) == 10

    def test_misses_sub_interval_burst(self, burst_net):
        """The §2.1 claim: coarse polling cannot see micro-bursts."""
        net = burst_net
        h1, h2, h3 = net.host("h1"), net.host("h2"), net.host("h3")
        FlowSink(h2, 99)
        crosses = [Flow(h, h2, h2.mac, 99,
                        rate_bps=100 * units.MEGABITS_PER_SEC)
                   for h in (h1, h3)]
        port = [p for p in net.switch("sw0").ports
                if p.link.name.endswith("h2")][0]
        poller = CoarsePoller(net.sim, port,
                              interval_ns=units.milliseconds(20))
        poller.start()
        # a 2 ms overload burst placed between two poll instants
        for cross in crosses:
            net.sim.schedule(units.milliseconds(5), cross.start)
            net.sim.schedule(units.milliseconds(7), cross.stop)
        net.run(until_seconds=0.06)
        bursts = BurstDetector(5000).detect(poller.series)
        assert bursts == []
