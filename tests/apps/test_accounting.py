"""Traffic accounting over switch SRAM (§2.2's consistency-aware task)."""

import pytest

from repro import units
from repro.apps.accounting import (
    LedgerAuditor,
    TrafficLedger,
    attach_flow_publisher,
)
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

RATE = 100 * units.MEGABITS_PER_SEC


@pytest.fixture
def accounting_net():
    """Star: h0, h1 senders; h2 sink; h3 auditor.  The audited port is
    sw0's egress toward h2 (all accounted traffic flows to h2)."""
    net = TopologyBuilder(rate_bps=RATE).star(4)
    install_shortest_path_routes(net)
    switch = net.switch("sw0")
    agent = ControlPlaneAgent([switch], memory_map=MemoryMap.standard())
    ledger = TrafficLedger(agent, switch)
    # The probe destination must echo executed TPPs back.
    from repro.endhost.client import TPPEndpoint
    TPPEndpoint(net.host("h2"))
    return net, ledger


def attach_sender(net, ledger, name, src_name, rate_bps):
    src, sink_host = net.host(src_name), net.host("h2")
    flow = Flow(src, sink_host, sink_host.mac, 99, rate_bps=rate_bps,
                packet_bytes=1000)
    publisher = attach_flow_publisher(ledger, name, flow, sink_host.mac)
    return flow, publisher


class TestLedger:
    def test_slots_distinct(self, accounting_net):
        _, ledger = accounting_net
        a = ledger.register_sender("a")
        b = ledger.register_sender("b")
        assert a != b
        assert ledger.slot_names() == ["a", "b"]

    def test_publisher_writes_slot(self, accounting_net):
        net, ledger = accounting_net
        FlowSink(net.host("h2"), 99)
        flow, publisher = attach_sender(net, ledger, "a", "h0",
                                        rate_bps=RATE // 10)
        flow.start()
        publisher.start()
        net.run(until_seconds=0.2)
        slot = ledger.slot_vaddr("a") - 0xD000
        published = net.switch("sw0").mmu.peek_sram(slot)
        assert published > 0
        assert published <= flow.bytes_sent
        assert published >= flow.bytes_sent - 20_000  # lag bounded

    def test_audit_attributes_registered_traffic(self, accounting_net):
        net, ledger = accounting_net
        FlowSink(net.host("h2"), 99)
        flows = []
        for name, src in (("a", "h0"), ("b", "h1")):
            flow, publisher = attach_sender(net, ledger, name, src,
                                            rate_bps=RATE // 10)
            flow.start()
            publisher.start()
            flows.append(flow)
        auditor = LedgerAuditor(ledger, net.host("h3"),
                                net.host("h2").mac, audited_port_index=2)
        auditor.start()
        net.run(until_seconds=1.0)
        report = auditor.reports[-1]
        assert report.forwarded_bytes > 1_000_000
        # Nearly everything the switch forwarded toward h2 is claimed
        # (publication lag keeps it from being exactly 1.0).
        assert report.attribution_fraction > 0.9

    def test_audit_flags_unregistered_sender(self, accounting_net):
        """An unregistered flow shows up as unattributed bytes."""
        net, ledger = accounting_net
        FlowSink(net.host("h2"), 99)
        flow, publisher = attach_sender(net, ledger, "a", "h0",
                                        rate_bps=RATE // 10)
        flow.start()
        publisher.start()
        # h1 sends without registering.
        rogue = Flow(net.host("h1"), net.host("h2"), net.host("h2").mac,
                     97, rate_bps=RATE // 10, packet_bytes=1000)
        FlowSink(net.host("h2"), 97)
        rogue.start()
        auditor = LedgerAuditor(ledger, net.host("h3"),
                                net.host("h2").mac, audited_port_index=2)
        auditor.start()
        net.run(until_seconds=1.0)
        report = auditor.reports[-1]
        # About half the forwarded bytes are unclaimed.
        assert 0.3 < report.attribution_fraction < 0.75
        assert report.unattributed_bytes > 500_000
