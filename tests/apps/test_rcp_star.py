"""RCP* — the end-host RCP (§2.2)."""

import pytest

from repro import units
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC
RTT_S = 0.02


def build(n_pairs=2):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=n_pairs, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    return net, task


def make_flow(net, task, index, n_pairs):
    src = net.host(f"h{index}")
    dst = net.host(f"h{index + n_pairs}")
    return RCPStarFlow(task, index, src, dst, dst.mac,
                       capacity_bps=CAPACITY, rtt_s=RTT_S, max_hops=3)


class TestSetup:
    def test_rate_register_initialized_to_capacity(self):
        net, task = build()
        for switch in net.switches.values():
            for port in switch.ports:
                rate = task.rate_register_bps(switch, port.index)
                assert rate == pytest.approx(port.rate_bps, rel=0.01)

    def test_mnemonics_registered(self):
        _, task = build()
        assert task.memory_map.resolve("Link:RCP-RateRegister") == (
            task.rate_vaddr)
        assert task.memory_map.resolve("Link:RCP-LastUpdate") == (
            task.ts_vaddr)


class TestSingleFlow:
    def test_flow_ramps_to_capacity(self):
        net, task = build(n_pairs=1)
        flow = make_flow(net, task, 0, 1)
        flow.start()
        net.run(until_seconds=2.0)
        assert flow.flow.rate_bps == pytest.approx(CAPACITY, rel=0.15)
        goodput = flow.sink.goodput_bps(units.seconds(1), units.seconds(2))
        assert goodput == pytest.approx(CAPACITY, rel=0.2)

    def test_collect_phase_samples_links(self):
        net, task = build(n_pairs=1)
        flow = make_flow(net, task, 0, 1)
        flow.start()
        net.run(until_seconds=0.5)
        assert len(flow.links) == 2  # swL and swR hops
        bottleneck = flow.links[0]
        assert bottleneck.samples > 10
        assert bottleneck.rate_register_bps > 0

    def test_updates_written_to_switch(self):
        net, task = build(n_pairs=1)
        flow = make_flow(net, task, 0, 1)
        flow.start()
        net.run(until_seconds=1.0)
        assert flow.updates_sent > 10
        # The bottleneck register moved away from its initial value at
        # some point (it has been written by a TPP).
        series = flow.rate_series
        assert len(series) > 0


class TestFairness:
    def test_two_flows_converge_to_half(self):
        net, task = build(n_pairs=2)
        flows = [make_flow(net, task, i, 2) for i in range(2)]
        flows[0].start()
        net.sim.schedule(units.seconds(2), flows[1].start)
        net.run(until_seconds=6.0)
        register = task.rate_register_bps(net.switch("swL"), 0)
        assert register == pytest.approx(CAPACITY / 2, rel=0.25)
        goodputs = [f.sink.goodput_bps(units.seconds(5), units.seconds(6))
                    for f in flows]
        assert goodputs[0] == pytest.approx(goodputs[1], rel=0.15)

    def test_departure_releases_bandwidth(self):
        net, task = build(n_pairs=2)
        flows = [make_flow(net, task, i, 2) for i in range(2)]
        for flow in flows:
            flow.start()
        net.sim.schedule(units.seconds(3), flows[1].stop)
        net.run(until_seconds=6.0)
        register = task.rate_register_bps(net.switch("swL"), 0)
        assert register > 0.7 * CAPACITY

    def test_update_race_resolved_by_cstore(self):
        """Two flows share the register; updates do not corrupt it (it
        stays in a sane range) and both flows keep making progress."""
        net, task = build(n_pairs=2)
        flows = [make_flow(net, task, i, 2) for i in range(2)]
        for flow in flows:
            flow.start()
        net.run(until_seconds=3.0)
        register = task.rate_register_bps(net.switch("swL"), 0)
        assert 0 < register <= CAPACITY
        assert all(f.updates_sent > 0 for f in flows)
