"""The RCP control equation."""

import pytest

from repro.apps.rcp_common import RCPHeader, rcp_rate_update


class TestRateUpdate:
    def test_equilibrium_is_fixed_point(self):
        """y = C and q = 0 leaves the rate unchanged."""
        rate = rcp_rate_update(rate_bps=5e6, capacity_bps=10e6,
                               offered_bps=10e6, queue_bits=0,
                               interval_s=0.01, rtt_s=0.02)
        assert rate == pytest.approx(5e6)

    def test_underload_raises_rate(self):
        rate = rcp_rate_update(5e6, 10e6, offered_bps=5e6, queue_bits=0,
                               interval_s=0.01, rtt_s=0.02)
        assert rate > 5e6

    def test_overload_lowers_rate(self):
        rate = rcp_rate_update(5e6, 10e6, offered_bps=15e6, queue_bits=0,
                               interval_s=0.01, rtt_s=0.02)
        assert rate < 5e6

    def test_standing_queue_lowers_rate(self):
        rate = rcp_rate_update(5e6, 10e6, offered_bps=10e6,
                               queue_bits=100_000, interval_s=0.01,
                               rtt_s=0.02)
        assert rate < 5e6

    def test_clamped_to_capacity(self):
        rate = rcp_rate_update(9.9e6, 10e6, offered_bps=0, queue_bits=0,
                               interval_s=0.1, rtt_s=0.02)
        assert rate == 10e6

    def test_clamped_above_min(self):
        rate = rcp_rate_update(0.2e6, 10e6, offered_bps=100e6,
                               queue_bits=1e6, interval_s=0.1, rtt_s=0.02)
        assert rate == pytest.approx(0.01 * 10e6)

    def test_alpha_scales_rate_mismatch_term(self):
        gentle = rcp_rate_update(5e6, 10e6, 15e6, 0, 0.01, 0.02, alpha=0.1)
        aggressive = rcp_rate_update(5e6, 10e6, 15e6, 0, 0.01, 0.02,
                                     alpha=1.0)
        assert aggressive < gentle

    def test_beta_scales_queue_term(self):
        gentle = rcp_rate_update(5e6, 10e6, 10e6, 1e5, 0.01, 0.02, beta=0.1)
        aggressive = rcp_rate_update(5e6, 10e6, 10e6, 1e5, 0.01, 0.02,
                                     beta=2.0)
        assert aggressive < gentle

    def test_longer_interval_moves_further(self):
        short = rcp_rate_update(5e6, 10e6, 15e6, 0, 0.005, 0.02)
        long = rcp_rate_update(5e6, 10e6, 15e6, 0, 0.02, 0.02)
        assert long < short

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            rcp_rate_update(1, 0, 1, 0, 0.01, 0.02)

    def test_bad_rtt_rejected(self):
        with pytest.raises(ValueError):
            rcp_rate_update(1, 10, 1, 0, 0.01, 0)

    def test_paper_parameters_converge_iteratively(self):
        """Iterating the map with n flows tracking R drives R to ~C/n."""
        capacity = 10e6
        rate = capacity
        n_flows = 3
        queue_bits = 0.0
        rtt = 0.02
        interval = 0.01
        for _ in range(2000):
            offered = n_flows * rate
            # crude queue integrator: excess load accumulates, drains fast
            queue_bits = max(0.0, queue_bits
                             + (offered - capacity) * interval)
            rate = rcp_rate_update(rate, capacity, offered, queue_bits,
                                   interval, rtt)
        assert rate == pytest.approx(capacity / n_flows, rel=0.15)


class TestHeader:
    def test_shim_size(self):
        assert RCPHeader(rate_bps=1e9, rtt_ns=1000).size_bytes == 12
