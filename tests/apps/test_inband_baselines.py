"""ECN and IP Record Route — the §4 comparison mechanisms."""

import pytest

from repro import units
from repro.apps.inband_baselines import (
    ECN_CE,
    ECN_ECT,
    ECN_NOT_ECT,
    ECNFlow,
    install_ecn,
    install_record_route,
    send_record_route_probe,
)
from repro.endhost.flows import Flow, FlowSink
from repro.net.packet import Datagram, RawPayload
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC


def build_dumbbell(n_pairs=2):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=n_pairs, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    return net


class TestECNMarking:
    def test_uncongested_packets_not_marked(self):
        net = build_dumbbell(1)
        install_ecn(list(net.switches.values()), threshold_bytes=10_000)
        h0, h1 = net.host("h0"), net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d.ecn))
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(100), ecn=ECN_ECT))
        net.run(until_seconds=0.05)
        assert got == [ECN_ECT]

    def test_congested_queue_marks_ce(self):
        net = build_dumbbell(2)
        install_ecn(list(net.switches.values()), threshold_bytes=3_000)
        # Saturate the bottleneck.
        h1, h3 = net.host("h1"), net.host("h3")
        FlowSink(h3, 99)
        cross = Flow(h1, h3, h3.mac, 99, rate_bps=3 * CAPACITY,
                     packet_bytes=1000)
        cross.start()
        h0, h2 = net.host("h0"), net.host("h2")
        got = []
        h2.on_udp_port(9, lambda d, f: got.append(d.ecn))
        net.sim.schedule(units.milliseconds(50), lambda: h0.send_datagram(
            h2.mac, Datagram(h0.ip, h2.ip, 1, 9, RawPayload(100),
                             ecn=ECN_ECT)))
        net.run(until_seconds=0.3)
        assert got == [ECN_CE]

    def test_not_ect_never_marked(self):
        """Non-ECN-capable traffic is left alone even under congestion."""
        net = build_dumbbell(2)
        install_ecn(list(net.switches.values()), threshold_bytes=3_000)
        h1, h3 = net.host("h1"), net.host("h3")
        FlowSink(h3, 99)
        cross = Flow(h1, h3, h3.mac, 99, rate_bps=3 * CAPACITY)
        cross.start()
        h0, h2 = net.host("h0"), net.host("h2")
        got = []
        h2.on_udp_port(9, lambda d, f: got.append(d.ecn))
        net.sim.schedule(units.milliseconds(50), lambda: h0.send_datagram(
            h2.mac, Datagram(h0.ip, h2.ip, 1, 9, RawPayload(100),
                             ecn=ECN_NOT_ECT)))
        net.run(until_seconds=0.3)
        assert got == [ECN_NOT_ECT]


class TestECNFlow:
    def test_two_flows_share_bottleneck(self):
        net = build_dumbbell(2)
        install_ecn(list(net.switches.values()), threshold_bytes=8_000)
        flows = [ECNFlow(i, net.host(f"h{i}"), net.host(f"h{i + 2}"),
                         net.host(f"h{i + 2}").mac, net.host(f"h{i}").mac,
                         capacity_bps=CAPACITY) for i in range(2)]
        for flow in flows:
            flow.start()
        net.run(until_seconds=5.0)
        assert all(flow.marks_seen > 0 for flow in flows)
        goodputs = [f.sink.goodput_bps(units.seconds(3), units.seconds(5))
                    for f in flows]
        total = sum(goodputs)
        assert 0.5 * CAPACITY < total <= 1.05 * CAPACITY
        assert goodputs[0] == pytest.approx(goodputs[1], rel=0.5)

    def test_single_flow_ramps_up(self):
        net = build_dumbbell(1)
        install_ecn(list(net.switches.values()))
        flow = ECNFlow(0, net.host("h0"), net.host("h1"),
                       net.host("h1").mac, net.host("h0").mac,
                       capacity_bps=CAPACITY)
        flow.start()
        net.run(until_seconds=3.0)
        assert flow.flow.rate_bps > 0.5 * CAPACITY


class TestRecordRoute:
    def test_route_recorded(self, linear_net):
        install_record_route(list(linear_net.switches.values()))
        h0, h1 = linear_net.host("h0"), linear_net.host("h1")
        h1.on_udp_port(46000, lambda d, f: None)
        datagram = send_record_route_probe(h0, h1, h1.mac)
        linear_net.run(until_seconds=0.01)
        assert datagram.route_record == [1, 2, 3]

    def test_slots_cap_recording(self, linear_net):
        install_record_route(list(linear_net.switches.values()))
        h0, h1 = linear_net.host("h0"), linear_net.host("h1")
        h1.on_udp_port(46000, lambda d, f: None)
        datagram = send_record_route_probe(h0, h1, h1.mac, slots=2)
        linear_net.run(until_seconds=0.01)
        assert datagram.route_record == [1, 2]  # third hop had no room

    def test_option_grows_packet(self):
        plain = Datagram(1, 2, 3, 4, RawPayload(100))
        with_option = Datagram(1, 2, 3, 4, RawPayload(100),
                               route_record_slots=9)
        assert with_option.size_bytes == plain.size_bytes + 3 + 36

    def test_non_participating_packets_untouched(self, linear_net):
        install_record_route(list(linear_net.switches.values()))
        h0, h1 = linear_net.host("h0"), linear_net.host("h1")
        got = []
        h1.on_udp_port(9, lambda d, f: got.append(d))
        h0.send_datagram(h1.mac, Datagram(h0.ip, h1.ip, 1, 9,
                                          RawPayload(10)))
        linear_net.run(until_seconds=0.01)
        assert got[0].route_record is None
