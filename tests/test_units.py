"""Unit-conversion helpers."""

import pytest

from repro import units


class TestTimeConversions:
    def test_seconds_to_ns(self):
        assert units.seconds(1) == 1_000_000_000

    def test_fractional_seconds(self):
        assert units.seconds(0.5) == 500_000_000

    def test_milliseconds(self):
        assert units.milliseconds(2) == 2_000_000

    def test_microseconds(self):
        assert units.microseconds(3) == 3_000

    def test_round_trip(self):
        assert units.to_seconds(units.seconds(12.5)) == pytest.approx(12.5)

    def test_rounding_not_truncation(self):
        # 1.9999999995 s rounds to 2 s, not 1.999999999.
        assert units.seconds(1.9999999996) == 2_000_000_000


class TestTransmissionTime:
    def test_64_bytes_at_10g(self):
        # 512 bits at 10 Gb/s = 51.2 ns, rounded up to 52.
        assert units.transmission_time_ns(
            64, 10 * units.GIGABITS_PER_SEC) == 52

    def test_1500_bytes_at_1g(self):
        assert units.transmission_time_ns(
            1500, units.GIGABITS_PER_SEC) == 12_000

    def test_exact_division_not_rounded_up(self):
        # 1000 bytes at 1 Gb/s is exactly 8000 ns.
        assert units.transmission_time_ns(
            1000, units.GIGABITS_PER_SEC) == 8_000

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_time_ns(100, 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_time_ns(100, -5)


class TestRates:
    def test_bytes_per_second(self):
        assert units.bytes_per_second(8_000_000) == 1_000_000.0

    def test_rate_constants(self):
        assert units.GIGABITS_PER_SEC == 1000 * units.MEGABITS_PER_SEC
        assert units.MEGABITS_PER_SEC == 1000 * units.KILOBITS_PER_SEC
