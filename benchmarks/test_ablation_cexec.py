"""E10 (ablation): CEXEC targeting in RCP*'s update phase (§2.2 phase 3).

The paper's phase-3 TPP uses CEXEC so the rate write "only executes on
the bottleneck switch link".  This ablation compares:

- **targeted** (the paper's design): CEXEC gates the STORE to the
  bottleneck switch; other hops' registers keep their own values;
- **untargeted**: the STORE executes on *every* hop, clobbering every
  link's register with the bottleneck's rate.

The shape to reproduce: with targeting, non-bottleneck registers stay at
their initialized capacity; without it, the bottleneck rate leaks into
every register on the path (state corruption that would mislead any other
flow whose bottleneck is elsewhere), while the bottleneck behaviour
itself is similar — which is exactly why the conditional-execute
primitive earns its place in Table 1.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.apps.rcp import RCPStarFlow, RCPStarTask, UPDATE_PROGRAM
from repro.control.agent import ControlPlaneAgent
from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC
RTT_S = 0.02

UNTARGETED_UPDATE = """
.memory 1
.data 0 $NewRate
STORE [Link:RCP-RateRegister], [Packet:0]
"""


class UntargetedFlow(RCPStarFlow):
    """RCP* with the CEXEC guard removed from the update phase."""

    def _maybe_update(self, link):
        now_ts = self.src.sim.now_ns // 1000
        elapsed_ns = ((now_ts - link.last_update_ts) & 0xFFFF_FFFF) * 1000
        if elapsed_ns < self.update_interval_ns:
            return
        from repro.apps.rcp_common import rcp_rate_update
        interval_s = min(elapsed_ns / 1e9,
                         4 * self.update_interval_ns / 1e9)
        offered_bps = link.utilization_avg * self.capacity_bps
        new_rate = rcp_rate_update(
            link.rate_register_bps, self.capacity_bps, offered_bps,
            link.queue_bytes_avg * 8, interval_s, self.rtt_s,
            self.alpha, self.beta)
        program = assemble(UNTARGETED_UPDATE,
                           memory_map=self.task.memory_map,
                           symbols={"NewRate": int(new_rate) // 1000})
        self.updates_sent += 1
        self.endpoint.send(program, dst_mac=self.flow.dst_mac,
                           task_id=self.task.task_id)
        link.last_update_ts = now_ts & 0xFFFF_FFFF


def run_variant(flow_class):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=2, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    flows = [flow_class(task, i, net.host(f"h{i}"), net.host(f"h{i + 2}"),
                        net.host(f"h{i + 2}").mac, capacity_bps=CAPACITY,
                        rtt_s=RTT_S, max_hops=3) for i in range(2)]
    for flow in flows:
        flow.start()
    net.run(until_seconds=5.0)

    swL, swR = net.switch("swL"), net.switch("swR")
    bottleneck = task.rate_register_bps(swL, 0)
    # swR's egress ports toward the receivers are NOT bottlenecks; their
    # registers were initialized to the 100 Mb/s edge capacity.
    edge_registers = [task.rate_register_bps(swR, port.index)
                      for port in swR.ports[1:]]
    return bottleneck, edge_registers


def run_experiment():
    return {
        "targeted": run_variant(RCPStarFlow),
        "untargeted": run_variant(UntargetedFlow),
    }


def test_ablation_cexec_targeting(benchmark):
    result = run_once(benchmark, run_experiment)
    edge_capacity = 10 * CAPACITY

    banner("Ablation E10: RCP* phase 3 with vs without CEXEC targeting")
    rows = []
    for name, (bottleneck, edges) in result.items():
        rows.append([name, f"{bottleneck / CAPACITY:.2f} C",
                     " / ".join(f"{e / edge_capacity:.2f} Cedge"
                                for e in edges)])
    print(format_table(
        ["update phase", "bottleneck register", "edge-link registers"],
        rows))

    targeted_bottleneck, targeted_edges = result["targeted"]
    untargeted_bottleneck, untargeted_edges = result["untargeted"]

    # --- shape assertions ------------------------------------------------
    # Bottleneck allocation is similar either way (two flows ~ C/2).
    assert abs(targeted_bottleneck / CAPACITY - 0.5) < 0.2
    # With CEXEC, non-bottleneck registers keep their initialized value.
    assert all(edge > 0.9 * edge_capacity for edge in targeted_edges)
    # Without it, the bottleneck's rate is smeared over every hop: the
    # edge registers collapse to ~C/2, i.e. ~5% of their true capacity.
    assert all(edge < 0.2 * edge_capacity for edge in untargeted_edges)
