#!/usr/bin/env python
"""E22: sketch accuracy versus scratch-SRAM budget (see EXPERIMENTS.md).

Sweeps the count-min geometry (width x depth) and the HLL register
count m, replaying the same seeded flow traces through the *live*
pipeline at every point — generated update TPPs executed by a real
TCPU against a real MMU, decoded from the resulting SRAM image — and
reports measured error against the analytical (epsilon, delta) /
standard-error predictions.  The point of the sweep is the trade the
paper's scratch-SRAM budget forces: every extra word of sketch buys a
predictable drop in error, and the table shows the measured drop
tracking the predicted one.

Usage::

    PYTHONPATH=src python benchmarks/sketch_sweep.py           # full sweep
    PYTHONPATH=src python benchmarks/sketch_sweep.py --quick   # CI smoke

Always exits 0 on a completed sweep; the numbers are for the
experiment log, not a gate (the gating accuracy properties live in
tests/props/test_sketch_accuracy.py).
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.sketch import (  # noqa: E402
    CountMinDecoder,
    DistinctCountDecoder,
    image_from_mmu,
)
from repro.asic.metadata import PacketMetadata  # noqa: E402
from repro.core.mmu import MMU, ExecutionContext  # noqa: E402
from repro.core.tcpu import TCPU  # noqa: E402
from repro.telemetry import (  # noqa: E402
    CountMinLayout,
    DistinctCountLayout,
    build_count_min_update,
    build_distinct_update,
)

SEED = 20260808

CM_WIDTHS = (4, 8, 16, 32, 64)
CM_DEPTHS = (1, 2, 3)
HLL_MS = (4, 8, 16, 32, 64)


class _FakeQueue:
    occupancy_bytes = 500


class _FakePort:
    index = 0
    queue = _FakeQueue()


def _ctx() -> ExecutionContext:
    return ExecutionContext(metadata=PacketMetadata(),
                            egress_port=_FakePort(), time_ns=1000)


def _tcpu() -> TCPU:
    return TCPU(MMU(name="sketch-sweep"), max_instructions=8,
                race_mode="off")


def _execute(tcpu: TCPU, update) -> None:
    report = tcpu.execute(update.build(), _ctx())
    assert report.ok, f"sketch update faulted: {report.fault}"


def cm_trace(seed: int, n_keys: int, max_count: int = 60) -> dict:
    rng = random.Random(seed)
    keys = rng.sample(range(1, 1_000_000), n_keys)
    return {key: rng.randint(1, max_count) for key in keys}


def sweep_count_min(n_traces: int, n_keys: int) -> list:
    """One row per geometry: measured mean/max relative error vs eps."""
    rows = []
    for depth in CM_DEPTHS:
        for width in CM_WIDTHS:
            layout = CountMinLayout(base_word=0, width=width, depth=depth)
            decoder = CountMinDecoder(layout)
            errors = []
            for trace in range(n_traces):
                truth = cm_trace(SEED + trace, n_keys)
                total = sum(truth.values())
                tcpu = _tcpu()
                for key, count in truth.items():
                    _execute(tcpu,
                             build_count_min_update(layout, key,
                                                    delta=count))
                image = image_from_mmu(tcpu.mmu, layout.words())
                for key, exact in truth.items():
                    estimate = decoder.raw_estimate(image, key)
                    assert estimate >= exact
                    errors.append((estimate - exact) / total)
            rows.append({
                "width": width,
                "depth": depth,
                "words": layout.n_words,
                "epsilon": layout.epsilon,
                "mean_rel_err": sum(errors) / len(errors),
                "max_rel_err": max(errors),
            })
    return rows


def sweep_distinct(n_traces: int, cardinality: int) -> list:
    """One row per register count m: measured vs predicted rel. error."""
    rows = []
    for m in HLL_MS:
        layout = DistinctCountLayout(base_word=512, m=m)
        decoder = DistinctCountDecoder(layout)
        errors = []
        for trace in range(n_traces):
            rng = random.Random(SEED + 7 * trace)
            keys = rng.sample(range(1, 10_000_000), cardinality)
            tcpu = _tcpu()
            for key in keys:
                _execute(tcpu, build_distinct_update(layout, key))
            image = image_from_mmu(tcpu.mmu, layout.words())
            estimate = decoder.estimate(image)
            errors.append(abs(estimate - cardinality) / cardinality)
        rows.append({
            "m": m,
            "words": layout.n_words,
            "sigma": layout.standard_error,
            "mean_rel_err": sum(errors) / len(errors),
            "max_rel_err": max(errors),
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller traces (CI smoke run)")
    args = parser.parse_args(argv)

    n_traces = 2 if args.quick else 8
    n_keys = 8 if args.quick else 24
    cardinality = 60 if args.quick else 300

    print(f"count-min accuracy vs SRAM budget "
          f"({n_traces} traces x {n_keys} keys; error relative to N):")
    print(f"{'depth':>5} {'width':>5} {'words':>5} {'eps':>7} "
          f"{'mean err':>9} {'max err':>9}")
    for row in sweep_count_min(n_traces, n_keys):
        print(f"{row['depth']:>5} {row['width']:>5} {row['words']:>5} "
              f"{row['epsilon']:>7.3f} {row['mean_rel_err']:>9.4f} "
              f"{row['max_rel_err']:>9.4f}")

    print(f"\ndistinct-count accuracy vs register file "
          f"({n_traces} traces at cardinality {cardinality}):")
    print(f"{'m':>5} {'words':>5} {'sigma':>7} "
          f"{'mean err':>9} {'max err':>9}")
    for row in sweep_distinct(n_traces, cardinality):
        print(f"{row['m']:>5} {row['words']:>5} {row['sigma']:>7.3f} "
              f"{row['mean_rel_err']:>9.4f} {row['max_rel_err']:>9.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
