"""Throughput of the fleet-level SRAM race analysis (EXPERIMENTS E17).

Builds a deterministic synthetic fleet of 64 same-task programs with
overlapping word-level SRAM access sets (a mix of plain read-modify-write
counters, CSTORE claimers, and readers spread over a small word range so
pairs genuinely intersect), then measures:

- ``check_fleet``          — from-scratch pairwise analysis over all 64
  programs (2016 pairs) in one call;
- ``FleetRaceTable.admit`` — incremental admission of the same 64
  programs one by one (the ``VerifierPolicy``/TCPU admission path);
- ``summarize``            — building the per-program access summaries
  from decoded instructions (the certificate-embedding cost);
- ``check_fleet + sram``   — the same from-scratch pass with a switch
  SRAM image bound, i.e. including the relational claim-epoch
  fixpoint (``refine_for_switch``) over all 64 programs;
- ``relational``           — one program's relational abstract
  interpretation (``analyze_relations``), the per-certificate cost
  the verifier adds.

Standalone on purpose (not part of the ``BENCH_simcore.json`` schema):
run it directly and paste the numbers into EXPERIMENTS.md E17.

    PYTHONPATH=src python benchmarks/race_bench.py
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Tuple

from repro.core.assembler import assemble
from repro.core.isa import Instruction, Opcode
from repro.core.memory_map import SRAM_BASE
from repro.core.racecheck import (
    FleetRaceTable,
    ProgramAccessSummary,
    check_fleet,
    summarize_instructions,
)
from repro.core.relational import analyze_relations

FLEET_SIZE = 64
#: Words 0..15: small enough that most pairs share something.
WORD_SPAN = 16


def synthetic_fleet(n: int = FLEET_SIZE,
                    seed: int = 2017) -> List[ProgramAccessSummary]:
    """A deterministic fleet with realistic access-set overlap."""
    rng = random.Random(seed)
    summaries = []
    for index in range(n):
        instructions: List[Tuple[Opcode, int, int]] = []
        base = rng.randrange(WORD_SPAN)
        kind = index % 4
        if kind == 0:      # plain read-modify-write counter
            instructions = [(Opcode.ADD, SRAM_BASE + base, 0),
                            (Opcode.STORE, SRAM_BASE + base, 0)]
        elif kind == 1:    # CSTORE claimer
            instructions = [(Opcode.CSTORE, SRAM_BASE + base, 0)]
        elif kind == 2:    # multi-word reader
            instructions = [
                (Opcode.PUSH, SRAM_BASE + (base + k) % WORD_SPAN, 0)
                for k in range(3)]
        else:              # writer + reader on different words
            instructions = [
                (Opcode.STORE, SRAM_BASE + base, 0),
                (Opcode.LOAD, SRAM_BASE + (base + 1) % WORD_SPAN, 1)]
        decoded = [Instruction(opcode, addr, offset)
                   for opcode, addr, offset in instructions]
        summaries.append(summarize_instructions(
            decoded, task_id=0, name=f"prog{index:02d}"))
    return summaries


def _time(label: str, repeats: int, body: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            body()
        best = min(best, (time.perf_counter() - start) / repeats)
    print(f"{label:30} {best * 1e3:8.3f} ms/op "
          f"({1.0 / best:10.1f} ops/sec)")
    return best


def main() -> None:
    fleet = synthetic_fleet()
    report = check_fleet(fleet)
    pairs = report.pairs_checked
    by_code = report.by_code()
    print(f"synthetic fleet: {len(fleet)} programs, {pairs} pairs, "
          f"diagnostics {by_code}")

    _time("check_fleet (64 programs)", 20, lambda: check_fleet(fleet))

    def incremental() -> FleetRaceTable:
        table = FleetRaceTable()
        for summary in fleet:
            table.admit(summary)
        return table

    table = incremental()
    print(f"incremental admissions: {table.pair_checks} pair checks "
          f"(vs {pairs} from-scratch)")
    _time("incremental admit x64", 20, incremental)

    decoded = [Instruction(Opcode.ADD, SRAM_BASE + 3, 0),
               Instruction(Opcode.STORE, SRAM_BASE + 3, 0),
               Instruction(Opcode.PUSH, SRAM_BASE + 7, 0)]
    _time("summarize (3-instr program)", 2000,
          lambda: summarize_instructions(decoded, task_id=0))

    # Relational column: the claim-epoch refinement across the fleet
    # (check_fleet with a bound SRAM image) and the per-program
    # relational walk the verifier pays once per certificate.
    image = {word: 0 for word in range(WORD_SPAN)}
    bound = check_fleet(fleet, sram_values=image)
    print(f"with sram image bound: diagnostics {bound.by_code()}")
    _time("check_fleet + sram (64 prog)", 20,
          lambda: check_fleet(fleet, sram_values=image))

    program = assemble(
        ".memory 2\n"
        "LOAD [Switch:ClockLo], [Packet:0]\n"
        "CSTORE [Sram:Word3], 0, 1\n"
        "CEXEC [Switch:SwitchID], 0x0F, 0xF0\n"
        "STORE [Sram:Word0], [Packet:0]")
    _time("relational (5-instr program)", 2000,
          lambda: analyze_relations(
              program.instructions, mode=program.mode,
              word_size=program.word_size,
              memory_len=len(program.initial_memory),
              perhop_len_bytes=program.perhop_len_bytes,
              initial_memory=bytes(program.initial_memory), entry=0))


if __name__ == "__main__":
    main()
