"""E6 / §2.1: micro-burst detection.

Datacenter-style scenario: bursty cross traffic creates queue excursions
lasting a few hundred microseconds.  TPP telemetry probing every 100 µs
(per-RTT-scale visibility) detects them; the control-plane poller at the
"10s of seconds" timescale the paper attributes to today's monitoring
sees essentially nothing.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.apps.microburst import (
    BurstDetector,
    BurstyTrafficGenerator,
    CoarsePoller,
    TelemetryStream,
)
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

FAST = units.GIGABITS_PER_SEC          # sender uplinks
SLOW = 100 * units.MEGABITS_PER_SEC    # the sink's downlink (bottleneck)
THRESHOLD_BYTES = 8_000          # ~8 packets of standing queue
DURATION_S = 2.0
PROBE_INTERVAL_NS = units.microseconds(100)
COARSE_INTERVAL_NS = units.seconds(1)  # generously fast "SNMP"


def run_experiment():
    # h0 (prober), h1, h3 (bursty senders) have 1 Gb/s uplinks; the sink
    # h2 hangs off a 100 Mb/s downlink, so a 1 Gb/s burst of a few
    # hundred microseconds piles tens of kilobytes into sw0's queue.
    net = Network(seed=0)
    switch = net.add_switch()
    for name in ("h0", "h1", "h2", "h3"):
        host = net.add_host(name)
        rate = SLOW if name == "h2" else FAST
        net.link(host, switch, rate, delay_ns=5_000,
                 queue_capacity_bytes=256 * 1024)
    install_shortest_path_routes(net)
    h0, h1, h2, h3 = (net.host(f"h{i}") for i in range(4))

    FlowSink(h2, 99)
    generators = []
    for index, host in enumerate((h1, h3)):
        flow = Flow(host, h2, h2.mac, 99, rate_bps=0, packet_bytes=1000)
        generator = BurstyTrafficGenerator(
            flow, burst_rate_bps=FAST,
            on_mean_ns=units.microseconds(400),
            off_mean_ns=units.milliseconds(20),
            rng=net.rng.stream(f"burst{index}"))
        generators.append(generator)

    stream = TelemetryStream(h0, h2.mac, interval_ns=PROBE_INTERVAL_NS)
    TPPEndpoint(h2)
    port_to_h2 = [p for p in net.switch("sw0").ports
                  if p.link.name.endswith("h2")][0]
    poller = CoarsePoller(net.sim, port_to_h2,
                          interval_ns=COARSE_INTERVAL_NS)
    # Ground truth: direct dense sampling of the same queue.
    truth_poller = CoarsePoller(net.sim, port_to_h2,
                                interval_ns=units.microseconds(20),
                                name="truth")

    stream.start(first_delay_ns=1)
    poller.start()
    truth_poller.start()
    for generator in generators:
        generator.start()
    net.run(until_seconds=DURATION_S)
    for generator in generators:
        generator.stop()

    detector = BurstDetector(THRESHOLD_BYTES)
    truth = detector.detect(truth_poller.series)
    tpp_bursts = detector.detect(stream.series_for(1))
    coarse_bursts = detector.detect(poller.series)
    slack = units.microseconds(200)
    return {
        "truth": truth,
        "tpp": tpp_bursts,
        "coarse": coarse_bursts,
        "tpp_recall": BurstDetector.recall(tpp_bursts, truth, slack),
        "coarse_recall": BurstDetector.recall(coarse_bursts, truth, slack),
        "samples": stream.samples,
    }


def test_sec21_microburst_detection(benchmark):
    result = run_once(benchmark, run_experiment)
    truth = result["truth"]

    banner("§2.1: micro-burst detection — per-packet TPP visibility vs "
           "control-plane polling")
    durations_us = [b.duration_ns / 1000 for b in truth]
    print(f"ground-truth bursts over {DURATION_S:.0f}s: {len(truth)}, "
          f"median duration ~{sorted(durations_us)[len(truth) // 2]:.0f}us")
    rows = [
        ["TPP telemetry (100 us probes)", len(result["tpp"]),
         f"{result['tpp_recall'] * 100:.0f}%"],
        [f"control-plane poll ({COARSE_INTERVAL_NS / 1e9:.0f}s)",
         len(result["coarse"]), f"{result['coarse_recall'] * 100:.0f}%"],
    ]
    print(format_table(["monitor", "bursts seen", "recall vs truth"],
                       rows))

    # --- shape assertions ------------------------------------------------
    assert len(truth) >= 10, "workload failed to produce micro-bursts"
    # Bursts really are micro: the typical excursion lasts a few ms at
    # most (sub-ms line-rate burst plus queue drain), far below any
    # polling interval.  A rare pile-up of back-to-back ON windows may
    # run longer, so assert on the distribution, not the single maximum.
    durations = sorted(b.duration_ns for b in truth)
    assert durations[len(durations) // 2] < units.milliseconds(5)
    short = sum(1 for d in durations if d < units.milliseconds(15))
    assert short / len(durations) > 0.8
    # TPP telemetry catches the bulk of them...
    assert result["tpp_recall"] > 0.7
    # ... and coarse polling misses essentially all of them.
    assert result["coarse_recall"] < 0.2
    assert result["tpp_recall"] > result["coarse_recall"] + 0.5
