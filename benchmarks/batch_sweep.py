"""Batch-size sweep for the batched TCPU engine (EXPERIMENTS.md E18/E20).

Runs the ``tpp_exec_batched`` steady-state workload at a range of batch
sizes on a fixed total execution count, so the table answers: where does
amortization saturate, and what does a half-empty drain window cost?
The scalar (batch-of-one through ``TCPU.execute``) rate is measured in
the same process as the 1.0x reference.

With ``--write`` the sweep runs the write-bearing counter workload
(``tpp_exec_batched_write``) instead: a certified accumulate program on
the write-capable vector lane, whose per-batch epilogue (prefix scan +
SRAM commit) is a fixed cost the batch size must amortize — the E20
question.

Usage::

    PYTHONPATH=src python benchmarks/batch_sweep.py [--total 64000]
    PYTHONPATH=src python benchmarks/batch_sweep.py --write
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List

from perf_baseline import (
    _BENCH_SOURCE,
    _WRITE_BENCH_SOURCE,
    _FakePort,
    _bench_mmu,
    _timed,
)

from repro.asic.metadata import PacketMetadata
from repro.core.assembler import assemble
from repro.core.batch import HAVE_NUMPY, BatchArena
from repro.core.memory_map import MemoryMap
from repro.core.mmu import ExecutionContext
from repro.core.tcpu import TCPU
from repro.core.verifier import verify_program

SWEEP_SIZES = (1, 2, 4, 8, 16, 32, 64)


def sweep_point(batch_size: int, total_executions: int,
                write: bool = False) -> Dict[str, Any]:
    """Executions/sec at one batch size, vector lane engaged."""
    mmu = _bench_mmu()
    tcpu = TCPU(mmu)
    source = _WRITE_BENCH_SOURCE if write else _BENCH_SOURCE
    program = assemble(source, hops=1)
    result = verify_program(program, memory_map=MemoryMap.standard())
    certificate = result.raise_on_error().certificate
    if certificate is not None:
        tcpu.trust(certificate)
    sections = [program.build() for _ in range(batch_size)]
    initial_memory = bytes(sections[0].memory)
    initial_hop_or_sp = sections[0].hop_or_sp
    ctx = ExecutionContext(metadata=PacketMetadata(),
                           egress_port=_FakePort(), time_ns=1000)
    ctxs = [ctx] * batch_size
    arena = BatchArena(sections) if HAVE_NUMPY else None
    initial_matrix = arena.matrix.copy() if arena is not None else None
    n_batches = max(1, total_executions // batch_size)

    def drive() -> None:
        for _ in range(n_batches):
            for section in sections:
                section.hop_or_sp = initial_hop_or_sp
            if not write:
                pass
            elif arena is not None:
                arena.matrix[:] = initial_matrix
            else:
                for section in sections:
                    section.memory[:] = initial_memory
            tcpu.execute_batch(sections, ctxs, arena=arena)

    drive()  # warm-up (compiles + plans the program)
    _, elapsed = _timed(drive)
    return {
        "batch_size": batch_size,
        "n_executions": n_batches * batch_size,
        "execs_per_sec": n_batches * batch_size / elapsed,
        "vector_batches": (tcpu.vector_write_batches if write
                           else tcpu.vector_batches),
        "batch_fallbacks": tcpu.batch_fallbacks,
    }


def scalar_point(total_executions: int, write: bool = False) -> float:
    """The scalar control: fresh section + context per execution."""
    mmu = _bench_mmu()
    tcpu = TCPU(mmu)
    source = _WRITE_BENCH_SOURCE if write else _BENCH_SOURCE
    program = assemble(source, hops=1)
    n = max(1, total_executions // 8)

    def drive() -> None:
        for _ in range(n):
            tpp = program.build()
            ctx = ExecutionContext(metadata=PacketMetadata(),
                                   egress_port=_FakePort(), time_ns=1000)
            tcpu.execute(tpp, ctx)

    drive()  # warm-up
    _, elapsed = _timed(drive)
    return n / elapsed


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=64_000,
                        help="target executions per sweep point")
    parser.add_argument("--write", action="store_true",
                        help="sweep the write-bearing counter workload "
                             "(write-capable vector lane, E20)")
    args = parser.parse_args(argv)

    scalar = scalar_point(args.total, write=args.write)
    workload = "write counter" if args.write else "read-only probe"
    print(f"numpy lane: {'on' if HAVE_NUMPY else 'off'}   "
          f"workload: {workload}")
    print(f"scalar (TCPU.execute, rebuild per exec): {scalar:>12,.0f} "
          f"execs/s\n")
    print(f"{'batch':>5} | {'execs/s':>12} | {'vs scalar':>9} | "
          f"{'vec-batches':>11} | {'fallbacks':>9}")
    print("-" * 60)
    points: List[Dict[str, Any]] = []
    for size in SWEEP_SIZES:
        point = sweep_point(size, args.total, write=args.write)
        points.append(point)
        print(f"{point['batch_size']:>5} | "
              f"{point['execs_per_sec']:>12,.0f} | "
              f"{point['execs_per_sec'] / scalar:>8.2f}x | "
              f"{point['vector_batches']:>11} | "
              f"{point['batch_fallbacks']:>9}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
