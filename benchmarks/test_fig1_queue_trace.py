"""E1 / Figure 1: visualizing the execution of a queue-size query TPP.

The paper's figure shows one TPP traversing three switches; at each hop
the ASIC executes ``PUSH [Queue:QueueSize]``, the stack pointer advances
0x0 -> 0x4 -> 0x8 -> 0xc, and packet memory accumulates one queue-size
snapshot per hop while the packet itself never grows.

This bench regenerates those per-hop packet snapshots under real (bursty)
cross traffic so the recorded queue sizes are nonzero and different per
hop, and prints them in the figure's layout.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

RATE = 100 * units.MEGABITS_PER_SEC


def build_experiment():
    """Three-switch chain with cross traffic converging on sw1->sw2."""
    builder = TopologyBuilder(rate_bps=RATE, delay_ns=10_000)
    net = builder.linear(n_switches=3, hosts_per_end=1)
    # Two extra hosts on sw1 jointly overload sw1's egress toward sw2.
    for name in ("hx0", "hx1"):
        crosser = net.add_host(name)
        net.link(crosser, net.switch("sw1"), RATE, 10_000)
    install_shortest_path_routes(net)
    return net


def run_experiment():
    net = build_experiment()
    h0, h1 = net.host("h0"), net.host("h1")
    client = TPPEndpoint(h0)
    TPPEndpoint(h1)
    FlowSink(h1, 99)

    # Cross traffic loads sw1's egress toward sw2 at 2x its line rate.
    for name in ("hx0", "hx1"):
        cross = Flow(net.host(name), h1, h1.mac, 99, rate_bps=RATE,
                     packet_bytes=1000)
        cross.start()

    snapshots = []

    def tap(record):
        if record.kind == "tpp.exec" and record.detail["executed"]:
            snapshots.append((record.source,
                              record.detail["sp_or_hop"],
                              list(record.detail["memory_words"])))

    net.trace.add_tap(tap)
    program = assemble("PUSH [Queue:QueueSize]", hops=3)
    results = []
    net.sim.schedule(units.milliseconds(5), lambda: client.send(
        program, dst_mac=h1.mac, on_response=results.append))
    net.run(until_seconds=0.5)
    return snapshots, results


def test_fig1_queue_size_query(benchmark):
    snapshots, results = run_once(benchmark, run_experiment)

    banner("Figure 1: TPP executing 'PUSH [Queue:QueueSize]' per hop")
    rows = [["(sent)", "0x0", "-", "-", "-"]]
    for index, (switch, sp, words) in enumerate(snapshots):
        cells = [f"{w:#06x}" if i <= index else "-"
                 for i, w in enumerate(words)]
        rows.append([f"after {switch}", f"{sp:#x}"] + cells)
    print(format_table(
        ["packet state", "SP", "mem[0]", "mem[1]", "mem[2]"], rows))

    # --- shape assertions ------------------------------------------------
    # One execution per switch, SP advancing one word per hop.
    assert [sp for _, sp, _ in snapshots] == [0x4, 0x8, 0xC]
    assert [s for s, _, _ in snapshots] == ["sw0", "sw1", "sw2"]
    # Packet memory never grows or shrinks inside the network.
    assert all(len(words) == 3 for _, _, words in snapshots)
    # The congested hop (sw1 -> sw2) recorded a bigger queue than sw0.
    final_words = results[0].per_hop_words()
    queue_sizes = [words[0] for words in final_words]
    print(f"\nper-hop queue sizes seen by the end-host: {queue_sizes}")
    assert queue_sizes[1] > queue_sizes[0]
    # End-host sees exactly what the last switch wrote.
    assert results[0].hops() == 3
