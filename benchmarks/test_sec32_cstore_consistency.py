"""E8 / §2.2 + §3.2.3: CSTORE gives linearizable shared-state updates.

"With multiple concurrent writers to a shared switch memory, one might
wonder if there could be race conditions ... we support a conditional
store instruction to provide a stronger (linearizable) notion of
consistency for memory updates."

Several end-hosts concurrently increment one shared SRAM word through
read-modify-write TPP round trips.  With plain STOREs, interleavings lose
updates; with CSTORE (conditioned on the value read, old value returned
in the packet) every successful increment is accounted for exactly once.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

N_WRITERS = 6
INCREMENTS_PER_WRITER = 25


class Incrementer:
    """Read-modify-write increments of Sram:Word0 on the shared switch."""

    def __init__(self, host, peer_mac, use_cstore):
        self.host = host
        self.peer_mac = peer_mac
        self.use_cstore = use_cstore
        self.remaining = INCREMENTS_PER_WRITER
        self.retries = 0

    def start(self):
        self._read()

    def _read(self):
        if self.remaining <= 0:
            return
        self.host.tpp.send(assemble("PUSH [Sram:Word0]"),
                           dst_mac=self.peer_mac,
                           on_response=self._on_read)

    def _on_read(self, result):
        seen = result.word(0)
        if self.use_cstore:
            program = assemble("CSTORE [Sram:Word0], $seen, $next",
                               symbols={"seen": seen, "next": seen + 1})
            self.host.tpp.send(
                program, dst_mac=self.peer_mac,
                on_response=lambda r, s=seen: self._on_cstore(r, s))
        else:
            program = assemble(
                ".memory 1\n.data 0 $next\nSTORE [Sram:Word0], [Packet:0]",
                symbols={"next": seen + 1})
            self.host.tpp.send(program, dst_mac=self.peer_mac,
                               on_response=self._on_plain_store)

    def _on_cstore(self, result, seen):
        if result.word(0) == seen:  # old value equals cond: our write won
            self.remaining -= 1
        else:
            self.retries += 1
        self._read()

    def _on_plain_store(self, result):
        self.remaining -= 1
        self._read()


def run_variant(use_cstore):
    net = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC).star(
        N_WRITERS + 1)
    install_shortest_path_routes(net)
    for host in net.hosts.values():
        host.tpp = TPPEndpoint(host)
    peer = net.host(f"h{N_WRITERS}")
    writers = [Incrementer(net.host(f"h{i}"), peer.mac, use_cstore)
               for i in range(N_WRITERS)]
    for writer in writers:
        writer.start()
    net.run(until_seconds=10.0)
    assert all(w.remaining == 0 for w in writers), "writers did not finish"
    final = net.switch("sw0").mmu.peek_sram(0)
    return final, sum(w.retries for w in writers)


def run_experiment():
    return {"store": run_variant(False), "cstore": run_variant(True)}


def test_sec32_cstore_linearizability(benchmark):
    result = run_once(benchmark, run_experiment)
    expected = N_WRITERS * INCREMENTS_PER_WRITER
    store_final, _ = result["store"]
    cstore_final, cstore_retries = result["cstore"]

    banner("§3.2.3: shared-register updates — plain STORE vs CSTORE")
    rows = [
        ["plain STORE", expected, store_final,
         expected - store_final, "-"],
        ["CSTORE", expected, cstore_final, expected - cstore_final,
         cstore_retries],
    ]
    print(format_table(
        ["method", "increments issued", "final counter", "lost updates",
         "retries"], rows))

    # --- shape assertions ------------------------------------------------
    assert store_final < expected          # racing STOREs lose updates
    assert cstore_final == expected        # CSTORE is exact
    assert cstore_retries > 0              # there was real contention
