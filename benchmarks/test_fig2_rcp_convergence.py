"""E2 / Figure 2: RCP (in-network, ns-2 equivalent) vs RCP* (TPP+endhost).

The paper's setup: a 10 Mb/s bottleneck shared by three flows starting at
t = 0 s, 10 s and 20 s; the figure plots the bottleneck fair-share rate
R(t)/C for both implementations, with alpha = 0.5 and beta = 1.  The
claim is qualitative similarity: both converge quickly to ~1, ~1/2 and
~1/3 after each arrival.

We reproduce both curves in the same simulator.  Absolute convergence
times differ from the paper's Linux-router testbed, but the shape — fast
convergence to the fair share after each flow joins — must hold.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.convergence import convergence_time_ns
from repro.analysis.reporting import ascii_plot, format_table
from repro.analysis.timeseries import TimeSeries
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.apps.rcp_router import RCPBaselineFlow, RCPRouterNetwork
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder
from repro.sim.timers import PeriodicTimer

CAPACITY = 10 * units.MEGABITS_PER_SEC     # the paper's 10 Mb/s bottleneck
RTT_S = 0.02
ALPHA, BETA = 0.5, 1.0                      # the paper's parameters
FLOW_STARTS_S = (0.0, 10.0, 20.0)           # the paper's arrival times
DURATION_S = 30.0
SAMPLE_INTERVAL_NS = units.milliseconds(50)


def build_net():
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=3, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    return net


def sample_rate(net, read_rate):
    series = TimeSeries("R(t)/C")
    timer = PeriodicTimer(net.sim, SAMPLE_INTERVAL_NS,
                          lambda: series.append(net.sim.now_ns,
                                                read_rate() / CAPACITY))
    timer.start()
    return series


def run_rcp_star():
    net = build_net()
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    flows = [RCPStarFlow(task, i, net.host(f"h{i}"), net.host(f"h{i + 3}"),
                         net.host(f"h{i + 3}").mac, capacity_bps=CAPACITY,
                         rtt_s=RTT_S, alpha=ALPHA, beta=BETA, max_hops=3)
             for i in range(3)]
    swL = net.switch("swL")
    series = sample_rate(net, lambda: task.rate_register_bps(swL, 0))
    for start_s, flow in zip(FLOW_STARTS_S, flows):
        if start_s == 0.0:
            flow.start()
        else:
            net.sim.schedule(units.seconds(start_s), flow.start)
    net.run(until_seconds=DURATION_S)
    goodputs = [f.sink.goodput_bps(units.seconds(28), units.seconds(30))
                for f in flows]
    return series, goodputs


def run_rcp_baseline():
    net = build_net()
    routers = RCPRouterNetwork(list(net.switches.values()), rtt_s=RTT_S,
                               alpha=ALPHA, beta=BETA)
    routers.start()
    flows = [RCPBaselineFlow(i, net.host(f"h{i}"), net.host(f"h{i + 3}"),
                             net.host(f"h{i + 3}").mac,
                             net.host(f"h{i}").mac, capacity_bps=CAPACITY,
                             rtt_ns=int(RTT_S * 1e9))
             for i in range(3)]
    agent = routers.agent("swL", 0)
    series = sample_rate(net, lambda: agent.rate_bps)
    for start_s, flow in zip(FLOW_STARTS_S, flows):
        if start_s == 0.0:
            flow.start()
        else:
            net.sim.schedule(units.seconds(start_s), flow.start)
    net.run(until_seconds=DURATION_S)
    goodputs = [f.sink.goodput_bps(units.seconds(28), units.seconds(30))
                for f in flows]
    return series, goodputs


def phase_mean(series, start_s, end_s):
    return series.window(units.seconds(start_s),
                         units.seconds(end_s)).mean()


def report(name, series, goodputs):
    print()
    print(ascii_plot(series, title=f"{name}: R(t)/C on the bottleneck",
                     y_min=0.0, y_max=1.1, width=66, height=12))
    rows = []
    for index, (lo, hi, target) in enumerate(
            [(5, 10, 1.0), (15, 20, 0.5), (25, 30, 1 / 3)], start=1):
        rows.append([f"{index} flow(s)", f"{target:.3f}",
                     f"{phase_mean(series, lo, hi):.3f}"])
    print(format_table(["phase", "ideal R/C", f"{name} measured"], rows))
    print(f"steady-state per-flow goodputs (Mb/s): "
          f"{[round(g / 1e6, 2) for g in goodputs]}")


def test_fig2_rcp_vs_rcp_star(benchmark):
    def experiment():
        return run_rcp_star(), run_rcp_baseline()

    (star_series, star_goodputs), (base_series, base_goodputs) = run_once(
        benchmark, experiment)

    banner("Figure 2: RCP (simulation) vs RCP* (TPP + endhost)")
    report("RCP (in-network)", base_series, base_goodputs)
    report("RCP* (TPP+endhost)", star_series, star_goodputs)

    # --- shape assertions ------------------------------------------------
    # Phase means near the ideal fair share for both implementations.
    for series, tolerance in ((base_series, 0.10), (star_series, 0.25)):
        assert abs(phase_mean(series, 5, 10) - 1.0) < tolerance
        assert abs(phase_mean(series, 15, 20) - 0.5) < tolerance * 0.6
        assert abs(phase_mean(series, 25, 30) - 1 / 3) < tolerance * 0.5

    # Quick convergence after each arrival (well under one phase).
    for series in (base_series, star_series):
        for start_s, target in ((10.0, 0.5), (20.0, 1 / 3)):
            settle = convergence_time_ns(
                series.window(units.seconds(start_s),
                              units.seconds(start_s + 10)),
                target=target, tolerance=0.3)
            assert settle is not None
            assert settle - units.seconds(start_s) < units.seconds(5)

    # Qualitative similarity: both curves end in the same band.
    assert abs(phase_mean(base_series, 25, 30)
               - phase_mean(star_series, 25, 30)) < 0.12

    # Flows actually received their shares.
    for goodputs in (base_goodputs, star_goodputs):
        for goodput in goodputs:
            assert goodput > 0.15 * CAPACITY
