"""E4 / Table 2: the statistics namespaces of the unified address space.

Regenerates the table by actually reading every statistic through TPPs on
a live, loaded network — per-switch, per-port, per-queue, and per-packet
— and printing name, address and observed value.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import quickstart_network, units
from repro.analysis.reporting import format_table
from repro.core.assembler import assemble
from repro.core.memory_map import MemoryMap
from repro.endhost.flows import Flow, FlowSink

STATS_BY_NAMESPACE = {
    "Per-Switch": [
        "Switch:SwitchID", "Switch:NumPorts", "Switch:L2TableVersion",
        "Switch:L2TableEntries", "Switch:L3TableEntries",
        "Switch:TCAMEntries", "Switch:TPPsExecuted",
        "Switch:PacketsSwitched",
    ],
    "Per-Port": [
        "Link:RX-Utilization", "Link:TX-Utilization", "Link:BytesReceived",
        "Link:BytesTransmitted", "Link:FramesReceived",
        "Link:FramesTransmitted", "Link:CapacityMbps", "Link:SNR-MilliDb",
    ],
    "Per-Queue": [
        "Queue:QueueSize", "Queue:QueueSizePackets", "Queue:BytesEnqueued",
        "Queue:BytesDropped", "Queue:PacketsEnqueued",
        "Queue:PacketsDropped", "Queue:AvgQueueSize",
    ],
    "Per-Packet": [
        "PacketMetadata:InputPort", "PacketMetadata:OutputPort",
        "PacketMetadata:MatchedEntryID",
        "PacketMetadata:MatchedEntryVersion", "PacketMetadata:QueueID",
        "PacketMetadata:PacketLength", "PacketMetadata:ArrivalTimeLo",
        "PacketMetadata:AlternateRoutes",
    ],
}


def run_experiment():
    net = quickstart_network(n_switches=1)
    h0, h1 = net.host("h0"), net.host("h1")
    # Put some traffic through so counters are nonzero.
    FlowSink(h1, 99)
    flow = Flow(h0, h1, h1.mac, 99, rate_bps=100 * units.MEGABITS_PER_SEC)
    flow.start()
    net.run(until_seconds=0.05)
    flow.stop()

    memory_map = MemoryMap.standard()
    observed = {}
    for namespace, names in STATS_BY_NAMESPACE.items():
        for name in names:
            results = []
            program = assemble(f"PUSH [{name}]")
            h0.tpp.send(program, dst_mac=h1.mac,
                        on_response=results.append)
            net.run(until_seconds=net.sim.now_seconds + 0.005)
            assert results, f"no response reading {name}"
            observed[name] = (memory_map.resolve(name),
                              results[0].word(0), results[0].ok)
    return observed


def test_table2_namespace_statistics(benchmark):
    observed = run_once(benchmark, run_experiment)

    banner("Table 2: statistics readable through the unified address "
           "space")
    for namespace, names in STATS_BY_NAMESPACE.items():
        rows = [[name, f"{observed[name][0]:#06x}", observed[name][1]]
                for name in names]
        print()
        print(format_table(["statistic", "vaddr", "observed"], rows,
                           title=namespace))

    # --- assertions ------------------------------------------------------
    # Every statistic read successfully.
    assert all(ok for _, _, ok in observed.values())
    # Spot checks that values are live, not placeholders.
    assert observed["Switch:SwitchID"][1] == 1
    assert observed["Switch:NumPorts"][1] == 2
    assert observed["Link:BytesTransmitted"][1] > 100_000  # the flow ran
    assert observed["Queue:BytesEnqueued"][1] > 100_000
    assert observed["Link:CapacityMbps"][1] == 1000
    assert observed["PacketMetadata:PacketLength"][1] >= 64
    assert observed["Switch:L2TableEntries"][1] == 2
    # Versions were stamped when routes were installed (ndb's hook).
    assert observed["Switch:L2TableVersion"][1] >= 2
