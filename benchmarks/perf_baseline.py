"""Reproducible performance baseline for the simulator hot path.

Measures, on fixed-seed workloads:

- ``event_core``   — raw heap push/pop throughput of the tuple-entry
  :class:`~repro.sim.events.EventQueue`, compared against a vendored copy
  of the seed's ``@dataclass(order=True)`` heap (the speedup ratio is the
  number the acceptance bar tracks);
- ``event_loop``   — events/sec through a full :class:`Simulator` run,
  including timer re-arm churn so heap compaction is exercised;
- ``packet_forwarding`` — simulated packets/sec (and packet-hops/sec) of
  wall time through the full switch pipeline on a 3-switch linear topology;
- ``tpp_exec``     — TPP executions/sec and instructions/sec on a bare
  TCPU + MMU, compiled fast path vs the reference interpreter (the
  speedup ratio is measured, not asserted);
- ``tpp_exec_cached`` — the warm-cache steady state: one pre-built TPP
  re-executed with its state reset, isolating per-execution cost with
  zero per-iteration build cost;
- ``tpp_exec_verified`` — the same steady state with a verifier
  certificate installed (:meth:`repro.core.tcpu.TCPU.trust`), so the
  per-instruction bounds checks are elided; the speedup over the
  uncertified warm-cache run is the verified fast path's measured win;
- ``tpp_exec_batched`` — same-program TPP batches through the vectorized
  batch engine (v4 addition);
- ``tpp_exec_batched_write`` — the same batched steady state on a
  *write-bearing* program (an additive SRAM counter update), so the
  write-capable vector lane's accumulate class is what is measured;
  ``vector_write_batches`` is exported to prove it engaged (v6
  addition);
- ``fleet_scale`` — the sharded fleet driver at 1 vs 4 shards on one
  fixed ring of regions: modeled-critical-path packets/s and flows/s,
  the speedup sharding buys, and a 0/1 bit-identical flag asserting the
  determinism fingerprints matched (v5 addition);
- ``tpp_exec_sketch`` — batched heavy-hitter sketch updates (count-min
  ADD/STORE rows plus a CSTORE claim) through the write-capable vector
  lane, the telemetry subsystem's steady-state ingest rate (v7
  addition).

``tools/run_bench.py`` drives :func:`run_all` and emits
``BENCH_simcore.json`` so every future PR's perf delta is visible.  The
module is import-light on purpose: no pytest dependency, deterministic
workloads, wall-clock timing via ``time.perf_counter``.
"""

from __future__ import annotations

import gc
import heapq
import math
import random
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, Tuple

from repro import units
from repro.core.assembler import assemble
from repro.core.mmu import MMU, ExecutionContext
from repro.core.tcpu import TCPU
from repro.asic.metadata import PacketMetadata
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator
from repro.sim.timers import OneShotTimer

SCHEMA = "simcore-bench/v7"
DEFAULT_SEED = 20260806


# --------------------------------------------------------------------- #
# Vendored seed event core (the "before" of the tentpole) — kept here so
# the speedup claim is measured, not asserted.
# --------------------------------------------------------------------- #

@dataclass(order=True)
class _LegacyEvent:
    time_ns: int
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class _LegacyEventQueue:
    """The seed's ``@dataclass(order=True)`` min-heap, verbatim semantics."""

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = 0

    def push(self, time_ns, callback, args=()):
        event = _LegacyEvent(time_ns, self._sequence, callback, args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #

#: ``_timed`` repetitions; the best (minimum) elapsed time is kept, the
#: standard defence against co-tenant scheduling noise (same rationale
#: as ``timeit.repeat``: slowdowns are never the code's true speed).
TIMING_REPEATS = 3


def _timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    # GC is paused during the measured region (as ``timeit`` does): a
    # collection landing inside one repetition measures the collector's
    # schedule, not the workload.
    best = math.inf
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(TIMING_REPEATS):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return result, best


def bench_event_core(n_events: int = 100_000,
                     seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """Heap push/pop throughput: new tuple-entry core vs seed dataclass heap.

    Same pre-generated random event times for both, so the only variable
    is the heap-entry representation.
    """
    rng = random.Random(seed)
    times = [rng.randrange(1_000_000_000) for _ in range(n_events)]
    callback = lambda: None  # noqa: E731 - intentionally trivial

    def drive_new() -> int:
        queue = EventQueue()
        for t in times:
            queue.push(t, callback)
        popped = 0
        while queue.pop() is not None:
            popped += 1
        return popped

    def drive_legacy() -> int:
        queue = _LegacyEventQueue()
        for t in times:
            queue.push(t, callback)
        popped = 0
        while queue.pop() is not None:
            popped += 1
        return popped

    # Warm up once each (allocator, code caches), then measure.
    drive_new(), drive_legacy()
    popped_new, elapsed_new = _timed(drive_new)
    popped_legacy, elapsed_legacy = _timed(drive_legacy)
    assert popped_new == popped_legacy == n_events

    events_per_sec = n_events / elapsed_new
    legacy_per_sec = n_events / elapsed_legacy
    return {
        "n_events": n_events,
        "seed": seed,
        "events_per_sec": events_per_sec,
        "legacy_events_per_sec": legacy_per_sec,
        "speedup_vs_dataclass_heap": events_per_sec / legacy_per_sec,
    }


def bench_event_loop(n_events: int = 200_000,
                     seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """Events/sec through Simulator.run with timer re-arm churn.

    Every tick re-arms a one-shot timer (retransmission-style), so half
    the scheduled events are cancelled stragglers and the compaction path
    is part of what is being measured.
    """
    def drive() -> Tuple[int, int]:
        sim = Simulator()
        rng = random.Random(seed)
        count = [0]
        rto = OneShotTimer(sim, lambda: None)

        def tick() -> None:
            count[0] += 1
            rto.start(1_000_000)  # re-arm: cancels the previous arming
            if count[0] < n_events:
                sim.schedule(rng.randrange(1, 100), tick)
            else:
                rto.cancel()

        sim.schedule(0, tick)
        sim.run()
        return count[0], sim.events_processed

    drive()  # warm-up
    (ticks, processed), elapsed = _timed(drive)
    assert ticks == n_events
    return {
        "n_events": n_events,
        "seed": seed,
        "events_processed": processed,
        "events_per_sec": processed / elapsed,
    }


def bench_packet_forwarding(n_switches: int = 3,
                            duration_s: float = 0.02,
                            rate_mbps: int = 800) -> Dict[str, Any]:
    """Simulated packets/sec of wall time through the full pipeline."""
    from repro.endhost.flows import Flow, FlowSink

    def drive() -> int:
        builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                                  trace_enabled=False)
        net = builder.linear(n_switches=n_switches)
        install_shortest_path_routes(net)
        h0, h1 = net.host("h0"), net.host("h1")
        sink = FlowSink(h1, 99)
        flow = Flow(h0, h1, h1.mac, 99,
                    rate_bps=rate_mbps * units.MEGABITS_PER_SEC)
        flow.start()
        net.run(until_seconds=duration_s)
        return sink.packets_received

    drive()  # warm-up
    received, elapsed = _timed(drive)
    return {
        "n_switches": n_switches,
        "sim_duration_s": duration_s,
        "packets_received": received,
        "packets_per_sec_wall": received / elapsed,
        "packet_hops_per_sec_wall": received * n_switches / elapsed,
    }


class _FakeQueue:
    occupancy_bytes = 500


class _FakePort:
    index = 0
    queue = _FakeQueue()


def _bench_mmu() -> MMU:
    # batch_stable mirrors the switch's bindings: these statistics cannot
    # change while a batch executes, which is what licenses the batched
    # engine's vectorized lane (see repro.core.batch).
    mmu = MMU(name="bench")
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 7, batch_stable=True)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes,
                    batch_stable=True)
    return mmu


_BENCH_SOURCE = """
    PUSH [Switch:SwitchID]
    PUSH [Queue:QueueSize]
"""


def bench_tpp_exec(n_executions: int = 50_000) -> Dict[str, Any]:
    """TPP executions/sec on a bare TCPU: fast path vs interpreter.

    Each iteration rebuilds the TPP section and execution context, as the
    switch pipeline does per packet — so this includes the per-packet
    setup cost, and the compiled/interpreted ratio is measured on the
    same workload rather than asserted.
    """
    mmu = _bench_mmu()
    # The primary TCPU follows REPRO_TPP_FASTPATH so a --no-fastpath
    # bench run measures the interpreter end to end (speedup ~1.0x).
    tcpu = TCPU(mmu)
    interp = TCPU(mmu, compile=False)
    program = assemble(_BENCH_SOURCE, hops=1)

    def drive(cpu: TCPU) -> int:
        executed = 0
        for _ in range(n_executions):
            tpp = program.build()
            ctx = ExecutionContext(metadata=PacketMetadata(),
                                   egress_port=_FakePort(), time_ns=1000)
            report = cpu.execute(tpp, ctx)
            executed += report.executed
        return executed

    drive(tcpu)  # warm-up (also compiles + caches the program)
    executed, elapsed = _timed(lambda: drive(tcpu))
    drive(interp)  # warm-up
    interp_executed, interp_elapsed = _timed(lambda: drive(interp))
    assert executed == interp_executed
    execs_per_sec = n_executions / elapsed
    interp_per_sec = n_executions / interp_elapsed
    return {
        "n_executions": n_executions,
        "instructions_executed": executed,
        "tpp_execs_per_sec": execs_per_sec,
        "instructions_per_sec": executed / elapsed,
        "interp_execs_per_sec": interp_per_sec,
        "speedup_vs_interpreter": execs_per_sec / interp_per_sec,
    }


def bench_tpp_exec_cached(n_executions: int = 50_000) -> Dict[str, Any]:
    """Warm-cache steady state: one pre-built TPP, state reset per run.

    Execute-many in its purest form — the program is compiled once and
    every subsequent execution must hit the cache, so this isolates the
    per-execution cost of the compiled closures themselves.  The cache
    hit/miss counters are exported so a report can *prove* the cache
    stayed warm instead of assuming it.
    """
    mmu = _bench_mmu()
    tcpu = TCPU(mmu)
    program = assemble(_BENCH_SOURCE, hops=1)
    tpp = program.build()
    initial_memory = bytes(tpp.memory)
    initial_hop_or_sp = tpp.hop_or_sp
    initial_flags = tpp.flags
    ctx = ExecutionContext(metadata=PacketMetadata(),
                           egress_port=_FakePort(), time_ns=1000)

    def drive() -> int:
        executed = 0
        for _ in range(n_executions):
            tpp.hop_or_sp = initial_hop_or_sp
            tpp.flags = initial_flags
            tpp.memory[:] = initial_memory
            report = tcpu.execute(tpp, ctx)
            executed += report.executed
        return executed

    drive()  # warm-up
    executed, elapsed = _timed(drive)
    cache = tcpu.cache.stats()
    return {
        "n_executions": n_executions,
        "instructions_executed": executed,
        "tpp_execs_per_sec": n_executions / elapsed,
        "instructions_per_sec": executed / elapsed,
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
    }


#: The verified workload runs a longer, denser program than the other
#: TPP benches: the certificate elides *per-instruction* bounds checks
#: and loop bookkeeping, so the win scales with instruction count while
#: the per-execution fixed cost (report, hop advance) does not.  12
#: instructions needs a raised per-TPP limit (the paper's default is 5).
_VERIFIED_BENCH_SOURCE = """
    PUSH [Switch:SwitchID]
    PUSH [Queue:QueueSize]
    LOAD [Switch:SwitchID], [Packet:2]
    LOAD [Queue:QueueSize], [Packet:3]
    ADD [Packet:2], [Queue:QueueSize]
    ADD [Packet:3], [Switch:SwitchID]
    MIN [Packet:2], [Queue:QueueSize]
    MAX [Packet:3], [Switch:SwitchID]
    PUSH [Switch:SwitchID]
    PUSH [Queue:QueueSize]
    ADD [Packet:2], [Queue:QueueSize]
    XOR [Packet:3], [Switch:SwitchID]
"""

_VERIFIED_BENCH_MAX_INSTRUCTIONS = 16


def bench_tpp_exec_verified(n_executions: int = 50_000) -> Dict[str, Any]:
    """Warm-cache steady state with a verifier certificate installed.

    Same reset-and-rerun harness as :func:`bench_tpp_exec_cached`, but
    the program is statically verified first and its certificate handed
    to the TCPU (:meth:`~repro.core.tcpu.TCPU.trust`), so executions run
    the check-elided closures.  A second, certificate-less TCPU runs the
    same loop as the control; the ratio is the verified fast path's
    measured win.  ``verified_executions`` is exported so a report can
    *prove* the guard matched on every iteration instead of assuming it.
    """
    from repro.core.memory_map import MemoryMap
    from repro.core.verifier import verify_program

    mmu = _bench_mmu()
    tcpu = TCPU(mmu, max_instructions=_VERIFIED_BENCH_MAX_INSTRUCTIONS)
    control = TCPU(mmu, max_instructions=_VERIFIED_BENCH_MAX_INSTRUCTIONS)
    program = assemble(_VERIFIED_BENCH_SOURCE, hops=1)
    result = verify_program(
        program, memory_map=MemoryMap.standard(),
        max_instructions=_VERIFIED_BENCH_MAX_INSTRUCTIONS)
    certificate = result.raise_on_error().certificate
    if certificate is not None:
        tcpu.trust(certificate)
    tpp = program.build()
    initial_memory = bytes(tpp.memory)
    initial_hop_or_sp = tpp.hop_or_sp
    initial_flags = tpp.flags
    ctx = ExecutionContext(metadata=PacketMetadata(),
                           egress_port=_FakePort(), time_ns=1000)

    def drive(cpu: TCPU) -> int:
        executed = 0
        for _ in range(n_executions):
            tpp.hop_or_sp = initial_hop_or_sp
            tpp.flags = initial_flags
            tpp.memory[:] = initial_memory
            report = cpu.execute(tpp, ctx)
            executed += report.executed
        return executed

    drive(tcpu)  # warm-up (compiles both closure sets)
    executed, elapsed = _timed(lambda: drive(tcpu))
    drive(control)  # warm-up
    control_executed, control_elapsed = _timed(lambda: drive(control))
    assert executed == control_executed
    execs_per_sec = n_executions / elapsed
    control_per_sec = n_executions / control_elapsed
    return {
        "n_executions": n_executions,
        "instructions_executed": executed,
        "tpp_execs_per_sec": execs_per_sec,
        "instructions_per_sec": executed / elapsed,
        "unverified_execs_per_sec": control_per_sec,
        "speedup_vs_unverified": execs_per_sec / control_per_sec,
        "verified_executions": tcpu.verified_executions,
    }


_BATCH_SIZE = 32


def bench_tpp_exec_batched(n_batches: int = 2_000) -> Dict[str, Any]:
    """Batched steady state: 32 same-program TPPs per ``execute_batch``.

    The workload models a switch draining a burst of identical probes:
    32 pre-built sections resident in one :class:`~repro.core.batch.
    BatchArena`, one shared execution context (the warm pipeline state,
    same precedent as ``tpp_exec_cached``), and a verifier certificate
    installed so the batch qualifies for the vectorized lane.  The
    scalar control runs the ``tpp_exec`` loop (fresh section + context
    per execution) on the same machine in the same process, so
    ``speedup_vs_scalar`` is the acceptance ratio measured, not
    inferred from a previous run.  ``vector_batches``/``batch_fallbacks``
    are exported so a report can *prove* the fast lane engaged.
    """
    from repro.core.batch import BatchArena, HAVE_NUMPY
    from repro.core.memory_map import MemoryMap
    from repro.core.verifier import verify_program

    mmu = _bench_mmu()
    tcpu = TCPU(mmu)
    scalar = TCPU(mmu)
    program = assemble(_BENCH_SOURCE, hops=1)
    result = verify_program(program, memory_map=MemoryMap.standard())
    certificate = result.raise_on_error().certificate
    if certificate is not None:
        tcpu.trust(certificate)
    sections = [program.build() for _ in range(_BATCH_SIZE)]
    initial_hop_or_sp = sections[0].hop_or_sp
    n_instructions = len(sections[0].instructions)
    ctx = ExecutionContext(metadata=PacketMetadata(),
                           egress_port=_FakePort(), time_ns=1000)
    ctxs = [ctx] * _BATCH_SIZE
    arena = BatchArena(sections) if HAVE_NUMPY else None

    def drive() -> None:
        for _ in range(n_batches):
            for section in sections:
                section.hop_or_sp = initial_hop_or_sp
            tcpu.execute_batch(sections, ctxs, arena=arena)

    drive()  # warm-up (compiles + plans the program)
    _, elapsed = _timed(drive)
    n_executions = n_batches * _BATCH_SIZE

    scalar_n = max(1, n_executions // 8)

    def drive_scalar() -> None:
        for _ in range(scalar_n):
            tpp = program.build()
            scalar_ctx = ExecutionContext(metadata=PacketMetadata(),
                                          egress_port=_FakePort(),
                                          time_ns=1000)
            scalar.execute(tpp, scalar_ctx)

    drive_scalar()  # warm-up
    _, scalar_elapsed = _timed(drive_scalar)

    execs_per_sec = n_executions / elapsed
    scalar_per_sec = scalar_n / scalar_elapsed
    return {
        "batch_size": _BATCH_SIZE,
        "n_batches": n_batches,
        "n_executions": n_executions,
        "numpy_lane": HAVE_NUMPY,
        "tpp_execs_per_sec": execs_per_sec,
        "instructions_per_sec": execs_per_sec * n_instructions,
        "scalar_execs_per_sec": scalar_per_sec,
        "speedup_vs_scalar": execs_per_sec / scalar_per_sec,
        "vector_batches": tcpu.vector_batches,
        "batch_fallbacks": tcpu.batch_fallbacks,
    }


#: The write-bench program is the paper's canonical in-network counter:
#: each packet adds its delta (packet word 0, seeded to 1) into one
#: shared SRAM word and writes the running total back into its own
#: packet memory — an additive read-modify-write chain, which the batch
#: planner classifies as *accumulate* and vectorizes via prefix scan.
_WRITE_BENCH_SOURCE = """
    .mode absolute
    .memory 1
    .data 0 1
    ADD [Packet:0], [Sram:Word7]
    STORE [Sram:Word7], [Packet:0]
"""


def bench_tpp_exec_batched_write(n_batches: int = 2_000) -> Dict[str, Any]:
    """Batched steady state on a write-bearing (accumulate-class) program.

    Same harness shape as :func:`bench_tpp_exec_batched` — 32 resident
    sections, shared context, verifier certificate installed — but the
    program carries an additive SRAM read-modify-write, so the batch can
    only vectorize through the write-capable lane (per-word prefix scan
    plus epilogue commit).  Packet memory is re-seeded every batch: the
    ADD leaves each packet holding its observed counter value, and the
    next iteration's delta must be 1 again.  The scalar control rebuilds
    the section and context per execution, as the per-packet pipeline
    does, so ``speedup_vs_scalar`` is the acceptance ratio measured on
    this machine.  ``vector_write_batches``/``batch_fallbacks`` prove
    the write lane engaged rather than silently demoting.
    """
    from repro.core.batch import BatchArena, HAVE_NUMPY
    from repro.core.memory_map import MemoryMap
    from repro.core.verifier import verify_program

    mmu = _bench_mmu()
    tcpu = TCPU(mmu)
    scalar = TCPU(mmu)
    program = assemble(_WRITE_BENCH_SOURCE, hops=1)
    result = verify_program(program, memory_map=MemoryMap.standard())
    certificate = result.raise_on_error().certificate
    if certificate is not None:
        tcpu.trust(certificate)
    sections = [program.build() for _ in range(_BATCH_SIZE)]
    initial_memory = bytes(sections[0].memory)
    initial_hop_or_sp = sections[0].hop_or_sp
    n_instructions = len(sections[0].instructions)
    ctx = ExecutionContext(metadata=PacketMetadata(),
                           egress_port=_FakePort(), time_ns=1000)
    ctxs = [ctx] * _BATCH_SIZE
    arena = BatchArena(sections) if HAVE_NUMPY else None
    # With an arena the sections' memories alias the matrix rows, so the
    # per-batch re-seed (each packet's delta must be 1 again) is one
    # broadcast; without numpy it is a per-section bytearray copy.
    initial_matrix = arena.matrix.copy() if arena is not None else None

    def drive() -> None:
        for _ in range(n_batches):
            for section in sections:
                section.hop_or_sp = initial_hop_or_sp
            if arena is not None:
                arena.matrix[:] = initial_matrix
            else:
                for section in sections:
                    section.memory[:] = initial_memory
            tcpu.execute_batch(sections, ctxs, arena=arena)

    drive()  # warm-up (compiles + plans the program)
    _, elapsed = _timed(drive)
    n_executions = n_batches * _BATCH_SIZE

    scalar_n = max(1, n_executions // 8)

    def drive_scalar() -> None:
        for _ in range(scalar_n):
            tpp = program.build()
            scalar_ctx = ExecutionContext(metadata=PacketMetadata(),
                                          egress_port=_FakePort(),
                                          time_ns=1000)
            scalar.execute(tpp, scalar_ctx)

    drive_scalar()  # warm-up
    _, scalar_elapsed = _timed(drive_scalar)

    execs_per_sec = n_executions / elapsed
    scalar_per_sec = scalar_n / scalar_elapsed
    return {
        "batch_size": _BATCH_SIZE,
        "n_batches": n_batches,
        "n_executions": n_executions,
        "numpy_lane": HAVE_NUMPY,
        "tpp_execs_per_sec": execs_per_sec,
        "instructions_per_sec": execs_per_sec * n_instructions,
        "scalar_execs_per_sec": scalar_per_sec,
        "speedup_vs_scalar": execs_per_sec / scalar_per_sec,
        "vector_write_batches": tcpu.vector_write_batches,
        "batch_fallbacks": tcpu.batch_fallbacks,
        "final_counter": mmu.peek_sram(7),
    }


def bench_tpp_exec_sketch(n_batches: int = 2_000) -> Dict[str, Any]:
    """Batched heavy-hitter sketch updates through the vector lane.

    The telemetry subsystem's steady-state ingest: 32 copies of one
    flow's generated update TPP (two count-min ADD/STORE rows plus a
    CSTORE candidate claim — accumulate + claim dataflow classes, both
    vector-eligible) drained per ``execute_batch`` with the generator's
    own certificate installed.  Same harness shape as
    :func:`bench_tpp_exec_batched_write`: shared context, resident
    sections in one arena, packet memory re-seeded per batch (the ADD
    leaves each packet holding its observed counter value), and a
    scalar control that rebuilds section + context per execution.
    ``vector_write_batches``/``batch_fallbacks`` prove the write lane
    carried the sketch instead of silently demoting.
    """
    from repro.core.batch import BatchArena, HAVE_NUMPY
    from repro.telemetry import HeavyHitterLayout, build_heavy_hitter_update

    mmu = _bench_mmu()
    tcpu = TCPU(mmu)
    scalar = TCPU(mmu)
    layout = HeavyHitterLayout(base_word=256, width=8, depth=2, n_slots=4,
                               name="bench-hh")
    update = build_heavy_hitter_update(layout, key=42)
    tcpu.trust(update.certificate)
    sections = [update.build() for _ in range(_BATCH_SIZE)]
    initial_memory = bytes(sections[0].memory)
    initial_hop_or_sp = sections[0].hop_or_sp
    n_instructions = len(sections[0].instructions)
    ctx = ExecutionContext(metadata=PacketMetadata(),
                           egress_port=_FakePort(), time_ns=1000)
    ctxs = [ctx] * _BATCH_SIZE
    arena = BatchArena(sections) if HAVE_NUMPY else None
    initial_matrix = arena.matrix.copy() if arena is not None else None

    def drive() -> None:
        for _ in range(n_batches):
            for section in sections:
                section.hop_or_sp = initial_hop_or_sp
            if arena is not None:
                arena.matrix[:] = initial_matrix
            else:
                for section in sections:
                    section.memory[:] = initial_memory
            tcpu.execute_batch(sections, ctxs, arena=arena)

    drive()  # warm-up (compiles + plans the program)
    _, elapsed = _timed(drive)
    n_executions = n_batches * _BATCH_SIZE

    scalar_n = max(1, n_executions // 8)

    def drive_scalar() -> None:
        for _ in range(scalar_n):
            tpp = update.build()
            scalar_ctx = ExecutionContext(metadata=PacketMetadata(),
                                          egress_port=_FakePort(),
                                          time_ns=1000)
            scalar.execute(tpp, scalar_ctx)

    drive_scalar()  # warm-up
    _, scalar_elapsed = _timed(drive_scalar)

    execs_per_sec = n_executions / elapsed
    scalar_per_sec = scalar_n / scalar_elapsed
    counter_words = update.words[:layout.depth]
    return {
        "batch_size": _BATCH_SIZE,
        "n_batches": n_batches,
        "n_executions": n_executions,
        "numpy_lane": HAVE_NUMPY,
        "sketch_depth": layout.depth,
        "sketch_width": layout.width,
        "tpp_execs_per_sec": execs_per_sec,
        "instructions_per_sec": execs_per_sec * n_instructions,
        "scalar_execs_per_sec": scalar_per_sec,
        "speedup_vs_scalar": execs_per_sec / scalar_per_sec,
        "vector_write_batches": tcpu.vector_write_batches,
        "batch_fallbacks": tcpu.batch_fallbacks,
        "final_row0_counter": mmu.peek_sram(counter_words[0]),
        "claimed_key": mmu.peek_sram(update.words[-1]),
    }


def bench_fleet_scale(probe_bursts: int = 3,
                      flows_per_probe: int = 250,
                      duration_ns: int = 2_000_000,
                      seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """Sharded fleet throughput: one fixed ring at 1 vs 4 shards.

    Reports the modeled-critical-path rates (per barrier round the
    slowest shard's busy time is what every other shard waits on, so
    the sum of per-round maxima is what an S-machine deployment would
    take even on this single-core box) and the speedup 4 shards buy
    over 1.  ``bit_identical`` is 1 only when both runs produced the
    same determinism fingerprint — a 0 here is a correctness failure,
    not a slow run, and trips the validator's positive-metric check.
    """
    from repro.fleet import fleet_specs, run_fleet

    specs = fleet_specs(4, switches=2, hosts_per_switch=2,
                        master_seed=seed, probe_bursts=probe_bursts,
                        probe_interval_ns=100_000,
                        flows_per_probe=flows_per_probe)
    # Warm-up: first-run one-time costs (imports, allocator growth,
    # bytecode caches) must not be billed to the 1-shard point.
    run_fleet(specs, duration_ns, shards=1)

    one = run_fleet(specs, duration_ns, shards=1)
    four = run_fleet(specs, duration_ns, shards=4)
    return {
        "n_regions": 4,
        "probe_bursts": probe_bursts,
        "flows_per_probe": flows_per_probe,
        "duration_ns": duration_ns,
        "logical_flows": four.counters["logical_flows"],
        "packets_switched": four.counters["packets_switched"],
        "boundary_messages": four.messages_exchanged,
        "verifications_saved": four.counters["verifications_saved"],
        "packets_per_sec_modeled": four.packets_per_modeled_second,
        "flows_per_sec_modeled": four.flows_per_modeled_second,
        "speedup_vs_one_shard": (four.packets_per_modeled_second
                                 / one.packets_per_modeled_second),
        "bit_identical": int(one.fingerprint() == four.fingerprint()),
    }


# --------------------------------------------------------------------- #
# Harness entry point
# --------------------------------------------------------------------- #

def run_all(quick: bool = False, seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """Run every workload; ``quick`` shrinks sizes for CI smoke runs."""
    scale = 10 if quick else 1
    workloads = {
        "event_core": bench_event_core(100_000 // scale, seed=seed),
        "event_loop": bench_event_loop(200_000 // scale, seed=seed),
        "packet_forwarding": bench_packet_forwarding(
            duration_s=0.02 / scale),
        "tpp_exec": bench_tpp_exec(50_000 // scale),
        "tpp_exec_cached": bench_tpp_exec_cached(50_000 // scale),
        "tpp_exec_verified": bench_tpp_exec_verified(50_000 // scale),
        "tpp_exec_batched": bench_tpp_exec_batched(2_000 // scale),
        "tpp_exec_batched_write": bench_tpp_exec_batched_write(
            2_000 // scale),
        "tpp_exec_sketch": bench_tpp_exec_sketch(2_000 // scale),
        "fleet_scale": bench_fleet_scale(
            probe_bursts=3 if quick else 10,
            flows_per_probe=250 if quick else 1_000,
            seed=seed),
    }
    now = time.time()
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        # Raw float for arithmetic, ISO-8601 UTC for humans and tooling
        # that should not have to guess the epoch/timezone (v2 addition).
        "timestamp": now,
        "timestamp_iso": datetime.fromtimestamp(
            now, tz=timezone.utc).isoformat(),
        "workloads": workloads,
    }
