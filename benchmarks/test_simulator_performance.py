"""Simulator engineering benchmarks (not a paper figure).

These measure the reproduction substrate itself with real
pytest-benchmark timing loops: event-loop throughput, end-to-end packet
forwarding rate through the full switch pipeline, TPP execution cost on
the pipeline, and wire-format encode/decode throughput.  They are the
numbers a user needs to size experiments ("how many simulated
packet-hops per wall second do I get?").
"""

from __future__ import annotations

from repro import units
from repro.core.assembler import assemble
from repro.net import wire
from repro.net.packet import Datagram, EthernetFrame, RawPayload
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder
from repro.sim.simulator import Simulator


def test_event_loop_throughput(benchmark):
    """Events per second of the bare engine."""

    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    processed = benchmark(run_10k_events)
    assert processed == 10_000


def test_packet_forwarding_rate(benchmark):
    """Full-pipeline packet-hops per second: 3 switches, paced flow."""
    from repro.endhost.flows import Flow, FlowSink

    def run_burst():
        builder = TopologyBuilder(rate_bps=units.GIGABITS_PER_SEC,
                                  trace_enabled=False)
        net = builder.linear(n_switches=3)
        install_shortest_path_routes(net)
        h0, h1 = net.host("h0"), net.host("h1")
        sink = FlowSink(h1, 99)
        flow = Flow(h0, h1, h1.mac, 99,
                    rate_bps=800 * units.MEGABITS_PER_SEC)
        flow.start()
        net.run(until_seconds=0.02)  # ~2000 packets x 3 hops
        return sink.packets_received

    received = benchmark(run_burst)
    assert received > 1000


def test_tpp_execution_through_pipeline(benchmark):
    """Cost of a TPP probe round trip (execute on 3 switches + echo)."""
    from repro import quickstart_network

    net = quickstart_network(n_switches=3, stats_interval_ns=None)
    h0, h1 = net.host("h0"), net.host("h1")
    program = assemble("""
        PUSH [Switch:SwitchID]
        PUSH [Queue:QueueSize]
    """)

    def round_trip():
        results = []
        h0.tpp.send(program, dst_mac=h1.mac, on_response=results.append)
        net.run(until_seconds=net.sim.now_seconds + 0.001)
        return results

    results = benchmark(round_trip)
    assert results[0].hops() == 3


def test_wire_encode_decode(benchmark):
    """Serialize + parse a TPP-in-IPv4 frame (checksums verified)."""
    program = assemble("PUSH [Queue:QueueSize]", hops=5)
    inner = Datagram(0x0A000001, 0x0A000002, 1000, 2000,
                     RawPayload(256, data=b"x" * 256))
    frame = EthernetFrame(dst=0xA, src=0xB, ethertype=0x9999,
                          payload=program.build(payload=inner))

    def round_trip():
        return wire.decode_frame(wire.encode_frame(frame))

    decoded = benchmark(round_trip)
    assert decoded.payload.payload.dst_port == 2000
