"""Shard-count sweep for the sharded fleet driver (EXPERIMENTS.md E19).

Runs one fixed fleet (4 ring regions of TPP switches, every lane driven
by the batched-admission probe controller) at a range of shard counts
and reports, per point:

- the **determinism fingerprint** — must be byte-identical at every
  shard count, or the sweep exits non-zero (sharding must never buy
  throughput with correctness);
- **aggregate packets/s and logical flows/s against the modeled
  critical path**: per barrier round, the slowest shard's busy time is
  what the barrier waits on, so ``sum(max-per-round)`` is the time an
  S-machine deployment would take even when this process is pinned to
  one core;
- real wall time, for honesty about driver overhead.

Usage::

    PYTHONPATH=src python benchmarks/scale_bench.py [--quick]
        [--shards 1 2 4] [--duration-ms 2.0]
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List

from repro.analysis.reporting import fleet_report, format_table
from repro.fleet import fleet_specs, run_fleet


def build_specs(quick: bool) -> List[Any]:
    """The sweep's fixed fleet: identical at every shard count."""
    if quick:
        return fleet_specs(4, switches=2, hosts_per_switch=2,
                           probe_bursts=3, probe_interval_ns=100_000,
                           flows_per_probe=250)
    return fleet_specs(4, switches=2, hosts_per_switch=4,
                       probe_bursts=10, probe_interval_ns=100_000,
                       flows_per_probe=1_000)


def sweep(shard_counts: List[int], duration_ns: int,
          quick: bool) -> List[Dict[str, Any]]:
    """One fleet run per shard count, same specs throughout."""
    specs = build_specs(quick)
    # Warm-up: the first run in a process pays one-time costs (imports,
    # allocator growth, bytecode caches) that would otherwise be billed
    # to whichever shard count happens to run first and fake a
    # superlinear speedup.  Run once and discard.
    run_fleet(specs, duration_ns, shards=1)
    points = []
    for shards in shard_counts:
        result = run_fleet(specs, duration_ns, shards=shards)
        points.append({
            "shards": result.shards,
            "fingerprint": result.fingerprint(),
            "rounds": result.rounds,
            "messages": result.messages_exchanged,
            "logical_flows": result.counters["logical_flows"],
            "packets_switched": result.counters["packets_switched"],
            "modeled_seconds": result.modeled_seconds,
            "wall_seconds": result.wall_seconds,
            "packets_per_sec": result.packets_per_modeled_second,
            "flows_per_sec": result.flows_per_modeled_second,
            "result": result,
        })
    return points


def render(points: List[Dict[str, Any]]) -> str:
    base = points[0]
    rows = []
    for point in points:
        speedup = (point["packets_per_sec"] / base["packets_per_sec"]
                   if base["packets_per_sec"] else 0.0)
        rows.append([
            point["shards"],
            f"{point['modeled_seconds'] * 1e3:.2f}",
            f"{point['packets_per_sec']:,.0f}",
            f"{point['flows_per_sec']:,.0f}",
            f"{speedup:.2f}x",
            f"{point['wall_seconds'] * 1e3:.0f}",
            point["fingerprint"][:16],
        ])
    return format_table(
        ["shards", "modeled-ms", "packets/s", "flows/s", "speedup",
         "wall-ms", "fingerprint[:16]"],
        rows, title="Fleet scale sweep (modeled critical path)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller fleet (CI smoke run)")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                        help="shard counts to sweep (default: 1 2 4)")
    parser.add_argument("--duration-ms", type=float, default=2.0,
                        help="simulated duration per point (default 2.0)")
    args = parser.parse_args(argv)

    duration_ns = int(args.duration_ms * 1e6)
    points = sweep(args.shards, duration_ns, quick=args.quick)
    print(render(points))
    print()
    print(fleet_report(points[-1]["result"]))

    fingerprints = {point["fingerprint"] for point in points}
    if len(fingerprints) != 1:
        print("FAIL: results differ across shard counts "
              f"({len(fingerprints)} distinct fingerprints)",
              file=sys.stderr)
        return 1
    print("\nbit-identical across shard counts: "
          f"{points[0]['fingerprint']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
