"""Pytest configuration for the benchmark harness (adds no fixtures; the
shared helpers live in bench_utils.py)."""
