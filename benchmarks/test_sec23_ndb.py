"""E7 / §2.3: the ndb forwarding-plane debugger.

An SDN-style scenario on a leaf/spine fabric: a monitored flow's packets
carry the trace TPP; the receiver reassembles per-packet journeys; the
verifier checks them against the controller's intent.  We then inject two
classic dataplane/control-plane divergences —

1. a *rogue TCAM rule* a human operator left behind (forwards correctly,
   so it is invisible to ping-style black-box tests), and
2. a *misrouting* rule change the controller does not know about —

and show ndb pinpoints both: which packets, which switch, which rule.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.apps.ndb import NdbCollector, NdbTagger, PathVerifier
from repro.asic.tables import TcamRule
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import host_path, install_shortest_path_routes
from repro.net.topology import TopologyBuilder

RATE = units.GIGABITS_PER_SEC


def make_verifier(net, dst_mac, src="h0", dst="h2"):
    path = [net.switch(name).switch_id
            for name in host_path(net, src, dst) if name in net.switches]
    current = {}
    for switch in net.switches.values():
        entry = switch.l2.entry_for(dst_mac)
        if entry is not None:
            current[switch.switch_id] = (entry.entry_id, entry.version)
    return PathVerifier(path, current)


def run_experiment():
    builder = TopologyBuilder(rate_bps=RATE, delay_ns=2_000)
    net = builder.fat_tree(k=2)  # 2 spines, 4 leaves, 8 hosts
    install_shortest_path_routes(net)
    h0, h2 = net.host("h0"), net.host("h2")  # different leaves

    sink = FlowSink(h2, 99)
    collector = NdbCollector(h2)
    tagger = NdbTagger(hops=5)
    flow = Flow(h0, h2, h2.mac, 99, rate_bps=20 * units.MEGABITS_PER_SEC,
                packet_bytes=500)
    tagger.attach(flow)
    verifier = make_verifier(net, h2.mac)

    # Phase 1 (0 - 20 ms): clean network.
    flow.start()

    # Phase 2 (at 20 ms): a rogue-but-correct TCAM rule appears on the
    # first-hop leaf: same output port, so forwarding is unchanged.
    leaf = net.switches[host_path(net, "h0", "h2")[1]]
    good_port = leaf.l2.entry_for(h2.mac).out_ports[0]
    net.sim.schedule(units.milliseconds(20), lambda: leaf.install_tcam_rule(
        TcamRule(priority=50, out_port=good_port, dst_mac=h2.mac)))

    # Phase 3 (at 40 ms): the rule goes bad — it now misroutes via the
    # *other* spine (packets still arrive, over a path the controller
    # did not intend).
    other_spine_port = None
    adjacency = {peer: local for local, peer, _ in
                 _leaf_adjacency(net, leaf.name)}
    intended_path = host_path(net, "h0", "h2")
    intended_spine = intended_path[2]
    for peer, local in adjacency.items():
        if peer.startswith("spine") and peer != intended_spine:
            other_spine_port = local
            break

    def go_bad():
        leaf.install_tcam_rule(TcamRule(priority=60,
                                        out_port=other_spine_port,
                                        dst_mac=h2.mac))

    net.sim.schedule(units.milliseconds(40), go_bad)

    net.run(until_seconds=0.06)
    flow.stop()

    phases = {
        "clean": [j for j in collector.journeys
                  if j.received_at_ns < units.milliseconds(20)],
        "rogue-rule": [j for j in collector.journeys
                       if units.milliseconds(21) < j.received_at_ns
                       < units.milliseconds(40)],
        "misrouted": [j for j in collector.journeys
                      if j.received_at_ns > units.milliseconds(41)],
    }
    violations = {name: verifier.verify(journeys)
                  for name, journeys in phases.items()}
    return net, phases, violations, sink, collector


def _leaf_adjacency(net, leaf_name):
    return net.adjacency()[leaf_name]


def test_sec23_forwarding_plane_debugger(benchmark):
    net, phases, violations, sink, collector = run_once(benchmark,
                                                        run_experiment)

    banner("§2.3: ndb — per-packet forwarding verification")
    rows = []
    for name in ("clean", "rogue-rule", "misrouted"):
        journeys = phases[name]
        kinds = sorted({v.kind for v in violations[name]})
        rows.append([name, len(journeys), len(violations[name]),
                     ", ".join(kinds) if kinds else "-"])
    print(format_table(
        ["phase", "packets traced", "violations", "violation kinds"],
        rows))
    sample = next(v for v in violations["misrouted"])
    print(f"\nexample violation: {sample.kind} on switch "
          f"{sample.switch_id or '-'}: {sample.detail[:60]}...")
    print(f"total journeys reassembled: {len(collector.journeys)}; "
          f"packets delivered: {sink.packets_received}")

    # --- shape assertions ------------------------------------------------
    assert len(phases["clean"]) > 100
    assert violations["clean"] == []
    # The rogue rule forwards correctly yet is caught by entry-id
    # mismatch — black-box delivery checks would miss it entirely.
    assert violations["rogue-rule"]
    assert all(v.kind == "unknown-rule" for v in violations["rogue-rule"])
    # The misrouting phase shows a wrong path (and the foreign rule).
    kinds = {v.kind for v in violations["misrouted"]}
    assert "wrong-path" in kinds
    # Every packet that arrived was traced: no sampling, no copies.
    assert sink.packets_received == len(collector.journeys)
