"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure from the
paper (see DESIGN.md §4 for the index).  Simulation-scale benches run one
round via ``run_once`` — the interesting output is the printed
reproduction of the paper's rows/series, plus shape assertions; the
timing pytest-benchmark records is the cost of regenerating the
experiment.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark a whole-experiment function with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> None:
    """Print a section banner for the harness output."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
