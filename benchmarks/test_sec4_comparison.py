"""E11 / §4: TPPs vs purpose-built in-band mechanisms (ECN, Record Route).

"Instead of anticipating future requirements and designing specific
solutions, we adopt a more generic approach to accessing switch state."

This bench runs all three mechanisms over the same congested path and
scores what each reveals about the network, plus a congestion-control
sanity check that a DCTCP-style ECN loop and RCP* both keep the link
busy — the difference being that the ECN loop needed its marking logic
baked into the ASIC, while RCP* needed only reads and writes.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.apps.inband_baselines import (
    ECN_CE,
    ECN_ECT,
    ECNFlow,
    install_ecn,
    install_record_route,
    send_record_route_probe,
)
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.packet import Datagram, RawPayload
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC


def build_net():
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1))
    net = builder.dumbbell(n_pairs=2, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    install_ecn(list(net.switches.values()), threshold_bytes=5_000)
    install_record_route(list(net.switches.values()))
    return net


def run_visibility_comparison():
    """One congested path, three observers."""
    net = build_net()
    h0, h2 = net.host("h0"), net.host("h2")
    h1, h3 = net.host("h1"), net.host("h3")
    # Congest the bottleneck.
    FlowSink(h3, 99)
    cross = Flow(h1, h3, h3.mac, 99, rate_bps=3 * CAPACITY,
                 packet_bytes=1000)
    cross.start()

    observations = {}

    # (a) ECN probe: one bit.
    ecn_seen = []
    h2.on_udp_port(9, lambda d, f: ecn_seen.append(d.ecn))
    net.sim.schedule(units.milliseconds(50), lambda: h0.send_datagram(
        h2.mac, Datagram(h0.ip, h2.ip, 1, 9, RawPayload(100),
                         ecn=ECN_ECT)))

    # (b) Record-route probe: path addresses.
    h2.on_udp_port(46000, lambda d, f: None)
    route_probe = {}
    net.sim.schedule(units.milliseconds(50), lambda: route_probe.update(
        datagram=send_record_route_probe(h0, h2, h2.mac)))

    # (c) TPP probe: path, queue depths, utilizations.
    endpoint = TPPEndpoint(h0)
    TPPEndpoint(h2)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    tpp_results = []
    program = assemble("""
        PUSH [Switch:SwitchID]
        PUSH [Queue:QueueSize]
        PUSH [Link:RX-Utilization]
    """, hops=3)
    net.sim.schedule(units.milliseconds(50), lambda: endpoint.send(
        program, dst_mac=h2.mac, on_response=tpp_results.append))

    net.run(until_seconds=0.4)
    observations["ecn"] = ecn_seen[0]
    observations["route"] = list(route_probe["datagram"].route_record)
    observations["tpp"] = tpp_results[0].per_hop_words()
    return observations


def run_control_comparison():
    """ECN/DCTCP keeps the link busy — so does RCP*; only the ASIC
    requirements differ."""
    net = build_net()
    flows = [ECNFlow(i, net.host(f"h{i}"), net.host(f"h{i + 2}"),
                     net.host(f"h{i + 2}").mac, net.host(f"h{i}").mac,
                     capacity_bps=CAPACITY) for i in range(2)]
    for flow in flows:
        flow.start()
    net.run(until_seconds=5.0)
    goodputs = [f.sink.goodput_bps(units.seconds(3), units.seconds(5))
                for f in flows]
    return goodputs, [f.marks_seen for f in flows]


def test_sec4_inband_mechanism_comparison(benchmark):
    def experiment():
        return run_visibility_comparison(), run_control_comparison()

    observations, (goodputs, marks) = run_once(benchmark, experiment)

    banner("§4: what each in-band mechanism reveals about one congested "
           "path")
    tpp_rows = [f"sw{sid}: queue={q}B util={u / 1000:.2f}"
                for sid, q, u in observations["tpp"]]
    rows = [
        ["ECN", "1 bit", f"CE={observations['ecn'] == ECN_CE}"],
        ["IP Record Route", "path addresses",
         f"switches {observations['route']}"],
        ["TPP (generic reads)", "any mapped statistic",
         "; ".join(tpp_rows)],
    ]
    print(format_table(["mechanism", "information model", "observed"],
                       rows))
    print(f"\nECN/DCTCP control loop: per-flow goodputs "
          f"{[round(g / 1e6, 2) for g in goodputs]} Mb/s, "
          f"marks seen {marks}")

    # --- shape assertions ------------------------------------------------
    # ECN noticed congestion, but that is all it can say.
    assert observations["ecn"] == ECN_CE
    # Record route reports the path, nothing quantitative.
    assert observations["route"] == [1, 2]
    # The TPP reports path AND queue depth AND utilization: the congested
    # bottleneck hop stands out quantitatively.
    tpp = observations["tpp"]
    assert [row[0] for row in tpp] == [1, 2]
    assert tpp[0][1] > 5_000           # bottleneck queue depth visible
    assert tpp[0][2] > 900             # bottleneck utilization ~1.0
    assert tpp[1][1] < tpp[0][1]       # and attributable to the right hop
    # The baked-in ECN loop does work as congestion control...
    assert sum(goodputs) > 0.5 * CAPACITY
    assert all(m > 0 for m in marks)
