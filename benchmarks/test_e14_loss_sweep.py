"""E14: RCP* convergence under seeded link loss (0 / 1 / 5 %).

The paper's control loop assumes probes come back; this sweep injects
link-level loss and measures what the reliability layer (per-probe
deadlines, RTT-adaptive timeouts, hold-then-decay on missed collects)
preserves of the §2.2 behaviour.  Expected shape: the converged rate
ratio stays near 1.0 across the sweep — lost collects are simply skipped
samples — while the miss/timeout counters grow with the loss rate,
showing the losses were real and handled rather than absent.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table, reliability_report
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC
DURATION_S = 6.0
LOSS_RATES = (0.0, 0.01, 0.05)


def run_at_loss(loss_rate):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1),
                              trace_enabled=False)
    net = builder.dumbbell(n_pairs=1, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    impaired = net.impair_links(loss_rate=loss_rate)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    flow = RCPStarFlow(task, 0, net.host("h0"), net.host("h1"),
                       net.host("h1").mac, capacity_bps=CAPACITY,
                       rtt_s=0.02, max_hops=3)
    flow.start()
    net.run(until_seconds=DURATION_S)

    goodput = flow.sink.goodput_bps(units.seconds(DURATION_S - 2),
                                    units.seconds(DURATION_S))
    lossy_links = [port.link for device in net.all_devices()
                   for port in device.ports
                   if port.link.frames_impaired_lost]
    return {
        "loss_rate": loss_rate,
        "impaired_links": impaired,
        "rate_ratio": flow.flow.rate_bps / CAPACITY,
        "goodput_ratio": goodput / CAPACITY,
        "collects_missed": flow.collects_missed,
        "collects_rejected": flow.collects_rejected,
        "timeouts": flow.endpoint.timeouts,
        "pending": flow.endpoint.pending_count,
        "rtt_ms": flow.endpoint.rtt_ewma_ns / 1e6,
        "report": reliability_report(links=lossy_links,
                                     endpoints=[flow.endpoint]),
    }


def run_experiment():
    return [run_at_loss(rate) for rate in LOSS_RATES]


def test_e14_rcp_convergence_under_loss(benchmark):
    results = run_once(benchmark, run_experiment)

    banner("E14: RCP* single-flow convergence vs injected link loss")
    print(format_table(
        ["loss", "R/C final", "goodput/C", "collects missed", "timeouts",
         "pending", "srtt (ms)"],
        [[f"{r['loss_rate']:.0%}", f"{r['rate_ratio']:.3f}",
          f"{r['goodput_ratio']:.3f}", r["collects_missed"],
          r["timeouts"], r["pending"], f"{r['rtt_ms']:.2f}"]
         for r in results]))
    print()
    print(results[-1]["report"])

    clean, one_pct, five_pct = results
    for r in results:
        # Convergence survives the sweep: rate bounded and near capacity.
        assert 0.75 < r["rate_ratio"] <= 1.05
        assert r["goodput_ratio"] > 0.6
        # Deadlines kept the pending table drained.
        assert r["pending"] < 32
    # The losses were real, monotone with the injected rate ...
    assert clean["collects_missed"] == 0
    assert 0 < one_pct["collects_missed"] < five_pct["collects_missed"]
    # ... and the endpoint's expiries cover every missed collect (plus
    # lost fire-and-forget update probes, which also carry deadlines).
    assert five_pct["timeouts"] >= five_pct["collects_missed"]
