"""E9 (ablation): how much visibility granularity matters (§1, §2.1).

The paper's motivation is that dataplane tasks need *low-latency*
visibility — "timescales on the order of round-trip times".  This
ablation runs the identical micro-burst workload and sweeps only the
telemetry granularity, from per-RTT probes to the control plane's tens of
seconds, reporting burst recall at each step.  The shape to reproduce:
recall falls off a cliff once the sampling interval exceeds the burst
duration.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.apps.microburst import (
    BurstDetector,
    BurstyTrafficGenerator,
    CoarsePoller,
    TelemetryStream,
)
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network

FAST = units.GIGABITS_PER_SEC
SLOW = 100 * units.MEGABITS_PER_SEC
THRESHOLD_BYTES = 8_000
DURATION_S = 2.0

#: (label, probe interval) sweep — per-packet/per-RTT scale up to "SNMP".
GRANULARITIES = [
    ("100 us (per-RTT)", units.microseconds(100)),
    ("1 ms", units.milliseconds(1)),
    ("10 ms", units.milliseconds(10)),
    ("100 ms", units.milliseconds(100)),
    ("1 s (control plane)", units.seconds(1)),
]


def build_net():
    net = Network(seed=7)
    switch = net.add_switch()
    for name in ("h0", "h1", "h2", "h3"):
        host = net.add_host(name)
        rate = SLOW if name == "h2" else FAST
        net.link(host, switch, rate, delay_ns=5_000,
                 queue_capacity_bytes=256 * 1024)
    install_shortest_path_routes(net)
    return net


def run_granularity(interval_ns):
    """The same seeded workload, observed at one granularity."""
    net = build_net()
    h0, h2 = net.host("h0"), net.host("h2")
    FlowSink(h2, 99)
    generators = []
    for index, name in enumerate(("h1", "h3")):
        flow = Flow(net.host(name), h2, h2.mac, 99, rate_bps=0,
                    packet_bytes=1000)
        generator = BurstyTrafficGenerator(
            flow, burst_rate_bps=FAST,
            on_mean_ns=units.microseconds(400),
            off_mean_ns=units.milliseconds(20),
            rng=net.rng.stream(f"burst{index}"))
        generators.append(generator)

    stream = TelemetryStream(h0, h2.mac, interval_ns=interval_ns)
    TPPEndpoint(h2)
    port = [p for p in net.switch("sw0").ports
            if p.link.name.endswith("h2")][0]
    truth_poller = CoarsePoller(net.sim, port,
                                interval_ns=units.microseconds(20),
                                name="truth")
    stream.start(first_delay_ns=1)
    truth_poller.start()
    for generator in generators:
        generator.start()
    net.run(until_seconds=DURATION_S)

    detector = BurstDetector(THRESHOLD_BYTES)
    truth = detector.detect(truth_poller.series)
    detected = detector.detect(stream.queue_series.get(1) or
                               _empty_series())
    recall = BurstDetector.recall(detected, truth,
                                  slack_ns=units.microseconds(200))
    return recall, len(truth), len(detected)


def _empty_series():
    from repro.analysis.timeseries import TimeSeries
    return TimeSeries()


def run_experiment():
    return [(label, *run_granularity(interval))
            for label, interval in GRANULARITIES]


def test_ablation_visibility_granularity(benchmark):
    sweep = run_once(benchmark, run_experiment)

    banner("Ablation E9: burst recall vs telemetry granularity "
           "(same workload)")
    rows = [[label, truth, detected, f"{recall * 100:.0f}%"]
            for label, recall, truth, detected in sweep]
    print(format_table(
        ["telemetry interval", "true bursts", "detected", "recall"], rows))

    # --- shape assertions ------------------------------------------------
    recalls = [recall for _, recall, _, _ in sweep]
    # Fine-grained telemetry sees nearly everything...
    assert recalls[0] > 0.7
    # ... recall decays monotonically-ish with granularity ...
    assert recalls[0] >= recalls[2] >= recalls[4]
    # ... and the control-plane timescale is effectively blind.
    assert recalls[-1] < 0.25
    # The cliff between per-RTT and control-plane visibility is the
    # paper's whole premise: a big gap must exist.
    assert recalls[0] - recalls[-1] > 0.5
