"""E3 / Table 1: the instruction set and its semantics.

Regenerates the table's rows by executing each instruction class on a
live switch and demonstrating its defining behaviour:

    LOAD, PUSH   copy values from switch to packet
    STORE, POP   copy values from packet to switch
    CSTORE       conditional store for atomic operations
    CEXEC        conditionally execute the subsequent instructions
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import quickstart_network
from repro.analysis.reporting import format_table
from repro.core.assembler import assemble
from repro.core.memory_map import SRAM_BASE


def run_experiment():
    net = quickstart_network(n_switches=1)
    h0, h1 = net.host("h0"), net.host("h1")
    switch = net.switch("sw0")
    outcomes = {}

    def probe(name, source, symbols=None, before=None, after=None):
        if before:
            before()
        results = []
        program = assemble(source, symbols=symbols)
        h0.tpp.send(program, dst_mac=h1.mac, on_response=results.append)
        net.run(until_seconds=net.sim.now_seconds + 0.01)
        outcomes[name] = (results[0], after() if after else None)

    # PUSH: switch -> packet (stack).
    probe("PUSH", "PUSH [Switch:SwitchID]")
    # LOAD: switch -> packet (addressed).
    probe("LOAD", ".mode absolute\nLOAD [Switch:SwitchID], [Packet:0]")
    # STORE: packet -> switch.
    probe("STORE", ".memory 1\n.data 0 777\nSTORE [Sram:Word1], [Packet:0]",
          after=lambda: switch.mmu.peek_sram(1))
    # POP: packet -> switch through the stack.
    probe("POP", "PUSH [Switch:SwitchID]\nPOP [Sram:Word2]",
          after=lambda: switch.mmu.peek_sram(2))
    # CSTORE: succeeds only when the condition matches.
    switch.mmu.poke_sram(3, 10)
    probe("CSTORE-hit", "CSTORE [Sram:Word3], 10, 99",
          after=lambda: switch.mmu.peek_sram(3))
    probe("CSTORE-miss", "CSTORE [Sram:Word3], 10, 55",
          after=lambda: switch.mmu.peek_sram(3))
    # CEXEC: gates the rest of the program on a register predicate.
    probe("CEXEC-taken",
          "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 1\n"
          "PUSH [Switch:SwitchID]")
    probe("CEXEC-skipped",
          "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 42\n"
          "PUSH [Switch:SwitchID]")
    return outcomes


def test_table1_instruction_semantics(benchmark):
    outcomes = run_once(benchmark, run_experiment)

    banner("Table 1: instruction set semantics on a live switch")
    rows = [
        ["LOAD, PUSH", "copy values from switch to packet",
         f"packet word = {outcomes['PUSH'][0].word(0)} (switch id)"],
        ["STORE, POP", "copy values from packet to switch",
         f"SRAM after STORE = {outcomes['STORE'][1]}, "
         f"after POP = {outcomes['POP'][1]}"],
        ["CSTORE", "conditional store for atomic operations",
         f"hit -> {outcomes['CSTORE-hit'][1]}, "
         f"miss keeps {outcomes['CSTORE-miss'][1]}"],
        ["CEXEC", "conditionally execute subsequent instructions",
         f"taken pushes {outcomes['CEXEC-taken'][0].hops()} sample(s), "
         f"skipped pushes {outcomes['CEXEC-skipped'][0].tpp.sp // 4}"],
    ]
    print(format_table(["instruction", "meaning (paper)", "observed"],
                       rows))

    # --- assertions ------------------------------------------------------
    assert outcomes["PUSH"][0].word(0) == 1          # switch id
    assert outcomes["LOAD"][0].word(0) == 1
    assert outcomes["STORE"][1] == 777
    assert outcomes["POP"][1] == 1
    assert outcomes["CSTORE-hit"][1] == 99           # 10 matched -> wrote
    assert outcomes["CSTORE-miss"][1] == 99          # 10 no longer matches
    assert outcomes["CEXEC-taken"][0].tpp.sp == 4    # PUSH ran
    assert outcomes["CEXEC-skipped"][0].tpp.sp == 0  # PUSH suppressed
