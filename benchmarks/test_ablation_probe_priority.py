"""E13 (ablation): protecting telemetry with egress scheduling.

TPPs "are subject to congestion, or configured access control policies"
(§3.3) — probes share the queues of the traffic they measure, so their
*timeliness* degrades exactly when the network gets interesting.  With
multi-queue ports (Figure 3's scheduler block), one TCAM set-queue rule
classifies TPP frames into a strict-priority queue.

This ablation measures probe round-trip time against a standing data
queue in both configurations.  Expected shape: shared-FIFO probes eat the
full data queueing delay (tens of ms here); prioritized probes return in
microseconds while still reading the congested port's state.
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.analysis.timeseries import TimeSeries
from repro.asic.tables import TcamRule
from repro.core.assembler import assemble
from repro.endhost.client import TPPEndpoint
from repro.endhost.flows import Flow, FlowSink
from repro.net.packet import ETHERTYPE_TPP
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network
from repro.sim.timers import PeriodicTimer

RATE = 100 * units.MEGABITS_PER_SEC
DURATION_S = 1.0


def run_variant(probe_queue: int):
    """probe_queue 0 = protected strict-priority class; 1 = shared with
    the (overloaded) data class."""
    net = Network(seed=9, trace_enabled=False)
    switch = net.add_switch()
    h0 = net.add_host()   # prober
    h1 = net.add_host()   # data sender
    h2 = net.add_host()   # sink
    net.link(h0, switch, units.GIGABITS_PER_SEC)
    net.link(h1, switch, units.GIGABITS_PER_SEC)
    net.link(h2, switch, RATE, n_queues=2, scheduler="priority")
    install_shortest_path_routes(net)
    egress_index = [local for local, peer, _ in net.adjacency()["sw0"]
                    if peer == "h2"][0]
    switch.install_tcam_rule(TcamRule(
        priority=10, out_port=egress_index, queue_id=1,
        dst_mac=h2.mac, ethertype=0x0800))
    switch.install_tcam_rule(TcamRule(
        priority=20, out_port=egress_index, queue_id=probe_queue,
        dst_mac=h2.mac, ethertype=ETHERTYPE_TPP))

    FlowSink(h2, 99)
    data = Flow(h1, h2, h2.mac, 99, rate_bps=2 * RATE, packet_bytes=1000)
    data.start()

    endpoint = TPPEndpoint(h0)
    TPPEndpoint(h2)
    program = assemble("PUSH [Queue:QueueSize]")
    rtts = TimeSeries("rtt")

    def probe():
        def on_response(result, t0=net.sim.now_ns):
            rtts.append(net.sim.now_ns, net.sim.now_ns - t0)
        endpoint.send(program, dst_mac=h2.mac, on_response=on_response)

    prober = PeriodicTimer(net.sim, units.milliseconds(5), probe)
    prober.start(units.milliseconds(50))  # once the queue is standing
    net.run(until_seconds=DURATION_S)

    port = switch.ports[egress_index]
    return {
        "rtt_p50_us": rtts.percentile(0.5) / 1000,
        "rtt_p99_us": rtts.percentile(0.99) / 1000,
        "responses": len(rtts),
        "data_queue_peak_kb":
            port.queues[1].stats.peak_occupancy_bytes / 1024,
    }


def run_experiment():
    return {
        "shared FIFO with data": run_variant(1),
        "strict-priority class": run_variant(0),
    }


def test_ablation_probe_scheduling(benchmark):
    result = run_once(benchmark, run_experiment)

    banner("Ablation E13: probe timeliness vs egress scheduling "
           "(standing data queue)")
    rows = [[name, data["responses"], f"{data['rtt_p50_us']:.0f}",
             f"{data['rtt_p99_us']:.0f}",
             f"{data['data_queue_peak_kb']:.0f}"]
            for name, data in result.items()]
    print(format_table(
        ["probe class", "responses", "RTT p50 (us)", "RTT p99 (us)",
         "data queue peak (KiB)"], rows))

    shared = result["shared FIFO with data"]
    protected = result["strict-priority class"]
    # The congestion being measured is identical in both runs...
    assert shared["data_queue_peak_kb"] > 100
    assert protected["data_queue_peak_kb"] > 100
    # ... but shared probes pay the data queue's delay; protected ones
    # return orders of magnitude faster.
    assert shared["rtt_p50_us"] > 10_000      # tens of ms
    assert protected["rtt_p50_us"] < 1_000    # sub-ms
    assert shared["rtt_p50_us"] > 20 * protected["rtt_p50_us"]
    assert protected["responses"] >= shared["responses"]
