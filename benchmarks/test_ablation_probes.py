"""E12 (ablation): standalone probes vs piggybacked collect TPPs (§2.2).

The paper allows either: the rate controller queries "using the flow's
packets, or using additional probe packets".  This ablation runs the
identical 3-flow RCP* scenario both ways and compares:

- control quality (bottleneck register vs ideal C/3, per-flow goodput);
- measurement overhead (extra probe *packets* on the bottleneck vs TPP
  *bytes* displacing payload inside data packets).

Expected shape: both converge to roughly the fair share; standalone pays
in additional packets on the bottleneck, piggyback pays by carrying the
TPP inside its own packets (plus a trickle of keepalives when paced
down).
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro import units
from repro.analysis.reporting import format_table
from repro.apps.rcp import RCPStarFlow, RCPStarTask
from repro.control.agent import ControlPlaneAgent
from repro.core.memory_map import MemoryMap
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import TopologyBuilder

CAPACITY = 10 * units.MEGABITS_PER_SEC
DURATION_S = 8.0


def run_variant(piggyback_every):
    builder = TopologyBuilder(rate_bps=10 * CAPACITY,
                              delay_ns=units.milliseconds(1),
                              trace_enabled=False)
    net = builder.dumbbell(n_pairs=3, bottleneck_bps=CAPACITY)
    install_shortest_path_routes(net)
    for switch in net.switches.values():
        switch.start_stats(interval_ns=units.milliseconds(5))
    agent = ControlPlaneAgent(list(net.switches.values()),
                              memory_map=MemoryMap.standard())
    task = RCPStarTask(agent)
    flows = [RCPStarFlow(task, i, net.host(f"h{i}"), net.host(f"h{i + 3}"),
                         net.host(f"h{i + 3}").mac, capacity_bps=CAPACITY,
                         rtt_s=0.02, max_hops=3,
                         piggyback_every=piggyback_every)
             for i in range(3)]
    for flow in flows:
        flow.start()
    net.run(until_seconds=DURATION_S)

    register = task.rate_register_bps(net.switch("swL"), 0)
    goodputs = [f.sink.goodput_bps(units.seconds(DURATION_S - 2),
                                   units.seconds(DURATION_S))
                for f in flows]
    probe_packets = sum(f.endpoint.probes_sent for f in flows)
    responses = sum(f.endpoint.responses_received for f in flows)
    return {
        "register_ratio": register / CAPACITY,
        "goodputs_mbps": [g / 1e6 for g in goodputs],
        "probe_packets": probe_packets,
        "responses": responses,
    }


def run_experiment():
    return {
        "standalone": run_variant(None),
        "piggyback": run_variant(4),
    }


def test_ablation_probe_transport(benchmark):
    result = run_once(benchmark, run_experiment)

    banner("Ablation E12: standalone probe packets vs piggybacked "
           "collect TPPs")
    rows = []
    for name, data in result.items():
        rows.append([
            name,
            f"{data['register_ratio']:.3f}",
            " / ".join(f"{g:.2f}" for g in data["goodputs_mbps"]),
            data["probe_packets"],
            data["responses"],
        ])
    print(format_table(
        ["collect transport", "R/C (ideal 0.333)",
         "goodputs (Mb/s)", "standalone probes sent", "samples"],
        rows))

    standalone = result["standalone"]
    piggyback = result["piggyback"]
    # Both reach roughly the fair share...
    assert abs(standalone["register_ratio"] - 1 / 3) < 0.12
    assert abs(piggyback["register_ratio"] - 1 / 3) < 0.12
    # ... and deliver comparable goodput.
    assert abs(sum(piggyback["goodputs_mbps"])
               - sum(standalone["goodputs_mbps"])) < 2.0
    # Piggyback drastically reduces standalone probe packets (only the
    # keepalive trickle remains)...
    assert piggyback["probe_packets"] < 0.5 * standalone["probe_packets"]
    # ... while still collecting plenty of samples via trimmed echoes.
    assert piggyback["responses"] > 0.5 * standalone["responses"]
