"""E5 / §3.2.3 + §3.3: TPP overheads and TCPU feasibility arithmetic.

Reproduces every number the paper's feasibility argument rests on,
*measured from real encoded bytes and the pipeline model*, not asserted:

- "Restricting TPPs to (say) five instructions per-packet requires only
  20 bytes of instruction overhead and up to 60 bytes of output space"
  (abstract) / "if each instruction accesses 8-byte values in the packet,
  we require only 40 bytes of packet memory per hop" (§3.3).
- "a 64-port 10GbE switch has to process about a billion 64-byte-packets/
  second" (§1 footnote 2).
- "Low-latency ASICs today can switch minimum sized packets with a
  cut-through latency of 300ns, which is 300 clock cycles for a 1GHz
  ASIC" and execution fits in a packet's transmission time (§3.3).
"""

from __future__ import annotations

from bench_utils import banner, run_once

from repro.analysis.reporting import format_table
from repro.core.assembler import assemble
from repro.core.tcpu import PipelineModel, pipeline_cycles
from repro.core.tpp import TPP_HEADER_BYTES


def five_instruction_program(word_size):
    return assemble(f"""
        .word {word_size}
        PUSH [Switch:SwitchID]
        PUSH [Queue:QueueSize]
        PUSH [Link:RX-Utilization]
        PUSH [Link:BytesReceived]
        PUSH [Queue:BytesDropped]
    """, hops=1)


def run_experiment():
    model = PipelineModel(clock_ghz=1.0)
    program4 = five_instruction_program(4)
    program8 = five_instruction_program(8)
    tpp8 = program8.build()
    return {
        "instruction_bytes": program4.instruction_bytes,
        "memory_per_hop_w4": program4.perhop_len_bytes,
        "memory_per_hop_w8": program8.perhop_len_bytes,
        "encoded_bytes_w8": len(tpp8.encode()),
        "pps_billion": PipelineModel.line_rate_packets_per_second(
            64, 10.0, 64) / 1e9,
        "cycles_5": pipeline_cycles(5),
        "exec_ns_5": model.execution_time_ns(5),
        "tx_ns_min_packet": model.transmission_time_ns(64, 10.0),
        "fits": model.fits_in_transmission_time(5, 64, 10.0),
        "budget_cycles": model.cut_through_budget_cycles(300.0),
    }


def test_sec3_overhead_numbers(benchmark):
    measured = run_once(benchmark, run_experiment)

    banner("§3 overheads: paper's numbers vs this implementation")
    rows = [
        ["5-instruction overhead", "20 B",
         f"{measured['instruction_bytes']} B (measured on wire encoding)"],
        ["packet memory per hop, 8 B values", "40 B",
         f"{measured['memory_per_hop_w8']} B"],
        ["packet memory per hop, 4 B values", "20 B",
         f"{measured['memory_per_hop_w4']} B"],
        ["64-port 10GbE packet rate", "~1e9 pkt/s",
         f"{measured['pps_billion']:.2f}e9 pkt/s"],
        ["TCPU cycles for 5 instructions", "pipelined, 1/cycle",
         f"{measured['cycles_5']} cycles "
         f"({measured['exec_ns_5']:.0f} ns @ 1 GHz)"],
        ["min-packet tx time at 10 GbE", "-",
         f"{measured['tx_ns_min_packet']:.1f} ns"],
        ["execution < transmission time", "yes",
         "yes" if measured["fits"] else "NO"],
        ["cut-through budget @300 ns, 1 GHz", "300 cycles",
         f"{measured['budget_cycles']} cycles"],
    ]
    print(format_table(["quantity", "paper", "measured"], rows))

    # --- assertions: the paper's arithmetic holds exactly -----------------
    assert measured["instruction_bytes"] == 20
    assert measured["memory_per_hop_w8"] == 40
    assert measured["memory_per_hop_w4"] == 20
    assert 0.9 < measured["pps_billion"] < 1.1
    assert measured["cycles_5"] == 5 + 3            # latency 4, 1/cycle
    assert measured["fits"]
    assert measured["budget_cycles"] == 300
    # Whole-TPP wire size: header + code + one hop of 8-byte values.
    assert measured["encoded_bytes_w8"] == TPP_HEADER_BYTES + 20 + 40


def test_tcpu_interpreter_throughput(benchmark):
    """Micro-benchmark of the simulator's TCPU interpreter itself
    (instructions per second of *simulation*, not of the modeled ASIC)."""
    from repro.asic.metadata import PacketMetadata
    from repro.core.mmu import MMU, ExecutionContext
    from repro.core.tcpu import TCPU

    class FakeQueue:
        occupancy_bytes = 100

    class FakePort:
        index = 0
        queue = FakeQueue()

    mmu = MMU()
    mmu.bind_reader("Switch:SwitchID", lambda ctx: 1)
    mmu.bind_reader("Queue:QueueSize",
                    lambda ctx: ctx.queue.occupancy_bytes)
    tcpu = TCPU(mmu)
    program = assemble("""
        PUSH [Switch:SwitchID]
        PUSH [Queue:QueueSize]
        PUSH [Switch:SwitchID]
        PUSH [Queue:QueueSize]
        PUSH [Switch:SwitchID]
    """, hops=1)
    ctx = ExecutionContext(metadata=PacketMetadata(),
                           egress_port=FakePort())

    def execute_once():
        tpp = program.build()
        return tcpu.execute(tpp, ctx)

    report = benchmark(execute_once)
    assert report.ok
    assert report.executed == 5
