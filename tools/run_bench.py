#!/usr/bin/env python
"""Run the simulator perf baseline and emit ``BENCH_simcore.json``.

Usage::

    python tools/run_bench.py             # full run, writes BENCH_simcore.json
    python tools/run_bench.py --quick     # CI smoke run (smaller workloads)
    python tools/run_bench.py --validate BENCH_simcore.json   # schema check

The JSON is the perf trajectory the ROADMAP tracks: every PR can re-run
this and diff events/sec, packets/sec, and TPP-exec/sec against the
committed baseline.  ``--validate`` exits non-zero on a malformed file,
which is what the CI workflow uses to fail fast.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simcore.json"

#: metric keys that must exist and be positive finite numbers, per workload.
REQUIRED_METRICS = {
    "event_core": ("events_per_sec", "legacy_events_per_sec",
                   "speedup_vs_dataclass_heap"),
    "event_loop": ("events_per_sec", "events_processed"),
    "packet_forwarding": ("packets_per_sec_wall", "packet_hops_per_sec_wall",
                          "packets_received"),
    "tpp_exec": ("tpp_execs_per_sec", "instructions_per_sec"),
}


def validate(report: dict) -> list:
    """Return a list of problems (empty when the report is well-formed)."""
    problems = []
    if report.get("schema") != "simcore-bench/v1":
        problems.append(f"bad schema field: {report.get('schema')!r}")
    workloads = report.get("workloads")
    if not isinstance(workloads, dict):
        return problems + ["missing workloads object"]
    for name, metrics in REQUIRED_METRICS.items():
        workload = workloads.get(name)
        if not isinstance(workload, dict):
            problems.append(f"missing workload {name!r}")
            continue
        for metric in metrics:
            value = workload.get(metric)
            if (not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or not math.isfinite(value) or value <= 0):
                problems.append(f"{name}.{metric} invalid: {value!r}")
    return problems


def _print_summary(report: dict) -> None:
    wl = report["workloads"]
    print(f"schema:   {report['schema']}   quick={report['quick']}")
    print(f"event core:        {wl['event_core']['events_per_sec']:>12,.0f} "
          f"events/s  ({wl['event_core']['speedup_vs_dataclass_heap']:.2f}x "
          f"vs seed dataclass heap)")
    print(f"event loop:        {wl['event_loop']['events_per_sec']:>12,.0f} "
          f"events/s (with timer churn)")
    print(f"packet forwarding: "
          f"{wl['packet_forwarding']['packet_hops_per_sec_wall']:>12,.0f} "
          f"packet-hops/s wall")
    print(f"tpp execution:     {wl['tpp_exec']['tpp_execs_per_sec']:>12,.0f} "
          f"TPP-execs/s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke run)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--validate", type=Path, metavar="JSON",
                        help="validate an existing report instead of running")
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            report = json.loads(args.validate.read_text())
        except (OSError, ValueError) as exc:
            print(f"unreadable report {args.validate}: {exc}",
                  file=sys.stderr)
            return 1
        problems = validate(report)
        for problem in problems:
            print(f"malformed: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.validate} OK")
        return 1 if problems else 0

    import perf_baseline

    report = perf_baseline.run_all(quick=args.quick)
    problems = validate(report)
    if problems:
        for problem in problems:
            print(f"malformed: {problem}", file=sys.stderr)
        return 1
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    _print_summary(report)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
