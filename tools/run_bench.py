#!/usr/bin/env python
"""Run the simulator perf baseline and emit ``BENCH_simcore.json``.

Usage::

    python tools/run_bench.py             # full run, writes BENCH_simcore.json
    python tools/run_bench.py --quick     # CI smoke run (smaller workloads)
    python tools/run_bench.py --no-fastpath --quick   # reference interpreter
    python tools/run_bench.py --validate BENCH_simcore.json   # schema check
    python tools/run_bench.py --compare OLD.json NEW.json     # perf gate

The JSON is the perf trajectory the ROADMAP tracks: every PR can re-run
this and diff events/sec, packets/sec, and TPP-exec/sec against the
committed baseline.  ``--validate`` exits non-zero on a malformed file
(the v1 through v7 schemas are all accepted); ``--compare`` exits
non-zero when any shared workload's primary metric regressed beyond
its per-workload noise floor (``WORKLOAD_TOLERANCES``).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from datetime import datetime
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simcore.json"

SUPPORTED_SCHEMAS = ("simcore-bench/v1", "simcore-bench/v2",
                     "simcore-bench/v3", "simcore-bench/v4",
                     "simcore-bench/v5", "simcore-bench/v6",
                     "simcore-bench/v7")

#: metric keys that must exist and be positive finite numbers, per workload.
REQUIRED_METRICS = {
    "event_core": ("events_per_sec", "legacy_events_per_sec",
                   "speedup_vs_dataclass_heap"),
    "event_loop": ("events_per_sec", "events_processed"),
    "packet_forwarding": ("packets_per_sec_wall", "packet_hops_per_sec_wall",
                          "packets_received"),
    "tpp_exec": ("tpp_execs_per_sec", "instructions_per_sec"),
}

#: additional requirements introduced by the v2 schema.
REQUIRED_METRICS_V2 = {
    "tpp_exec": ("interp_execs_per_sec", "speedup_vs_interpreter"),
    "tpp_exec_cached": ("tpp_execs_per_sec", "instructions_per_sec"),
}

#: additional requirements introduced by the v3 schema (the verified
#: fast path; ``verified_executions`` is deliberately not listed — a
#: --no-fastpath run legitimately reports 0).
REQUIRED_METRICS_V3 = {
    "tpp_exec_verified": ("tpp_execs_per_sec", "instructions_per_sec",
                          "unverified_execs_per_sec",
                          "speedup_vs_unverified"),
}

#: additional requirements introduced by the v4 schema (the batched
#: engine; ``vector_batches`` is deliberately not listed — no-numpy and
#: --no-fastpath runs legitimately report 0).
REQUIRED_METRICS_V4 = {
    "tpp_exec_batched": ("tpp_execs_per_sec", "instructions_per_sec",
                         "scalar_execs_per_sec", "speedup_vs_scalar"),
}

#: additional requirements introduced by the v5 schema (the sharded
#: fleet driver; ``bit_identical`` doubles as a determinism gate — the
#: positive-number check below fails a report where the 1- and 4-shard
#: fingerprints diverged and the flag is 0).
REQUIRED_METRICS_V5 = {
    "fleet_scale": ("packets_per_sec_modeled", "flows_per_sec_modeled",
                    "speedup_vs_one_shard", "bit_identical"),
}

#: additional requirements introduced by the v6 schema (the
#: write-capable vector lane; ``vector_write_batches`` is deliberately
#: not listed — no-numpy and --no-fastpath runs legitimately report 0).
REQUIRED_METRICS_V6 = {
    "tpp_exec_batched_write": ("tpp_execs_per_sec", "instructions_per_sec",
                               "scalar_execs_per_sec", "speedup_vs_scalar"),
}

#: additional requirements introduced by the v7 schema (sketch-update
#: batches through the write lane; ``vector_write_batches`` is again
#: not listed — no-numpy and --no-fastpath runs legitimately report 0).
REQUIRED_METRICS_V7 = {
    "tpp_exec_sketch": ("tpp_execs_per_sec", "instructions_per_sec",
                        "scalar_execs_per_sec", "speedup_vs_scalar"),
}

#: headline metric per workload, used by ``--compare``.
PRIMARY_METRICS = {
    "event_core": "events_per_sec",
    "event_loop": "events_per_sec",
    "packet_forwarding": "packet_hops_per_sec_wall",
    "tpp_exec": "tpp_execs_per_sec",
    "tpp_exec_cached": "tpp_execs_per_sec",
    "tpp_exec_verified": "tpp_execs_per_sec",
    "tpp_exec_batched": "tpp_execs_per_sec",
    "tpp_exec_batched_write": "tpp_execs_per_sec",
    "tpp_exec_sketch": "tpp_execs_per_sec",
    "fleet_scale": "packets_per_sec_modeled",
}

#: a workload counts as regressed when new < (1 - tolerance) * old.
#: One global 10% proved too blunt: the batched and full-pipeline
#: workloads have short timed regions whose best-of-3 still moves more
#: than the long single-loop benches on a co-tenant box, so each
#: workload carries its own measured noise floor.
DEFAULT_REGRESSION_TOLERANCE = 0.10
WORKLOAD_TOLERANCES = {
    "event_core": 0.10,
    "event_loop": 0.10,
    "packet_forwarding": 0.15,
    "tpp_exec": 0.10,
    "tpp_exec_cached": 0.10,
    "tpp_exec_verified": 0.10,
    "tpp_exec_batched": 0.20,
    "tpp_exec_batched_write": 0.20,
    "tpp_exec_sketch": 0.20,
    "fleet_scale": 0.15,
}


def validate(report: dict) -> list:
    """Return a list of problems (empty when the report is well-formed).

    Accepts every schema generation: v1 files (no timestamp_iso, no
    ``tpp_exec_cached`` workload) and v2 files (no ``tpp_exec_verified``)
    stay valid so historical baselines can still be fed to ``--validate``
    and ``--compare``.
    """
    problems = []
    schema = report.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        problems.append(f"bad schema field: {schema!r}")
    workloads = report.get("workloads")
    if not isinstance(workloads, dict):
        return problems + ["missing workloads object"]
    required = {name: list(metrics)
                for name, metrics in REQUIRED_METRICS.items()}
    generation = (SUPPORTED_SCHEMAS.index(schema) + 1
                  if schema in SUPPORTED_SCHEMAS else 0)
    if generation >= 2:
        for name, metrics in REQUIRED_METRICS_V2.items():
            required.setdefault(name, []).extend(metrics)
        stamp = report.get("timestamp_iso")
        try:
            datetime.fromisoformat(stamp)
        except (TypeError, ValueError):
            problems.append(f"timestamp_iso not ISO-8601: {stamp!r}")
    if generation >= 3:
        for name, metrics in REQUIRED_METRICS_V3.items():
            required.setdefault(name, []).extend(metrics)
    if generation >= 4:
        for name, metrics in REQUIRED_METRICS_V4.items():
            required.setdefault(name, []).extend(metrics)
    if generation >= 5:
        for name, metrics in REQUIRED_METRICS_V5.items():
            required.setdefault(name, []).extend(metrics)
    if generation >= 6:
        for name, metrics in REQUIRED_METRICS_V6.items():
            required.setdefault(name, []).extend(metrics)
    if generation >= 7:
        for name, metrics in REQUIRED_METRICS_V7.items():
            required.setdefault(name, []).extend(metrics)
    for name, metrics in required.items():
        workload = workloads.get(name)
        if not isinstance(workload, dict):
            problems.append(f"missing workload {name!r}")
            continue
        for metric in metrics:
            value = workload.get(metric)
            if (not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or not math.isfinite(value) or value <= 0):
                problems.append(f"{name}.{metric} invalid: {value!r}")
    return problems


def compare(old: dict, new: dict) -> tuple:
    """Per-workload speedup of ``new`` over ``old``.

    Returns ``(lines, regressions)``: human-readable rows for every
    workload the two reports share, and the subset whose primary metric
    fell below ``(1 - tolerance)`` of the old value, where tolerance is
    the workload's own noise floor from ``WORKLOAD_TOLERANCES``.
    Workloads present on only one side (e.g. ``tpp_exec_cached`` against
    a v1 baseline) are reported but never counted as regressions.
    """
    old_workloads = old.get("workloads") or {}
    new_workloads = new.get("workloads") or {}
    lines = []
    regressions = []
    for name, metric in PRIMARY_METRICS.items():
        old_value = (old_workloads.get(name) or {}).get(metric)
        new_value = (new_workloads.get(name) or {}).get(metric)
        if not old_value or not new_value:
            missing = "old" if not old_value else "new"
            if old_value or new_value:
                lines.append(f"{name:<22} (not in {missing} report, skipped)")
            continue
        tolerance = WORKLOAD_TOLERANCES.get(name,
                                            DEFAULT_REGRESSION_TOLERANCE)
        ratio = new_value / old_value
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = f"  << REGRESSION (floor {tolerance:.0%})"
            regressions.append(name)
        lines.append(f"{name:<22} {old_value:>14,.0f} -> {new_value:>14,.0f} "
                     f"{metric}  ({ratio:.2f}x){flag}")
    return lines, regressions


def _print_summary(report: dict) -> None:
    wl = report["workloads"]
    print(f"schema:   {report['schema']}   quick={report['quick']}")
    print(f"event core:        {wl['event_core']['events_per_sec']:>12,.0f} "
          f"events/s  ({wl['event_core']['speedup_vs_dataclass_heap']:.2f}x "
          f"vs seed dataclass heap)")
    print(f"event loop:        {wl['event_loop']['events_per_sec']:>12,.0f} "
          f"events/s (with timer churn)")
    print(f"packet forwarding: "
          f"{wl['packet_forwarding']['packet_hops_per_sec_wall']:>12,.0f} "
          f"packet-hops/s wall")
    tpp = wl["tpp_exec"]
    speedup = tpp.get("speedup_vs_interpreter")
    suffix = f"  ({speedup:.2f}x vs interpreter)" if speedup else ""
    print(f"tpp execution:     {tpp['tpp_execs_per_sec']:>12,.0f} "
          f"TPP-execs/s{suffix}")
    cached = wl.get("tpp_exec_cached")
    if cached:
        print(f"tpp exec (cached): "
              f"{cached['tpp_execs_per_sec']:>12,.0f} TPP-execs/s  "
              f"(cache {cached['cache_hits']} hits / "
              f"{cached['cache_misses']} misses)")
    verified = wl.get("tpp_exec_verified")
    if verified:
        print(f"tpp exec (verified): "
              f"{verified['tpp_execs_per_sec']:>10,.0f} TPP-execs/s  "
              f"({verified['speedup_vs_unverified']:.2f}x vs unverified, "
              f"{verified['verified_executions']} guard hits)")
    batched = wl.get("tpp_exec_batched")
    if batched:
        print(f"tpp exec (batched): "
              f"{batched['tpp_execs_per_sec']:>11,.0f} TPP-execs/s  "
              f"({batched['speedup_vs_scalar']:.2f}x vs scalar at batch "
              f"{batched['batch_size']}, "
              f"{batched['vector_batches']} vector batches)")
    write = wl.get("tpp_exec_batched_write")
    if write:
        print(f"tpp exec (batched write): "
              f"{write['tpp_execs_per_sec']:>5,.0f} TPP-execs/s  "
              f"({write['speedup_vs_scalar']:.2f}x vs scalar at batch "
              f"{write['batch_size']}, "
              f"{write['vector_write_batches']} write batches)")
    sketch = wl.get("tpp_exec_sketch")
    if sketch:
        print(f"tpp exec (sketch):  "
              f"{sketch['tpp_execs_per_sec']:>11,.0f} TPP-execs/s  "
              f"({sketch['speedup_vs_scalar']:.2f}x vs scalar at batch "
              f"{sketch['batch_size']}, "
              f"{sketch['vector_write_batches']} write batches)")
    fleet = wl.get("fleet_scale")
    if fleet:
        identical = "bit-identical" if fleet["bit_identical"] else "DIVERGED"
        print(f"fleet scale:       "
              f"{fleet['packets_per_sec_modeled']:>12,.0f} packets/s modeled "
              f"({fleet['speedup_vs_one_shard']:.2f}x at 4 shards, "
              f"{identical})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke run)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--validate", type=Path, metavar="JSON",
                        help="validate an existing report instead of running")
    parser.add_argument("--compare", type=Path, nargs=2,
                        metavar=("OLD", "NEW"),
                        help="compare two reports; exit 1 when a shared "
                             "workload regressed beyond its per-workload "
                             "noise floor")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="run the benchmarks through the reference "
                             "interpreter (sets REPRO_TPP_FASTPATH=0)")
    args = parser.parse_args(argv)

    if args.compare is not None:
        reports = []
        for path in args.compare:
            try:
                reports.append(json.loads(path.read_text()))
            except (OSError, ValueError) as exc:
                print(f"unreadable report {path}: {exc}", file=sys.stderr)
                return 1
        lines, regressions = compare(*reports)
        for line in lines:
            print(line)
        if regressions:
            print(f"regressed beyond the per-workload noise floor: "
                  f"{', '.join(regressions)}", file=sys.stderr)
            return 1
        return 0

    if args.validate is not None:
        try:
            report = json.loads(args.validate.read_text())
        except (OSError, ValueError) as exc:
            print(f"unreadable report {args.validate}: {exc}",
                  file=sys.stderr)
            return 1
        problems = validate(report)
        for problem in problems:
            print(f"malformed: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.validate} OK")
        return 1 if problems else 0

    if args.no_fastpath:
        # Must land before any TCPU is constructed (the env default is
        # read at construction time).
        os.environ["REPRO_TPP_FASTPATH"] = "0"

    import perf_baseline

    report = perf_baseline.run_all(quick=args.quick)
    problems = validate(report)
    if problems:
        for problem in problems:
            print(f"malformed: {problem}", file=sys.stderr)
        return 1
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    _print_summary(report)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
