"""Deterministic hash families shared by sketch writers and readers.

TPPs have no hash instruction — the TCPU is a 5-stage RISC pipeline
with loads, stores and simple ALU ops (paper §3.3) — so *hash-indexed*
sketch updates are realized the way the paper realizes every other
computed address: the **end host** evaluates the hash and bakes the
resulting ``Sram:WordN`` operand into the update program's bytes.  The
decoder on the read side must therefore agree bit-for-bit with the
generator on every hash, which is why both sides derive their functions
from this module and nothing else.

Two families live here:

- :func:`row_params` / :func:`hash_index` — the classic pairwise-
  independent ``((a*key + b) mod p) mod width`` family over the
  Mersenne prime ``2^31 - 1``, one ``(a, b)`` pair per count-min row
  (Carter–Wegman; the count-min (ε, δ) analysis assumes exactly this
  independence).
- :func:`mix32` / :func:`bucket_and_rank` — a 32-bit finalizer-style
  mixer whose output is split into an HLL register index (low ``p``
  bits) and the 1-based position of the first set bit of the remaining
  ``32 - p`` bits (the "rank" a distinct-count register maximizes).
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Tuple

#: Modulus of the pairwise-independent family (Mersenne prime).
MERSENNE_P = (1 << 31) - 1

#: Default seed for layouts that do not pin their own: any fixed value
#: works, the only requirement is that writer and reader share it.
DEFAULT_HASH_SEED = 0x7139


@lru_cache(maxsize=256)
def row_params(seed: int, rows: int) -> Tuple[Tuple[int, int], ...]:
    """``(a, b)`` per row, drawn deterministically from ``seed``.

    ``a`` is never zero (a zero multiplier would collapse every key to
    one column and void the pairwise-independence argument).
    """
    rng = random.Random(seed)
    return tuple((rng.randrange(1, MERSENNE_P),
                  rng.randrange(0, MERSENNE_P))
                 for _ in range(rows))


def hash_index(a: int, b: int, key: int, width: int) -> int:
    """Column of ``key`` under one row's hash: ``((a*key+b) % p) % w``."""
    return ((a * key + b) % MERSENNE_P) % width


def mix32(key: int, seed: int) -> int:
    """32-bit avalanche mix of ``key`` (murmur3-finalizer style)."""
    x = (key + 0x9E3779B9 * (seed + 1)) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & 0xFFFFFFFF
    x ^= x >> 16
    return x


def bucket_and_rank(key: int, m: int, seed: int) -> Tuple[int, int]:
    """HLL register index and rank for ``key``.

    ``m`` must be a power of two.  The low ``log2(m)`` bits of the mixed
    key select the register; the rank is the 1-based position of the
    most-significant set bit among the remaining ``32 - log2(m)`` bits
    (so an all-zero remainder ranks ``32 - log2(m) + 1``, the standard
    convention).
    """
    if m <= 0 or m & (m - 1):
        raise ValueError(f"register count must be a power of two: {m}")
    p = m.bit_length() - 1
    mixed = mix32(key, seed)
    bucket = mixed & (m - 1)
    rest = mixed >> p
    nbits = 32 - p
    rank = nbits - rest.bit_length() + 1
    return bucket, rank
