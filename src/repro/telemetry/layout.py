"""SRAM layout descriptors for in-switch sketches.

A sketch is, physically, nothing but a block of the switch's scratch
SRAM (``Sram:Word0..1023``, paper §3.2.1) that writer TPPs update and
reader TPPs probe.  A layout descriptor pins everything both sides must
agree on — base word, geometry, hash seed — and knows how to

- ``register`` human-readable cell mnemonics (``Sketch:hh-r0c3``)
  through :meth:`repro.core.memory_map.MemoryMap.register_symbol`, the
  same dynamic-symbol mechanism the control-plane agent uses for RCP's
  rate registers;
- ``allocate`` its word range as an owned
  :class:`~repro.core.mmu.SRAMRegion`, so the MMU's per-task SRAM
  protection (TPP007) covers sketch memory like any other allocation;
- map a flow key to the concrete words its update program must touch
  (the hash evaluation the end host performs at program-generation
  time, see :mod:`repro.telemetry.hashing`).

Three sketch shapes:

=================== ================== ================================
layout              words              estimator
=================== ================== ================================
CountMinLayout      ``depth * width``  point frequency, overestimate-
                                       only, ``err <= εN`` w.p. ``1-δ``
HeavyHitterLayout   count-min +        candidate keys via CSTORE
                    ``n_slots``        claim slots + count-min counts
DistinctCountLayout ``m`` registers    HLL cardinality, std error
                                       ``~1.04/sqrt(m)``
=================== ================== ================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.core.memory_map import SRAM_BASE, SRAM_WORDS, MemoryMap
from repro.errors import ConfigurationError
from repro.telemetry.hashing import (
    DEFAULT_HASH_SEED,
    bucket_and_rank,
    hash_index,
    row_params,
)


def width_for(epsilon: float) -> int:
    """Columns needed for an additive error of ``εN``: ``ceil(e/ε)``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive: {epsilon}")
    return math.ceil(math.e / epsilon)


def depth_for(delta: float) -> int:
    """Rows needed for failure probability ``δ``: ``ceil(ln(1/δ))``."""
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1): {delta}")
    return math.ceil(math.log(1.0 / delta))


def _check_block(base_word: int, n_words: int, name: str) -> None:
    if n_words <= 0:
        raise ConfigurationError(f"{name}: empty layout")
    if base_word < 0 or base_word + n_words > SRAM_WORDS:
        raise ConfigurationError(
            f"{name}: words [{base_word}, {base_word + n_words}) "
            f"outside the {SRAM_WORDS}-word scratch SRAM")


@dataclass(frozen=True)
class CountMinLayout:
    """``depth`` rows of ``width`` counters, one hash per row."""

    base_word: int
    width: int
    depth: int
    seed: int = DEFAULT_HASH_SEED
    name: str = "cm"

    def __post_init__(self) -> None:
        if self.width < 1 or self.depth < 1:
            raise ConfigurationError(
                f"{self.name}: width/depth must be >= 1 "
                f"(got {self.width}x{self.depth})")
        _check_block(self.base_word, self.n_words, self.name)

    @classmethod
    def for_bounds(cls, epsilon: float, delta: float, base_word: int = 0,
                   seed: int = DEFAULT_HASH_SEED,
                   name: str = "cm") -> "CountMinLayout":
        """Smallest layout guaranteeing ``err <= εN`` w.p. ``>= 1-δ``."""
        return cls(base_word=base_word, width=width_for(epsilon),
                   depth=depth_for(delta), seed=seed, name=name)

    # -- geometry ------------------------------------------------------ #

    @property
    def n_words(self) -> int:
        return self.depth * self.width

    @property
    def epsilon(self) -> float:
        """Additive error factor: estimates exceed truth by at most
        ``ε * N`` (N = total count) with probability ``>= 1 - δ``."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Per-query failure probability of the ``εN`` bound."""
        return math.exp(-self.depth)

    def error_bound(self, total: int) -> float:
        """The ``εN`` additive bound for a stream of ``total`` updates."""
        return self.epsilon * total

    # -- key -> cells --------------------------------------------------- #

    def column(self, row: int, key: int) -> int:
        a, b = row_params(self.seed, self.depth)[row]
        return hash_index(a, b, key, self.width)

    def cell_word(self, row: int, column: int) -> int:
        """Absolute SRAM word index of one counter cell."""
        return self.base_word + row * self.width + column

    def word(self, row: int, key: int) -> int:
        """Absolute SRAM word the update for ``key`` touches in ``row``."""
        return self.cell_word(row, self.column(row, key))

    def words_for(self, key: int) -> Tuple[int, ...]:
        """All counter words an update for ``key`` touches (one per
        row; rows occupy disjoint word ranges, so these never alias)."""
        return tuple(self.word(row, key) for row in range(self.depth))

    def words(self) -> range:
        """Every word of the layout, in address order."""
        return range(self.base_word, self.base_word + self.n_words)

    # -- wiring into the existing layers ------------------------------- #

    def register(self, memory_map: MemoryMap) -> int:
        """Register ``Sketch:{name}-r{row}c{col}`` mnemonics for every
        cell; returns the number of symbols registered."""
        count = 0
        for row in range(self.depth):
            for col in range(self.width):
                memory_map.register_symbol(
                    f"Sketch:{self.name}-r{row}c{col}",
                    SRAM_BASE + self.cell_word(row, col))
                count += 1
        return count

    def allocate(self, mmu, task_id: int):
        """Claim the layout's word range for ``task_id`` and zero it."""
        region = mmu.allocate_sram(self.base_word, self.n_words, task_id)
        for word in self.words():
            mmu.poke_sram(word, 0)
        return region


@dataclass(frozen=True)
class HeavyHitterLayout:
    """Count-min counters plus a CSTORE-claimed candidate key table.

    The candidate table is what turns "how often did key k occur?"
    (count-min answers point queries only) into "which keys are heavy?":
    every update *claims* one hash-chosen slot for its key via CSTORE —
    linearizable first-match-wins, exactly the paper's §3.2 conditional
    store — so the decoder has a bounded candidate set to run point
    queries against.  Slots hold the raw flow key; ``unclaimed_value``
    (default 0) marks an empty slot, so key 0 is reserved.
    """

    base_word: int
    width: int
    depth: int
    n_slots: int
    seed: int = DEFAULT_HASH_SEED
    name: str = "hh"
    unclaimed_value: int = 0

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ConfigurationError(
                f"{self.name}: need at least one candidate slot")
        _check_block(self.base_word, self.n_words, self.name)

    @property
    def countmin(self) -> CountMinLayout:
        """The embedded counter block (shares base, seed and name)."""
        return CountMinLayout(base_word=self.base_word, width=self.width,
                              depth=self.depth, seed=self.seed,
                              name=self.name)

    @property
    def slot_base(self) -> int:
        return self.base_word + self.depth * self.width

    @property
    def n_words(self) -> int:
        return self.depth * self.width + self.n_slots

    @property
    def epsilon(self) -> float:
        return self.countmin.epsilon

    @property
    def delta(self) -> float:
        return self.countmin.delta

    def slot_index(self, key: int) -> int:
        """Candidate slot claimed by ``key`` (row ``depth`` of the hash
        family, so it is independent of every counter row)."""
        a, b = row_params(self.seed, self.depth + 1)[self.depth]
        return hash_index(a, b, key, self.n_slots)

    def slot_word(self, key: int) -> int:
        return self.slot_base + self.slot_index(key)

    def slot_words(self) -> range:
        return range(self.slot_base, self.slot_base + self.n_slots)

    def words_for(self, key: int) -> Tuple[int, ...]:
        """Counter words plus the claim slot an update touches."""
        return self.countmin.words_for(key) + (self.slot_word(key),)

    def words(self) -> range:
        return range(self.base_word, self.base_word + self.n_words)

    def register(self, memory_map: MemoryMap) -> int:
        count = self.countmin.register(memory_map)
        for slot in range(self.n_slots):
            memory_map.register_symbol(
                f"Sketch:{self.name}-slot{slot}",
                SRAM_BASE + self.slot_base + slot)
            count += 1
        return count

    def allocate(self, mmu, task_id: int):
        region = mmu.allocate_sram(self.base_word, self.n_words, task_id)
        for word in self.countmin.words():
            mmu.poke_sram(word, 0)
        for word in self.slot_words():
            mmu.poke_sram(word, self.unclaimed_value)
        return region


@dataclass(frozen=True)
class DistinctCountLayout:
    """HLL-style register file: ``m`` words, each holding the maximum
    rank observed in its bucket (updated via a MAX read-modify-write)."""

    base_word: int
    m: int
    seed: int = DEFAULT_HASH_SEED
    name: str = "hll"

    def __post_init__(self) -> None:
        if self.m <= 0 or self.m & (self.m - 1):
            raise ConfigurationError(
                f"{self.name}: register count must be a power of two, "
                f"got {self.m}")
        _check_block(self.base_word, self.m, self.name)

    @property
    def n_words(self) -> int:
        return self.m

    @property
    def standard_error(self) -> float:
        """Relative standard error of the cardinality estimate."""
        return 1.04 / math.sqrt(self.m)

    def bucket_and_rank(self, key: int) -> Tuple[int, int]:
        return bucket_and_rank(key, self.m, self.seed)

    def word(self, bucket: int) -> int:
        return self.base_word + bucket

    def word_for(self, key: int) -> int:
        bucket, _ = self.bucket_and_rank(key)
        return self.word(bucket)

    def words(self) -> range:
        return range(self.base_word, self.base_word + self.m)

    def register(self, memory_map: MemoryMap) -> int:
        for bucket in range(self.m):
            memory_map.register_symbol(
                f"Sketch:{self.name}-reg{bucket}",
                SRAM_BASE + self.word(bucket))
        return self.m

    def allocate(self, mmu, task_id: int):
        region = mmu.allocate_sram(self.base_word, self.m, task_id)
        for word in self.words():
            mmu.poke_sram(word, 0)
        return region


def disjoint_keys(layout, candidates: Iterable[int],
                  n: int) -> Tuple[int, ...]:
    """Greedily pick up to ``n`` keys whose counter cells are pairwise
    disjoint under ``layout`` (a :class:`CountMinLayout` or
    :class:`HeavyHitterLayout`).

    Concurrent updaters for such keys never share a counter word, so a
    fleet of them carries no write-write race (TPP020) and an
    ``enforce``-mode :meth:`repro.core.tcpu.TCPU.trust` admits all of
    them; candidate-slot claims may still be shared (CSTORE vs CSTORE
    is the sanctioned TPP023 coordination protocol, not an error).
    """
    counters = (layout.countmin if isinstance(layout, HeavyHitterLayout)
                else layout)
    used: set = set()
    picked = []
    for key in candidates:
        cells = set(counters.words_for(key))
        if len(cells) < counters.depth or cells & used:
            continue  # self-colliding rows or clashes with a pick
        used |= cells
        picked.append(key)
        if len(picked) == n:
            break
    return tuple(picked)
