"""Sketch-based telemetry in scratch SRAM.

Layout descriptors (:mod:`repro.telemetry.layout`), deterministic hash
families (:mod:`repro.telemetry.hashing`) and generated, certified TPP
update/probe programs (:mod:`repro.telemetry.programs`).  The matching
end-host decoders live in :mod:`repro.analysis.sketch`.
"""

from repro.telemetry.hashing import (
    DEFAULT_HASH_SEED,
    bucket_and_rank,
    hash_index,
    mix32,
    row_params,
)
from repro.telemetry.layout import (
    CountMinLayout,
    DistinctCountLayout,
    HeavyHitterLayout,
    depth_for,
    disjoint_keys,
    width_for,
)
from repro.telemetry.programs import (
    PROBE_CHUNK,
    SketchUpdate,
    build_count_min_update,
    build_distinct_update,
    build_heavy_hitter_update,
    build_probe,
    read_sketch,
)

__all__ = [
    "DEFAULT_HASH_SEED",
    "bucket_and_rank",
    "hash_index",
    "mix32",
    "row_params",
    "CountMinLayout",
    "DistinctCountLayout",
    "HeavyHitterLayout",
    "depth_for",
    "disjoint_keys",
    "width_for",
    "PROBE_CHUNK",
    "SketchUpdate",
    "build_count_min_update",
    "build_distinct_update",
    "build_heavy_hitter_update",
    "build_probe",
    "read_sketch",
]
