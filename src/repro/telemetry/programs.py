"""Generated, verifier-certified TPP update programs for sketches.

The ISA has no hash instruction, so a sketch update is *specialized per
flow key*: the end host evaluates the layout's hash family
(:mod:`repro.telemetry.hashing`), bakes the resulting ``Sram:WordN``
operands into the program text, assembles it, and runs it through
:func:`repro.core.verifier.verify_program` so the certificate pins the
per-word dataflow classes the batched TCPU relies on:

- count-min rows are the canonical additive RMW idiom
  (``ADD [Packet:r],[Sram:WordW]`` + ``STORE``) and classify
  ``accumulate`` — eligible for the prefix-scan write vector lane;
- heavy-hitter candidate claims are a single ``CSTORE`` per slot and
  classify ``claim`` — the linearizable first-match-wins protocol;
- distinct-count register updates are a MAX RMW and classify ``mixed``
  — the batch engine demotes them to the safe lane
  (``batch_demotions`` reason ``write_dataflow``), by design.

Because the key is baked into the bytes, updates for different keys are
different programs (distinct ``program_key``); the TCPU batches per
program, which is exactly the per-flow granularity a sketch wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assembler import AssembledProgram, assemble
from repro.core.memory_map import MemoryMap
from repro.core.verifier import VerifiedProgram, verify_program
from repro.telemetry.layout import (
    CountMinLayout,
    DistinctCountLayout,
    HeavyHitterLayout,
)


@dataclass(frozen=True)
class SketchUpdate:
    """One certified, key-specialized sketch update program."""

    key: int
    source: str
    program: AssembledProgram
    certificate: VerifiedProgram
    #: SRAM words the update writes, in touch order.
    words: Tuple[int, ...]

    @property
    def dataflow(self) -> Dict[int, str]:
        """Certificate-pinned ``word -> class`` map for written words."""
        return dict(self.certificate.sram_dataflow)

    def build(self, task_id: Optional[int] = None, seq: int = 0):
        """Fresh TPP section (new packet-memory copy) for one packet."""
        tid = self.certificate.task_id if task_id is None else task_id
        return self.program.build(task_id=tid, seq=seq)


def _certify(source: str, memory_map: Optional[MemoryMap],
             task_id: int) -> Tuple[AssembledProgram, VerifiedProgram]:
    mmap = memory_map if memory_map else MemoryMap.shared_standard()
    program = assemble(source, memory_map=mmap)
    result = verify_program(
        program, memory_map=mmap,
        max_instructions=program.n_instructions, task_id=task_id)
    return program, result.raise_on_error().certificate


def _rmw(op: str, packet_word: int, sram_word: int) -> List[str]:
    """The two-instruction SRAM read-modify-write idiom."""
    return [f"{op} [Packet:{packet_word}],[Sram:Word{sram_word}]",
            f"STORE [Sram:Word{sram_word}],[Packet:{packet_word}]"]


def build_count_min_update(layout: CountMinLayout, key: int,
                           delta: int = 1, task_id: int = 0,
                           memory_map: Optional[MemoryMap] = None,
                           ) -> SketchUpdate:
    """Update program incrementing ``key``'s counter in every row.

    ``2 * depth`` instructions, one additive RMW per row; every touched
    word classifies ``accumulate`` so a batch of same-key updates rides
    the write-capable vector lane.
    """
    words = layout.words_for(key)
    lines = [f"; count-min update: key={key} delta={delta} "
             f"sketch={layout.name}",
             ".mode absolute",
             f".memory {layout.depth}"]
    lines += [f".data {row} {delta}" for row in range(layout.depth)]
    for row, word in enumerate(words):
        lines += _rmw("ADD", row, word)
    program, cert = _certify("\n".join(lines) + "\n", memory_map, task_id)
    return SketchUpdate(key=key, source=program.source, program=program,
                        certificate=cert, words=words)


def build_heavy_hitter_update(layout: HeavyHitterLayout, key: int,
                              delta: int = 1, task_id: int = 0,
                              memory_map: Optional[MemoryMap] = None,
                              ) -> SketchUpdate:
    """Count-min increment plus a CSTORE claim of the candidate slot.

    The claim writes ``key`` into its hash-chosen slot iff the slot
    still holds ``layout.unclaimed_value`` — first flow to hash there
    wins, later packets of the same flow find their own key (and still
    leave the slot intact: CSTORE only writes on match).  ``key`` must
    therefore differ from the unclaimed sentinel.
    """
    if key == layout.unclaimed_value:
        raise ValueError(
            f"key {key} collides with the unclaimed-slot sentinel "
            f"{layout.unclaimed_value}")
    depth = layout.depth
    counter_words = layout.countmin.words_for(key)
    slot = layout.slot_word(key)
    lines = [f"; heavy-hitter update: key={key} delta={delta} "
             f"sketch={layout.name}",
             ".mode absolute",
             f".memory {depth + 2}"]
    lines += [f".data {row} {delta}" for row in range(depth)]
    lines += [f".data {depth} {layout.unclaimed_value}",
              f".data {depth + 1} {key}"]
    for row, word in enumerate(counter_words):
        lines += _rmw("ADD", row, word)
    lines.append(f"CSTORE [Sram:Word{slot}],"
                 f"[Packet:{depth}],[Packet:{depth + 1}]")
    program, cert = _certify("\n".join(lines) + "\n", memory_map, task_id)
    return SketchUpdate(key=key, source=program.source, program=program,
                        certificate=cert, words=counter_words + (slot,))


def build_distinct_update(layout: DistinctCountLayout, key: int,
                          task_id: int = 0,
                          memory_map: Optional[MemoryMap] = None,
                          ) -> SketchUpdate:
    """HLL register update: ``reg = max(reg, rank(key))`` via MAX RMW.

    MAX is not additive, so the word classifies ``mixed`` and the batch
    engine demotes these updates to the safe scalar lane
    (``write_dataflow``) — still bit-identical, just not vectorized.
    """
    bucket, rank = layout.bucket_and_rank(key)
    word = layout.word(bucket)
    lines = [f"; distinct-count update: key={key} bucket={bucket} "
             f"rank={rank} sketch={layout.name}",
             ".mode absolute",
             ".memory 1",
             f".data 0 {rank}"]
    lines += _rmw("MAX", 0, word)
    program, cert = _certify("\n".join(lines) + "\n", memory_map, task_id)
    return SketchUpdate(key=key, source=program.source, program=program,
                        certificate=cert, words=(word,))


# --------------------------------------------------------------------- #
# Probe (read) side
# --------------------------------------------------------------------- #

#: Default probe chunking: the paper's per-packet instruction budget.
PROBE_CHUNK = 5


def build_probe(words: Sequence[int], task_id: int = 0,
                memory_map: Optional[MemoryMap] = None,
                chunk: int = PROBE_CHUNK,
                ) -> List[Tuple[AssembledProgram, Tuple[int, ...]]]:
    """LOAD-only probe programs that snapshot ``words`` of sketch SRAM.

    Returns ``(program, words)`` pairs, each program at most ``chunk``
    instructions (a whole sketch rarely fits one TPP's instruction
    budget, so the snapshot is striped across several probe packets —
    same pattern as the ndb/netsight collectors in §2.4).
    """
    probes: List[Tuple[AssembledProgram, Tuple[int, ...]]] = []
    mmap = memory_map if memory_map else MemoryMap.shared_standard()
    for base in range(0, len(words), chunk):
        part = tuple(words[base:base + chunk])
        lines = [f"; sketch probe: words {part}",
                 ".mode absolute",
                 f".memory {len(part)}"]
        lines += [f"LOAD [Sram:Word{w}],[Packet:{i}]"
                  for i, w in enumerate(part)]
        program = assemble("\n".join(lines) + "\n", memory_map=mmap)
        verify_program(program, memory_map=mmap,
                       max_instructions=len(part),
                       task_id=task_id).raise_on_error()
        probes.append((program, part))
    return probes


def read_sketch(tcpu, words: Sequence[int], make_ctx,
                task_id: int = 0,
                memory_map: Optional[MemoryMap] = None,
                chunk: int = PROBE_CHUNK) -> Dict[int, int]:
    """Snapshot ``words`` through probe TPPs executed on ``tcpu``.

    ``make_ctx`` builds a fresh
    :class:`~repro.core.mmu.ExecutionContext` per probe packet.  This is
    the data-plane read path the decoders consume; the control-plane
    shortcut is :func:`repro.analysis.sketch.image_from_mmu`.
    """
    mmap = memory_map if memory_map else getattr(
        tcpu.mmu, "memory_map", None)
    image: Dict[int, int] = {}
    for program, part in build_probe(words, task_id=task_id,
                                     memory_map=mmap, chunk=chunk):
        section = program.build(task_id=task_id)
        report = tcpu.execute(section, make_ctx())
        if not report.ok:
            raise RuntimeError(
                f"sketch probe faulted: {report.fault.name} "
                f"(words {part})")
        for i, word in enumerate(part):
            image[word] = section.read_word(i * program.word_size)
    return image
