"""One-call experiment setup for the common case.

:func:`quickstart_network` builds a linear chain of TPP switches with one
host at each end, installs shortest-path routes, starts the statistics
samplers, and attaches a TPP endpoint to every host — everything needed to
send a first ``PUSH [Queue:QueueSize]`` program (the README example).
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.net.routing import install_shortest_path_routes
from repro.net.topology import Network, TopologyBuilder


def quickstart_network(n_switches: int = 3, hosts_per_end: int = 1,
                       rate_bps: int = units.GIGABITS_PER_SEC,
                       delay_ns: int = 1_000, seed: int = 0,
                       stats_interval_ns: Optional[int] = 1_000_000,
                       ) -> Network:
    """A ready-to-use linear network with TPP endpoints on every host."""
    from repro.endhost.client import TPPEndpoint  # deferred: layering

    builder = TopologyBuilder(seed=seed, rate_bps=rate_bps,
                              delay_ns=delay_ns)
    net = builder.linear(n_switches, hosts_per_end=hosts_per_end)
    install_shortest_path_routes(net)
    if stats_interval_ns is not None:
        for switch in net.switches.values():
            switch.start_stats(stats_interval_ns)
    for host in net.hosts.values():
        host.tpp = TPPEndpoint(host)
    return net
