"""Reproduction of *Tiny Packet Programs* (HotNets 2013).

This package implements the full system described in "Tiny Packet Programs
for low-latency network control and monitoring" by Jeyakumar, Alizadeh, Kim
and Mazieres:

- :mod:`repro.sim` -- a discrete-event simulation engine (the substrate that
  replaces the paper's Linux-router testbed).
- :mod:`repro.net` -- packets, links, queues, hosts, topologies and routing.
- :mod:`repro.asic` -- the switch ASIC dataplane pipeline of Figure 3.
- :mod:`repro.core` -- the paper's contribution: the TPP wire format, the
  instruction set, the unified memory map and the TCPU.
- :mod:`repro.control` -- the control-plane agent (SRAM partitioning) and
  edge security policy.
- :mod:`repro.endhost` -- the end-host library that injects TPPs and
  interprets their results.
- :mod:`repro.apps` -- the three network tasks of Section 2 (micro-burst
  detection, RCP*, ndb) plus baselines.
- :mod:`repro.analysis` -- time-series and convergence analysis used by the
  benchmark harness.

Quickstart::

    from repro import quickstart_network
    from repro.core import assemble
    from repro.endhost import TPPClient

    net = quickstart_network(n_switches=3)
    client = TPPClient(net.host("h0"), net.host("h1"))
    program = assemble("PUSH [Queue:QueueSize]")
    result = client.run(program)
    print(result.per_hop_words())   # queue size observed at each hop
"""

from repro._version import __version__
from repro.errors import ReproError
from repro.quickstart import quickstart_network

__all__ = ["__version__", "ReproError", "quickstart_network"]
