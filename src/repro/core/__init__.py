"""The paper's contribution: tiny packet programs and the TCPU.

Layout (mirrors Section 3 of the paper):

- :mod:`repro.core.isa` — the instruction set of Table 1 plus the "simple
  arithmetic" the paper allows, each instruction encoded in 4 bytes.
- :mod:`repro.core.tpp` — the packet structure of Figure 4: TPP header,
  instructions, packet memory, encapsulated payload; real wire encoding.
- :mod:`repro.core.memory_map` — the unified memory-mapped IO address space
  of §3.2.1 (Switch / PacketMetadata / Queue / Link / SRAM namespaces).
- :mod:`repro.core.mmu` — per-switch translation of virtual addresses to
  live statistics and scratch memory, with per-task SRAM protection.
- :mod:`repro.core.assembler` — the x86-like assembly language used in the
  paper's listings, with ``[Namespace:Statistic]`` mnemonics.
- :mod:`repro.core.tcpu` — the RISC interpreter of §3.3 with its 5-stage
  pipeline cycle model.
- :mod:`repro.core.fastpath` — the compile-once, execute-many fast path:
  per-opcode closures with pre-resolved address accessors, cached in a
  bounded LRU keyed by the program's instruction bytes.
- :mod:`repro.core.verifier` — eBPF-style static verification: an
  abstract interpreter that proves stack discipline, memory bounds, and
  address-map safety before injection, and certifies programs for the
  check-elided fast path.
"""

from repro.core.isa import Instruction, Opcode
from repro.core.tpp import AddressingMode, TPPSection, TPP_HEADER_BYTES
from repro.core.memory_map import MemoryMap
from repro.core.mmu import ExecutionContext, MMU
from repro.core.assembler import AssembledProgram, assemble
from repro.core.disassembler import disassemble
from repro.core.fastpath import CompiledEntry, ProgramCache, compile_program
from repro.core.tcpu import TCPU, ExecutionReport, PipelineModel
from repro.core.exceptions import AssemblerError, TCPUFault, TPPError
from repro.core.verifier import (
    Diagnostic,
    VerificationError,
    VerificationResult,
    VerifiedProgram,
    verify,
    verify_program,
    verify_section,
)

__all__ = [
    "Instruction",
    "Opcode",
    "AddressingMode",
    "TPPSection",
    "TPP_HEADER_BYTES",
    "MemoryMap",
    "ExecutionContext",
    "MMU",
    "AssembledProgram",
    "assemble",
    "disassemble",
    "ProgramCache",
    "compile_program",
    "TCPU",
    "ExecutionReport",
    "PipelineModel",
    "AssemblerError",
    "TCPUFault",
    "TPPError",
    "CompiledEntry",
    "Diagnostic",
    "VerificationError",
    "VerificationResult",
    "VerifiedProgram",
    "verify",
    "verify_program",
    "verify_section",
]
