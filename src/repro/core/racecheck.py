"""Fleet-level static SRAM race analysis (the cross-program layer).

The single-program verifier (:mod:`repro.core.verifier`) proves that a
program stays inside its *own* task's SRAM protection domain (``TPP007``),
but says nothing about two admitted programs of the **same** task hitting
the same scratch word: the paper's CSTORE is the only claim/coordination
primitive switches offer, and nothing else serializes concurrent TPPs.
This module is the first analysis in the repo that reasons about *sets* of
programs: it extracts, per program, the word-level SRAM read / write /
CSTORE-claim sets, then intersects them pairwise across a fleet of
admitted programs to emit stable diagnostics:

========= ======== ======================================================
code      severity meaning
========= ======== ======================================================
``TPP020`` error    write-write race: two programs store into the same
                    SRAM word unconditionally (no claim protocol) — the
                    final value is whichever packet executed last, and
                    read-modify-write updates lose increments
``TPP021`` warning  read-write race: one program reads a word another
                    writes — the value observed (and anything derived
                    from it, including other SRAM words) depends on
                    packet interleaving
``TPP022`` error    claim-protocol violation: a word one program claims
                    through CSTORE is written *unconditionally* by
                    another, so the claim can be silently overwritten
``TPP023`` info     claim-coordinated sharing: both programs CSTORE the
                    same word.  This is the sanctioned §3.2.3 protocol —
                    first claimer wins — but the winner (and hence the
                    final value) still depends on arrival order
========= ======== ======================================================

Exactly one diagnostic is emitted per (pair, word): the most severe
applicable classification wins (``TPP020`` > ``TPP022`` > ``TPP021`` >
``TPP023``).  A fleet with an empty diagnostic list is **order
insensitive**: every program's writes land on words no other program
touches, and every shared word is read-only, so any interleaving of
whole-program executions produces bit-identical SRAM (the randomized
harness in ``tests/props/test_race_harness.py`` holds this as ground
truth).  Programs of *different* tasks are never paired — cross-task
access is already a ``TPP007`` admission error and an
``SRAM_PROTECTION`` runtime fault.

The analysis is may-access: writes behind a CEXEC fence count even when
the fence could statically never pass, so it can flag pairs that never
diverge in practice (documented false positives), but a diagnosed-free
fleet is genuinely race free.

Two consumption modes:

- :func:`check_fleet` — one-shot pairwise pass over a list of
  :class:`ProgramAccessSummary` (the ``tppasm racecheck`` CLI).
- :class:`FleetRaceTable` — incremental membership for admission
  control: :meth:`~FleetRaceTable.admit` re-checks only the pairs that
  share a word with the newcomer (via a word-level index), and
  :meth:`~FleetRaceTable.revoke` retires a member and every diagnostic
  involving it.  The table's report is always identical to a
  from-scratch :func:`check_fleet` over the current membership
  (conformance-tested over random admit/revoke sequences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.isa import Instruction, Opcode, SWITCH_WRITING_OPCODES
from repro.core.memory_map import SRAM_BASE, is_sram
from repro.core.tpp import AddressingMode, TPPSection, program_key_of

#: Stable race diagnostic codes with their severity.  Kept separate from
#: the single-program ``TPP0xx`` table in :mod:`repro.core.verifier`:
#: these name *pairs* of programs, not instructions of one program.
RACE_CODES: Dict[str, str] = {
    "TPP020": "error",
    "TPP021": "warning",
    "TPP022": "error",
    "TPP023": "info",
}

#: Opcodes whose switch operand genuinely *reads* a value an end-host
#: observes (directly or through arithmetic).  CSTORE also reads its
#: destination, but that read is part of the claim protocol itself and
#: is classified as a claim, not a read.
_SRAM_READING_OPCODES = frozenset({
    Opcode.PUSH, Opcode.LOAD, Opcode.CEXEC,
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.MIN, Opcode.MAX,
})

#: Opcodes that store into their switch operand unconditionally.
_SRAM_PLAIN_WRITING_OPCODES = SWITCH_WRITING_OPCODES - {Opcode.CSTORE}


def _index_map(
        pairs: Iterable[Tuple[int, int]]) -> Dict[int, Tuple[int, ...]]:
    """Group ``(word, instruction)`` pairs into word → sorted indices."""
    grouped: Dict[int, List[int]] = {}
    for word, index in pairs:
        grouped.setdefault(word, []).append(index)
    return {word: tuple(sorted(indices))
            for word, indices in grouped.items()}


class ProgramAccessSummary:
    """Word-level SRAM access sets of one program.

    ``reads`` / ``writes`` / ``claims`` map an absolute SRAM word index
    to the (sorted) instruction indices performing that access.  The
    summary is the unit the fleet analysis intersects; it is cheap to
    build (one linear scan) and cheap to carry inside a
    :class:`~repro.core.verifier.VerifiedProgram` certificate.
    """

    __slots__ = ("name", "task_id", "program_key",
                 "reads", "writes", "claims")

    def __init__(self, name: str, task_id: int, program_key: bytes,
                 reads: Dict[int, Tuple[int, ...]],
                 writes: Dict[int, Tuple[int, ...]],
                 claims: Dict[int, Tuple[int, ...]]) -> None:
        self.name = name
        self.task_id = task_id
        self.program_key = program_key
        self.reads = reads
        self.writes = writes
        self.claims = claims

    @property
    def key(self) -> Tuple[bytes, int]:
        """Fleet-membership key: one entry per (program, task) pair."""
        return (self.program_key, self.task_id)

    @property
    def words(self) -> Set[int]:
        """Every SRAM word this program touches, any access kind."""
        return (set(self.reads) | set(self.writes) | set(self.claims))

    @property
    def touches_sram(self) -> bool:
        """Whether the fleet analysis has anything to look at."""
        return bool(self.reads or self.writes or self.claims)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (``tppasm racecheck --json``)."""
        def render(table: Dict[int, Tuple[int, ...]]) -> Dict[str, Any]:
            return {str(word): list(indices)
                    for word, indices in sorted(table.items())}
        return {
            "name": self.name,
            "task_id": self.task_id,
            "program_key": self.program_key.hex(),
            "reads": render(self.reads),
            "writes": render(self.writes),
            "claims": render(self.claims),
        }


def collect_sram_accesses(
        instructions: Sequence[Instruction],
) -> Tuple[Tuple[Tuple[int, int], ...],
           Tuple[Tuple[int, int], ...],
           Tuple[Tuple[int, int], ...]]:
    """Scan a program for SRAM accesses.

    Returns ``(reads, writes, claims)``, each a tuple of
    ``(absolute_sram_word, instruction_index)`` pairs — the flat shape
    embedded into verifier certificates.
    """
    reads: List[Tuple[int, int]] = []
    writes: List[Tuple[int, int]] = []
    claims: List[Tuple[int, int]] = []
    for index, instruction in enumerate(instructions):
        if not is_sram(instruction.addr):
            continue
        word = instruction.addr - SRAM_BASE
        opcode = instruction.opcode
        if opcode == Opcode.CSTORE:
            claims.append((word, index))
        elif opcode in _SRAM_PLAIN_WRITING_OPCODES:
            writes.append((word, index))
        elif opcode in _SRAM_READING_OPCODES:
            reads.append((word, index))
    return tuple(reads), tuple(writes), tuple(claims)


def summarize_instructions(instructions: Sequence[Instruction], *,
                           task_id: int = 0,
                           mode: Any = None,
                           word_size: int = 4,
                           name: str = "",
                           program_key: Optional[bytes] = None,
                           ) -> ProgramAccessSummary:
    """Build a :class:`ProgramAccessSummary` from decoded instructions."""
    if program_key is None:
        program_key = program_key_of(
            list(instructions),
            AddressingMode.STACK if mode is None else mode, word_size)
    reads, writes, claims = collect_sram_accesses(instructions)
    return ProgramAccessSummary(
        name=name or f"{program_key.hex()[:12]}/t{task_id}",
        task_id=task_id,
        program_key=program_key,
        reads=_index_map(reads),
        writes=_index_map(writes),
        claims=_index_map(claims),
    )


def summarize_section(tpp: TPPSection,
                      name: str = "") -> ProgramAccessSummary:
    """Summary of an in-flight (wire-decoded) TPP section."""
    return summarize_instructions(
        tpp.instructions, task_id=tpp.task_id, mode=tpp.mode,
        word_size=tpp.word_size, name=name,
        program_key=tpp.program_key)


def summarize_program(program: Any, task_id: int = 0,
                      name: str = "") -> ProgramAccessSummary:
    """Summary of an :class:`~repro.core.assembler.AssembledProgram`."""
    return summarize_instructions(
        program.instructions, task_id=task_id, mode=program.mode,
        word_size=program.word_size, name=name)


def summarize_certificate(certificate: Any,
                          name: str = "") -> ProgramAccessSummary:
    """Summary reconstructed from a verifier certificate's pinned sets.

    Certificates (:class:`~repro.core.verifier.VerifiedProgram`) embed
    the flat access tuples so admission layers — notably
    :meth:`repro.core.tcpu.TCPU.trust` — can race-check a program
    without ever seeing its instructions.
    """
    return ProgramAccessSummary(
        name=(name or f"{certificate.program_key.hex()[:12]}"
                      f"/t{certificate.task_id}"),
        task_id=certificate.task_id,
        program_key=certificate.program_key,
        reads=_index_map(certificate.sram_reads),
        writes=_index_map(certificate.sram_writes),
        claims=_index_map(certificate.sram_claims),
    )


@dataclass(frozen=True)
class RaceDiagnostic:
    """One pairwise finding: two named programs, one SRAM word."""

    code: str                          #: ``TPP020``..``TPP023``
    severity: str                      #: ``error`` | ``warning`` | ``info``
    message: str
    word: int                          #: absolute SRAM word index
    vaddr: int                         #: ``SRAM_BASE + word``
    task_id: int
    program_a: str
    program_b: str
    instructions_a: Tuple[int, ...]    #: offending indices in program a
    instructions_b: Tuple[int, ...]    #: offending indices in program b

    def format(self) -> str:
        """Human-readable one-liner."""
        return (f"{self.code} {self.severity}: {self.message} "
                f"[Sram:Word{self.word} @ {self.vaddr:#06x}, "
                f"task {self.task_id}; {self.program_a} instr "
                f"{list(self.instructions_a)} vs {self.program_b} "
                f"instr {list(self.instructions_b)}]")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "word": self.word,
            "vaddr": self.vaddr,
            "task_id": self.task_id,
            "program_a": self.program_a,
            "program_b": self.program_b,
            "instructions_a": list(self.instructions_a),
            "instructions_b": list(self.instructions_b),
        }


def _sort_key(diagnostic: RaceDiagnostic) -> Tuple:
    return (diagnostic.task_id, diagnostic.word, diagnostic.code,
            diagnostic.program_a, diagnostic.program_b)


def check_pair(a: ProgramAccessSummary,
               b: ProgramAccessSummary) -> List[RaceDiagnostic]:
    """Race diagnostics between two programs (same task only).

    The pair is canonically ordered by ``(name, program_key)`` before
    classification, so the result is identical no matter which way the
    caller hands the two summaries in — a requirement for the
    incremental table to match a from-scratch pass exactly.
    """
    if a.task_id != b.task_id:
        return []  # disjoint protection domains: TPP007's job
    a, b = sorted((a, b), key=lambda s: (s.name, s.program_key))
    shared = a.words & b.words
    diagnostics: List[RaceDiagnostic] = []
    for word in sorted(shared):
        finding = _classify_word(a, b, word)
        if finding is not None:
            diagnostics.append(finding)
    return diagnostics


def _write_indices(summary: ProgramAccessSummary,
                   word: int) -> Tuple[int, ...]:
    """All indices that mutate ``word``: plain stores and CSTORE claims."""
    return tuple(sorted(summary.writes.get(word, ())
                        + summary.claims.get(word, ())))


def _classify_word(a: ProgramAccessSummary, b: ProgramAccessSummary,
                   word: int) -> Optional[RaceDiagnostic]:
    """Most severe applicable classification for one shared word."""
    write_a, write_b = word in a.writes, word in b.writes
    claim_a, claim_b = word in a.claims, word in b.claims
    read_a, read_b = word in a.reads, word in b.reads

    def build(code: str, message: str,
              indices_a: Tuple[int, ...],
              indices_b: Tuple[int, ...]) -> RaceDiagnostic:
        return RaceDiagnostic(
            code=code, severity=RACE_CODES[code], message=message,
            word=word, vaddr=SRAM_BASE + word, task_id=a.task_id,
            program_a=a.name, program_b=b.name,
            instructions_a=indices_a, instructions_b=indices_b)

    if write_a and write_b:
        return build(
            "TPP020",
            f"write-write race: {a.name} and {b.name} both store to "
            f"Sram:Word{word} with no CSTORE claim protocol",
            a.writes[word], b.writes[word])
    if (claim_a and write_b) or (claim_b and write_a):
        if claim_a and write_b:
            claimer, writer = a, b
            indices_a, indices_b = a.claims[word], b.writes[word]
        else:
            claimer, writer = b, a
            indices_a, indices_b = a.writes[word], b.claims[word]
        return build(
            "TPP022",
            f"claim protocol violated: {claimer.name} claims "
            f"Sram:Word{word} via CSTORE but {writer.name} writes it "
            f"unconditionally",
            indices_a, indices_b)
    writes_a_any = write_a or claim_a
    writes_b_any = write_b or claim_b
    if (writes_a_any and read_b) or (writes_b_any and read_a):
        if writes_a_any and read_b:
            writer, reader = a, b
            indices_a = _write_indices(a, word)
            indices_b = b.reads[word]
        else:
            writer, reader = b, a
            indices_a = a.reads[word]
            indices_b = _write_indices(b, word)
        return build(
            "TPP021",
            f"read-write race: {reader.name} reads Sram:Word{word} "
            f"which {writer.name} writes — torn-read risk, value "
            f"depends on packet interleaving",
            indices_a, indices_b)
    if claim_a and claim_b:
        return build(
            "TPP023",
            f"claim-coordinated sharing: {a.name} and {b.name} both "
            f"CSTORE Sram:Word{word} — sanctioned protocol, but the "
            f"winning claim depends on arrival order",
            a.claims[word], b.claims[word])
    return None  # read-read sharing is always safe


@dataclass
class FleetRaceReport:
    """Everything one fleet-wide analysis established."""

    programs: List[str]
    diagnostics: List[RaceDiagnostic]
    pairs_checked: int = 0

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (TPP020/TPP022)."""
        return not self.errors

    @property
    def race_free(self) -> bool:
        """No diagnostics at all: the fleet is provably order
        insensitive — every interleaving of whole-program executions
        yields bit-identical final SRAM."""
        return not self.diagnostics

    @property
    def errors(self) -> List[RaceDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[RaceDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def by_code(self) -> Dict[str, int]:
        """Diagnostic counts keyed by code (stable order)."""
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def format(self) -> str:
        """All diagnostics plus a verdict line, human-readable."""
        lines = [d.format() for d in self.diagnostics]
        n_err, n_warn = len(self.errors), len(self.warnings)
        verdict = ("race-free" if self.race_free
                   else "racy" if not self.ok else "shared")
        lines.append(
            f"{verdict}: {len(self.programs)} program(s), "
            f"{self.pairs_checked} pair(s) checked, {n_err} error(s), "
            f"{n_warn} warning(s)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "ok": self.ok,
            "race_free": self.race_free,
            "programs": list(self.programs),
            "pairs_checked": self.pairs_checked,
            "by_code": self.by_code(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def check_fleet(
        summaries: Sequence[ProgramAccessSummary]) -> FleetRaceReport:
    """From-scratch pairwise analysis over a whole fleet.

    The reference semantics the incremental :class:`FleetRaceTable`
    must match; diagnostics come out in a canonical order so reports
    are directly comparable.
    """
    diagnostics: List[RaceDiagnostic] = []
    pairs = 0
    for i in range(len(summaries)):
        for j in range(i + 1, len(summaries)):
            pairs += 1
            diagnostics.extend(check_pair(summaries[i], summaries[j]))
    diagnostics.sort(key=_sort_key)
    return FleetRaceReport(
        programs=[s.name for s in summaries],
        diagnostics=diagnostics,
        pairs_checked=pairs)


class FleetRaceTable:
    """Incrementally maintained fleet membership with race diagnostics.

    Admission layers call :meth:`admit` / :meth:`revoke` as programs
    come and go; the table keeps a word-level index so an admission
    only re-checks the pairs whose access sets actually intersect the
    newcomer's — on a fleet of N programs touching disjoint words,
    admission is O(program size), not O(N).
    """

    def __init__(self) -> None:
        self._members: Dict[Tuple[bytes, int], ProgramAccessSummary] = {}
        # (task_id, word) -> member keys touching that word.
        self._word_index: Dict[Tuple[int, int],
                               Set[Tuple[bytes, int]]] = {}
        # Unordered pair (sorted key tuple) -> its diagnostics.
        self._pair_diagnostics: Dict[
            Tuple[Tuple[bytes, int], Tuple[bytes, int]],
            List[RaceDiagnostic]] = {}
        #: Pairwise checks actually performed (the incremental-work
        #: counter the conformance tests compare against a full pass).
        self.pair_checks = 0
        #: Admissions that introduced at least one error diagnostic.
        self.racy_admissions = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: object) -> bool:
        return key in self._members

    @property
    def members(self) -> List[ProgramAccessSummary]:
        """Current membership in admission order."""
        return list(self._members.values())

    def member(self, key: Tuple[bytes, int]
               ) -> Optional[ProgramAccessSummary]:
        """Membership lookup by ``(program_key, task_id)``."""
        return self._members.get(key)

    def admit(self,
              summary: ProgramAccessSummary) -> List[RaceDiagnostic]:
        """Add a program; returns every diagnostic it participates in.

        Idempotent: re-admitting a member returns its current
        diagnostics without re-running any pair.  Only pairs sharing at
        least one SRAM word with the newcomer are checked.
        """
        key = summary.key
        if key in self._members:
            return self.diagnostics_for(key)
        self._members[key] = summary
        rivals: Set[Tuple[bytes, int]] = set()
        for word in summary.words:
            index_key = (summary.task_id, word)
            bucket = self._word_index.setdefault(index_key, set())
            rivals.update(bucket)
            bucket.add(key)
        introduced: List[RaceDiagnostic] = []
        for rival_key in rivals:
            rival = self._members[rival_key]
            self.pair_checks += 1
            findings = check_pair(summary, rival)
            if findings:
                self._pair_diagnostics[_pair_key(key, rival_key)] = (
                    findings)
                introduced.extend(findings)
        if any(d.severity == "error" for d in introduced):
            self.racy_admissions += 1
        introduced.sort(key=_sort_key)
        return introduced

    def revoke(self, key_or_summary: Any) -> bool:
        """Retire a member (and every diagnostic naming it).

        Accepts a summary, a certificate-like object (anything with
        ``program_key`` and ``task_id``), or a raw
        ``(program_key, task_id)`` tuple.  Returns whether the member
        existed.
        """
        key = _member_key(key_or_summary)
        summary = self._members.pop(key, None)
        if summary is None:
            return False
        for word in summary.words:
            index_key = (summary.task_id, word)
            bucket = self._word_index.get(index_key)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._word_index[index_key]
        for pair in [p for p in self._pair_diagnostics if key in p]:
            del self._pair_diagnostics[pair]
        return True

    def diagnostics(self) -> List[RaceDiagnostic]:
        """Every active diagnostic, in canonical order."""
        collected: List[RaceDiagnostic] = []
        for findings in self._pair_diagnostics.values():
            collected.extend(findings)
        collected.sort(key=_sort_key)
        return collected

    def diagnostics_for(self,
                        key_or_summary: Any) -> List[RaceDiagnostic]:
        """Active diagnostics involving one member."""
        key = _member_key(key_or_summary)
        collected: List[RaceDiagnostic] = []
        for pair, findings in self._pair_diagnostics.items():
            if key in pair:
                collected.extend(findings)
        collected.sort(key=_sort_key)
        return collected

    def report(self) -> FleetRaceReport:
        """Snapshot equivalent to ``check_fleet(self.members)``."""
        members = self.members
        n = len(members)
        return FleetRaceReport(
            programs=[s.name for s in members],
            diagnostics=self.diagnostics(),
            pairs_checked=n * (n - 1) // 2)


def _member_key(key_or_summary: Any) -> Tuple[bytes, int]:
    if isinstance(key_or_summary, ProgramAccessSummary):
        return key_or_summary.key
    program_key = getattr(key_or_summary, "program_key", None)
    if program_key is not None:
        return (program_key, getattr(key_or_summary, "task_id", 0))
    program_key, task_id = key_or_summary
    return (program_key, task_id)


def _pair_key(a: Tuple[bytes, int], b: Tuple[bytes, int]
              ) -> Tuple[Tuple[bytes, int], Tuple[bytes, int]]:
    return (a, b) if a <= b else (b, a)
