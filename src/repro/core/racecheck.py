"""Fleet-level static SRAM race analysis (the cross-program layer).

The single-program verifier (:mod:`repro.core.verifier`) proves that a
program stays inside its *own* task's SRAM protection domain (``TPP007``),
but says nothing about two admitted programs of the **same** task hitting
the same scratch word: the paper's CSTORE is the only claim/coordination
primitive switches offer, and nothing else serializes concurrent TPPs.
This module is the first analysis in the repo that reasons about *sets* of
programs: it extracts, per program, the word-level SRAM read / write /
CSTORE-claim sets, then intersects them pairwise across a fleet of
admitted programs to emit stable diagnostics:

========= ======== ======================================================
code      severity meaning
========= ======== ======================================================
``TPP020`` error    write-write race: two programs store into the same
                    SRAM word unconditionally (no claim protocol) — the
                    final value is whichever packet executed last, and
                    read-modify-write updates lose increments
``TPP021`` warning  read-write race: one program reads a word another
                    writes — the value observed (and anything derived
                    from it, including other SRAM words) depends on
                    packet interleaving
``TPP022`` error    claim-protocol violation: a word one program claims
                    through CSTORE is written *unconditionally* by
                    another, so the claim can be silently overwritten
``TPP023`` info     claim-coordinated sharing: both programs CSTORE the
                    same word.  This is the sanctioned §3.2.3 protocol —
                    first claimer wins — but the winner (and hence the
                    final value) still depends on arrival order
========= ======== ======================================================

Exactly one diagnostic is emitted per (pair, word): the most severe
applicable classification wins (``TPP020`` > ``TPP022`` > ``TPP021`` >
``TPP023``).  A fleet with an empty diagnostic list is **order
insensitive**: every program's writes land on words no other program
touches, and every shared word is read-only, so any interleaving of
whole-program executions produces bit-identical SRAM (the randomized
harness in ``tests/props/test_race_harness.py`` holds this as ground
truth).  Programs of *different* tasks are never paired — cross-task
access is already a ``TPP007`` admission error and an
``SRAM_PROTECTION`` runtime fault.

The analysis is may-access, refined by *constant-mask CEXEC fences*: a
CEXEC whose switch operand is a per-switch constant (``Switch:SwitchID``)
and whose mask/value operand words provably survive every hop unmodified
is a stable predicate — on any given switch it either always passes or
always fails.  Accesses guarded by two mutually exclusive such fences
(same register and mask, different expected values) can never execute in
the same switch's interleaving, so the pairwise classification only
counts *co-executable* access pairs, and accesses behind self-
contradictory fences are statically unreachable and dropped from the
summary.  Fences with matching predicates suppress nothing: the analysis
does not know the register's value, and on some switch both programs'
guarded accesses may run.

When the analysis runs on behalf of a *specific* switch the register
values stop being unknowns: admission is per-switch (``TCPU.trust``
keeps one :class:`FleetRaceTable` per switch), so callers may supply
``fence_values`` — a ``{switch_vaddr: value}`` binding of the stable
registers for that switch.  A fence whose predicate is falsified by the
bindings (``value & mask != expected``) can never pass there, so every
access it guards is statically dead on that switch and drops out of the
pairwise classification entirely.  This is the refinement that retires
the dominant false-positive class: a write fenced on the *wrong*
``Switch:SwitchID`` looked like a may-write to the unbound analysis.
Everything else stays may-access — writes behind non-constant fences
still count — so a diagnosed-free fleet is genuinely race free on the
bound switch, at a measurably lower false-positive rate
(``tests/props/test_race_harness.py`` pins the measurement).

Two consumption modes:

- :func:`check_fleet` — one-shot pairwise pass over a list of
  :class:`ProgramAccessSummary` (the ``tppasm racecheck`` CLI).
- :class:`FleetRaceTable` — incremental membership for admission
  control: :meth:`~FleetRaceTable.admit` re-checks only the pairs that
  share a word with the newcomer (via a word-level index), and
  :meth:`~FleetRaceTable.revoke` retires a member and every diagnostic
  involving it.  The table's report is always identical to a
  from-scratch :func:`check_fleet` over the current membership
  (conformance-tested over random admit/revoke sequences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.isa import (
    HOP_RELATIVE_OPCODES,
    Instruction,
    Opcode,
    SWITCH_WRITING_OPCODES,
)
from repro.core.memory_map import MemoryMap, SRAM_BASE, is_sram
from repro.core.relational import (
    FIRE_NEVER,
    ReachTable,
    RelationalSummary,
    analyze_relations,
    claim_can_fire,
    claim_mutates,
    reachable_values,
    write_mutates,
)
from repro.core.tpp import AddressingMode, TPPSection, program_key_of

#: Hop horizon used when a program declares no budget (mirrors the
#: verifier's scan limit; a larger horizon only widens the written
#: intervals, which is the conservative direction for fence constancy).
FENCE_SCAN_LIMIT = 1024

#: Switch registers whose value is a per-switch constant for the life of
#: a run: set at boot, never written by the dataplane or control plane.
#: Only CEXECs reading these can be *stable* fences — a fence on a
#: counter or queue register can flip between two packets of the same
#: interleaving and proves nothing.
STABLE_FENCE_REGISTERS = ("Switch:SwitchID",)

#: Stable race diagnostic codes with their severity.  Kept separate from
#: the single-program ``TPP0xx`` table in :mod:`repro.core.verifier`:
#: these name *pairs* of programs, not instructions of one program.
RACE_CODES: Dict[str, str] = {
    "TPP020": "error",
    "TPP021": "warning",
    "TPP022": "error",
    "TPP023": "info",
}

#: Opcodes whose switch operand genuinely *reads* a value an end-host
#: observes (directly or through arithmetic).  CSTORE also reads its
#: destination, but that read is part of the claim protocol itself and
#: is classified as a claim, not a read.
_SRAM_READING_OPCODES = frozenset({
    Opcode.PUSH, Opcode.LOAD, Opcode.CEXEC,
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.MIN, Opcode.MAX,
})

#: Opcodes that store into their switch operand unconditionally.
_SRAM_PLAIN_WRITING_OPCODES = SWITCH_WRITING_OPCODES - {Opcode.CSTORE}


def _index_map(
        pairs: Iterable[Tuple[int, int]]) -> Dict[int, Tuple[int, ...]]:
    """Group ``(word, instruction)`` pairs into word → sorted indices."""
    grouped: Dict[int, List[int]] = {}
    for word, index in pairs:
        grouped.setdefault(word, []).append(index)
    return {word: tuple(sorted(indices))
            for word, indices in grouped.items()}


class ProgramAccessSummary:
    """Word-level SRAM access sets of one program.

    ``reads`` / ``writes`` / ``claims`` map an absolute SRAM word index
    to the (sorted) instruction indices performing that access.  The
    summary is the unit the fleet analysis intersects; it is cheap to
    build (one linear scan) and cheap to carry inside a
    :class:`~repro.core.verifier.VerifiedProgram` certificate.

    ``fences`` holds the program's provably-stable CEXEC fences as
    ``(instruction_index, switch_vaddr, mask, expected)`` tuples (see
    :func:`collect_constant_fences`); an access at index ``i`` is
    guarded by every fence at a smaller index.  Accesses whose own guard
    set is self-contradictory are statically unreachable and dropped at
    construction, so every index the maps carry can actually execute on
    some switch.
    """

    __slots__ = ("name", "task_id", "program_key",
                 "reads", "writes", "claims", "fences",
                 "relational", "word_size")

    def __init__(self, name: str, task_id: int, program_key: bytes,
                 reads: Dict[int, Tuple[int, ...]],
                 writes: Dict[int, Tuple[int, ...]],
                 claims: Dict[int, Tuple[int, ...]],
                 fences: Tuple[Tuple[int, int, int, int], ...] = (),
                 relational: Optional[RelationalSummary] = None,
                 word_size: int = 4,
                 ) -> None:
        self.name = name
        self.task_id = task_id
        self.program_key = program_key
        self.fences = tuple(sorted(fences))
        self.relational = relational
        self.word_size = word_size
        self.reads = self._drop_unreachable(reads)
        self.writes = self._drop_unreachable(writes)
        self.claims = self._drop_unreachable(claims)

    def guards(self, index: int) -> Tuple[Tuple[int, int, int], ...]:
        """The fence predicates guarding the instruction at ``index``
        (every stable CEXEC at a smaller index)."""
        return tuple((addr, mask, expected)
                     for fence_index, addr, mask, expected in self.fences
                     if fence_index < index)

    def _drop_unreachable(
            self, table: Dict[int, Tuple[int, ...]],
    ) -> Dict[int, Tuple[int, ...]]:
        if not self.fences:
            return table
        filtered: Dict[int, Tuple[int, ...]] = {}
        for word, indices in table.items():
            live = tuple(i for i in indices
                         if not _self_contradictory(self.guards(i)))
            if live:
                filtered[word] = live
        return filtered

    @property
    def key(self) -> Tuple[bytes, int]:
        """Fleet-membership key: one entry per (program, task) pair."""
        return (self.program_key, self.task_id)

    @property
    def words(self) -> Set[int]:
        """Every SRAM word this program touches, any access kind."""
        return (set(self.reads) | set(self.writes) | set(self.claims))

    @property
    def touches_sram(self) -> bool:
        """Whether the fleet analysis has anything to look at."""
        return bool(self.reads or self.writes or self.claims)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (``tppasm racecheck --json``)."""
        def render(table: Dict[int, Tuple[int, ...]]) -> Dict[str, Any]:
            return {str(word): list(indices)
                    for word, indices in sorted(table.items())}
        return {
            "name": self.name,
            "task_id": self.task_id,
            "program_key": self.program_key.hex(),
            "reads": render(self.reads),
            "writes": render(self.writes),
            "claims": render(self.claims),
            "fences": [list(fence) for fence in self.fences],
        }


def collect_sram_accesses(
        instructions: Sequence[Instruction],
) -> Tuple[Tuple[Tuple[int, int], ...],
           Tuple[Tuple[int, int], ...],
           Tuple[Tuple[int, int], ...]]:
    """Scan a program for SRAM accesses.

    Returns ``(reads, writes, claims)``, each a tuple of
    ``(absolute_sram_word, instruction_index)`` pairs — the flat shape
    embedded into verifier certificates.
    """
    reads: List[Tuple[int, int]] = []
    writes: List[Tuple[int, int]] = []
    claims: List[Tuple[int, int]] = []
    for index, instruction in enumerate(instructions):
        if not is_sram(instruction.addr):
            continue
        word = instruction.addr - SRAM_BASE
        opcode = instruction.opcode
        if opcode == Opcode.CSTORE:
            claims.append((word, index))
        elif opcode in _SRAM_PLAIN_WRITING_OPCODES:
            writes.append((word, index))
        elif opcode in _SRAM_READING_OPCODES:
            reads.append((word, index))
    return tuple(reads), tuple(writes), tuple(claims)


def written_byte_intervals(instructions: Sequence[Instruction], *,
                           mode: Any,
                           word_size: int,
                           memory_len: int,
                           perhop_len_bytes: int = 0,
                           max_hops: Optional[int] = None,
                           ) -> List[Tuple[int, int]]:
    """Over-approximated byte ranges any instruction can write into
    packet memory across the whole hop horizon.

    The single source of truth for "which packet-memory bytes are
    provably constant": the verifier's dead-code analysis and the fence
    extraction below both exclude these intervals.  PUSH coverage uses
    the per-instruction SP prefix sums over the worst achievable per-hop
    growth; LOAD/arithmetic write back at their operand (striding per
    hop in hop mode); CSTORE writes the old switch value over its
    condition word.
    """
    hop_mode = mode == AddressingMode.HOP
    word = word_size
    n = len(instructions)
    horizon = max_hops if max_hops is not None else FENCE_SCAN_LIMIT
    top_hop = max(horizon - 1, 0)
    prefix = [0] * (n + 1)
    for j, instruction in enumerate(instructions):
        delta = 0
        if instruction.opcode == Opcode.PUSH:
            delta = word
        elif instruction.opcode == Opcode.POP:
            delta = -word
        prefix[j + 1] = prefix[j] + delta
    deltas = {prefix[n]}
    for k, instruction in enumerate(instructions):
        if instruction.opcode == Opcode.CEXEC:
            deltas.add(prefix[k])
    dmax = max(deltas)
    pushes = [j for j, i in enumerate(instructions)
              if i.opcode == Opcode.PUSH]
    intervals: List[Tuple[int, int]] = []
    if pushes:
        growth = top_hop * max(dmax, 0)
        hi = max(growth + prefix[j] + word for j in pushes)
        intervals.append((0, min(hi, memory_len)))
    for j, instruction in enumerate(instructions):
        opcode = instruction.opcode
        base = instruction.offset * word
        if opcode == Opcode.LOAD or opcode in (
                Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                Opcode.XOR, Opcode.MIN, Opcode.MAX):
            if hop_mode and opcode in HOP_RELATIVE_OPCODES:
                intervals.append((base,
                                  top_hop * perhop_len_bytes + base + word))
            else:
                intervals.append((base, base + word))
        elif opcode == Opcode.CSTORE:
            # Writes the old switch value back over the cond word.
            intervals.append((base, base + word))
    return intervals


def collect_constant_fences(instructions: Sequence[Instruction], *,
                            mode: Any,
                            word_size: int,
                            memory_len: int,
                            perhop_len_bytes: int = 0,
                            initial_memory: Optional[bytes] = None,
                            max_hops: Optional[int] = None,
                            memory_map: Optional[MemoryMap] = None,
                            ) -> Tuple[Tuple[int, int, int, int], ...]:
    """Extract the provably-stable CEXEC fences of one program.

    Returns ``(instruction_index, switch_vaddr, mask, expected)`` tuples
    for every CEXEC that (a) reads a :data:`STABLE_FENCE_REGISTERS`
    register and (b) takes its mask/value operand pair from packet-memory
    bytes no instruction can overwrite on any hop within the horizon.
    Such a fence evaluates identically on every execution of the program
    on a given switch, so it partitions the fleet's interleavings; every
    access at a later index is guarded by it (CEXEC kills the program
    suffix).  Without an initial memory image nothing is provable and
    the result is empty — the conservative, pre-fence behaviour.
    """
    if initial_memory is None:
        return ()
    resolver = (memory_map if memory_map is not None
                else MemoryMap.shared_standard())
    stable_addrs = set()
    for name in STABLE_FENCE_REGISTERS:
        try:
            stable_addrs.add(resolver.resolve(name))
        except KeyError:  # pragma: no cover - custom maps may omit it
            continue
    if not stable_addrs:
        return ()
    cexecs = [(j, i) for j, i in enumerate(instructions)
              if i.opcode == Opcode.CEXEC and i.addr in stable_addrs]
    if not cexecs:
        return ()
    written = written_byte_intervals(
        instructions, mode=mode, word_size=word_size,
        memory_len=memory_len, perhop_len_bytes=perhop_len_bytes,
        max_hops=max_hops)
    word = word_size
    fences: List[Tuple[int, int, int, int]] = []
    for j, instruction in cexecs:
        base = instruction.offset * word
        end = base + 2 * word
        if end > len(initial_memory) or end > memory_len:
            continue
        if any(lo < end and base < hi for lo, hi in written):
            continue  # operands are mutable: the fence can flip
        mask = int.from_bytes(initial_memory[base:base + word], "big")
        expected = int.from_bytes(initial_memory[base + word:end], "big")
        fences.append((j, instruction.addr, mask, expected))
    return tuple(fences)


def _exclusive_guards(guards_a: Tuple[Tuple[int, int, int], ...],
                      guards_b: Tuple[Tuple[int, int, int], ...]) -> bool:
    """Whether two guard sets can never both pass on one switch.

    True iff they contain fences on the same stable register with the
    same mask but different expected values — at most one of the two
    predicates holds for any register value.  Matching predicates are
    *not* exclusive: the analysis does not know the register's value,
    and on some switch both pass.
    """
    for addr_a, mask_a, expected_a in guards_a:
        for addr_b, mask_b, expected_b in guards_b:
            if (addr_a == addr_b and mask_a == mask_b
                    and expected_a != expected_b):
                return True
    return False


def _falsified(guards: Tuple[Tuple[int, int, int], ...],
               fence_values: Optional[Mapping[int, int]]) -> bool:
    """Whether known per-switch register values kill this guard set.

    ``fence_values`` maps a stable register's switch vaddr to its
    concrete value on the switch the analysis is run for.  A fence on a
    bound register passes iff ``value & mask == expected``; one failing
    fence makes every access behind it unreachable on that switch.
    Unbound registers stay unknowns (handled by mutual exclusion).
    """
    if not fence_values or not guards:
        return False
    for addr, mask, expected in guards:
        value = fence_values.get(addr)
        if value is not None and (value & mask) != expected:
            return True
    return False


def _self_contradictory(
        guards: Tuple[Tuple[int, int, int], ...]) -> bool:
    """Whether one access's own guard set can never all pass: a fence
    whose expected value has bits outside its mask (never true), or two
    fences on the same register/mask demanding different values."""
    for _, mask, expected in guards:
        if expected & ~mask:
            return True
    return _exclusive_guards(guards, guards)


def _apply_relational_statics(
        reads: Dict[int, Tuple[int, ...]],
        writes: Dict[int, Tuple[int, ...]],
        claims: Dict[int, Tuple[int, ...]],
        relational: RelationalSummary,
) -> Tuple[Dict[int, Tuple[int, ...]], Dict[int, Tuple[int, ...]],
           Dict[int, Tuple[int, ...]]]:
    """Fold fleet-independent relational facts into the access maps.

    These refinements hold on *every* switch, for any fleet around the
    program, so they are applied once at summary construction:

    - accesses past a relationally-false CEXEC never execute;
    - reads whose value provably never reaches an observable cannot
      produce divergence;
    - stores proven to write the word's current value back are no-ops;
    - claims that provably never fire (or that fire but store the value
      they matched) never change the word — their old-value write-back
      still *observes* it, so they demote to reads unless the write-back
      itself is provably dead.
    """
    dead_at = relational.dead_suffix_at

    def trim(table: Dict[int, Tuple[int, ...]],
             drop: Set[int]) -> Dict[int, Tuple[int, ...]]:
        out: Dict[int, Tuple[int, ...]] = {}
        for word, indices in table.items():
            live = tuple(
                i for i in indices
                if i not in drop and (dead_at is None or i <= dead_at))
            if live:
                out[word] = live
        return out

    reads = trim(reads, set(relational.dead_reads))
    writes = trim(writes, {e.index for e in relational.writes
                           if e.inert})
    demoted: Set[int] = set()
    observing: Dict[int, List[int]] = {}
    obs_dead = set(relational.dead_claim_obs)
    for effect in relational.claims:
        if effect.fire == FIRE_NEVER:
            inert_claim = True
        else:
            conds = (frozenset(a[1] for a in effect.conds)
                     if effect.conds is not None and all(
                         a[0] == "c" for a in effect.conds) else None)
            srcs = (frozenset(a[1] for a in effect.srcs)
                    if effect.srcs is not None and all(
                        a[0] == "c" for a in effect.srcs) else None)
            inert_claim = (conds is not None and srcs is not None
                           and len(conds) == 1 and conds == srcs)
        if inert_claim:
            demoted.add(effect.index)
            if effect.index not in obs_dead:
                observing.setdefault(effect.word, []).append(
                    effect.index)
    if demoted:
        claims = trim(claims, demoted)
        reads = dict(reads)
        for word, indices in observing.items():
            merged = sorted(set(reads.get(word, ())) | set(indices))
            reads[word] = tuple(merged)
    return reads, writes, claims


# --------------------------------------------------------------------- #
# SRAM dataflow classification (feeds the write-capable batch lanes)
# --------------------------------------------------------------------- #

#: Dataflow classes of a written/claimed SRAM word, pinned on verifier
#: certificates (``VerifiedProgram.sram_dataflow``) and consumed by the
#: batched engine's write-capable vector lanes
#: (:func:`repro.core.fastpath.build_batch_plan`).
DATAFLOW_ACCUMULATE = "accumulate"  #: additive read-modify-write chains
DATAFLOW_CLAIM = "claim"            #: CSTORE-only claim protocol word
DATAFLOW_PRIVATE = "private"        #: written, never read back in-program
DATAFLOW_MIXED = "mixed"            #: anything else: safe lane only

_ARITH_OPCODES = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.MIN, Opcode.MAX,
})


@dataclass(frozen=True)
class SRAMDataflow:
    """Per-word dataflow classes plus the lowering hints they justify.

    ``classes`` maps every SRAM word the program writes or claims to one
    of the ``DATAFLOW_*`` strings (sorted by word; this exact tuple is
    pinned on the certificate).  ``roles`` is aligned with the
    instruction list: ``None`` for instructions the vector kernel lowers
    normally, or a ``(tag, word)`` pair naming the write-lane micro-op
    the instruction maps to (``read_acc``/``add_acc``/``store_acc``/
    ``store_priv``/``cstore_claim``).  ``aff_slots`` lists the packet
    memory slots that still hold ``entry_value + delta`` of an
    accumulate word when the program ends, as ``(slot_kind,
    offset_or_rel, word)`` — the kernel adds the per-packet entry vector
    to those columns in its epilogue.  Roles and slots are only
    meaningful when :attr:`ok` holds: one mixed word demotes the whole
    program to the safe lane, so partially-stale roles are never
    consumed.
    """

    classes: Tuple[Tuple[int, str], ...]
    roles: Tuple[Optional[Tuple[str, int]], ...]
    aff_slots: Tuple[Tuple[str, int, int], ...]

    @property
    def ok(self) -> bool:
        """Every written/claimed word got a vectorizable class."""
        return all(cls != DATAFLOW_MIXED for _, cls in self.classes)


def analyze_sram_dataflow(instructions: Sequence[Instruction], *,
                          mode: Any,
                          word_size: int) -> SRAMDataflow:
    """Classify every written/claimed SRAM word of one program.

    An abstract interpretation over packet-memory slots: each slot is
    either *independent* of SRAM entry values, or *affine* in exactly
    one written word ``w`` (value ``= entry(w) + per-packet constant``,
    coefficient exactly one).  A word all of whose stores store an
    affine-in-itself slot has the additive form ``S' = S + delta`` with
    ``delta`` computable per packet — the prefix-scan lane reproduces
    sequential order bit-for-bit.  CSTORE-only words are the paper's
    §3.2.3 claim protocol; stores of independent values to words never
    read back are last-writer-wins scatters.  Everything else —
    cross-word dataflow, non-additive arithmetic on affine slots,
    CEXEC anywhere (a conditional suffix makes per-packet dataflow
    diverge), or packet slots addressed through more than one family
    (absolute vs SP-relative vs hop-relative, whose runtime aliasing is
    undecidable here) — classifies as mixed.
    """
    word = word_size
    hop_mode = mode == AddressingMode.HOP
    reads_p, writes_p, claims_p = collect_sram_accesses(instructions)
    reads_map = _index_map(reads_p)
    writes_map = _index_map(writes_p)
    claims_map = _index_map(claims_p)
    touched = set(writes_map) | set(claims_map)
    n = len(instructions)
    no_roles: Tuple[Optional[Tuple[str, int]], ...] = (None,) * n
    if not touched:
        return SRAMDataflow(classes=(), roles=no_roles, aff_slots=())

    def all_mixed() -> SRAMDataflow:
        return SRAMDataflow(
            classes=tuple((w, DATAFLOW_MIXED) for w in sorted(touched)),
            roles=no_roles, aff_slots=())

    if any(i.opcode == Opcode.CEXEC for i in instructions):
        return all_mixed()
    families = set()
    for instruction in instructions:
        opcode = instruction.opcode
        if opcode in (Opcode.PUSH, Opcode.POP):
            families.add("sp")
        elif opcode == Opcode.CSTORE:
            families.add("abs")
        elif opcode == Opcode.LOAD or opcode == Opcode.STORE \
                or opcode in _ARITH_OPCODES:
            families.add("hop" if hop_mode
                         and opcode in HOP_RELATIVE_OPCODES else "abs")
    if len(families) > 1:
        # Slots of different families can alias at runtime (the SP/hop
        # base is per-batch, not static); the affine bookkeeping below
        # would be unsound, so every written word demotes.
        return all_mixed()

    mixed: Set[int] = set()
    #: slot -> affine word (absent/None = independent)
    slots: Dict[Tuple[str, int], Optional[int]] = {}
    non_affine: Set[int] = set()   # words reset by an independent store
    aff_stores: Dict[int, int] = {}
    ind_stores: Dict[int, int] = {}
    claim_count: Dict[int, int] = {}
    roles: List[Optional[Tuple[str, int]]] = [None] * n
    sp_rel = 0

    def readable_as_affine(w: int) -> bool:
        """A read of touched word ``w``: affine only while no claim and
        no independent store has broken the additive chain."""
        if w in claims_map or w in non_affine:
            mixed.add(w)
            return False
        return True

    def handle_store(w: int, state: Optional[int], j: int) -> None:
        if w in claims_map:
            mixed.add(w)
            return
        if state is None:
            ind_stores[w] = ind_stores.get(w, 0) + 1
            non_affine.add(w)
            roles[j] = ("store_priv", w)
        elif state == w:
            if w in non_affine:
                mixed.add(w)
                return
            aff_stores[w] = aff_stores.get(w, 0) + 1
            roles[j] = ("store_acc", w)
        else:
            # Storing entry(v) + c into w: cross-word dataflow.
            mixed.add(w)
            mixed.add(state)

    for j, instruction in enumerate(instructions):
        opcode = instruction.opcode
        addr = instruction.addr
        tw: Optional[int] = None
        if is_sram(addr):
            sram_word = addr - SRAM_BASE
            if sram_word in touched:
                tw = sram_word
        base = instruction.offset * word
        if opcode == Opcode.NOP:
            continue
        if opcode == Opcode.PUSH:
            slot = ("sp", sp_rel)
            sp_rel += word
            if tw is not None and readable_as_affine(tw):
                slots[slot] = tw
                roles[j] = ("read_acc", tw)
            else:
                slots[slot] = None
            continue
        if opcode == Opcode.POP:
            sp_rel -= word
            if tw is not None:
                handle_store(tw, slots.get(("sp", sp_rel)), j)
            continue
        if opcode == Opcode.LOAD:
            slot = ("hop", base) if hop_mode else ("abs", base)
            if tw is not None and readable_as_affine(tw):
                slots[slot] = tw
                roles[j] = ("read_acc", tw)
            else:
                slots[slot] = None
            continue
        if opcode == Opcode.STORE:
            slot = ("hop", base) if hop_mode else ("abs", base)
            if tw is not None:
                handle_store(tw, slots.get(slot), j)
            continue
        if opcode == Opcode.CSTORE:
            cond = ("abs", base)
            if tw is not None:
                claim_count[tw] = claim_count.get(tw, 0) + 1
                for operand in (cond, ("abs", base + word)):
                    state = slots.get(operand)
                    if state is not None:
                        # Claim compare/value depends on another word's
                        # entry value: cross-word dataflow.
                        mixed.add(tw)
                        mixed.add(state)
                roles[j] = ("cstore_claim", tw)
            # CSTORE writes the old switch value over its cond word:
            # a concrete per-packet value either way.
            slots[cond] = None
            continue
        if opcode in _ARITH_OPCODES:
            hop_rel = hop_mode and opcode in HOP_RELATIVE_OPCODES
            slot = ("hop", base) if hop_rel else ("abs", base)
            state = slots.get(slot)
            if tw is not None:
                if (opcode == Opcode.ADD and state is None
                        and readable_as_affine(tw)):
                    slots[slot] = tw
                    roles[j] = ("add_acc", tw)
                else:
                    # SUB/bitwise/minmax of the word (non-additive), or
                    # folding it into an already-affine slot (coefficient
                    # two or cross-word).
                    mixed.add(tw)
                    if state is not None:
                        mixed.add(state)
                    slots[slot] = None
            elif state is not None and opcode not in (Opcode.ADD,
                                                      Opcode.SUB):
                # Non-additive arithmetic destroys the affine form of
                # whatever this slot was tracking.
                mixed.add(state)
                slots[slot] = None
            continue

    classes: List[Tuple[int, str]] = []
    for w in sorted(touched):
        if w in mixed:
            cls = DATAFLOW_MIXED
        elif w in claims_map:
            if (w in writes_map or w in reads_map
                    or claim_count.get(w, 0) != 1):
                # Plain writes or reads alongside the claim, or two
                # claim instructions whose instruction-major order would
                # diverge from packet-major chaining.
                cls = DATAFLOW_MIXED
            else:
                cls = DATAFLOW_CLAIM
        else:
            n_aff = aff_stores.get(w, 0)
            n_ind = ind_stores.get(w, 0)
            if n_aff > 0 and n_ind == 0:
                cls = DATAFLOW_ACCUMULATE
            elif n_ind > 0 and n_aff == 0 and w not in reads_map:
                cls = DATAFLOW_PRIVATE
            else:
                cls = DATAFLOW_MIXED
        classes.append((w, cls))

    class_of = dict(classes)
    aff_slots = tuple(sorted(
        (kind, offset, w)
        for (kind, offset), w in slots.items()
        if w is not None and class_of.get(w) == DATAFLOW_ACCUMULATE))
    return SRAMDataflow(classes=tuple(classes), roles=tuple(roles),
                        aff_slots=aff_slots)


def summarize_instructions(instructions: Sequence[Instruction], *,
                           task_id: int = 0,
                           mode: Any = None,
                           word_size: int = 4,
                           name: str = "",
                           program_key: Optional[bytes] = None,
                           memory_len: int = 0,
                           perhop_len_bytes: int = 0,
                           initial_memory: Optional[bytes] = None,
                           max_hops: Optional[int] = None,
                           memory_map: Optional[MemoryMap] = None,
                           entry: Optional[int] = None,
                           ) -> ProgramAccessSummary:
    """Build a :class:`ProgramAccessSummary` from decoded instructions.

    ``initial_memory`` (plus the memory geometry) enables the
    constant-fence and relational refinements; without it the summary is
    the plain may-access one.  ``entry`` pins the hop/SP counter
    executions enter with at the deployment point under analysis (see
    :func:`repro.core.relational.analyze_relations`); ``None`` keeps
    the relational pass conservative over the whole counter interval.
    """
    if program_key is None:
        program_key = program_key_of(
            list(instructions),
            AddressingMode.STACK if mode is None else mode, word_size)
    reads, writes, claims = collect_sram_accesses(instructions)
    fences = collect_constant_fences(
        instructions,
        mode=AddressingMode.STACK if mode is None else mode,
        word_size=word_size, memory_len=memory_len,
        perhop_len_bytes=perhop_len_bytes,
        initial_memory=initial_memory, max_hops=max_hops,
        memory_map=memory_map)
    reads_map = _index_map(reads)
    writes_map = _index_map(writes)
    claims_map = _index_map(claims)
    relational: Optional[RelationalSummary] = None
    if initial_memory is not None:
        relational = analyze_relations(
            instructions,
            mode=AddressingMode.STACK if mode is None else mode,
            word_size=word_size, memory_len=memory_len,
            perhop_len_bytes=perhop_len_bytes,
            initial_memory=initial_memory, entry=entry,
            memory_map=memory_map)
        reads_map, writes_map, claims_map = _apply_relational_statics(
            reads_map, writes_map, claims_map, relational)
        if relational.stable_fences:
            fences = tuple(sorted(
                set(fences) | set(relational.stable_fences)))
    return ProgramAccessSummary(
        name=name or f"{program_key.hex()[:12]}/t{task_id}",
        task_id=task_id,
        program_key=program_key,
        reads=reads_map,
        writes=writes_map,
        claims=claims_map,
        fences=fences,
        relational=relational,
        word_size=word_size,
    )


def summarize_section(tpp: TPPSection,
                      name: str = "") -> ProgramAccessSummary:
    """Summary of an in-flight (wire-decoded) TPP section.

    The section's current hop/SP counter is the entry counter any
    further execution of this frame uses, so the relational pass runs
    pinned to it.
    """
    return summarize_instructions(
        tpp.instructions, task_id=tpp.task_id, mode=tpp.mode,
        word_size=tpp.word_size, name=name,
        program_key=tpp.program_key,
        memory_len=len(tpp.memory),
        perhop_len_bytes=tpp.perhop_len_bytes,
        initial_memory=bytes(tpp.memory),
        entry=tpp.hop_or_sp)


def summarize_program(program: Any, task_id: int = 0,
                      name: str = "") -> ProgramAccessSummary:
    """Summary of an :class:`~repro.core.assembler.AssembledProgram`.

    Freshly built programs enter the network with counter ``0``
    (``build()`` stamps ``hop_or_sp = 0``), so the relational pass is
    pinned to entry ``0`` — the state the admission point sees.
    """
    return summarize_instructions(
        program.instructions, task_id=task_id, mode=program.mode,
        word_size=program.word_size, name=name,
        memory_len=len(program.initial_memory),
        perhop_len_bytes=program.perhop_len_bytes,
        initial_memory=bytes(program.initial_memory),
        max_hops=getattr(program, "hops", None),
        entry=0)


def summarize_certificate(certificate: Any,
                          name: str = "") -> ProgramAccessSummary:
    """Summary reconstructed from a verifier certificate's pinned sets.

    Certificates (:class:`~repro.core.verifier.VerifiedProgram`) embed
    the flat access tuples so admission layers — notably
    :meth:`repro.core.tcpu.TCPU.trust` — can race-check a program
    without ever seeing its instructions.

    Certificates pin the *raw* access tuples plus the relational facts
    separately (backward compatible either way); the fleet-independent
    relational refinements fold in here, exactly as they do when
    summarizing from instructions.
    """
    reads_map = _index_map(certificate.sram_reads)
    writes_map = _index_map(certificate.sram_writes)
    claims_map = _index_map(certificate.sram_claims)
    relational = getattr(certificate, "sram_relational", None)
    if relational is not None:
        reads_map, writes_map, claims_map = _apply_relational_statics(
            reads_map, writes_map, claims_map, relational)
    return ProgramAccessSummary(
        name=(name or f"{certificate.program_key.hex()[:12]}"
                      f"/t{certificate.task_id}"),
        task_id=certificate.task_id,
        program_key=certificate.program_key,
        reads=reads_map,
        writes=writes_map,
        claims=claims_map,
        # Old certificates carry no fences or relational facts: the
        # conservative pre-fence analysis applies unchanged.
        fences=getattr(certificate, "sram_fences", ()),
        relational=relational,
        word_size=getattr(certificate, "word_size", 4),
    )


@dataclass(frozen=True)
class RaceDiagnostic:
    """One pairwise finding: two named programs, one SRAM word."""

    code: str                          #: ``TPP020``..``TPP023``
    severity: str                      #: ``error`` | ``warning`` | ``info``
    message: str
    word: int                          #: absolute SRAM word index
    vaddr: int                         #: ``SRAM_BASE + word``
    task_id: int
    program_a: str
    program_b: str
    instructions_a: Tuple[int, ...]    #: offending indices in program a
    instructions_b: Tuple[int, ...]    #: offending indices in program b

    def format(self) -> str:
        """Human-readable one-liner."""
        return (f"{self.code} {self.severity}: {self.message} "
                f"[Sram:Word{self.word} @ {self.vaddr:#06x}, "
                f"task {self.task_id}; {self.program_a} instr "
                f"{list(self.instructions_a)} vs {self.program_b} "
                f"instr {list(self.instructions_b)}]")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "word": self.word,
            "vaddr": self.vaddr,
            "task_id": self.task_id,
            "program_a": self.program_a,
            "program_b": self.program_b,
            "instructions_a": list(self.instructions_a),
            "instructions_b": list(self.instructions_b),
        }


def _sort_key(diagnostic: RaceDiagnostic) -> Tuple:
    return (diagnostic.task_id, diagnostic.word, diagnostic.code,
            diagnostic.program_a, diagnostic.program_b)


def check_pair(a: ProgramAccessSummary,
               b: ProgramAccessSummary,
               fence_values: Optional[Mapping[int, int]] = None,
               ) -> List[RaceDiagnostic]:
    """Race diagnostics between two programs (same task only).

    The pair is canonically ordered by ``(name, program_key)`` before
    classification, so the result is identical no matter which way the
    caller hands the two summaries in — a requirement for the
    incremental table to match a from-scratch pass exactly.
    ``fence_values`` binds stable registers to the target switch's
    values (see module docstring); ``None`` keeps them unknown.
    """
    if a.task_id != b.task_id:
        return []  # disjoint protection domains: TPP007's job
    a, b = sorted((a, b), key=lambda s: (s.name, s.program_key))
    shared = a.words & b.words
    diagnostics: List[RaceDiagnostic] = []
    for word in sorted(shared):
        finding = _classify_word(a, b, word, fence_values)
        if finding is not None:
            diagnostics.append(finding)
    return diagnostics


def _live_pairs(a: ProgramAccessSummary, indices_a: Tuple[int, ...],
                b: ProgramAccessSummary, indices_b: Tuple[int, ...],
                fence_values: Optional[Mapping[int, int]] = None,
                ) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Filter two access-index sets down to the co-executable pairs.

    An access dead on the bound switch (a guard falsified by
    ``fence_values``) is dropped outright.  Of the remainder, an access
    of ``a`` and an access of ``b`` are co-executable unless their guard
    sets contain mutually exclusive stable fences — then no single
    switch can ever run both, so the pair cannot race there.  Returns
    the surviving indices on each side, or ``None`` when no cross pair
    survives (guard sets without fences always survive: the pre-fence
    may-access behaviour).
    """
    if not indices_a or not indices_b:
        return None
    if not a.fences and not b.fences:
        return (indices_a, indices_b)  # fast path: nothing to exclude
    guards_a = {i: a.guards(i) for i in indices_a
                if not _falsified(a.guards(i), fence_values)}
    guards_b = {j: b.guards(j) for j in indices_b
                if not _falsified(b.guards(j), fence_values)}
    live_a = tuple(i for i in guards_a
                   if any(not _exclusive_guards(guards_a[i], guards_b[j])
                          for j in guards_b))
    live_b = tuple(j for j in guards_b
                   if any(not _exclusive_guards(guards_a[i], guards_b[j])
                          for i in guards_a))
    if live_a and live_b:
        return (live_a, live_b)
    return None


def _classify_word(a: ProgramAccessSummary, b: ProgramAccessSummary,
                   word: int,
                   fence_values: Optional[Mapping[int, int]] = None,
                   ) -> Optional[RaceDiagnostic]:
    """Most severe applicable classification for one shared word.

    Each relation only fires for *co-executable* access pairs: accesses
    separated by mutually exclusive constant fences run on disjoint
    switches and cannot interleave (see :func:`_live_pairs`).
    """
    writes_a = a.writes.get(word, ())
    writes_b = b.writes.get(word, ())
    claims_a = a.claims.get(word, ())
    claims_b = b.claims.get(word, ())
    reads_a = a.reads.get(word, ())
    reads_b = b.reads.get(word, ())

    def build(code: str, message: str,
              indices_a: Tuple[int, ...],
              indices_b: Tuple[int, ...]) -> RaceDiagnostic:
        return RaceDiagnostic(
            code=code, severity=RACE_CODES[code], message=message,
            word=word, vaddr=SRAM_BASE + word, task_id=a.task_id,
            program_a=a.name, program_b=b.name,
            instructions_a=indices_a, instructions_b=indices_b)

    ww = _live_pairs(a, writes_a, b, writes_b, fence_values)
    if ww is not None:
        return build(
            "TPP020",
            f"write-write race: {a.name} and {b.name} both store to "
            f"Sram:Word{word} with no CSTORE claim protocol",
            ww[0], ww[1])
    claim_vs_write = _live_pairs(a, claims_a, b, writes_b, fence_values)
    write_vs_claim = _live_pairs(a, writes_a, b, claims_b, fence_values)
    if claim_vs_write is not None or write_vs_claim is not None:
        if claim_vs_write is not None:
            claimer, writer = a, b
            indices_a, indices_b = claim_vs_write
        else:
            claimer, writer = b, a
            indices_a, indices_b = write_vs_claim
        return build(
            "TPP022",
            f"claim protocol violated: {claimer.name} claims "
            f"Sram:Word{word} via CSTORE but {writer.name} writes it "
            f"unconditionally",
            indices_a, indices_b)
    mutates_a = tuple(sorted(writes_a + claims_a))
    mutates_b = tuple(sorted(writes_b + claims_b))
    aw_read_b = _live_pairs(a, mutates_a, b, reads_b, fence_values)
    bw_read_a = _live_pairs(a, reads_a, b, mutates_b, fence_values)
    if aw_read_b is not None or bw_read_a is not None:
        # Both directions may race at once (each side reads what the
        # other writes); the diagnostic merges the involved indices of
        # both, so ``instructions_a``/``instructions_b`` carry every
        # offending index per program — the same per-pair shape TPP020
        # reports.
        merged_a: Set[int] = set()
        merged_b: Set[int] = set()
        if aw_read_b is not None:
            writer, reader = a, b
            merged_a.update(aw_read_b[0])
            merged_b.update(aw_read_b[1])
        if bw_read_a is not None:
            if aw_read_b is None:
                writer, reader = b, a
            merged_a.update(bw_read_a[0])
            merged_b.update(bw_read_a[1])
        return build(
            "TPP021",
            f"read-write race: {reader.name} reads Sram:Word{word} "
            f"which {writer.name} writes — torn-read risk, value "
            f"depends on packet interleaving",
            tuple(sorted(merged_a)), tuple(sorted(merged_b)))
    cc = _live_pairs(a, claims_a, b, claims_b, fence_values)
    if cc is not None:
        return build(
            "TPP023",
            f"claim-coordinated sharing: {a.name} and {b.name} both "
            f"CSTORE Sram:Word{word} — sanctioned protocol, but the "
            f"winning claim depends on arrival order",
            cc[0], cc[1])
    return None  # read-read sharing is always safe


@dataclass
class FleetRaceReport:
    """Everything one fleet-wide analysis established."""

    programs: List[str]
    diagnostics: List[RaceDiagnostic]
    pairs_checked: int = 0

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (TPP020/TPP022)."""
        return not self.errors

    @property
    def race_free(self) -> bool:
        """No diagnostics at all: the fleet is provably order
        insensitive — every interleaving of whole-program executions
        yields bit-identical final SRAM."""
        return not self.diagnostics

    @property
    def errors(self) -> List[RaceDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[RaceDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def by_code(self) -> Dict[str, int]:
        """Diagnostic counts keyed by code (stable order)."""
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def format(self) -> str:
        """All diagnostics plus a verdict line, human-readable."""
        lines = [d.format() for d in self.diagnostics]
        n_err, n_warn = len(self.errors), len(self.warnings)
        verdict = ("race-free" if self.race_free
                   else "racy" if not self.ok else "shared")
        lines.append(
            f"{verdict}: {len(self.programs)} program(s), "
            f"{self.pairs_checked} pair(s) checked, {n_err} error(s), "
            f"{n_warn} warning(s)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "ok": self.ok,
            "race_free": self.race_free,
            "programs": list(self.programs),
            "pairs_checked": self.pairs_checked,
            "by_code": self.by_code(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _refine_summary(summary: ProgramAccessSummary,
                    reach: ReachTable) -> ProgramAccessSummary:
    """Apply claim-epoch facts for one switch to one summary.

    Claims whose condition constant is outside the word's reachable
    epochs can never fire on this switch: they demote to reads (the
    old-value write-back still observes the word) or vanish when the
    write-back itself is provably dead.  Stores of a value the word
    always holds can never change it and drop out.  Returns the summary
    unchanged when nothing refines.
    """
    relational = summary.relational
    if relational is None:
        return summary
    mask = (1 << (8 * summary.word_size)) - 1
    task = summary.task_id
    dropped_writes: Set[int] = set()
    for effect in relational.writes:
        if not write_mutates(effect, task, reach, mask):
            dropped_writes.add(effect.index)
    dropped_claims: Set[int] = set()
    observing: Dict[int, List[int]] = {}
    obs_dead = set(relational.dead_claim_obs)
    for effect in relational.claims:
        if claim_mutates(effect, task, reach, mask):
            continue
        dropped_claims.add(effect.index)
        if effect.index not in obs_dead:
            observing.setdefault(effect.word, []).append(effect.index)
    dropped_writes &= {i for idxs in summary.writes.values()
                       for i in idxs}
    dropped_claims &= {i for idxs in summary.claims.values()
                       for i in idxs}
    if not dropped_writes and not dropped_claims:
        return summary

    def strip(table: Dict[int, Tuple[int, ...]],
              drop: Set[int]) -> Dict[int, Tuple[int, ...]]:
        out: Dict[int, Tuple[int, ...]] = {}
        for word, indices in table.items():
            live = tuple(i for i in indices if i not in drop)
            if live:
                out[word] = live
        return out

    reads = dict(summary.reads)
    for word, indices in observing.items():
        reads[word] = tuple(sorted(
            set(reads.get(word, ())) | set(indices)))
    return ProgramAccessSummary(
        name=summary.name, task_id=summary.task_id,
        program_key=summary.program_key,
        reads=reads,
        writes=strip(summary.writes, dropped_writes),
        claims=strip(summary.claims, dropped_claims),
        fences=summary.fences,
        relational=relational,
        word_size=summary.word_size)


def refine_for_switch(
        summaries: Sequence[ProgramAccessSummary],
        sram_values: Mapping[int, int],
        floor: Optional[ReachTable] = None,
) -> Tuple[List[ProgramAccessSummary], ReachTable]:
    """Refine a fleet's summaries against one switch's SRAM image.

    Runs the claim-epoch reachability fixpoint
    (:func:`repro.core.relational.reachable_values`) over the whole
    membership, then rewrites each summary so the pairwise
    classification only counts accesses that can actually mutate or
    observe on this switch.  ``floor`` seeds the fixpoint with values
    already reachable from earlier membership states (see
    :class:`FleetRaceTable`).
    """
    word_size = summaries[0].word_size if summaries else 4
    reach = reachable_values(
        [(s, s.relational) for s in summaries], sram_values,
        word_size=word_size, floor=floor)
    return [_refine_summary(s, reach) for s in summaries], reach


def check_fleet(
        summaries: Sequence[ProgramAccessSummary],
        fence_values: Optional[Mapping[int, int]] = None,
        sram_values: Optional[Mapping[int, int]] = None,
        ) -> FleetRaceReport:
    """From-scratch pairwise analysis over a whole fleet.

    The reference semantics the incremental :class:`FleetRaceTable`
    must match; diagnostics come out in a canonical order so reports
    are directly comparable.  ``fence_values`` binds stable registers
    to one switch's values, refining every pair (see module docstring);
    ``sram_values`` additionally binds the switch's initial SRAM image,
    enabling the claim-epoch refinement (:func:`refine_for_switch`).
    """
    if sram_values is not None and summaries:
        summaries = refine_for_switch(summaries, sram_values)[0]
    diagnostics: List[RaceDiagnostic] = []
    pairs = 0
    for i in range(len(summaries)):
        for j in range(i + 1, len(summaries)):
            pairs += 1
            diagnostics.extend(
                check_pair(summaries[i], summaries[j], fence_values))
    diagnostics.sort(key=_sort_key)
    return FleetRaceReport(
        programs=[s.name for s in summaries],
        diagnostics=diagnostics,
        pairs_checked=pairs)


class FleetRaceTable:
    """Incrementally maintained fleet membership with race diagnostics.

    Admission layers call :meth:`admit` / :meth:`revoke` as programs
    come and go; the table keeps a word-level index so an admission
    only re-checks the pairs whose access sets actually intersect the
    newcomer's — on a fleet of N programs touching disjoint words,
    admission is O(program size), not O(N).

    A table guards one deployment point.  When that point is a single
    switch (``TCPU.trust``), pass ``fence_values`` with the switch's
    stable register values so constant fences falsified there discount
    their guarded accesses, and optionally ``sram_values`` with the
    switch's SRAM image at binding time to enable the claim-epoch
    refinement; a table spanning many switches (an edge policy) leaves
    both unset and gets the conservative analysis.

    With ``sram_values`` bound the refinement is *fleet-coupled*: an
    admission can enlarge a word's reachable epochs and thereby revive a
    claim an earlier pair check discounted, so the table re-checks every
    pair one of whose refined summaries changed.  Reachability is
    monotone over the table's whole membership **history** — a revoked
    member's writes may persist in physical SRAM, so revocation never
    shrinks the reachable sets (the table stays sound, merely more
    conservative than a from-scratch pass over the survivors).
    """

    def __init__(self,
                 fence_values: Optional[Mapping[int, int]] = None,
                 sram_values: Optional[Mapping[int, int]] = None,
                 ) -> None:
        #: Stable-register bindings for the switch this table guards
        #: (``None`` = unknown, conservative).
        self.fence_values: Optional[Dict[int, int]] = (
            dict(fence_values) if fence_values else None)
        #: Initial SRAM image of the switch this table guards
        #: (``None`` = unknown, conservative).
        self.sram_values: Optional[Dict[int, int]] = (
            dict(sram_values) if sram_values is not None else None)
        self._members: Dict[Tuple[bytes, int], ProgramAccessSummary] = {}
        # Claim-epoch view: per-member refined summaries + the monotone
        # reachable-value table (only populated with ``sram_values``).
        self._refined: Dict[Tuple[bytes, int], ProgramAccessSummary] = {}
        self._reach: ReachTable = {}
        # (task_id, word) -> member keys touching that word (unrefined
        # words: stable under refinement changes).
        self._word_index: Dict[Tuple[int, int],
                               Set[Tuple[bytes, int]]] = {}
        # Unordered pair (sorted key tuple) -> its diagnostics.
        self._pair_diagnostics: Dict[
            Tuple[Tuple[bytes, int], Tuple[bytes, int]],
            List[RaceDiagnostic]] = {}
        #: Pairwise checks actually performed (the incremental-work
        #: counter the conformance tests compare against a full pass).
        self.pair_checks = 0
        #: Admissions that introduced at least one error diagnostic.
        self.racy_admissions = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: object) -> bool:
        return key in self._members

    @property
    def members(self) -> List[ProgramAccessSummary]:
        """Current membership in admission order."""
        return list(self._members.values())

    def member(self, key: Tuple[bytes, int]
               ) -> Optional[ProgramAccessSummary]:
        """Membership lookup by ``(program_key, task_id)``."""
        return self._members.get(key)

    def admit(self,
              summary: ProgramAccessSummary) -> List[RaceDiagnostic]:
        """Add a program; returns every diagnostic it participates in.

        Idempotent: re-admitting a member returns its current
        diagnostics without re-running any pair.  Only pairs sharing at
        least one SRAM word with the newcomer are checked.
        """
        key = summary.key
        if key in self._members:
            return self.diagnostics_for(key)
        self._members[key] = summary
        for word in summary.words:
            index_key = (summary.task_id, word)
            self._word_index.setdefault(index_key, set()).add(key)
        if self.sram_values is not None:
            self._resync({key})
            introduced = self.diagnostics_for(key)
        else:
            rivals = self._rivals_of(key)
            introduced = []
            for rival_key in rivals:
                rival = self._members[rival_key]
                self.pair_checks += 1
                findings = check_pair(summary, rival, self.fence_values)
                if findings:
                    self._pair_diagnostics[_pair_key(key, rival_key)] = (
                        findings)
                    introduced.extend(findings)
            introduced.sort(key=_sort_key)
        if any(d.severity == "error" for d in introduced):
            self.racy_admissions += 1
        return introduced

    def _rivals_of(self, key: Tuple[bytes, int]
                   ) -> Set[Tuple[bytes, int]]:
        summary = self._members[key]
        rivals: Set[Tuple[bytes, int]] = set()
        for word in summary.words:
            bucket = self._word_index.get((summary.task_id, word))
            if bucket:
                rivals.update(bucket)
        rivals.discard(key)
        return rivals

    def _resync(self, seeds: Set[Tuple[bytes, int]]) -> None:
        """Re-run the claim-epoch refinement after a membership change.

        ``seeds`` are members whose pairs must be re-checked regardless
        (the newcomer).  Any member whose *refined* summary changed —
        the fixpoint is fleet-coupled, so an admission can revive a
        claim elsewhere — joins them.  The previous reachable table
        seeds the new fixpoint as a monotone floor.
        """
        assert self.sram_values is not None
        keys = list(self._members)
        refined, self._reach = refine_for_switch(
            [self._members[k] for k in keys], self.sram_values,
            floor=self._reach)
        changed = set(seeds)
        for k, view in zip(keys, refined):
            old = self._refined.get(k)
            if old is None or _access_fingerprint(old) != \
                    _access_fingerprint(view):
                changed.add(k)
            self._refined[k] = view
        for k in [k for k in self._refined if k not in self._members]:
            del self._refined[k]
        pairs_to_check: Set[Tuple[Tuple[bytes, int],
                                  Tuple[bytes, int]]] = set()
        for k in changed:
            if k not in self._members:
                continue
            for rival_key in self._rivals_of(k):
                pairs_to_check.add(_pair_key(k, rival_key))
        for pair in pairs_to_check:
            self._pair_diagnostics.pop(pair, None)
            self.pair_checks += 1
            findings = check_pair(self._refined[pair[0]],
                                  self._refined[pair[1]],
                                  self.fence_values)
            if findings:
                self._pair_diagnostics[pair] = findings

    def revoke(self, key_or_summary: Any) -> bool:
        """Retire a member (and every diagnostic naming it).

        Accepts a summary, a certificate-like object (anything with
        ``program_key`` and ``task_id``), or a raw
        ``(program_key, task_id)`` tuple.  Returns whether the member
        existed.
        """
        key = _member_key(key_or_summary)
        summary = self._members.pop(key, None)
        if summary is None:
            return False
        for word in summary.words:
            index_key = (summary.task_id, word)
            bucket = self._word_index.get(index_key)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._word_index[index_key]
        for pair in [p for p in self._pair_diagnostics if key in p]:
            del self._pair_diagnostics[pair]
        self._refined.pop(key, None)
        if self.sram_values is not None and self._members:
            # The floor keeps every historically reachable value, so
            # surviving pairs normally need no re-check; _resync still
            # runs to keep the refined view and diagnostics coherent.
            self._resync(set())
        return True

    def diagnostics(self) -> List[RaceDiagnostic]:
        """Every active diagnostic, in canonical order."""
        collected: List[RaceDiagnostic] = []
        for findings in self._pair_diagnostics.values():
            collected.extend(findings)
        collected.sort(key=_sort_key)
        return collected

    def diagnostics_for(self,
                        key_or_summary: Any) -> List[RaceDiagnostic]:
        """Active diagnostics involving one member."""
        key = _member_key(key_or_summary)
        collected: List[RaceDiagnostic] = []
        for pair, findings in self._pair_diagnostics.items():
            if key in pair:
                collected.extend(findings)
        collected.sort(key=_sort_key)
        return collected

    def report(self) -> FleetRaceReport:
        """Snapshot equivalent to
        ``check_fleet(self.members, self.fence_values)``."""
        members = self.members
        n = len(members)
        return FleetRaceReport(
            programs=[s.name for s in members],
            diagnostics=self.diagnostics(),
            pairs_checked=n * (n - 1) // 2)


def _access_fingerprint(summary: ProgramAccessSummary) -> Tuple:
    """Hashable digest of the access maps a pair check consumes."""
    return (tuple(sorted(summary.reads.items())),
            tuple(sorted(summary.writes.items())),
            tuple(sorted(summary.claims.items())))


def _member_key(key_or_summary: Any) -> Tuple[bytes, int]:
    if isinstance(key_or_summary, ProgramAccessSummary):
        return key_or_summary.key
    program_key = getattr(key_or_summary, "program_key", None)
    if program_key is not None:
        return (program_key, getattr(key_or_summary, "task_id", 0))
    program_key, task_id = key_or_summary
    return (program_key, task_id)


def _pair_key(a: Tuple[bytes, int], b: Tuple[bytes, int]
              ) -> Tuple[Tuple[bytes, int], Tuple[bytes, int]]:
    return (a, b) if a <= b else (b, a)


# --------------------------------------------------------------------- #
# Cross-switch divergence modeling
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SwitchBinding:
    """One deployment point's known state for per-switch analysis.

    ``fence_values`` binds the switch's stable registers (vaddr →
    value); ``sram_values`` binds its SRAM image at analysis time (word
    → value).  Either may be ``None`` — that dimension stays unknown and
    the analysis is conservative along it, exactly as in
    :func:`check_fleet`.
    """

    name: str
    fence_values: Optional[Mapping[int, int]] = None
    sram_values: Optional[Mapping[int, int]] = None


@dataclass
class MultiSwitchRaceReport:
    """Per-switch verdicts for one fleet admitted across many switches.

    The same fleet admitted on switches with different stable-register
    values or SRAM allocations diverges (or not) *per switch*: a fence
    falsified on switch A may pass on switch B, and a claim epoch
    reachable on B may be unreachable on A.  Each entry of ``switches``
    is a full :class:`FleetRaceReport` for that binding; the fleet-wide
    verdicts are the conjunctions.
    """

    switches: Dict[str, FleetRaceReport]

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics on any switch."""
        return all(report.ok for report in self.switches.values())

    @property
    def race_free(self) -> bool:
        """Zero diagnostics on every switch: order insensitive
        everywhere the fleet is admitted."""
        return all(report.race_free
                   for report in self.switches.values())

    @property
    def racy_switches(self) -> List[str]:
        """Switch names with at least one error diagnostic."""
        return [name for name, report in self.switches.items()
                if not report.ok]

    def format(self) -> str:
        """Per-switch sections plus a fleet-wide verdict line."""
        lines: List[str] = []
        for name, report in self.switches.items():
            lines.append(f"-- switch {name} --")
            lines.append(report.format())
        verdict = ("race-free" if self.race_free
                   else "racy" if not self.ok else "shared")
        lines.append(f"fleet-wide: {verdict} across "
                     f"{len(self.switches)} switch(es)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order)."""
        return {
            "ok": self.ok,
            "race_free": self.race_free,
            "racy_switches": self.racy_switches,
            "switches": {name: report.to_dict()
                         for name, report in self.switches.items()},
        }


def check_fleet_multiswitch(
        summaries: Sequence[ProgramAccessSummary],
        switches: Sequence[SwitchBinding],
) -> MultiSwitchRaceReport:
    """Analyze one fleet against every switch it is admitted on.

    Equivalent to one :func:`check_fleet` per binding — each with that
    switch's ``fence_values``/``sram_values`` — collected into a
    :class:`MultiSwitchRaceReport`.  An empty ``switches`` sequence gets
    the single conservative, unbound analysis under the name ``"*"``.
    """
    if not switches:
        return MultiSwitchRaceReport(
            switches={"*": check_fleet(summaries)})
    reports: Dict[str, FleetRaceReport] = {}
    for binding in switches:
        if binding.name in reports:
            raise ValueError(
                f"duplicate switch binding name: {binding.name!r}")
        reports[binding.name] = check_fleet(
            summaries, fence_values=binding.fence_values,
            sram_values=binding.sram_values)
    return MultiSwitchRaceReport(switches=reports)
