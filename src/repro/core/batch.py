"""Batched TPP execution: drain-a-queue, execute-as-a-group.

The scalar TCPU pays its fixed costs — program-cache lookup, certificate
guard, report construction, Python dispatch — once per packet.  But the
workload the paper describes is *massively repetitive*: millions of
probes carrying the same five-instruction program.  A switch that drains
its ingress queue as groups of same-``program_key`` frames can pay those
fixed costs once per group, and — for the verified, write-free programs
the certificates (PR-4) make recognizable — execute the whole group as a
handful of numpy array operations instead of ``O(packets)`` Python
bytecode ("Packet Transactions" makes the same move in hardware:
compile the program once against the pipeline, then stream packets
through it).

Two lanes, selected per batch:

**Vectorized lane** (the fast one).  Eligible when the program has a
trusted certificate, contains no CEXEC and no MMU-write opcodes
(POP/STORE/CSTORE), every read address is *batch-stable*
(:meth:`repro.core.mmu.MMU.reader_is_batch_stable`), and every section
in the batch is flag-clean with identical geometry and hop/SP counter
inside the certificate guard.  Packet memories live as rows of one
numpy byte matrix (:class:`BatchArena`) and the kernel runs
*instruction-major*: for each instruction it gathers the MMU reads for
all packets, then updates one column of the matrix with a single array
operation.  The eligibility rules make the packet-major → instruction-
major reorder unobservable: no instruction writes switch state, no read
can see another packet's effect, and the certificate already proved
every packet-memory access in bounds.  Results are bit-identical to the
scalar interpreter by construction, and the differential suite enforces
it (``tests/core/test_batch_differential.py``).

If an MMU read faults mid-kernel (unbound statistic, SRAM protection),
the matrix is restored from a pristine copy and the batch is re-run
packet-at-a-time — batch-stable readers are pure, so the replay
reproduces the exact per-packet fault pattern the scalar path would
have produced.

**Safe lane** (everything else).  Packet-at-a-time through the batch's
shared :class:`~repro.core.fastpath.CompiledEntry` — full scalar
semantics (CEXEC bookkeeping, switch writes, per-packet faults) with
the cache lookup still amortized.  With compilation disabled
(``REPRO_TPP_FASTPATH=0``) or batching disabled (``REPRO_TPP_BATCH=0``)
every batch degenerates to a loop over :meth:`repro.core.tcpu.
TCPU.execute`, which is also the reference the differential tests
compare against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, cast

from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.fastpath import BatchPlan, CompiledEntry
from repro.core.isa import Opcode
from repro.core.mmu import ExecutionContext
from repro.core.tcpu import TCPU, ExecutionReport, pipeline_cycles
from repro.core.tpp import AddressingMode, FLAG_DONE, TPPSection

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI
    _np = None  # type: ignore[assignment]

#: Whether the vectorized lane is available at all.  When numpy is
#: missing every batch takes the (pure-python) safe lane; results are
#: identical, only slower.
HAVE_NUMPY = _np is not None

#: Big-endian word dtypes matching the wire format (and
#: ``fastpath._WORD_STRUCTS``).
_WORD_DTYPES = {4: ">u4", 8: ">u8"}


class BatchArena:
    """Packet memories of N same-shape sections as one numpy matrix.

    ``adopt`` semantics: each section's ``memory`` bytearray is replaced
    by a writable :class:`memoryview` of its row, so the vectorized
    kernel's column writes and every scalar code path (compiled
    closures, the interpreter, ``encode()``) see the *same* bytes with
    zero copying.  :meth:`release` moves the rows back into fresh
    bytearrays — required before a section travels a link again (the
    corruption injector resizes memory, which a row view cannot do).

    The benchmark harness keeps an arena resident across executions and
    passes it to :meth:`repro.core.tcpu.TCPU.execute_batch`; the switch
    drain path builds one transiently per vectorized batch.
    """

    __slots__ = ("sections", "matrix")

    def __init__(self, sections: Sequence[TPPSection]) -> None:
        if _np is None:
            raise RuntimeError("BatchArena requires numpy")
        if not sections:
            raise ValueError("cannot build an arena over zero sections")
        width = len(sections[0].memory)
        for section in sections:
            if len(section.memory) != width:
                raise ValueError(
                    f"arena sections must share a memory length: "
                    f"{len(section.memory)} != {width}")
        self.sections: List[TPPSection] = list(sections)
        matrix = _np.empty((len(self.sections), width), dtype=_np.uint8)
        for index, section in enumerate(self.sections):
            if width:
                matrix[index] = _np.frombuffer(section.memory,
                                               dtype=_np.uint8)
            section.memory = cast(bytearray, memoryview(matrix[index]))
        self.matrix = matrix

    def release(self) -> None:
        """Move every section's memory back into an owned bytearray."""
        for index, section in enumerate(self.sections):
            section.memory = bytearray(self.matrix[index])


def execute_batch(tcpu: TCPU, sections: Sequence[TPPSection],
                  ctxs: Sequence[ExecutionContext],
                  arena: Optional[BatchArena] = None
                  ) -> List[ExecutionReport]:
    """Execute a group of same-``program_key`` TPPs on one TCPU.

    The reference semantics are ``[tcpu.execute(s, c) for s, c in
    zip(sections, ctxs)]`` — identical reports, packet memory, flags,
    wire bytes, and counters-visible-to-programs; only wall-clock time
    and the TCPU's batch accounting differ.  Sections whose program key
    diverges from the first section's (a caller bug, or corruption
    between grouping and execution) demote the whole batch to exactly
    that reference loop.
    """
    n = len(sections)
    if n != len(ctxs):
        raise ValueError(
            f"{n} sections but {len(ctxs)} execution contexts")
    if n == 0:
        return []
    if not tcpu.batch_enabled or not tcpu.compile_enabled:
        # Packet-at-a-time opt-outs: REPRO_TPP_BATCH=0 (batching off)
        # and REPRO_TPP_FASTPATH=0 (no compiled entries to share).
        return [tcpu.execute(section, ctx)
                for section, ctx in zip(sections, ctxs)]

    tcpu.batches_executed += 1
    tcpu.batched_tpps += n
    occupancy = tcpu.batch_occupancy
    occupancy[n] = occupancy.get(n, 0) + 1

    first = sections[0]
    key = first.program_key
    if len(first.instructions) > tcpu.max_instructions:
        # Scalar execute stamps the TOO_MANY_INSTRUCTIONS fault exactly;
        # key-mismatched stragglers also get their own correct handling.
        return [tcpu.execute(section, ctx)
                for section, ctx in zip(sections, ctxs)]

    entry = tcpu._compiled_entry(first)
    plan = entry.batch_plan

    h0 = first.hop_or_sp
    eligible = (HAVE_NUMPY and plan is not None and plan.vectorizable
                and entry.verified_steps is not None and not entry.has_cexec
                and entry.guard_lo <= h0 <= entry.guard_hi)
    # One pass: program-key uniformity (required for every lane) fused
    # with the per-section certificate guard for the vectorized lane.
    memory_len = entry.memory_len
    perhop = entry.perhop_len_bytes
    for section in sections:
        if section._program_key != key and section.program_key != key:
            return [tcpu.execute(section, ctx)
                    for section, ctx in zip(sections, ctxs)]
        if eligible and (section.flags or section.hop_or_sp != h0
                         or len(section.memory) != memory_len
                         or section.perhop_len_bytes != perhop):
            eligible = False
    if eligible:
        reports = _run_vectorized(tcpu, entry, plan, sections, ctxs,
                                  arena, h0)
        if reports is not None:
            return reports
        tcpu.batch_fallbacks += 1

    # Safe lane: full scalar semantics, shared compiled entry.
    out: List[ExecutionReport] = []
    for section, ctx in zip(sections, ctxs):
        report = ExecutionReport()
        if section.flags & FLAG_DONE:
            out.append(report)
            continue
        ctx.task_id = section.task_id
        out.append(tcpu._run_entry(section, ctx, entry, report))
    return out


def _run_vectorized(tcpu: TCPU, entry: CompiledEntry, plan: BatchPlan,
                    sections: Sequence[TPPSection],
                    ctxs: Sequence[ExecutionContext],
                    arena: Optional[BatchArena],
                    h0: int) -> Optional[List[ExecutionReport]]:
    """Instruction-major kernel; ``None`` means "re-run via safe lane".

    Precondition (checked by :func:`execute_batch`): certificate guard
    holds for every section at ``hop_or_sp == h0``, all flags clear,
    geometry uniform, program free of CEXEC/MMU-writes, reads
    batch-stable.  On a mid-kernel MMU fault the matrix is restored
    from a pristine copy, so the safe-lane replay starts from exactly
    the bytes the scalar path would have started from.
    """
    local_arena = arena is None
    if local_arena:
        arena = BatchArena(sections)
    assert arena is not None
    matrix = arena.matrix
    word = sections[0].word_size
    dtype = _WORD_DTYPES[word]
    mask = (1 << (8 * word)) - 1
    perhop = entry.perhop_len_bytes

    # A batch whose contexts are all one object (the warm steady state:
    # same ingress pipeline, same metadata) lets every batch-stable read
    # collapse to a single call broadcast across the lane — stable
    # readers are pure, so N identical calls and one call are the same
    # bytes.
    ctx0 = ctxs[0]
    shared_ctx = True
    for ctx in ctxs:
        if ctx is not ctx0:
            shared_ctx = False
            break
    if plan.uses_task_id:
        task0 = sections[0].task_id
        uniform_task = True
        for section in sections:
            if section.task_id != task0:
                uniform_task = False
                break
        if uniform_task:
            ctx0.task_id = task0
            if not shared_ctx:
                for ctx in ctxs:
                    ctx.task_id = task0
        else:
            if shared_ctx or len({id(ctx) for ctx in ctxs}) != len(ctxs):
                # Aliased contexts with mixed task ids: a pre-pass stamp
                # would let one packet's task id leak into another's
                # SRAM reads.  The safe lane re-stamps per packet.
                if local_arena:
                    arena.release()
                return None
            for section, ctx in zip(sections, ctxs):
                ctx.task_id = section.task_id
    pristine = matrix.copy() if plan.touches_memory else None

    assert plan.ops is not None
    cursor = h0  # the (uniform) hop/SP counter, advanced by PUSH
    try:
        for op in plan.ops:
            kind = op[0]
            if kind == "nop":
                continue
            if kind == "push":
                read = op[1]
                col = matrix[:, cursor:cursor + word].view(dtype)[:, 0]
                if shared_ctx:
                    col[:] = read(ctx0) & mask
                else:
                    col[:] = [read(ctx) & mask for ctx in ctxs]
                cursor += word
                continue
            if kind == "load":
                _, read, hop_relative, offset = op
                ea = cursor * perhop + offset if hop_relative else offset
                col = matrix[:, ea:ea + word].view(dtype)[:, 0]
                if shared_ctx:
                    col[:] = read(ctx0) & mask
                else:
                    col[:] = [read(ctx) & mask for ctx in ctxs]
                continue
            # ("arith", opcode, read, hop_relative, offset)
            _, opcode, read, hop_relative, offset = op
            ea = cursor * perhop + offset if hop_relative else offset
            lane = matrix[:, ea:ea + word].view(dtype)[:, 0]
            if shared_ctx:
                operand = read(ctx0) & mask
            else:
                operand = _np.array([read(ctx) & mask for ctx in ctxs],
                                    dtype=dtype)
            if opcode == Opcode.ADD:
                lane += operand
            elif opcode == Opcode.SUB:
                lane -= operand
            elif opcode == Opcode.AND:
                lane &= operand
            elif opcode == Opcode.OR:
                lane |= operand
            elif opcode == Opcode.XOR:
                lane ^= operand
            elif opcode == Opcode.MIN:
                _np.minimum(lane, operand, out=lane)
            else:
                _np.maximum(lane, operand, out=lane)
    except TCPUFault:
        # A reader faulted for some packet.  Stable readers are pure,
        # so replaying packet-at-a-time reproduces the exact scalar
        # fault pattern — provided memory is back to its pre-batch
        # bytes (earlier columns were already rewritten).
        if pristine is not None:
            matrix[:] = pristine
        if local_arena:
            arena.release()
        return None

    # Epilogue: per-section state and reports, all uniform.
    hop_mode = sections[0].mode == AddressingMode.HOP
    final = cursor + 1 if hop_mode else cursor
    dirty = plan.touches_memory or hop_mode
    n_instructions = plan.n_instructions
    cycles = pipeline_cycles(n_instructions)
    report_cls = ExecutionReport
    new_report = report_cls.__new__
    no_fault = FaultCode.NONE
    reports: List[ExecutionReport] = []
    append = reports.append
    for section in sections:
        section.hop_or_sp = final
        if dirty:
            section._wire_cache = None
        report = new_report(report_cls)
        report.executed = n_instructions
        report.skipped = 0
        report.fault = no_fault
        report.cexec_disabled_at = None
        report.cycles = cycles
        report.switch_writes = []
        append(report)

    n = len(sections)
    tcpu.verified_executions += n
    tcpu.tpps_executed += n
    tcpu.instructions_executed += n_instructions * n
    tcpu.vector_batches += 1
    tcpu.vector_tpps += n
    if local_arena:
        arena.release()
    return reports
