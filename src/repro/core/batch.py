"""Batched TPP execution: drain-a-queue, execute-as-a-group.

The scalar TCPU pays its fixed costs — program-cache lookup, certificate
guard, report construction, Python dispatch — once per packet.  But the
workload the paper describes is *massively repetitive*: millions of
probes carrying the same five-instruction program.  A switch that drains
its ingress queue as groups of same-``program_key`` frames can pay those
fixed costs once per group, and — for the verified programs the
certificates (PR-4) make recognizable — execute the whole group as a
handful of numpy array operations instead of ``O(packets)`` Python
bytecode ("Packet Transactions" makes the same move in hardware:
compile the program once against the pipeline, then stream packets
through it).

Two lanes, selected per batch:

**Vectorized lane** (the fast one).  Eligible when the program has a
trusted certificate, contains no CEXEC, every read address is
*batch-stable* (:meth:`repro.core.mmu.MMU.reader_is_batch_stable`), and
every section in the batch is flag-clean with identical geometry, task
id and hop/SP counter inside the certificate guard.  Packet memories
live as rows of one numpy byte matrix (:class:`BatchArena`) and the
kernel runs *instruction-major*: for each instruction it gathers the
MMU reads for all packets, then updates one column of the matrix with a
single array operation.

Write-bearing programs vectorize too, when the certificate's pinned
SRAM *dataflow classes* (:func:`repro.core.racecheck.
analyze_sram_dataflow`) say the sequential write order is reproducible
from per-packet data:

- **accumulate** — words only touched by additive read-modify-write
  chains (``LOAD w; ADD ...; STORE w``).  The kernel tracks each
  packet's *delta* vector; the per-packet entry values are one
  exclusive prefix-scan (``entry_i = S0 + Σ_{j<i} delta_j``), applied
  to the affine packet-memory columns in the epilogue.  Bit-identical
  to sequential order by the affine invariant: every such column holds
  ``entry(w) + independent-constant`` with coefficient exactly one.
- **claim** — words touched by exactly one CSTORE and nothing else:
  the paper's claim protocol.  The kernel replays the first-match-wins
  chain over the batch with exact Python integers.
- **private-scatter** — words written but never read back in-program:
  last-writer-wins, committed once per word.

SRAM commits happen only in the epilogue, after the whole kernel ran
fault-free, so a mid-kernel fault never needs SRAM rewind — only the
packet matrix is restored from a pristine copy before the safe-lane
replay (batch-stable readers are pure, so the replay reproduces the
exact per-packet fault pattern the scalar path would have produced).

The eligibility rules make the packet-major → instruction-major reorder
unobservable, and the differential suite enforces bit-identical
reports, packet memory and final SRAM image
(``tests/core/test_batch_differential.py``).

**Safe lane** (everything else).  Packet-at-a-time through the batch's
shared :class:`~repro.core.fastpath.CompiledEntry` — full scalar
semantics (CEXEC bookkeeping, cross-word writes, per-packet faults)
with the cache lookup still amortized.  Every demotion is counted by
reason in :attr:`repro.core.tcpu.TCPU.batch_demotions`.  With
compilation disabled (``REPRO_TPP_FASTPATH=0``) or batching disabled
(``REPRO_TPP_BATCH=0``) every batch degenerates to a loop over
:meth:`repro.core.tcpu.TCPU.execute`, which is also the reference the
differential tests compare against; ``REPRO_TPP_NUMPY=0`` keeps
batching on but disables the vectorized lane (and the numpy SRAM
store), exercising the pure-python paths numpy-free hosts take.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, cast

from repro.core.exceptions import FaultCode, TCPUFault
from repro.core.fastpath import BatchPlan, CompiledEntry
from repro.core.isa import Opcode
from repro.core.mmu import ExecutionContext
from repro.core.tcpu import TCPU, ExecutionReport, pipeline_cycles
from repro.core.tpp import AddressingMode, FLAG_DONE, TPPSection

try:  # pragma: no cover - exercised via HAVE_NUMPY in both states
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI
    _np = None  # type: ignore[assignment]

if _np is not None and os.environ.get("REPRO_TPP_NUMPY", "1") == "0":
    # Simulate a numpy-free host (CI's numpy-absent job): every batch
    # takes the pure-python safe lane; results are identical.
    _np = None  # type: ignore[assignment]

#: Whether the vectorized lane is available at all.  When numpy is
#: missing every batch takes the (pure-python) safe lane; results are
#: identical, only slower.
HAVE_NUMPY = _np is not None

#: Big-endian word dtypes matching the wire format (and
#: ``fastpath._WORD_STRUCTS``).
_WORD_DTYPES = {4: ">u4", 8: ">u8"}


class BatchArena:
    """Packet memories of N same-shape sections as one numpy matrix.

    ``adopt`` semantics: each section's ``memory`` bytearray is replaced
    by a writable :class:`memoryview` of its row, so the vectorized
    kernel's column writes and every scalar code path (compiled
    closures, the interpreter, ``encode()``) see the *same* bytes with
    zero copying.  :meth:`release` moves the rows back into fresh
    bytearrays — required before a section travels a link again (the
    corruption injector resizes memory, which a row view cannot do).

    The benchmark harness keeps an arena resident across executions and
    passes it to :meth:`repro.core.tcpu.TCPU.execute_batch`; the switch
    drain path builds one transiently per vectorized batch.
    """

    __slots__ = ("sections", "matrix", "views")

    def __init__(self, sections: Sequence[TPPSection]) -> None:
        if _np is None:
            raise RuntimeError("BatchArena requires numpy")
        if not sections:
            raise ValueError("cannot build an arena over zero sections")
        width = len(sections[0].memory)
        for section in sections:
            if len(section.memory) != width:
                raise ValueError(
                    f"arena sections must share a memory length: "
                    f"{len(section.memory)} != {width}")
        self.sections: List[TPPSection] = list(sections)
        matrix = _np.empty((len(self.sections), width), dtype=_np.uint8)
        for index, section in enumerate(self.sections):
            if width:
                matrix[index] = _np.frombuffer(section.memory,
                                               dtype=_np.uint8)
            section.memory = cast(bytearray, memoryview(matrix[index]))
        self.matrix = matrix
        #: Column views into ``matrix``, keyed per word size then byte
        #: offset.  Constructing ``matrix[:, ea:ea+word].view(dtype)``
        #: costs several numpy dispatches; a resident arena re-executes
        #: the same program shape every batch, so the kernel caches the
        #: (aliasing, always-current) views here.
        self.views: Dict[int, Dict[int, Any]] = {}

    def release(self) -> None:
        """Move every section's memory back into an owned bytearray."""
        for index, section in enumerate(self.sections):
            section.memory = bytearray(self.matrix[index])


def _demote(tcpu: TCPU, reason: str) -> None:
    demotions = tcpu.batch_demotions
    demotions[reason] = demotions.get(reason, 0) + 1


def execute_batch(tcpu: TCPU, sections: Sequence[TPPSection],
                  ctxs: Sequence[ExecutionContext],
                  arena: Optional[BatchArena] = None
                  ) -> List[ExecutionReport]:
    """Execute a group of same-``program_key`` TPPs on one TCPU.

    The reference semantics are ``[tcpu.execute(s, c) for s, c in
    zip(sections, ctxs)]`` — identical reports, packet memory, flags,
    wire bytes, final SRAM image, and counters-visible-to-programs;
    only wall-clock time and the TCPU's batch accounting differ.
    Sections whose program key diverges from the first section's (a
    caller bug, or corruption between grouping and execution) demote
    the whole batch to exactly that reference loop.
    """
    n = len(sections)
    if n != len(ctxs):
        raise ValueError(
            f"{n} sections but {len(ctxs)} execution contexts")
    if n == 0:
        return []
    if not tcpu.batch_enabled or not tcpu.compile_enabled:
        # Packet-at-a-time opt-outs: REPRO_TPP_BATCH=0 (batching off)
        # and REPRO_TPP_FASTPATH=0 (no compiled entries to share).
        return [tcpu.execute(section, ctx)
                for section, ctx in zip(sections, ctxs)]

    tcpu.batches_executed += 1
    tcpu.batched_tpps += n
    occupancy = tcpu.batch_occupancy
    occupancy[n] = occupancy.get(n, 0) + 1

    first = sections[0]
    key = first.program_key
    if len(first.instructions) > tcpu.max_instructions:
        # Scalar execute stamps the TOO_MANY_INSTRUCTIONS fault exactly;
        # key-mismatched stragglers also get their own correct handling.
        _demote(tcpu, "uncertified")
        return [tcpu.execute(section, ctx)
                for section, ctx in zip(sections, ctxs)]

    entry = tcpu._compiled_entry(first)
    plan = entry.batch_plan

    h0 = first.hop_or_sp
    # First matching reason wins; ``uncertified`` must precede the
    # CEXEC check (entries without a certificate default has_cexec).
    demote: Optional[str] = None
    if not HAVE_NUMPY:
        demote = "no_numpy"
    elif plan is None or entry.verified_steps is None:
        demote = "uncertified"
    elif plan.demote_reason == "cexec" or (
            entry.has_cexec and plan.cexec_disabled_at is None):
        # A CEXEC is a per-packet branch — unless the certificate's
        # relational facts proved it always disables, in which case the
        # plan lowered the live prefix and stamps the disable point.
        demote = "cexec"
    elif plan.demote_reason is not None:
        demote = plan.demote_reason
    elif not plan.vectorizable:
        demote = "unstable_read"
    elif not entry.guard_lo <= h0 <= entry.guard_hi:
        demote = "uncertified"
    # One pass: program-key uniformity (required for every lane) fused
    # with the per-section certificate guard for the vectorized lane.
    memory_len = entry.memory_len
    perhop = entry.perhop_len_bytes
    for section in sections:
        if section._program_key != key and section.program_key != key:
            _demote(tcpu, "non_uniform")
            return [tcpu.execute(section, ctx)
                    for section, ctx in zip(sections, ctxs)]
        if demote is None and (section.flags or section.hop_or_sp != h0
                               or len(section.memory) != memory_len
                               or section.perhop_len_bytes != perhop):
            demote = "non_uniform"
    if demote is None:
        assert plan is not None
        reports, reason = _run_vectorized(tcpu, entry, plan, sections,
                                          ctxs, arena, h0)
        if reports is not None:
            return reports
        demote = reason or "fault_rewind"
        if demote == "fault_rewind":
            tcpu.batch_fallbacks += 1
    _demote(tcpu, demote)

    # Safe lane: full scalar semantics, shared compiled entry.
    out: List[ExecutionReport] = []
    for section, ctx in zip(sections, ctxs):
        report = ExecutionReport()
        if section.flags & FLAG_DONE:
            out.append(report)
            continue
        ctx.task_id = section.task_id
        out.append(tcpu._run_entry(section, ctx, entry, report))
    return out


def _run_vectorized(tcpu: TCPU, entry: CompiledEntry, plan: BatchPlan,
                    sections: Sequence[TPPSection],
                    ctxs: Sequence[ExecutionContext],
                    arena: Optional[BatchArena],
                    h0: int) -> Tuple[Optional[List[ExecutionReport]],
                                      Optional[str]]:
    """Instruction-major kernel; ``(None, reason)`` means "safe lane".

    Precondition (checked by :func:`execute_batch`): certificate guard
    holds for every section at ``hop_or_sp == h0``, all flags clear,
    geometry uniform, program free of CEXEC, reads batch-stable, and
    any writes lowered to write-lane micro-ops by their dataflow class.

    Invariant the write lanes preserve: at every step, column ``i`` of
    the matrix holds exactly the bytes packet ``i``'s memory would hold
    at that program point in *sequential* execution — except slots that
    are affine in an accumulate word, which hold ``value − entry_i(w)``
    until the epilogue adds the prefix-scanned entry vector.  SRAM is
    only committed in the epilogue, so a mid-kernel MMU fault needs no
    SRAM rewind: the matrix is restored from a pristine copy and the
    safe-lane replay starts from exactly the bytes the scalar path
    would have started from.
    """
    local_arena = arena is None
    if local_arena:
        arena = BatchArena(sections)
    assert arena is not None
    matrix = arena.matrix
    word = sections[0].word_size
    dtype = _WORD_DTYPES[word]
    mask = (1 << (8 * word)) - 1
    perhop = entry.perhop_len_bytes
    mmu = tcpu.mmu
    n = len(sections)
    views = arena.views.get(word)
    if views is None:
        views = arena.views[word] = {}

    def column(ea: int) -> Any:
        # Aliasing word-view of one packet-memory column; cached on the
        # arena so a resident batch loop pays the numpy view dispatches
        # only on its first execution.
        col = views.get(ea)
        if col is None:
            col = views[ea] = matrix[:, ea:ea + word].view(dtype)[:, 0]
        return col

    def bail(reason: str) -> Tuple[None, str]:
        assert arena is not None
        if local_arena:
            arena.release()
        return None, reason

    # A batch whose contexts are all one object (the warm steady state:
    # same ingress pipeline, same metadata) lets every batch-stable read
    # collapse to a single call broadcast across the lane — stable
    # readers are pure, so N identical calls and one call are the same
    # bytes.
    ctx0 = ctxs[0]
    shared_ctx = True
    for ctx in ctxs:
        if ctx is not ctx0:
            shared_ctx = False
            break
    if plan.uses_task_id:
        task0 = sections[0].task_id
        uniform_task = True
        for section in sections:
            if section.task_id != task0:
                uniform_task = False
                break
        if uniform_task:
            ctx0.task_id = task0
            if not shared_ctx:
                for ctx in ctxs:
                    ctx.task_id = task0
        else:
            if plan.sram_words:
                # The write lanes commit SRAM once per word against one
                # protection domain; mixed task ids have per-packet
                # domains.  The safe lane re-stamps per packet.
                return bail("non_uniform")
            if shared_ctx or len({id(ctx) for ctx in ctxs}) != len(ctxs):
                # Aliased contexts with mixed task ids: a pre-pass stamp
                # would let one packet's task id leak into another's
                # SRAM reads.  The safe lane re-stamps per packet.
                return bail("non_uniform")
            for section, ctx in zip(sections, ctxs):
                ctx.task_id = section.task_id
    if plan.sram_words:
        # Write-lane precheck: every touched word resolves against the
        # (uniform) task id.  A protection fault here would hit every
        # packet identically — the safe lane reproduces it per packet.
        try:
            for w in plan.sram_words:
                mmu._check_sram_access(w, sections[0].task_id)
        except TCPUFault:
            return bail("sram_protection")
    pristine = matrix.copy() if plan.touches_memory else None

    # Write-lane state.  ``acc_vecs[w][i]`` is packet ``i``'s running
    # *delta* against its entry value of accumulate word ``w`` (the
    # affine columns hold the same relative representation).
    # ``events`` replays per-packet ``switch_writes`` in program order.
    acc_vecs: Dict[int, Any] = {}
    if plan.acc_words:
        acc_vecs = {w: _np.zeros(n, dtype=dtype) for w in plan.acc_words}
    events: List[Tuple[Any, ...]] = []
    priv_last: Dict[int, Any] = {}
    claim_state: Dict[int, Tuple[int, bool]] = {}

    assert plan.ops is not None
    # A store that is the program's final op may hand the kernel its
    # column *alias* instead of a copy: no later op can mutate the
    # column, the epilogue scan reads it before any fixup, and the
    # switch-write values come from the inclusive scan, never from the
    # (by then fixed-up) vector.
    tail_op = plan.ops[-1] if plan.ops else None
    cursor = h0  # the (uniform) hop/SP counter, advanced by PUSH/POP
    try:
        for op in plan.ops:
            kind = op[0]
            if kind == "nop":
                continue
            if kind == "cexec_dead":
                # A relationally-dead fence: the register read happens
                # (its faults must surface exactly as in the scalar
                # loop) but the outcome is provably "disable" and the
                # value is discarded.  Always the last op.
                read = op[1]
                if shared_ctx:
                    read(ctx0)
                else:
                    for ctx in ctxs:
                        read(ctx)
                continue
            if kind == "push":
                read = op[1]
                col = column(cursor)
                if shared_ctx:
                    col[:] = read(ctx0) & mask
                else:
                    col[:] = [read(ctx) & mask for ctx in ctxs]
                cursor += word
                continue
            if kind == "load":
                _, read, hop_relative, offset = op
                ea = cursor * perhop + offset if hop_relative else offset
                col = column(ea)
                if shared_ctx:
                    col[:] = read(ctx0) & mask
                else:
                    col[:] = [read(ctx) & mask for ctx in ctxs]
                continue
            if kind == "arith":
                _, opcode, read, hop_relative, offset = op
                ea = cursor * perhop + offset if hop_relative else offset
                lane = column(ea)
                if shared_ctx:
                    raw = read(ctx0)
                    if (opcode is Opcode.MIN or opcode is Opcode.MAX) \
                            and not 0 <= raw <= mask:
                        # The scalar path compares the *raw* operand and
                        # masks afterwards: ``min(v, raw) & mask``.  A
                        # negative operand always wins MIN and loses
                        # MAX; one above the mask does the opposite.
                        if opcode is Opcode.MIN:
                            if raw < 0:
                                lane[:] = raw & mask
                        else:
                            if raw > mask:
                                lane[:] = raw & mask
                        continue
                    operand = raw & mask
                else:
                    raws = [read(ctx) for ctx in ctxs]
                    if (opcode is Opcode.MIN or opcode is Opcode.MAX) \
                            and not all(0 <= r <= mask for r in raws):
                        fn = min if opcode is Opcode.MIN else max
                        lane[:] = [fn(int(v), r) & mask
                                   for v, r in zip(lane.tolist(), raws)]
                        continue
                    operand = _np.array([r & mask for r in raws],
                                        dtype=dtype)
                if opcode is Opcode.ADD:
                    lane += operand
                elif opcode is Opcode.SUB:
                    lane -= operand
                elif opcode is Opcode.AND:
                    lane &= operand
                elif opcode is Opcode.OR:
                    lane |= operand
                elif opcode is Opcode.XOR:
                    lane ^= operand
                elif opcode is Opcode.MIN:
                    _np.minimum(lane, operand, out=lane)
                else:
                    _np.maximum(lane, operand, out=lane)
                continue
            # ---------------- write-lane micro-ops ---------------- #
            if kind == "push_acc":
                col = column(cursor)
                col[:] = acc_vecs[op[1]]
                cursor += word
            elif kind == "load_acc":
                _, w, hop_relative, offset = op
                ea = cursor * perhop + offset if hop_relative else offset
                column(ea)[:] = acc_vecs[w]
            elif kind == "add_acc":
                _, w, hop_relative, offset = op
                ea = cursor * perhop + offset if hop_relative else offset
                lane = column(ea)
                lane += acc_vecs[w]
            elif kind == "store_acc" or kind == "store_priv":
                _, w, hop_relative, offset, vaddr = op
                ea = cursor * perhop + offset if hop_relative else offset
                col = column(ea)
                vec = col if op is tail_op else col.copy()
                if kind == "store_acc":
                    events.append(("acc", vaddr, w, vec))
                    acc_vecs[w] = vec
                else:
                    events.append(("priv", vaddr, w, vec))
                    priv_last[w] = vec
            elif kind == "pop_acc" or kind == "pop_priv":
                _, w, vaddr = op
                cursor -= word
                col = column(cursor)
                vec = col if op is tail_op else col.copy()
                if kind == "pop_acc":
                    events.append(("acc", vaddr, w, vec))
                    acc_vecs[w] = vec
                else:
                    events.append(("priv", vaddr, w, vec))
                    priv_last[w] = vec
            else:  # cstore_claim: exact sequential first-match chain
                _, w, offset, vaddr = op
                cond_col = column(offset)
                src_col = column(offset + word)
                conds = cond_col.tolist()
                srcs = src_col.tolist()
                cur = int(mmu.peek_sram(w))
                olds: List[int] = []
                wins: List[bool] = []
                for i in range(n):
                    olds.append(cur & mask)
                    if cur == conds[i]:
                        cur = srcs[i]
                        wins.append(True)
                    else:
                        wins.append(False)
                cond_col[:] = olds
                events.append(("claim", vaddr, srcs, wins))
                claim_state[w] = (cur, any(wins))
    except TCPUFault:
        # A reader faulted for some packet.  Stable readers are pure,
        # so replaying packet-at-a-time reproduces the exact scalar
        # fault pattern — provided memory is back to its pre-batch
        # bytes (earlier columns were already rewritten).  SRAM was
        # never touched: commits only happen below, after this point.
        if pristine is not None:
            matrix[:] = pristine
        return bail("fault_rewind")

    # Epilogue: entry-vector fixups, SRAM commits, per-packet writes.
    switch_writes: Optional[List[List[Tuple[int, int]]]] = None
    if plan.sram_words:
        entry_vecs: Dict[int, Any] = {}
        incl_values: Dict[int, List[int]] = {}
        for w in plan.acc_words:
            # entry_i = S0 + Σ_{j<i} delta_j  (mod 2^width).  At switch
            # drain sizes a python exclusive scan over the delta list is
            # cheaper than the half-dozen numpy dispatches of a cumsum
            # formulation, and exact by construction.  The inclusive
            # values (entry_i + delta_i) fall out of the same pass — the
            # per-packet switch-write values when the word's last store
            # closed the program.
            running = int(mmu.peek_sram(w)) & mask
            entries: List[int] = []
            incl: List[int] = []
            append_entry = entries.append
            append_incl = incl.append
            for d in acc_vecs[w].tolist():
                append_entry(running)
                running = (running + d) & mask
                append_incl(running)
            entry_vecs[w] = _np.array(entries, dtype=dtype)
            incl_values[w] = incl
            mmu.poke_sram(w, running)
        for slot_kind, slot_off, w in plan.aff_slots:
            if slot_kind == "abs":
                ea = slot_off
            elif slot_kind == "sp":
                ea = h0 + slot_off
            else:  # "hop"
                ea = h0 * perhop + slot_off
            col = column(ea)
            col += entry_vecs[w]
        for w, (final_value, wrote) in claim_state.items():
            # An unclaimed word is never written back: the scalar path
            # only writes on a match (and a poke could truncate an
            # oversized control-plane value on a numpy-backed store).
            if wrote:
                mmu.poke_sram(w, final_value)
        for w, vec in priv_last.items():
            mmu.poke_sram(w, int(vec[-1]))
        if len(events) == 1 and events[0][0] != "claim":
            # One write per packet — the common counter/scatter shape.
            tag, vaddr, w, vec = events[0]
            if tag == "acc" and vec is acc_vecs[w]:
                # The store closed the additive chain: its per-packet
                # values are the inclusive scan, already computed.
                values: List[int] = incl_values[w]
            elif tag == "acc":
                values = (vec + entry_vecs[w]).tolist()
            else:
                values = vec.tolist()
            switch_writes = [[(vaddr, value)] for value in values]
        else:
            switch_writes = [[] for _ in range(n)]
            for event in events:
                tag, vaddr = event[0], event[1]
                if tag == "claim":
                    _, _, srcs, wins = event
                    for i in range(n):
                        if wins[i]:
                            switch_writes[i].append((vaddr, srcs[i]))
                    continue
                _, _, w, vec = event
                if tag == "acc" and vec is acc_vecs[w]:
                    # The word's closing store: inclusive-scan values,
                    # computed before the aff fixup touched any column
                    # this vec may alias.
                    values = incl_values[w]
                elif tag == "acc":
                    values = (vec + entry_vecs[w]).tolist()
                else:
                    values = vec.tolist()
                for i in range(n):
                    switch_writes[i].append((vaddr, values[i]))

    # Per-section state and reports, all uniform.
    hop_mode = sections[0].mode == AddressingMode.HOP
    final = cursor + 1 if hop_mode else cursor
    dirty = plan.touches_memory or hop_mode or final != h0
    n_instructions = plan.n_instructions
    disabled_at = plan.cexec_disabled_at
    if disabled_at is None:
        n_executed = n_instructions
        n_skipped = 0
    else:
        # The fence itself executes; everything after it is skipped —
        # the exact bookkeeping of the scalar loop's disable path.
        n_executed = disabled_at + 1
        n_skipped = n_instructions - n_executed
    cycles = pipeline_cycles(n_executed)
    report_cls = ExecutionReport
    new_report = report_cls.__new__
    no_fault = FaultCode.NONE
    reports: List[ExecutionReport] = []
    append = reports.append
    for index, section in enumerate(sections):
        section.hop_or_sp = final
        if dirty:
            section._wire_cache = None
        report = new_report(report_cls)
        report.executed = n_executed
        report.skipped = n_skipped
        report.fault = no_fault
        report.cexec_disabled_at = disabled_at
        report.cycles = cycles
        report.switch_writes = ([] if switch_writes is None
                                else switch_writes[index])
        append(report)

    tcpu.verified_executions += n
    tcpu.tpps_executed += n
    tcpu.instructions_executed += n_executed * n
    tcpu.vector_batches += 1
    tcpu.vector_tpps += n
    if plan.sram_words:
        tcpu.vector_write_batches += 1
        tcpu.vector_write_tpps += n
    if local_arena:
        arena.release()
    return reports, None
